#include "tools/cli.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/interrupt.hh"
#include "common/log.hh"
#include "memo/backend.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"

namespace axmemo {
namespace cli {

namespace {

bool
fail(std::string *error, std::string message)
{
    *error = std::move(message);
    return false;
}

} // namespace

const std::vector<FlagSpec> &
flagTable()
{
    // One row per option; RuntimeOptions::describeKnobs() documents the
    // knob-backed ones in detail, so help lines here stay short.
    static const std::vector<FlagSpec> table = {
        {"--scale", "<f>", "dataset scale factor",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.scale = std::atof(v);
             a.runtime.scale = a.scale;
             a.runtime.scaleSet = a.scale > 0.0;
             // Keep the environment in sync for child-style consumers
             // (perf re-reads it when it changes the scale mid-run).
             setenv("AXMEMO_SCALE", v, 1);
             return true;
         }},
        {"--full", nullptr, "paper-size inputs (scale 1.0)",
         +[](CommonArgs &a, const char *, std::string *) {
             a.runtime.full = true;
             setenv("AXMEMO_FULL", "1", 1);
             return true;
         }},
        {"--jobs", "<n>", "sweep worker count",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.runtime.jobs = static_cast<unsigned>(
                 std::strtoul(v, nullptr, 10));
             setenv("AXMEMO_JOBS", v, 1);
             return true;
         }},
        {"--out", "<dir>", "output directory for emitted files",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.runtime.outDir = v;
             return true;
         }},
        {"--json", nullptr, "machine-readable stdout",
         +[](CommonArgs &a, const char *, std::string *) {
             a.json = true;
             return true;
         }},
        {"--resume", nullptr, "replay checkpoint journals (run/profile)",
         +[](CommonArgs &a, const char *, std::string *) {
             a.resume = true;
             return true;
         }},
        {"--retries", "<n>", "per-job retries after a failure",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.runtime.retries = static_cast<unsigned>(
                 std::strtoul(v, nullptr, 10));
             return true;
         }},
        {"--job-timeout", "<s>", "per-job watchdog seconds",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.runtime.jobTimeoutSeconds = std::atof(v);
             return true;
         }},
        {"--no-timing", nullptr,
         "zero host-timing fields (byte-comparable reports)",
         +[](CommonArgs &a, const char *, std::string *) {
             a.runtime.reportTiming = false;
             return true;
         }},
        {"--fault-inject", "<w[:n]>", "test hook: fail matching jobs",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.runtime.faultInject = v;
             return true;
         }},
        {"--isolate", nullptr, "fork every simulated job into a child",
         +[](CommonArgs &a, const char *, std::string *) {
             a.runtime.isolate = true;
             return true;
         }},
        {"--dispatch", "<m>", "interpreter loop: auto|threaded|switch",
         +[](CommonArgs &a, const char *v, std::string *error) {
             if (std::strcmp(v, "auto") != 0 &&
                 std::strcmp(v, "threaded") != 0 &&
                 std::strcmp(v, "switch") != 0)
                 return fail(error,
                             std::string("--dispatch wants auto, "
                                         "threaded or switch (got '") +
                                 v + "')");
             a.runtime.dispatch = v;
             return true;
         }},
        {"--no-batch", nullptr, "disable basic-block macro-op batching",
         +[](CommonArgs &a, const char *, std::string *) {
             a.runtime.blockBatch = false;
             return true;
         }},
        {"--no-simd", nullptr, "disable the SIMD CRC kernels",
         +[](CommonArgs &a, const char *, std::string *) {
             a.runtime.simd = false;
             return true;
         }},
        {"--shard-dir", "<dir>", "shared work-queue directory",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.runtime.shardDir = v;
             return true;
         }},
        {"--worker-id", "<s>", "shard worker identity",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.runtime.workerId = v;
             return true;
         }},
        {"--lease", "<s>", "shard claim lease window seconds",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.runtime.leaseSeconds = std::atof(v);
             return true;
         }},
        {"--workers", "<n>", "fork <n> local shard workers, then merge",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.fanout = static_cast<unsigned>(
                 std::strtoul(v, nullptr, 10));
             return true;
         }},
        {"--watch", "<s>", "status: re-render every <s> seconds",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.watchSeconds = std::atof(v);
             return true;
         }},
        {"--quick", nullptr, "perf: CI-smoke sized iteration counts",
         +[](CommonArgs &a, const char *, std::string *) {
             a.quick = true;
             return true;
         }},
        {"--check", nullptr, "perf: verify BENCH_perf.json coverage",
         +[](CommonArgs &a, const char *, std::string *) {
             a.check = true;
             return true;
         }},
        {"--debug-flags", "<spec>",
         "trace flags: Exec,Memo,Cache,Dram,Lut,Sweep,Prof,Host|All",
         +[](CommonArgs &, const char *v, std::string *error) {
             std::string why;
             if (!trace::enableFlags(v, &why))
                 return fail(error, "--debug-flags: " + why);
             return true;
         }},
        {"--trace-out", "<file>", "write trace lines to <file>",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.traceOut = v;
             return true;
         }},
        {"--trace-timeline", "<file>",
         "write a Chrome-trace/Perfetto span timeline",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.runtime.timeline = v;
             return true;
         }},
        {"--socket", "<path>", "serve/replay: AF_UNIX socket path",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.runtime.serveSocket = v;
             return true;
         }},
        {"--policy", "<p>", "serve: tenant policy partitioned|shared",
         +[](CommonArgs &a, const char *v, std::string *error) {
             if (std::strcmp(v, "partitioned") != 0 &&
                 std::strcmp(v, "shared") != 0)
                 return fail(error,
                             std::string("--policy wants partitioned "
                                         "or shared (got '") +
                                 v + "')");
             a.runtime.servePolicy = v;
             return true;
         }},
        {"--tenants", "<n>", "serve: tenants to provision",
         +[](CommonArgs &a, const char *v, std::string *error) {
             const unsigned long n = std::strtoul(v, nullptr, 10);
             if (n == 0 || n > 4096)
                 return fail(error,
                             std::string("--tenants wants 1..4096 "
                                         "(got '") +
                                 v + "')");
             a.runtime.serveTenants = static_cast<unsigned>(n);
             return true;
         }},
        {"--quota", "<n>", "serve: per-tenant LUT entry quota (0 = off)",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.runtime.serveQuota = std::strtoull(v, nullptr, 10);
             return true;
         }},
        {"--lut-bytes", "<n>", "serve: physical LUT size in bytes",
         +[](CommonArgs &a, const char *v, std::string *error) {
             const std::uint64_t bytes = std::strtoull(v, nullptr, 10);
             if (bytes == 0)
                 return fail(error, "--lut-bytes wants a positive size");
             a.runtime.serveLutBytes = bytes;
             return true;
         }},
        {"--queue", "<n>", "serve: bounded request-queue depth",
         +[](CommonArgs &a, const char *v, std::string *error) {
             const std::uint64_t depth = std::strtoull(v, nullptr, 10);
             if (depth == 0 || depth > (1u << 20))
                 return fail(error,
                             std::string("--queue wants 1..1048576 "
                                         "(got '") +
                                 v + "')");
             a.runtime.serveQueue = static_cast<unsigned>(depth);
             return true;
         }},
        {"--seed", "<n>", "replay: request-trace generator seed",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.runtime.traceSeed = std::strtoull(v, nullptr, 10);
             return true;
         }},
        {"--requests", "<n>", "replay: requests to generate (0 = default)",
         +[](CommonArgs &a, const char *v, std::string *) {
             a.runtime.traceRequests = std::strtoull(v, nullptr, 10);
             return true;
         }},
        {"--drain", nullptr, "replay: send a Drain after the trace",
         +[](CommonArgs &a, const char *, std::string *) {
             a.drain = true;
             return true;
         }},
    };
    return table;
}

Expected<void>
parseArgs(int argc, char **argv, int start, CommonArgs &args)
{
    const std::vector<FlagSpec> &table = flagTable();
    for (int i = start; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.size() < 2 || arg[0] != '-') {
            args.positional.push_back(arg);
            continue;
        }

        // "--flag=value" and "--flag value" both work for every flag.
        const std::size_t eq = arg.find('=');
        const std::string name = arg.substr(0, eq);
        const FlagSpec *spec = nullptr;
        for (const FlagSpec &candidate : table)
            if (name == candidate.name) {
                spec = &candidate;
                break;
            }
        if (!spec) {
            std::string message = "unknown option '" + name + "'";
            std::vector<std::string> names;
            names.reserve(table.size());
            for (const FlagSpec &candidate : table)
                names.push_back(candidate.name);
            const std::string best = suggestClosest(name, names);
            if (!best.empty())
                message += " (did you mean '" + best + "'?)";
            return Error{ErrorCode::Config, "cli", message};
        }

        const char *value = nullptr;
        if (spec->valueName) {
            if (eq != std::string::npos) {
                value = argv[i] + eq + 1;
            } else if (i + 1 < argc) {
                value = argv[++i];
            } else {
                return Error{ErrorCode::Config, "cli",
                             "option " + name + " needs a value " +
                                 spec->valueName};
            }
        } else if (eq != std::string::npos) {
            return Error{ErrorCode::Config, "cli",
                         "option " + name + " takes no value"};
        }

        std::string error;
        if (!spec->apply(args, value, &error))
            return Error{ErrorCode::Config, "cli", error};
    }
    return {};
}

void
SubcommandRegistry::add(Subcommand command)
{
    commands_.push_back(std::move(command));
}

Expected<const Subcommand *>
SubcommandRegistry::resolve(const std::string &name) const
{
    for (const Subcommand &command : commands_)
        if (command.name == name)
            return &command;

    std::string message = "unknown command '" + name + "'";
    std::vector<std::string> names;
    names.reserve(commands_.size() + 1);
    for (const Subcommand &command : commands_)
        names.push_back(command.name);
    names.push_back("help"); // handled by dispatch(), not a table row
    const std::string best = suggestClosest(name, names);
    if (!best.empty())
        message += " (did you mean '" + best + "'?)";
    return Error{ErrorCode::Config, "cli", message};
}

std::string
renderUsage(const SubcommandRegistry &registry)
{
    std::ostringstream out;
    out << "usage: axmemo <command> [options]\n\ncommands:\n";
    for (const Subcommand &command : registry.list()) {
        out << "  axmemo " << command.name;
        if (!command.synopsis.empty())
            out << " " << command.synopsis;
        out << "\n      " << command.summary << "\n";
    }
    out << "  axmemo help [<command>]\n      this catalog, or one "
           "command's full page\n";
    out << "\noptions (shared by every command; `axmemo help <cmd>` "
           "lists what applies):\n";
    for (const FlagSpec &flag : flagTable()) {
        std::string head = flag.name;
        if (flag.valueName)
            head += std::string(" ") + flag.valueName;
        out << "  " << head;
        if (head.size() < 22)
            out << std::string(22 - head.size(), ' ');
        out << " " << flag.help << "\n";
    }
    out << "\n" << RuntimeOptions::describeKnobs();
    return out.str();
}

std::string
renderHelp(const Subcommand &command)
{
    std::ostringstream out;
    out << "usage: axmemo " << command.name;
    if (!command.synopsis.empty())
        out << " " << command.synopsis;
    out << "\n\n" << command.summary << "\n";
    if (!command.details.empty())
        out << "\n" << command.details;
    return out.str();
}

int
dispatch(int argc, char **argv, const SubcommandRegistry &registry)
{
    if (argc < 2) {
        std::fputs(renderUsage(registry).c_str(), stderr);
        return 2;
    }

    std::string name = argv[1];
    if (name == "--help" || name == "-h" || name == "help") {
        if (name == "help" && argc >= 3) {
            const Expected<const Subcommand *> resolved =
                registry.resolve(argv[2]);
            if (!resolved.ok()) {
                std::fprintf(stderr, "%s\n",
                             resolved.error().message.c_str());
                return 2;
            }
            std::fputs(renderHelp(*resolved.value()).c_str(), stdout);
            return 0;
        }
        std::fputs(renderUsage(registry).c_str(), stdout);
        return 0;
    }
    if (name == "--list") // legacy spelling of `axmemo list`
        name = "list";

    const Expected<const Subcommand *> resolved =
        registry.resolve(name);
    if (!resolved.ok()) {
        std::fprintf(stderr,
                     "%s (run `axmemo help` for the catalog)\n",
                     resolved.error().message.c_str());
        return 2;
    }

    CommonArgs args;
    args.runtime = RuntimeOptions::fromEnv();
    const Expected<void> parsed = parseArgs(argc, argv, 2, args);
    if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.error().message.c_str());
        return 2;
    }

    // Freeze the resolved knobs as the process-wide options: ambient
    // RuntimeOptions::global() callers now see CLI overrides too.
    RuntimeOptions::setGlobal(args.runtime);
    installSignalHandlers();

    trace::initFromEnv();
    if (!args.traceOut.empty() &&
        !trace::openTraceFile(args.traceOut)) {
        std::fprintf(stderr, "cannot open trace file '%s'\n",
                     args.traceOut.c_str());
        return 2;
    }
    telemetry::setEnabled(!args.runtime.timeline.empty());

    return resolved.value()->entry(args);
}

} // namespace cli
} // namespace axmemo
