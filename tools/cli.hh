/**
 * @file
 * Table-driven command-line layer of the `axmemo` driver.
 *
 * The driver used to be one 200-line hand-rolled argument loop: every
 * subcommand a bool, every flag an `else if`, the usage text maintained
 * by hand, and a typo answered with a bare "unknown option". This layer
 * replaces it with two tables:
 *
 *  - **The flag table** (flagTable()): one FlagSpec per option — name,
 *    value placeholder, help line, and an apply function writing into
 *    CommonArgs (mostly its RuntimeOptions). Every subcommand parses
 *    from the same table, so `--out/--jobs/--scale/--json` behave
 *    identically everywhere and a new knob is one table row, not four
 *    scattered `else if`s. `--flag value` and `--flag=value` both work.
 *
 *  - **The subcommand table** (SubcommandRegistry): name, one-line
 *    summary, synopsis and a details body per command. `axmemo help`
 *    and `axmemo help <cmd>` are generated from it, and dispatch()
 *    resolves the command word through it.
 *
 * Misspellings of either kind get the same structured treatment as the
 * memo-backend registry (memo/backend.hh): an ErrorCode::Config error
 * naming the input plus a Levenshtein did-you-mean suggestion. Exit
 * code 2 for usage errors is preserved from the hand-rolled parser.
 */

#ifndef AXMEMO_TOOLS_CLI_HH
#define AXMEMO_TOOLS_CLI_HH

#include <string>
#include <vector>

#include "common/expected.hh"
#include "common/runtime_options.hh"

namespace axmemo {
namespace cli {

/** Everything the shared flag parser can fill in. */
struct CommonArgs
{
    /** Environment knobs with the command line layered on top; the
     * driver freezes this as RuntimeOptions::setGlobal after parsing. */
    RuntimeOptions runtime;
    /** Non-flag arguments, in order (artifact names, directories). */
    std::vector<std::string> positional;

    // Driver-local flags that are not RuntimeOptions knobs.
    std::string traceOut; ///< --trace-out
    bool json = false;    ///< --json
    bool quick = false;   ///< --quick (perf)
    bool check = false;   ///< --check (perf)
    bool resume = false;  ///< --resume (run/profile)
    bool drain = false;   ///< --drain (replay)
    double watchSeconds = 0.0; ///< --watch (status)
    unsigned fanout = 0;       ///< --workers (run)
    /** Raw --scale value (perf re-derives scale sweeps from it). */
    double scale = 0.0;
};

/** One command-line option. */
struct FlagSpec
{
    const char *name;      ///< "--scale"
    const char *valueName; ///< "<f>"; nullptr = boolean flag
    const char *help;      ///< one-line description
    /** Apply the flag to @p args; @p value is null for boolean flags.
     * @return false with @p *error set on a malformed value. */
    bool (*apply)(CommonArgs &args, const char *value,
                  std::string *error);
};

/** The one flag table every subcommand parses from. */
const std::vector<FlagSpec> &flagTable();

/**
 * Parse argv[@p start ..) against the flag table; positional
 * arguments land in @p args.positional. Unknown flags and malformed
 * values produce an ErrorCode::Config error — unknown flags with the
 * registry-style did-you-mean suggestion.
 */
Expected<void> parseArgs(int argc, char **argv, int start,
                         CommonArgs &args);

/** One driver subcommand. */
struct Subcommand
{
    std::string name;
    std::string summary;  ///< one line for the catalog
    std::string synopsis; ///< argument synopsis after "axmemo <name>"
    std::string details;  ///< body of `axmemo help <name>`
    int (*entry)(CommonArgs &args);
};

/** The subcommand table; see file comment. */
class SubcommandRegistry
{
  public:
    void add(Subcommand command);

    const std::vector<Subcommand> &list() const { return commands_; }

    /** ErrorCode::Config with a did-you-mean on unknown names. */
    Expected<const Subcommand *> resolve(const std::string &name) const;

  private:
    std::vector<Subcommand> commands_;
};

/** The generated `axmemo help` catalog: synopsis per subcommand, then
 * the flag table, then the runtime-knob table. */
std::string renderUsage(const SubcommandRegistry &registry);

/** The generated `axmemo help <cmd>` page. */
std::string renderHelp(const Subcommand &command);

/**
 * Full driver entry point: resolve argv[1] through @p registry, parse
 * the remaining arguments through the flag table, freeze the resolved
 * RuntimeOptions, and invoke the subcommand. `help`, `--help`, `-h`
 * and the legacy `--list` spelling are handled here. Usage errors
 * print to stderr and return 2, as the hand-rolled parser did.
 */
int dispatch(int argc, char **argv, const SubcommandRegistry &registry);

} // namespace cli
} // namespace axmemo

#endif // AXMEMO_TOOLS_CLI_HH
