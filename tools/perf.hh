/**
 * @file
 * The `axmemo perf` subcommand: microbenchmarks of the three simulator
 * data paths every run touches (SimMemory translation + CoW clone, CRC
 * bulk hashing, LUT/cache way lookup) plus an end-to-end `fig7` sweep,
 * appended as one entry to BENCH_perf.json so the performance
 * trajectory of the reproduction is tracked across PRs (DESIGN.md §7).
 */

#ifndef AXMEMO_TOOLS_PERF_HH
#define AXMEMO_TOOLS_PERF_HH

#include <string>

namespace axmemo {

/** Options of one `axmemo perf` invocation. */
struct PerfOptions
{
    /** CI mode: ~8x fewer iterations and a smaller fig7 scale. */
    bool quick = false;
    /** Output directory override (--out), else $AXMEMO_SWEEP_DIR/cwd. */
    std::string outDir;
    /** Dataset scale of the end-to-end fig7 run (--scale). */
    double scale = 0.0; ///< 0 = default (0.05, or 0.02 with --quick)
    /** --check: exit nonzero when the delta-vs-previous table flags a
     * regression beyond 5% on any canonical metric. */
    bool check = false;
};

/** Run the perf harness; @return process exit code. */
int runPerf(const PerfOptions &options);

} // namespace axmemo

#endif // AXMEMO_TOOLS_PERF_HH
