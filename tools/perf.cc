/**
 * @file
 * Implementation of the `axmemo perf` subcommand (tools/perf.hh).
 *
 * Each microbenchmark pits a data-path fast path against the reference
 * implementation it replaced, inside the same binary, on the same input
 * stream — so the reported speedups measure the optimization itself and
 * travel with the repo instead of depending on a checked-out old commit.
 * The seed SimMemory (per-byte map probes, deep-copy clone) is
 * re-implemented here as LegacySimMemory for exactly that purpose.
 */

#include "tools/perf.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/runtime_options.hh"
#include "core/artifact.hh"
#include "core/json_value.hh"
#include "core/output_paths.hh"
#include "core/shard_queue.hh"
#include "crc/crc.hh"
#include "memo/lut.hh"
#include "memsys/cache.hh"
#include "memsys/sim_memory.hh"
#include "obs/profiler.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "serve/replay.hh"
#include "serve/server.hh"
#include "workloads/request_trace.hh"

#include <sys/socket.h>

namespace axmemo {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Best-of-3 wall time of @p fn (one warmup call first). The best run is
 * reported: microbenchmarks are noise-bounded from below, so the
 * minimum is the most reproducible estimate of the true cost.
 */
template <typename Fn>
double
bestSeconds(Fn &&fn)
{
    fn(); // warmup
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = Clock::now();
        fn();
        best = std::min(best, secondsSince(start));
    }
    return best;
}

/** Defeat dead-code elimination without fencing the loop. */
volatile std::uint64_t perfSink;

/**
 * The seed SimMemory data structure (unordered_map probe per *byte*,
 * deep-copy clone), re-implemented as the reference model the new fast
 * paths are measured against. The microbench runs the same access
 * stream through this and the real SimMemory.
 */
class LegacySimMemory
{
  public:
    static constexpr unsigned pageShift = SimMemory::pageShift;
    static constexpr std::size_t pageSize = SimMemory::pageSize;

    std::uint64_t
    read(Addr addr, unsigned nbytes) const
    {
        std::uint64_t value = 0;
        for (unsigned i = 0; i < nbytes; ++i) {
            const Addr a = addr + i;
            const std::uint8_t *page = pageFor(a, false);
            const std::uint8_t byte = page ? page[a & (pageSize - 1)] : 0;
            value |= static_cast<std::uint64_t>(byte) << (8 * i);
        }
        return value;
    }

    void
    write(Addr addr, std::uint64_t value, unsigned nbytes)
    {
        for (unsigned i = 0; i < nbytes; ++i) {
            const Addr a = addr + i;
            std::uint8_t *page = pageFor(a, true);
            page[a & (pageSize - 1)] =
                static_cast<std::uint8_t>(value >> (8 * i));
        }
    }

    LegacySimMemory
    clone() const
    {
        LegacySimMemory copy;
        copy.pages_.reserve(pages_.size());
        for (const auto &[pageNum, page] : pages_)
            copy.pages_.emplace(pageNum, std::make_unique<Page>(*page));
        return copy;
    }

  private:
    using Page = std::array<std::uint8_t, pageSize>;

    std::uint8_t *
    pageFor(Addr addr, bool createIfMissing) const
    {
        const std::uint64_t pageNum = addr >> pageShift;
        auto it = pages_.find(pageNum);
        if (it == pages_.end()) {
            if (!createIfMissing)
                return nullptr;
            auto page = std::make_unique<Page>();
            page->fill(0);
            it = pages_.emplace(pageNum, std::move(page)).first;
        }
        return it->second->data();
    }

    mutable std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

/** Deterministic address stream with simulator-like locality: mostly
 * sequential 8-byte strides with occasional jumps, within @p span. */
std::vector<Addr>
addressStream(std::size_t count, std::uint64_t span)
{
    Rng rng(1234);
    std::vector<Addr> addrs(count);
    const Addr base = 0x10000;
    Addr a = base;
    for (std::size_t i = 0; i < count; ++i) {
        if (rng.below(16) == 0)
            a = base + (rng.below(span) & ~7ull);
        addrs[i] = a;
        a += 8;
        if (a + 8 > base + span)
            a = base;
    }
    return addrs;
}

/** Tiny incremental JSON object builder (move-only via ostringstream). */
struct JsonObj
{
    std::ostringstream os;
    bool first = true;

    void
    key(const std::string &k)
    {
        os << (first ? "{" : ",") << "\"" << k << "\":";
        first = false;
    }
    void
    field(const std::string &k, double v)
    {
        key(k);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4f", v);
        os << buf;
    }
    void
    field(const std::string &k, std::uint64_t v)
    {
        key(k);
        os << v;
    }
    void
    field(const std::string &k, const std::string &v)
    {
        key(k);
        os << "\"" << v << "\"";
    }
    /** Booleans serialize as JSON true/false, not "true"/"false".
     * The const char* overload exists so string literals keep landing
     * here instead of silently converting to bool. */
    void
    field(const std::string &k, bool v)
    {
        key(k);
        os << (v ? "true" : "false");
    }
    void
    field(const std::string &k, const char *v)
    {
        field(k, std::string(v));
    }
    void
    field(const std::string &k, const JsonObj &nested)
    {
        key(k);
        os << nested.str();
    }
    void
    rawField(const std::string &k, const std::string &json)
    {
        key(k);
        os << json;
    }
    std::string str() const { return os.str() + "}"; }
};

// --------------------------------------------------------------- benches

JsonObj
benchSimMemory(std::size_t iters)
{
    constexpr std::uint64_t span = 4ull << 20; // 4 MB working set
    const std::vector<Addr> addrs = addressStream(iters, span);

    const auto mixedOps = [&](auto &mem) {
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < addrs.size(); ++i) {
            const Addr a = addrs[i];
            if ((i & 3) == 3)
                mem.write(a, acc + i, 8);
            else
                acc += mem.read(a, (i & 1) ? 8 : 4);
        }
        perfSink = acc;
    };

    LegacySimMemory legacy;
    SimMemory fast;
    SimMemory noTlb;
    noTlb.setTranslationCacheEnabled(false);
    // Touch the whole span once so the steady state has no page faults.
    for (Addr a = 0x10000; a < 0x10000 + span; a += SimMemory::pageSize) {
        legacy.write(a, 1, 1);
        fast.write(a, 1, 1);
        noTlb.write(a, 1, 1);
    }

    const double legacySec = bestSeconds([&] { mixedOps(legacy); });
    const double fastSec = bestSeconds([&] { mixedOps(fast); });
    const double noTlbSec = bestSeconds([&] { mixedOps(noTlb); });

    const double perOp = 1e9 / static_cast<double>(iters);
    JsonObj o;
    o.field("ops", static_cast<std::uint64_t>(iters));
    o.field("legacy_ns_per_op", legacySec * perOp);
    o.field("ns_per_op", fastSec * perOp);
    o.field("no_tlb_ns_per_op", noTlbSec * perOp);
    o.field("speedup_vs_legacy", legacySec / fastSec);
    return o;
}

JsonObj
benchClone(std::size_t iters)
{
    constexpr std::uint64_t bytes = 8ull << 20; // 8 MB prepared dataset
    LegacySimMemory legacy;
    SimMemory fast;
    Rng rng(99);
    for (Addr a = 0x10000; a < 0x10000 + bytes; a += 8) {
        const std::uint64_t v = rng.next();
        legacy.write(a, v, 8);
        fast.write(a, v, 8);
    }

    // Each clone dirties one page — the sweep-engine pattern: most of a
    // prepared dataset is read-only input the cloned run never touches.
    const double deepSec = bestSeconds([&] {
        for (std::size_t i = 0; i < iters; ++i) {
            LegacySimMemory copy = legacy.clone();
            copy.write(0x10000 + (i % 8) * SimMemory::pageSize, i, 8);
        }
    });
    const double cowSec = bestSeconds([&] {
        for (std::size_t i = 0; i < iters; ++i) {
            SimMemory copy = fast.clone();
            copy.write(0x10000 + (i % 8) * SimMemory::pageSize, i, 8);
        }
    });

    const double perClone = 1e9 / static_cast<double>(iters);
    JsonObj o;
    o.field("dataset_bytes", static_cast<std::uint64_t>(bytes));
    o.field("deep_copy_ns", deepSec * perClone);
    o.field("cow_clone_ns", cowSec * perClone);
    o.field("speedup", deepSec / cowSec);
    return o;
}

JsonObj
benchCrc(std::size_t bufBytes)
{
    const CrcEngine engine(CrcSpec::crc32());
    Rng rng(7);
    std::vector<std::uint8_t> buf(bufBytes);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.below(256));

    const double sliceSec = bestSeconds([&] {
        perfSink = engine.update(engine.initial(), buf.data(), buf.size());
    });
    const double tableSec = bestSeconds([&] {
        std::uint64_t state = engine.initial();
        for (const std::uint8_t b : buf)
            state = engine.updateByte(state, b);
        perfSink = state;
    });
    const double serialSec = bestSeconds([&] {
        std::uint64_t state = engine.initial();
        for (const std::uint8_t b : buf)
            state = engine.updateByteSerial(state, b);
        perfSink = state;
    });
    // The simulator's actual entry point: word-at-a-time ld_crc feeds.
    const double wordSec = bestSeconds([&] {
        std::uint64_t state = engine.initial();
        for (std::size_t i = 0; i + 8 <= buf.size(); i += 8) {
            std::uint64_t w;
            std::memcpy(&w, buf.data() + i, 8);
            state = engine.updateWord(state, w, 8);
        }
        perfSink = state;
    });

    const double perByte = 1e9 / static_cast<double>(bufBytes);
    JsonObj o;
    o.field("bytes", static_cast<std::uint64_t>(bufBytes));
    o.field("slice8_ns_per_byte", sliceSec * perByte);
    o.field("word_feed_ns_per_byte", wordSec * perByte);
    o.field("byte_table_ns_per_byte", tableSec * perByte);
    o.field("bit_serial_ns_per_byte", serialSec * perByte);
    o.field("speedup_vs_byte_table", tableSec / sliceSec);
    o.field("speedup_vs_bit_serial", serialSec / sliceSec);
    return o;
}

JsonObj
benchLut(std::size_t iters)
{
    const LutConfig config{"perf", 8 * 1024, 4};
    LookupTable mru(config);
    LookupTable scan(config);
    scan.setMruHintEnabled(false);

    // Fill with a key population, then replay a bursty hit stream — the
    // steady state of a memoizable region with high input reuse.
    Rng rng(5);
    std::vector<std::uint64_t> hot(256);
    for (auto &h : hot)
        h = rng.next();
    for (const std::uint64_t h : hot) {
        mru.insert(0, h, h & 0xffffffff);
        scan.insert(0, h, h & 0xffffffff);
    }

    const auto lookups = [&](LookupTable &lut) {
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < iters; ++i) {
            // Short bursts on one key model consecutive invocations
            // hashing to the same entry.
            const std::uint64_t h = hot[(i >> 2) & 255];
            acc += lut.lookup(0, h).value_or(0);
        }
        perfSink = acc;
    };

    const double mruSec = bestSeconds([&] { lookups(mru); });
    const double scanSec = bestSeconds([&] { lookups(scan); });

    const double perOp = 1e9 / static_cast<double>(iters);
    JsonObj o;
    o.field("lookups", static_cast<std::uint64_t>(iters));
    o.field("mru_ns_per_lookup", mruSec * perOp);
    o.field("scan_ns_per_lookup", scanSec * perOp);
    o.field("speedup", scanSec / mruSec);
    return o;
}

JsonObj
benchCache(std::size_t iters)
{
    // Two geometries bracket the Cache::kMruScanMinAssoc gate. At 32
    // ways the hint probe is live and must beat the (long) way scan; at
    // 8 ways the probe auto-disables, so hinted and scan-only caches
    // run the same code and the ratio documents parity, guarding
    // against the hint ever re-engaging where the scan wins.
    const std::vector<Addr> addrs = addressStream(iters, 16ull << 10);
    const auto accesses = [&](Cache &cache) {
        std::uint64_t hits = 0;
        for (std::size_t i = 0; i < addrs.size(); ++i)
            hits += cache.access(addrs[i], (i & 7) == 7).hit ? 1 : 0;
        perfSink = hits;
    };
    // Interleave the hinted and scan-only runs rep by rep so frequency
    // or thermal drift hits both sides equally — the ratio is asserted
    // in CI, so it has to be stable, not just the absolute numbers.
    const auto measurePair = [&](unsigned assoc, double &mruSec,
                                 double &scanSec) {
        const CacheConfig config{"perf", 32 * 1024, assoc, 64, 1};
        Cache mru(config);
        Cache scan(config);
        scan.setMruHintEnabled(false);
        accesses(mru);
        accesses(scan);
        mruSec = 1e300;
        scanSec = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            auto start = Clock::now();
            accesses(mru);
            mruSec = std::min(mruSec, secondsSince(start));
            start = Clock::now();
            accesses(scan);
            scanSec = std::min(scanSec, secondsSince(start));
        }
    };

    double mruSec = 0, scanSec = 0, lowMruSec = 0, lowScanSec = 0;
    measurePair(32, mruSec, scanSec);
    measurePair(8, lowMruSec, lowScanSec);

    const double perOp = 1e9 / static_cast<double>(iters);
    JsonObj o;
    o.field("accesses", static_cast<std::uint64_t>(iters));
    o.field("assoc", static_cast<std::uint64_t>(32));
    o.field("mru_ns_per_access", mruSec * perOp);
    o.field("scan_ns_per_access", scanSec * perOp);
    o.field("speedup", scanSec / mruSec);
    o.field("low_assoc", static_cast<std::uint64_t>(8));
    o.field("low_assoc_mru_ns_per_access", lowMruSec * perOp);
    o.field("low_assoc_scan_ns_per_access", lowScanSec * perOp);
    o.field("low_assoc_speedup", lowScanSec / lowMruSec);
    return o;
}

JsonObj
benchTrace(std::size_t iters)
{
    // Disabled-guard cost: the same arithmetic loop with and without a
    // guarded trace point. With no flags enabled the trace point is one
    // relaxed load + predictable branch (or nothing at all under
    // AXMEMO_NO_TRACE) — this is the number backing the "zero overhead
    // when disabled" claim in DESIGN.md §8.
    trace::clearAllFlags();
    const auto work = [&](bool traced) {
        std::uint64_t a = 0x9e3779b97f4a7c15ull;
        for (std::size_t i = 0; i < iters; ++i) {
            if (traced)
                AXM_TRACE(Exec, "perf", "never emitted ", i);
            a = (a ^ i) * 0x100000001b3ull;
        }
        perfSink = a;
    };
    const double bareSec = bestSeconds([&] { work(false); });
    const double guardedSec = bestSeconds([&] { work(true); });

    // Enabled line cost, emitted to a null sink so the number measures
    // formatting + the mutex-guarded write, not terminal throughput.
    double lineSec = 0.0;
    if (trace::openTraceFile("/dev/null")) {
        trace::setFlag(trace::Flag::Exec, true);
        const std::size_t lines = std::max<std::size_t>(iters / 64, 1);
        lineSec = bestSeconds([&] {
            for (std::size_t i = 0; i < lines; ++i)
                AXM_TRACE(Exec, "perf", "line ", i, " of ", lines);
        }) / static_cast<double>(lines);
        trace::clearAllFlags();
        trace::closeTraceFile();
    }

    const double perOp = 1e9 / static_cast<double>(iters);
    JsonObj o;
    o.field("ops", static_cast<std::uint64_t>(iters));
    o.field("bare_ns_per_op", bareSec * perOp);
    o.field("disabled_guard_ns_per_op", guardedSec * perOp);
    o.field("disabled_overhead_pct",
            bareSec > 0.0 ? (guardedSec - bareSec) / bareSec * 100.0
                          : 0.0);
    o.field("enabled_line_ns", lineSec * 1e9);
    return o;
}

JsonObj
benchTelemetry(std::size_t iters)
{
    // Disabled-guard cost of a span scope: the same arithmetic loop
    // with and without an AXM_SPAN inside. With telemetry disabled the
    // scope is one relaxed load + predictable branch (or nothing under
    // AXMEMO_NO_TRACE) — the number backing the trace-guard budget for
    // the timeline instrumentation in DESIGN.md §13.
    telemetry::setEnabled(false);
    const auto work = [&](bool spanned) {
        std::uint64_t a = 0x9e3779b97f4a7c15ull;
        for (std::size_t i = 0; i < iters; ++i) {
            if (spanned) {
                AXM_SPAN("perf", "never-recorded");
                a = (a ^ i) * 0x100000001b3ull;
            } else {
                a = (a ^ i) * 0x100000001b3ull;
            }
        }
        perfSink = a;
    };
    const double bareSec = bestSeconds([&] { work(false); });
    const double guardedSec = bestSeconds([&] { work(true); });

    // Enabled span cost: open/close + ring push, drained periodically
    // so the ring never saturates and the number measures the steady
    // state rather than the dropped-event fast path.
    double spanSec = 0.0;
#ifndef AXMEMO_NO_TRACE
    telemetry::resetForTest();
    telemetry::setEnabled(true);
    const std::size_t spans = std::max<std::size_t>(iters / 64, 1);
    spanSec = bestSeconds([&] {
        for (std::size_t i = 0; i < spans; ++i) {
            AXM_SPAN("perf", "recorded");
            if ((i & 0xfff) == 0)
                telemetry::collect();
        }
    }) / static_cast<double>(spans);
    telemetry::setEnabled(false);
    telemetry::resetForTest();
#endif

    const double perOp = 1e9 / static_cast<double>(iters);
    JsonObj o;
    o.field("ops", static_cast<std::uint64_t>(iters));
    o.field("bare_ns_per_op", bareSec * perOp);
    o.field("disabled_guard_ns_per_op", guardedSec * perOp);
    o.field("disabled_overhead_pct",
            bareSec > 0.0 ? (guardedSec - bareSec) / bareSec * 100.0
                          : 0.0);
    o.field("enabled_span_ns", spanSec * 1e9);
    return o;
}

/**
 * Serve-loop throughput: an in-process MemoServer fed the two-tenant
 * Zipfian smoke trace over a socketpair by the replay client — the
 * closed-loop request rate `axmemo serve` sustains end to end (frame
 * codec, reader poll loop, bounded queue, TenantTable, reply path),
 * not a TenantTable microbench.
 */
JsonObj
benchServe(std::size_t requests)
{
    serve::ServerConfig config;
    config.table.policy = serve::PartitionPolicy::Partitioned;
    config.table.tenants.push_back({"tenant-a", 0});
    config.table.tenants.push_back({"tenant-b", 0});

    RequestTraceSpec spec = RequestTraceSpec::smoke(42);
    spec.requests = requests;
    const std::vector<TraceRequest> trace = generateRequestTrace(spec);

    JsonObj o;
    o.field("requests", static_cast<std::uint64_t>(requests));

    serve::MemoServer server(config);
    if (!server.start().ok()) {
        o.field("error", std::string("server start failed"));
        return o;
    }
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        o.field("error", std::string("socketpair failed"));
        return o;
    }
    server.attachClient(fds[1]);

    serve::ReplayConfig replayConfig;
    replayConfig.drainAfter = true;
    const Expected<serve::ReplayReport> got =
        serve::replayTrace(fds[0], spec, trace, replayConfig);
    ::close(fds[0]);
    server.serveUntilDrained(false);
    if (!got.ok()) {
        o.field("error", got.error().describe());
        return o;
    }
    const serve::ReplayReport &report = got.value();
    o.field("requests_per_second",
            report.elapsedSeconds > 0.0
                ? static_cast<double>(report.requests) /
                      report.elapsedSeconds
                : 0.0);
    o.field("p50_us", report.p50Us);
    o.field("p99_us", report.p99Us);
    o.field("sheds", report.sheds);
    return o;
}

/**
 * Host-side execution levers for one benchFig7 run. Every combination
 * produces bit-identical simulated results (DESIGN.md §10); only the
 * wall clock moves, which is exactly what the per-lever rows attribute.
 */
struct Fig7Levers
{
    const char *dispatch = "auto"; // auto | threaded | switch
    bool blockBatch = true;
    bool simd = true;
};

JsonObj
benchFig7(double scale, const Fig7Levers &levers = {},
          double baselineMinstr = 0.0, double *minstrOut = nullptr)
{
    char scaleStr[32];
    std::snprintf(scaleStr, sizeof(scaleStr), "%g", scale);
    setenv("AXMEMO_SCALE", scaleStr, 1);
    unsetenv("AXMEMO_FULL");
    setenv("AXMEMO_DISPATCH", levers.dispatch, 1);
    setenv("AXMEMO_NO_BATCH", levers.blockBatch ? "0" : "1", 1);
    setenv("AXMEMO_NO_SIMD", levers.simd ? "0" : "1", 1);
    // The driver froze RuntimeOptions at startup; mirror the scale and
    // lever changes into the frozen copy so benchScale() consumers and
    // the simulator's knob reads see them.
    if (RuntimeOptions::globalFrozen()) {
        RuntimeOptions updated = RuntimeOptions::global();
        updated.scale = scale;
        updated.scaleSet = scale > 0.0;
        updated.full = false;
        updated.dispatch = levers.dispatch;
        updated.blockBatch = levers.blockBatch;
        updated.simd = levers.simd;
        RuntimeOptions::setGlobal(updated);
    }

    const std::unique_ptr<Artifact> artifact =
        ArtifactRegistry::instance().make("fig7");
    JsonObj o;
    o.field("scale", scale);
    if (!artifact) {
        o.field("error", std::string("fig7 not registered"));
        return o;
    }

    SweepEngine engine;
    const auto start = Clock::now();
    artifact->enqueue(engine);
    const std::vector<SweepOutcome> outcomes = engine.execute();
    artifact->reduce(outcomes); // report text discarded; timing includes it
    const double wall = secondsSince(start);

    const SweepMetrics &m = engine.metrics();
    o.field("workers", static_cast<std::uint64_t>(m.workers));
    o.field("jobs", static_cast<std::uint64_t>(m.jobs));
    o.field("wall_seconds", wall);
    o.field("simulated_macro_insts", m.simulatedMacroInsts);
    o.field("simulated_minstr_per_second", m.simulatedMinstrPerSecond);
    if (baselineMinstr > 0.0)
        o.field("speedup_vs_switch_nobatch",
                m.simulatedMinstrPerSecond / baselineMinstr);
    if (minstrOut)
        *minstrOut = m.simulatedMinstrPerSecond;
    return o;
}

/**
 * Multi-process shard-queue scaling: run the dse smoke grid to
 * completion with 1, 2 and 4 cooperating single-threaded workers
 * (`run dse --shard-dir ... --jobs 1`) and report the aggregate
 * simulated Minstr/s at each width. Workers are real child processes of
 * this binary (fork + exec of /proc/self/exe), so the number includes
 * every claim/heartbeat/journal cost of the shard protocol — this is
 * the end-to-end scaling figure for DESIGN.md §12, not a microbench.
 */
JsonObj
benchDseScaling(double scale, const std::string &outDir)
{
    JsonObj o;
    o.field("scale", scale);
    // Scaling is bounded by the host: on a 1-core container every
    // width serializes and the ratios legitimately sit at ~1.0x or
    // below (per-worker setup is duplicated). Record the bound so the
    // entry is interpretable wherever it was generated.
    o.field("host_cpus",
            static_cast<std::uint64_t>(
                std::thread::hardware_concurrency()));
    char scaleStr[32];
    std::snprintf(scaleStr, sizeof(scaleStr), "%g", scale);
    const std::string base = joinPath(
        resolveOutputDir(outDir),
        "dse_scaling." +
            std::to_string(static_cast<unsigned long>(::getpid())));

    double baseMinstr = 0.0;
    for (const int workers : {1, 2, 4}) {
        const std::string dir = base + ".w" + std::to_string(workers);
        std::error_code ec;
        std::filesystem::remove_all(dir, ec); // fresh queue per width

        std::vector<pid_t> kids;
        const auto start = Clock::now();
        for (int k = 0; k < workers; ++k) {
            const std::string wid = "perf" + std::to_string(k);
            const pid_t pid = ::fork();
            if (pid < 0)
                break;
            if (pid == 0) {
                // Worker mode prints only a stderr summary; drop even
                // that so the perf report stays clean.
                const int null = ::open("/dev/null", O_WRONLY);
                if (null >= 0) {
                    ::dup2(null, STDOUT_FILENO);
                    if (!::getenv("AXMEMO_PERF_DEBUG"))
                        ::dup2(null, STDERR_FILENO);
                }
                ::execl("/proc/self/exe", "axmemo", "run", "dse",
                        "--shard-dir", dir.c_str(), "--worker-id",
                        wid.c_str(), "--jobs", "1", "--no-timing",
                        "--scale", scaleStr, "--out", dir.c_str(),
                        static_cast<char *>(nullptr));
                ::_exit(127);
            }
            kids.push_back(pid);
        }
        bool ok = static_cast<int>(kids.size()) == workers;
        std::string detail = ok ? "" : "fork failed";
        for (const pid_t pid : kids) {
            int status = 0;
            if (::waitpid(pid, &status, 0) != pid) {
                ok = false;
                detail = "waitpid failed";
            } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
                ok = false;
                detail = WIFEXITED(status)
                             ? "worker exit " +
                                   std::to_string(WEXITSTATUS(status))
                             : "worker signal " +
                                   std::to_string(WTERMSIG(status));
            }
        }
        const double wall = secondsSince(start);

        // Aggregate simulated volume across the per-worker manifests.
        std::uint64_t macroInsts = 0;
        if (::getenv("AXMEMO_PERF_DEBUG"))
            std::fprintf(stderr, "[dse_scaling] w%d: %zu manifest(s) in %s\n",
                         workers, ShardQueue::shardManifests(dir).size(),
                         dir.c_str());
        for (const std::string &manifest :
             ShardQueue::shardManifests(dir)) {
            std::ifstream in(manifest);
            std::ostringstream ss;
            ss << in.rdbuf();
            const Expected<JValue> doc = parseJsonValue(ss.str());
            if (!doc.ok()) {
                ok = false;
                detail = "unreadable manifest " + manifest;
                continue;
            }
            const JValue *insts =
                doc.value().find("simulated_macro_insts");
            if (insts && insts->kind == JValue::Kind::Number)
                macroInsts += std::strtoull(insts->token.c_str(),
                                            nullptr, 10);
        }
        std::filesystem::remove_all(dir, ec);

        const std::string tag = "workers_" + std::to_string(workers);
        if (!ok || wall <= 0.0 || macroInsts == 0) {
            if (detail.empty())
                detail = "no simulated volume in shard manifests";
            o.field(tag + "_error", detail);
            continue;
        }
        const double minstr =
            static_cast<double>(macroInsts) / 1e6 / wall;
        o.field(tag + "_wall_seconds", wall);
        o.field(tag + "_minstr_per_second", minstr);
        if (workers == 1)
            baseMinstr = minstr;
        else if (baseMinstr > 0.0)
            o.field("scaling_" + std::to_string(workers) + "x",
                    minstr / baseMinstr);
    }
    return o;
}

/** Append @p entry to the JSON array in @p path (created if missing),
 * preserving previous entries: the file is a trajectory, not a
 * snapshot. */
bool
appendEntry(const std::string &path, const std::string &entry)
{
    std::string existing;
    {
        std::ifstream in(path);
        if (in) {
            std::ostringstream ss;
            ss << in.rdbuf();
            existing = ss.str();
        }
    }
    const auto trim = [&] {
        while (!existing.empty() &&
               (existing.back() == '\n' || existing.back() == ' '))
            existing.pop_back();
    };
    trim();

    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    if (!existing.empty() && existing.back() == ']') {
        existing.pop_back();
        trim();
        out << existing;
        if (existing.back() != '[')
            out << ",";
        out << "\n" << entry << "\n]\n";
    } else {
        out << "[\n" << entry << "\n]\n";
    }
    return out.good();
}

std::string
utcNow()
{
    char buf[32];
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

/**
 * Print a per-section delta table of @p currentJson against the last
 * entry already recorded in @p path, before the new entry is appended.
 * One canonical metric per section; the ratio is normalized so > 1.00x
 * is always an improvement (inverted for ns-per-op metrics), and any
 * regression beyond 5% is flagged. Silent when there is no history yet;
 * rows whose metric is missing on either side are skipped, so old
 * entries predating a section never break the diff.
 *
 * @return the number of canonical metrics that regressed beyond 5%
 * (0 when there is no history to diff against), so `perf --check` can
 * turn the table into a gate.
 */
std::size_t
printDeltaVsPrevious(const std::string &path,
                     const std::string &currentJson)
{
    std::string existing;
    {
        std::ifstream in(path);
        if (!in)
            return 0; // first entry ever: nothing to diff against
        std::ostringstream ss;
        ss << in.rdbuf();
        existing = ss.str();
    }
    const Expected<JValue> history = parseJsonValue(existing);
    if (!history.ok() ||
        history.value().kind != JValue::Kind::Array ||
        history.value().elements.empty()) {
        std::printf("\nprevious %s unreadable; delta table skipped\n",
                    path.c_str());
        return 0;
    }
    const JValue &prev = history.value().elements.back();
    const Expected<JValue> current = parseJsonValue(currentJson);
    if (!current.ok())
        return 0;

    struct Row
    {
        const char *section;
        const char *metric;
        bool higherIsBetter;
    };
    static constexpr Row rows[] = {
        {"simmemory", "ns_per_op", false},
        {"clone", "cow_clone_ns", false},
        {"crc32", "slice8_ns_per_byte", false},
        {"lut", "mru_ns_per_lookup", false},
        {"cache", "mru_ns_per_access", false},
        {"cache", "speedup", true},
        {"trace", "disabled_guard_ns_per_op", false},
        {"telemetry", "disabled_guard_ns_per_op", false},
        {"serve", "requests_per_second", true},
        {"fig7", "simulated_minstr_per_second", true},
        {"dse_scaling", "workers_4_minstr_per_second", true},
    };

    const JValue *prevUtc = prev.find("utc");
    const JValue *prevQuick = prev.find("quick");
    const JValue *curQuick = current.value().find("quick");
    const bool modeMismatch =
        prevQuick && curQuick &&
        prevQuick->kind == JValue::Kind::Bool &&
        curQuick->kind == JValue::Kind::Bool &&
        prevQuick->boolean != curQuick->boolean;
    std::printf("\ndelta vs previous entry (%s)%s:\n",
                prevUtc && prevUtc->kind == JValue::Kind::String
                    ? prevUtc->token.c_str()
                    : "unknown time",
                modeMismatch
                    ? " [quick-mode mismatch: deltas not comparable]"
                    : "");
    std::printf("  %-12s %-28s %12s %12s %8s\n", "section", "metric",
                "previous", "current", "ratio");
    std::size_t regressions = 0;
    for (const Row &row : rows) {
        const JValue *prevSection = prev.find(row.section);
        const JValue *curSection = current.value().find(row.section);
        if (!prevSection || !curSection)
            continue;
        const JValue *prevField = prevSection->find(row.metric);
        const JValue *curField = curSection->find(row.metric);
        if (!prevField || !curField ||
            prevField->kind != JValue::Kind::Number ||
            curField->kind != JValue::Kind::Number)
            continue;
        const double prevValue =
            std::strtod(prevField->token.c_str(), nullptr);
        const double curValue =
            std::strtod(curField->token.c_str(), nullptr);
        if (prevValue <= 0.0 || curValue <= 0.0)
            continue;
        const double ratio = row.higherIsBetter
                                 ? curValue / prevValue
                                 : prevValue / curValue;
        const bool regressed = ratio < 0.95;
        regressions += regressed ? 1 : 0;
        std::printf("  %-12s %-28s %12.4f %12.4f %7.2fx%s\n",
                    row.section, row.metric, prevValue, curValue,
                    ratio, regressed ? "  ** REGRESSION" : "");
    }
    if (regressions)
        std::printf("  %zu metric(s) regressed beyond 5%%\n",
                    regressions);
    std::fflush(stdout);
    return regressions;
}

} // namespace

int
runPerf(const PerfOptions &options)
{
    const std::size_t scaleDown = options.quick ? 8 : 1;
    const double fig7Scale =
        options.scale > 0.0 ? options.scale : (options.quick ? 0.02 : 0.05);

    std::printf("axmemo perf%s: data-path microbenchmarks + fig7 "
                "end-to-end\n",
                options.quick ? " --quick" : "");
    std::fflush(stdout);

    JsonObj entry;
    entry.field("utc", utcNow());
    entry.field("quick", options.quick);

    // Every section runs under a phase timer; the aggregated snapshot
    // (including the sweep.* phases benchFig7's execute() records, per
    // worker) lands in the entry's "phases" object.
    obs::Profiler::instance().reset();
    const auto section = [&](const char *name, auto bench) {
        JsonObj o;
        {
            AXM_PROF(name);
            o = bench();
        }
        std::printf("  %-10s %s\n", name, o.str().c_str());
        std::fflush(stdout);
        entry.field(name, o);
    };

    section("simmemory", [&] { return benchSimMemory(4'000'000 / scaleDown); });
    section("clone", [&] { return benchClone(64 / scaleDown); });
    section("crc32", [&] { return benchCrc((1u << 20) / scaleDown); });
    section("lut", [&] { return benchLut(8'000'000 / scaleDown); });
    section("cache", [&] { return benchCache(4'000'000 / scaleDown); });
    section("trace", [&] { return benchTrace(8'000'000 / scaleDown); });
    section("telemetry",
            [&] { return benchTelemetry(8'000'000 / scaleDown); });
    section("serve", [&] { return benchServe(32'000 / scaleDown); });
    section("fig7", [&] { return benchFig7(fig7Scale); });

    // Per-lever fig7 rows: the same sweep re-run with each host-side
    // speed lever toggled, so the entry attributes the end-to-end gain
    // to dispatch, block batching, and hardware CRC individually. All
    // four produce bit-identical simulated results; the switch/no-batch
    // row is the speedup baseline. The default "fig7" row above stays
    // the scoreboard metric.
    double leverBase = 0.0;
    section("fig7_switch_nobatch", [&] {
        return benchFig7(fig7Scale, {"switch", false, true}, 0.0,
                         &leverBase);
    });
    section("fig7_threaded_nobatch", [&] {
        return benchFig7(fig7Scale, {"threaded", false, true}, leverBase);
    });
    section("fig7_threaded_batch", [&] {
        return benchFig7(fig7Scale, {"threaded", true, true}, leverBase);
    });
    section("fig7_portable_crc", [&] {
        return benchFig7(fig7Scale, {"threaded", true, false}, leverBase);
    });
    // Put the lever knobs back so anything after us sees the defaults.
    unsetenv("AXMEMO_DISPATCH");
    unsetenv("AXMEMO_NO_BATCH");
    unsetenv("AXMEMO_NO_SIMD");
    if (RuntimeOptions::globalFrozen()) {
        RuntimeOptions restored = RuntimeOptions::global();
        restored.dispatch = "auto";
        restored.blockBatch = true;
        restored.simd = true;
        RuntimeOptions::setGlobal(restored);
    }

    // Multi-process scaling of the shard queue over the dse smoke grid.
    // Runs after the lever knobs are restored so the workers inherit
    // default dispatch/batch/SIMD settings. Full mode floors the scale
    // at 0.05: below that the smoke jobs are so short that per-process
    // setup and claim traffic drown whatever scaling exists.
    const double dseScale =
        options.quick ? fig7Scale : std::max(fig7Scale, 0.05);
    section("dse_scaling",
            [&] { return benchDseScaling(dseScale, options.outDir); });

    entry.rawField("phases", obs::Profiler::instance().renderJson());

    const std::string path =
        joinPath(resolveOutputDir(options.outDir), "BENCH_perf.json");
    const std::size_t regressions =
        printDeltaVsPrevious(path, entry.str());
    if (!appendEntry(path, entry.str())) {
        std::fprintf(stderr, "axmemo perf: cannot write %s\n", path.c_str());
        return 1;
    }
    std::printf("appended entry to %s\n", path.c_str());
    if (options.check && regressions) {
        std::fprintf(stderr,
                     "axmemo perf --check: %zu metric(s) regressed "
                     "beyond 5%% vs the previous entry\n",
                     regressions);
        return 1;
    }
    return 0;
}

} // namespace axmemo
