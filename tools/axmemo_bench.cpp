/**
 * @file
 * The unified paper-artifact driver, dispatched through the
 * table-driven command-line layer (tools/cli.hh). Every subcommand is
 * one SubcommandRegistry row — `axmemo help` and `axmemo help <cmd>`
 * are generated from the table, and every command parses the one
 * shared flag table, so `--out/--jobs/--scale/--json` behave
 * identically everywhere.
 *
 *   axmemo list                        catalog of registered artifacts
 *   axmemo run fig9                    one artifact, legacy-identical
 *                                      stdout (run all = everything)
 *   axmemo profile fig9                run + the aggregated phase-timer
 *                                      table
 *   axmemo merge fig9 --shard-dir <d>  reduce a sharded sweep
 *   axmemo status <dir>                one-screen fleet view
 *   axmemo perf [--quick]              data-path microbenchmarks ->
 *                                      BENCH_perf.json
 *   axmemo serve                       long-lived memo server on an
 *                                      AF_UNIX socket (DESIGN.md §14)
 *   axmemo replay                      drive a server with a synthetic
 *                                      request trace; latency/hit-rate
 *                                      JSON report
 *
 * Fault tolerance (--resume/--retries/--job-timeout/--isolate), shard
 * fleets (--shard-dir/--workers/--worker-id/--lease), observability
 * (--debug-flags/--trace-out/--trace-timeline) and the host data-path
 * knobs (--dispatch/--no-batch/--no-simd) are documented in the flag
 * table, the runtime-knob table (`axmemo help`), and DESIGN.md §§8-14.
 *
 * Besides stdout, each run emits <name>_sweep.json (host-side sweep
 * performance), <name>.json (result rows) and <name>_stats.txt (one
 * gem5-like statistics section per simulated job) into the output
 * directory, plus one manifest.json recording the exact canonical
 * serialized configuration of every simulated job.
 */

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include <thread>

#include "common/interrupt.hh"
#include "common/log.hh"
#include "common/runtime_options.hh"
#include "core/artifact.hh"
#include "core/fleet_status.hh"
#include "core/memo_backends.hh"
#include "core/output_paths.hh"
#include "core/shard_queue.hh"
#include "obs/profiler.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "serve/replay.hh"
#include "serve/server.hh"
#include "tools/cli.hh"
#include "tools/perf.hh"
#include "workloads/request_trace.hh"

namespace {

using namespace axmemo;

/** Catalog group for a registration order (see artifacts.hh). */
const char *
artifactGroup(int order)
{
    switch (order / 10) {
      case 1: return "tables";
      case 2: return "figures";
      case 3: return "section 6.2 studies";
      case 4: return "ablations";
      case 5: return "micro-benchmarks";
      case 6: return "serving";
      default: return "other";
    }
}

int
listEntry(cli::CommonArgs &)
{
    const char *group = nullptr;
    for (const ArtifactInfo &info :
         ArtifactRegistry::instance().list()) {
        const char *next = artifactGroup(info.order);
        if (!group || std::strcmp(group, next) != 0) {
            std::printf("%s%s:\n", group ? "\n" : "", next);
            group = next;
        }
        std::printf("  %-26s %s\n", info.name.c_str(),
                    info.description.c_str());
    }
    std::printf("\nmemoization backends (run `axmemo run "
                "memo_backends` to compare):\n");
    for (const MemoBackend *backend : memoBackends().list())
        std::printf("  %-26s %s\n", backend->name().c_str(),
                    backend->description().c_str());
    return 0;
}

/** The run/profile/merge artifact loop (one function, three roles). */
int
artifactEntry(cli::CommonArgs &args, bool profile, bool merge)
{
    if (args.quick || args.check) {
        std::fprintf(stderr, "--quick/--check only apply to perf\n");
        return 2;
    }
    RuntimeOptions runtime = args.runtime;
    std::vector<std::string> names = args.positional;
    const bool json = args.json;
    if (names.empty()) {
        std::fprintf(stderr,
                     "need at least one artifact name (or `all`); "
                     "see `axmemo list`\n");
        return 2;
    }

    ArtifactRegistry &registry = ArtifactRegistry::instance();
    if (names.size() == 1 && names[0] == "all") {
        names.clear();
        for (const ArtifactInfo &info : registry.list())
            names.push_back(info.name);
    }

    // Validate the whole list before simulating anything.
    for (const std::string &name : names) {
        if (!registry.make(name)) {
            std::fprintf(stderr,
                         "unknown artifact '%s' (try `axmemo list`)\n",
                         name.c_str());
            return 2;
        }
    }

    ArtifactRunOptions options;
    options.outDir = runtime.outDir;
    options.writeRows = true;
    options.rowsToStdout = json;
    options.writeStats = true;
    options.runtime = runtime;
    options.journal = true;
    options.resume = args.resume;

    // Even an interrupted or partially failed invocation writes what it
    // has: the manifest records every artifact that ran to completion.
    auto writeManifest = [&](const std::vector<std::string> &runs) {
        const std::string manifestPath = joinPath(
            resolveOutputDir(runtime.outDir), "manifest.json");
        std::string doc = "{\"runs\":[";
        for (std::size_t i = 0; i < runs.size(); ++i) {
            if (i)
                doc += ',';
            doc += runs[i];
        }
        doc += "]}\n";
        const Expected<void> wrote =
            atomicWriteFile(manifestPath, doc);
        if (!wrote.ok())
            axm_warn("cannot write manifest: ",
                     wrote.error().describe());
    };

    // The artifact loop, shared by the standard, worker and merge
    // roles. Workers write no manifest.json (report emission is the
    // merge step's job); they write their per-worker shard manifest.
    const auto driveArtifacts = [&](const ArtifactRunOptions &opts)
        -> int {
        const bool worker = opts.shardMode == ShardMode::Worker;
        const auto wallStart = std::chrono::steady_clock::now();
        std::vector<std::string> manifestRuns;
        std::size_t faultedJobs = 0;
        std::size_t damagedSegments = 0;
        std::size_t totalJobs = 0;
        std::uint64_t totalMacro = 0;
        const auto finishWorker = [&] {
            if (!worker || !opts.queue)
                return;
            const double wall =
                opts.runtime.reportTiming
                    ? std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wallStart)
                          .count()
                    : 0.0;
            const Expected<void> wrote = opts.queue->writeShardManifest(
                totalJobs, totalMacro, wall);
            if (!wrote.ok())
                axm_warn("cannot write shard manifest: ",
                         wrote.error().describe());
        };
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (i && !json && !worker)
                std::printf("\n");
            const std::unique_ptr<Artifact> artifact =
                registry.make(names[i]);
            // Per-artifact phase isolation: the manifest's "phases" and
            // the profile view report this run only.
            obs::Profiler::instance().reset();
            const Expected<ArtifactRunRecord> record =
                runArtifact(*artifact, opts);
            if (!record.ok()) {
                std::fprintf(stderr, "%s: %s\n", names[i].c_str(),
                             record.error().describe().c_str());
                if (!worker)
                    writeManifest(manifestRuns);
                finishWorker();
                return 1;
            }
            faultedJobs += record.value().faultedJobs();
            damagedSegments += record.value().damagedSegments;
            totalJobs += record.value().jobs;
            totalMacro += record.value().simulatedMacroInsts;
            if (!worker)
                manifestRuns.push_back(record.value().manifestRun);
            if (interruptRequested())
                break;
            if (profile && !worker) {
                std::printf(
                    "\n== profile %s ==\n%s", names[i].c_str(),
                    obs::Profiler::instance().renderText().c_str());
                std::fflush(stdout);
            }
        }
        if (!worker)
            writeManifest(manifestRuns);
        finishWorker();
        if (interruptRequested()) {
            std::fprintf(stderr,
                         "interrupted by signal %d; partial results "
                         "written (rerun with --resume to continue)\n",
                         interruptSignal());
            return 128 + interruptSignal();
        }
        if (damagedSegments) {
            std::fprintf(stderr,
                         "%zu damaged journal segment(s) skipped; "
                         "their jobs were re-simulated (see "
                         "<name>_shards.json)\n",
                         damagedSegments);
            return 1;
        }
        if (faultedJobs) {
            std::fprintf(stderr,
                         "%zu job(s) did not complete; see "
                         "manifest.json for per-job status\n",
                         faultedJobs);
            return 1;
        }
        return 0;
    };

    // Convenience fan-out: fork N cooperating workers over one shard
    // directory, wait for them, then fall through to the merge role.
    // fork() happens before any thread exists in this process.
    int workerExit = 0;
    if (args.fanout > 1 && !merge) {
        if (runtime.shardDir.empty())
            runtime.shardDir = joinPath(
                resolveOutputDir(runtime.outDir), "shards");
        const std::string baseId =
            runtime.workerId.empty()
                ? std::string("w") + std::to_string(::getpid())
                : runtime.workerId;
        std::vector<pid_t> children;
        for (unsigned k = 0; k < args.fanout; ++k) {
            std::fflush(stdout);
            std::fflush(stderr);
            const pid_t pid = ::fork();
            if (pid < 0) {
                std::fprintf(stderr, "fork: %s\n",
                             std::strerror(errno));
                return 1;
            }
            if (pid == 0) {
                runtime.workerId =
                    baseId + "-" + std::to_string(k);
                RuntimeOptions::setGlobal(runtime);
                ShardQueue queue(runtime.shardDir, runtime.workerId,
                                 runtime.leaseSeconds);
                ArtifactRunOptions workerOptions = options;
                workerOptions.runtime = runtime;
                workerOptions.shardMode = ShardMode::Worker;
                workerOptions.queue = &queue;
                const int code = driveArtifacts(workerOptions);
                if (!runtime.timeline.empty()) {
                    std::string error;
                    if (!telemetry::writeTimeline(queue.timelinePath(),
                                                  runtime.workerId,
                                                  &error))
                        axm_warn("timeline segment: ", error);
                }
                std::exit(code);
            }
            children.push_back(pid);
        }
        for (const pid_t pid : children) {
            int status = 0;
            ::waitpid(pid, &status, 0);
            if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
                workerExit = 1;
        }
        merge = true; // this process reduces what the workers drained
    }

    if (merge) {
        if (runtime.shardDir.empty()) {
            std::fprintf(stderr, "merge needs --shard-dir\n");
            return 2;
        }
        options.shardMode = ShardMode::Merge;
        options.shardDir = runtime.shardDir;
        const int code = driveArtifacts(options);
        if (!runtime.timeline.empty()) {
            // Stitch every worker's timeline segment — plus this merge
            // process's own lane — into the one requested file.
            std::size_t damaged = 0;
            const std::string stitched = stitchTimelines(
                ShardQueue::timelineSegments(runtime.shardDir),
                telemetry::renderTimeline("merge"), &damaged);
            if (damaged)
                axm_warn(damaged,
                         " damaged timeline segment(s) skipped");
            const Expected<void> wrote =
                atomicWriteFile(runtime.timeline, stitched);
            if (!wrote.ok())
                axm_warn("cannot write timeline: ",
                         wrote.error().describe());
        }
        return code ? code : workerExit;
    }
    if (!runtime.shardDir.empty()) {
        const std::string workerId =
            runtime.workerId.empty()
                ? std::string("w") + std::to_string(::getpid())
                : runtime.workerId;
        ShardQueue queue(runtime.shardDir, workerId,
                         runtime.leaseSeconds);
        options.shardMode = ShardMode::Worker;
        options.queue = &queue;
        const int code = driveArtifacts(options);
        if (!runtime.timeline.empty()) {
            // A shard worker contributes a per-worker segment; the
            // requested file is the merge step's to write.
            std::string error;
            if (!telemetry::writeTimeline(queue.timelinePath(),
                                          workerId, &error))
                axm_warn("timeline segment: ", error);
        }
        return code;
    }
    const int code = driveArtifacts(options);
    if (!runtime.timeline.empty()) {
        std::string error;
        if (!telemetry::writeTimeline(
                runtime.timeline,
                names.size() == 1 ? names[0] : "run", &error))
            axm_warn("cannot write timeline: ", error);
    }
    return code;
}

int
runEntry(cli::CommonArgs &args)
{
    return artifactEntry(args, false, false);
}

int
profileEntry(cli::CommonArgs &args)
{
    return artifactEntry(args, true, false);
}

int
mergeEntry(cli::CommonArgs &args)
{
    return artifactEntry(args, false, true);
}

int
statusEntry(cli::CommonArgs &args)
{
    if (args.positional.size() != 1) {
        std::fprintf(stderr,
                     "status takes exactly one <shard-dir|run-dir>\n");
        return 2;
    }
    const std::string statusDir = args.positional[0];
    for (;;) {
        const FleetStatus fleet =
            readFleetStatus(statusDir, args.runtime.leaseSeconds);
        if (args.json) {
            std::fputs(renderFleetJson(fleet).c_str(), stdout);
        } else {
            if (args.watchSeconds > 0.0)
                std::fputs("\033[2J\033[H", stdout); // re-home
            std::fputs(renderFleetText(fleet).c_str(), stdout);
        }
        std::fflush(stdout);
        if (args.watchSeconds <= 0.0)
            return 0;
        // Sleep in short slices so Ctrl-C lands promptly.
        const auto until =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(args.watchSeconds));
        while (std::chrono::steady_clock::now() < until) {
            if (interruptRequested())
                return 0;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
    }
}

int
perfEntry(cli::CommonArgs &args)
{
    if (!args.positional.empty()) {
        std::fprintf(stderr, "perf takes no positional arguments\n");
        return 2;
    }
    PerfOptions options;
    options.quick = args.quick;
    options.check = args.check;
    options.outDir = args.runtime.outDir;
    options.scale = args.scale;
    return runPerf(options);
}

/** Resolved serve/replay socket path: the knob, or <out>/axmemo.sock. */
std::string
serveSocketPath(const RuntimeOptions &runtime)
{
    if (!runtime.serveSocket.empty())
        return runtime.serveSocket;
    return joinPath(resolveOutputDir(runtime.outDir), "axmemo.sock");
}

int
serveEntry(cli::CommonArgs &args)
{
    if (!args.positional.empty()) {
        std::fprintf(stderr, "serve takes no positional arguments\n");
        return 2;
    }
    const RuntimeOptions &runtime = args.runtime;
    serve::ServerConfig config;
    config.socketPath = serveSocketPath(runtime);
    config.table.policy = runtime.servePolicy == "shared"
                              ? serve::PartitionPolicy::Shared
                              : serve::PartitionPolicy::Partitioned;
    config.table.lutBytes = runtime.serveLutBytes;
    for (unsigned i = 0; i < runtime.serveTenants; ++i)
        config.table.tenants.push_back(
            {"tenant-" + std::to_string(i), runtime.serveQuota});
    config.queueDepth = runtime.serveQueue;
    config.snapshotPath = joinPath(resolveOutputDir(runtime.outDir),
                                   "serve_snapshot.json");
    config.reportTiming = runtime.reportTiming;

    try {
        serve::MemoServer server(config);
        const Expected<void> started = server.start();
        if (!started.ok()) {
            std::fprintf(stderr, "%s\n",
                         started.error().describe().c_str());
            return 1;
        }
        std::printf("axmemo serve: listening on %s (%u tenants, %s "
                    "policy, queue %u)\n",
                    config.socketPath.c_str(), runtime.serveTenants,
                    serve::partitionPolicyName(config.table.policy),
                    runtime.serveQueue);
        std::fflush(stdout);
        server.serveUntilDrained(true);
        const serve::ServerTotals &totals = server.totals();
        std::printf("axmemo serve: drained (%llu requests, %llu "
                    "sheds); snapshot %s\n",
                    static_cast<unsigned long long>(totals.requests),
                    static_cast<unsigned long long>(totals.sheds),
                    config.snapshotPath.c_str());
        return 0;
    } catch (const AxException &e) {
        std::fprintf(stderr, "%s\n", e.error().describe().c_str());
        return 2;
    }
}

int
replayEntry(cli::CommonArgs &args)
{
    if (!args.positional.empty()) {
        std::fprintf(stderr, "replay takes no positional arguments\n");
        return 2;
    }
    const RuntimeOptions &runtime = args.runtime;

    RequestTraceSpec spec = RequestTraceSpec::smoke(runtime.traceSeed);
    if (runtime.traceRequests)
        spec.requests = runtime.traceRequests;
    const std::vector<TraceRequest> trace = generateRequestTrace(spec);

    const std::string socket = serveSocketPath(runtime);
    const Expected<int> fd = serve::connectUnix(socket);
    if (!fd.ok()) {
        std::fprintf(stderr, "%s\n", fd.error().describe().c_str());
        return 1;
    }

    serve::ReplayConfig config;
    config.reportTiming = runtime.reportTiming;
    config.drainAfter = args.drain;
    const Expected<serve::ReplayReport> report =
        serve::replayTrace(fd.value(), spec, trace, config);
    ::close(fd.value());
    if (!report.ok()) {
        std::fprintf(stderr, "%s\n",
                     report.error().describe().c_str());
        return 1;
    }

    const std::string doc = report.value().toJson();
    std::printf("%s\n", doc.c_str());
    const Expected<void> wrote = atomicWriteFile(
        joinPath(resolveOutputDir(runtime.outDir), "replay.json"),
        doc + "\n");
    if (!wrote.ok()) {
        std::fprintf(stderr, "cannot write replay.json: %s\n",
                     wrote.error().describe().c_str());
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    cli::SubcommandRegistry registry;
    registry.add({"list", "catalog of registered artifacts and memo "
                          "backends",
                  "",
                  "Prints every registered paper artifact, grouped by "
                  "kind, then the\nregistered memoization backends. "
                  "`--list` is accepted as a legacy\nspelling.\n",
                  listEntry});
    registry.add(
        {"run", "run paper artifacts (tables, figures, ablations)",
         "<artifact>... | all [options]",
         "Runs each named artifact (or every one with `all`): dataset\n"
         "synthesis, the memoization transform, timing simulation, "
         "energy\nmodel and quality scoring, with reports and "
         "manifest.json in the\noutput directory.\n\n"
         "Fault tolerance: --resume --retries --job-timeout "
         "--fault-inject\n--isolate. Shard fleets: --shard-dir "
         "--worker-id --lease, or\n--workers <n> to fork a local "
         "fleet and merge in one invocation.\n",
         runEntry});
    registry.add({"profile", "run artifacts, then print the "
                             "phase-timer table",
                  "<artifact>... | all [options]",
                  "Identical to `run`, then prints the aggregated "
                  "phase timers (per\nphase and per sweep worker) for "
                  "each artifact.\n",
                  profileEntry});
    registry.add({"merge", "reduce a sharded sweep into reports",
                  "<artifact>... | all --shard-dir <d> [options]",
                  "Reduces the per-worker journal segments of a "
                  "sharded run into\nreports byte-identical to a "
                  "single-process run (same --jobs,\n--no-timing), "
                  "plus <name>_shards.json with per-worker counters.\n",
                  mergeEntry});
    registry.add({"status", "one-screen fleet view of a shard/run "
                            "directory",
                  "<shard-dir|run-dir> [--json] [--watch <s>]",
                  "Reads worker heartbeats and metrics snapshots: "
                  "per-worker state\n(running / idle / done / dead), "
                  "progress, EWMA throughput and ETA\n(reports a "
                  "stalled ETA when throughput has decayed to zero), "
                  "and a\nslowest-claim watchlist.\n",
                  statusEntry});
    registry.add({"perf", "data-path microbenchmarks -> "
                          "BENCH_perf.json",
                  "[--quick] [--check] [options]",
                  "Runs the microbenchmark suite plus an end-to-end "
                  "fig7 run and a\nserve-loop throughput probe, "
                  "appending one row per section to\nBENCH_perf.json. "
                  "--check verifies required sections exist.\n",
                  perfEntry});
    registry.add({"serve", "long-lived memo server on an AF_UNIX "
                           "socket",
                  "[--socket <p>] [--policy <p>] [--tenants <n>] "
                  "[--quota <n>] [options]",
                  "Starts the multi-tenant memo server (DESIGN.md "
                  "§14): per-tenant\nLUT_ID partitioning "
                  "(--policy partitioned|shared, --quota), a\nbounded "
                  "request queue that sheds under load (--queue), and "
                  "a\ngraceful SIGTERM drain that writes "
                  "serve_snapshot.json before\nexiting 0. Drive it "
                  "with `axmemo replay`.\n",
                  serveEntry});
    registry.add({"replay", "drive a memo server with a synthetic "
                            "trace",
                  "[--socket <p>] [--seed <n>] [--requests <n>] "
                  "[--drain] [options]",
                  "Generates the deterministic two-tenant smoke trace "
                  "(Zipfian keys,\ndiurnal + bursty arrivals; --seed, "
                  "--requests) and replays it\nclosed-loop: lookup, "
                  "then update on a miss. Prints and writes\n"
                  "replay.json with p50/p95/p99 latency, per-tenant "
                  "hit rates,\nshed rate and the server's own stats. "
                  "--drain sends a Drain\nrequest afterwards.\n",
                  replayEntry});

    return cli::dispatch(argc, argv, registry);
}
