/**
 * @file
 * The unified paper-artifact driver. Every table, figure and ablation
 * registers itself with the artifact registry (core/artifact.hh); this
 * binary lists and runs them:
 *
 *   axmemo --list                      catalog of registered artifacts
 *   axmemo run fig9                    one artifact, legacy-identical
 *                                      stdout
 *   axmemo run fig7 fig9 table2        several in sequence
 *   axmemo run all                     the whole evaluation
 *
 *   axmemo perf [--quick]              data-path microbenchmarks plus an
 *                                      end-to-end fig7 run, appended to
 *                                      BENCH_perf.json (tools/perf.hh)
 *
 *   axmemo profile fig9                run artifacts like `run`, then
 *                                      print the aggregated phase-timer
 *                                      table (per phase and per sweep
 *                                      worker) for each one
 *
 * Options (apply to `run` and `profile`; --scale/--jobs/--out also
 * apply to `perf`):
 *   --scale <f>   dataset scale (sets AXMEMO_SCALE)
 *   --full        paper-size inputs (sets AXMEMO_FULL=1)
 *   --jobs <n>    sweep worker count (sets AXMEMO_JOBS)
 *   --out <dir>   output directory for all emitted files (overrides
 *                 $AXMEMO_SWEEP_DIR; created if missing)
 *   --json        print each artifact's result rows as one JSON
 *                 document on stdout instead of the text report
 *   --quick       perf only: ~8x fewer iterations, CI-smoke sized
 *
 * Fault tolerance (run/profile; see DESIGN.md §9):
 *   --resume          replay each artifact's <name>_sweep.ckpt
 *                     checkpoint journal instead of re-simulating jobs
 *                     whose (workload, mode, config) already completed
 *   --retries <n>     per-job retries after a failure (AXMEMO_RETRIES)
 *   --job-timeout <s> per-job watchdog; expired jobs are marked
 *                     timed-out, not retried (AXMEMO_JOB_TIMEOUT)
 *   --no-timing       zero host-timing fields in every report so two
 *                     runs are byte-comparable (AXMEMO_TIMING=0)
 *   --fault-inject <workload[:n]>  test hook: fail matching jobs
 *   --isolate         fork every simulated job into a child process:
 *                     crashes and runaway jobs are contained at the
 *                     process boundary, and the per-job watchdog kills
 *                     the child outright on expiry
 *
 * Sharded runs (run/merge; see DESIGN.md §12): point any number of
 * `axmemo run <...> --shard-dir <dir>` processes — same host or
 * several hosts sharing one directory — at one shard directory and
 * they cooperatively drain the sweep, claiming jobs through atomic
 * lease files and journaling outcomes to per-worker segments. Then
 * `axmemo merge <...> --shard-dir <dir>` reduces the segments into
 * reports byte-identical to a single-process run (same --jobs,
 * --no-timing), plus <name>_shards.json with per-worker counters.
 *   --shard-dir <dir> the shared work-queue directory (run: become a
 *                     cooperating worker; merge: reduce its segments)
 *   --worker-id <s>   this worker's identity (default: w<pid>)
 *   --lease <s>       claim lease window; a worker silent this long is
 *                     presumed dead and its claims are stolen (30)
 *   --workers <n>     convenience fan-out: fork <n> local workers over
 *                     the shard directory (default <out>/shards), wait,
 *                     then merge — all in one invocation
 *
 * Per-job faults are contained: a failed/timed-out job costs its row
 * (recorded with a structured error in manifest.json), the rest of the
 * sweep completes, and the driver exits nonzero. SIGINT/SIGTERM stop
 * gracefully — in-flight jobs abort at the next watchdog poll, the
 * journal keeps everything finished so far, a partial manifest.json is
 * still written, and the exit code is 128 + signal.
 *
 * Observability (any subcommand; see DESIGN.md §8 and §13):
 *   --debug-flags <spec>  enable gem5-style trace flags, e.g.
 *                         Exec,Memo,Cache,Dram,Lut,Sweep,Prof,Host or
 *                         All (also: AXMEMO_DEBUG environment variable)
 *   --trace-out <file>    write trace lines to <file> instead of stderr
 *   --trace-timeline <f>  record hierarchical spans (sweep → job →
 *                         phase) and write a Chrome-trace/Perfetto JSON
 *                         timeline to <f>; shard workers write
 *                         per-worker timeline segments which `merge`
 *                         (or --workers) stitches into <f> with one
 *                         lane per worker
 *
 *   axmemo status <shard-dir|run-dir> [--json] [--watch <s>]
 *                         one-screen fleet view read from the shard
 *                         directory: per-worker state (running / idle /
 *                         done / dead), progress bar from done markers,
 *                         EWMA throughput + ETA, slowest-claim
 *                         watchlist. --watch re-renders every <s>
 *                         seconds; --json emits one document per poll.
 *
 * Host data paths (any subcommand; bit-identical simulated results, only
 * simulation speed changes — see DESIGN.md §10):
 *   --dispatch <m>        interpreter loop: auto | threaded | switch
 *   --no-batch            disable basic-block macro-op batching
 *   --no-simd             disable the SSE4.2/PCLMUL CRC kernels
 *
 * Besides stdout, each run emits <name>_sweep.json (host-side sweep
 * performance), <name>.json (result rows) and <name>_stats.txt (one
 * gem5-like statistics section per simulated job, distribution stats
 * included) into the output directory, plus one manifest.json
 * recording the exact canonical serialized configuration — and the
 * per-run stats — of every simulated job, enough to rerun or diff any
 * result without reading harness code.
 */

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include <thread>

#include "common/interrupt.hh"
#include "common/log.hh"
#include "common/runtime_options.hh"
#include "core/artifact.hh"
#include "core/fleet_status.hh"
#include "core/memo_backends.hh"
#include "core/output_paths.hh"
#include "core/shard_queue.hh"
#include "obs/profiler.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "tools/perf.hh"

namespace {

using namespace axmemo;

int
usage(FILE *to)
{
    std::fprintf(
        to,
        "usage: axmemo --list\n"
        "       axmemo run <artifact>... | all "
        "[--scale <f>] [--full] [--jobs <n>] [--out <dir>] [--json]\n"
        "                 [--resume] [--retries <n>] "
        "[--job-timeout <s>] [--no-timing] [--fault-inject <w[:n]>]\n"
        "                 [--isolate] [--shard-dir <d> "
        "[--worker-id <s>] [--lease <s>] | --workers <n>]\n"
        "       axmemo merge <artifact>... | all --shard-dir <d> "
        "[run options]\n"
        "       axmemo profile <artifact>... | all [run options]\n"
        "       axmemo status <shard-dir|run-dir> "
        "[--json] [--watch <s>] [--lease <s>]\n"
        "       axmemo perf "
        "[--quick] [--check] [--scale <f>] [--jobs <n>] [--out <dir>]\n"
        "options: --debug-flags <Exec,Memo,Cache,Dram,Lut,Sweep,Prof,"
        "Host|All>  --trace-out <file>\n"
        "         --trace-timeline <file>  "
        "--dispatch <auto|threaded|switch>  --no-batch  --no-simd\n"
        "%s",
        RuntimeOptions::describeKnobs().c_str());
    return to == stderr ? 2 : 0;
}

/** Catalog group for a registration order (see artifacts.hh). */
const char *
artifactGroup(int order)
{
    switch (order / 10) {
      case 1: return "tables";
      case 2: return "figures";
      case 3: return "section 6.2 studies";
      case 4: return "ablations";
      case 5: return "micro-benchmarks";
      default: return "other";
    }
}

int
listArtifacts()
{
    const char *group = nullptr;
    for (const ArtifactInfo &info :
         ArtifactRegistry::instance().list()) {
        const char *next = artifactGroup(info.order);
        if (!group || std::strcmp(group, next) != 0) {
            std::printf("%s%s:\n", group ? "\n" : "", next);
            group = next;
        }
        std::printf("  %-26s %s\n", info.name.c_str(),
                    info.description.c_str());
    }
    std::printf("\nmemoization backends (run `axmemo run "
                "memo_backends` to compare):\n");
    for (const MemoBackend *backend : memoBackends().list())
        std::printf("  %-26s %s\n", backend->name().c_str(),
                    backend->description().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::vector<std::string> names;
    std::string traceOut;
    bool json = false;
    bool run = false;
    bool list = false;
    bool perf = false;
    bool quick = false;
    bool profile = false;
    bool resume = false;
    bool merge = false;
    bool status = false;
    bool perfCheck = false;
    std::string statusDir;
    double watchSeconds = 0.0;
    unsigned fanout = 0;
    double scale = 0.0;

    // Every knob is parsed from the environment exactly once; the
    // command line layers on top and the result is frozen below.
    RuntimeOptions runtime = RuntimeOptions::fromEnv();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list" || arg == "list") {
            list = true;
        } else if (arg == "run") {
            run = true;
        } else if (arg == "profile") {
            run = true;
            profile = true;
        } else if (arg == "merge") {
            run = true;
            merge = true;
        } else if (arg == "perf") {
            perf = true;
        } else if (arg == "status") {
            status = true;
        } else if (arg == "--watch") {
            watchSeconds = std::atof(value());
        } else if (arg == "--check") {
            perfCheck = true;
        } else if (arg == "--trace-timeline") {
            runtime.timeline = value();
        } else if (arg == "--shard-dir") {
            runtime.shardDir = value();
        } else if (arg == "--worker-id") {
            runtime.workerId = value();
        } else if (arg == "--lease") {
            runtime.leaseSeconds = std::atof(value());
        } else if (arg == "--isolate") {
            runtime.isolate = true;
        } else if (arg == "--workers") {
            fanout = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 10));
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--scale") {
            const char *v = value();
            scale = std::atof(v);
            runtime.scale = scale;
            runtime.scaleSet = scale > 0.0;
            // Keep the environment in sync for child-style consumers
            // (perf re-reads it when it changes the scale mid-run).
            setenv("AXMEMO_SCALE", v, 1);
        } else if (arg == "--full") {
            runtime.full = true;
            setenv("AXMEMO_FULL", "1", 1);
        } else if (arg == "--jobs") {
            const char *v = value();
            runtime.jobs =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
            setenv("AXMEMO_JOBS", v, 1);
        } else if (arg == "--out") {
            runtime.outDir = value();
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--retries") {
            runtime.retries = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 10));
        } else if (arg == "--job-timeout") {
            runtime.jobTimeoutSeconds = std::atof(value());
        } else if (arg == "--no-timing") {
            runtime.reportTiming = false;
        } else if (arg == "--fault-inject") {
            runtime.faultInject = value();
        } else if (arg == "--dispatch") {
            const std::string mode = value();
            if (mode != "auto" && mode != "threaded" &&
                mode != "switch") {
                std::fprintf(stderr,
                             "--dispatch wants auto, threaded or "
                             "switch (got '%s')\n",
                             mode.c_str());
                return 2;
            }
            runtime.dispatch = mode;
        } else if (arg == "--no-batch") {
            runtime.blockBatch = false;
        } else if (arg == "--no-simd") {
            runtime.simd = false;
        } else if (arg == "--debug-flags" ||
                   arg.rfind("--debug-flags=", 0) == 0) {
            const std::string spec =
                arg == "--debug-flags" ? value()
                                       : arg.substr(strlen("--debug-flags="));
            std::string error;
            if (!trace::enableFlags(spec, &error)) {
                std::fprintf(stderr, "--debug-flags: %s\n",
                             error.c_str());
                return 2;
            }
        } else if (arg == "--trace-out" ||
                   arg.rfind("--trace-out=", 0) == 0) {
            traceOut = arg == "--trace-out"
                           ? value()
                           : arg.substr(strlen("--trace-out="));
        } else if (arg == "--help" || arg == "-h") {
            return usage(stdout);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return usage(stderr);
        } else if (run) {
            names.push_back(arg);
        } else if (status) {
            if (!statusDir.empty()) {
                std::fprintf(stderr,
                             "status takes one directory (got '%s' "
                             "and '%s')\n",
                             statusDir.c_str(), arg.c_str());
                return 2;
            }
            statusDir = arg;
        } else {
            std::fprintf(stderr, "unexpected argument %s\n",
                         arg.c_str());
            return usage(stderr);
        }
    }

    // Freeze the resolved knobs as the process-wide options: ambient
    // RuntimeOptions::global() callers now see CLI overrides too.
    RuntimeOptions::setGlobal(runtime);
    installSignalHandlers();

    trace::initFromEnv();
    if (!traceOut.empty() && !trace::openTraceFile(traceOut)) {
        std::fprintf(stderr, "cannot open trace file '%s'\n",
                     traceOut.c_str());
        return 2;
    }
    telemetry::setEnabled(!runtime.timeline.empty());

    if (list)
        return listArtifacts();
    if (status) {
        if (run || perf || statusDir.empty())
            return usage(stderr);
        for (;;) {
            const FleetStatus fleet =
                readFleetStatus(statusDir, runtime.leaseSeconds);
            if (json) {
                std::fputs(renderFleetJson(fleet).c_str(), stdout);
            } else {
                if (watchSeconds > 0.0)
                    std::fputs("\033[2J\033[H", stdout); // re-home
                std::fputs(renderFleetText(fleet).c_str(), stdout);
            }
            std::fflush(stdout);
            if (watchSeconds <= 0.0)
                return 0;
            // Sleep in short slices so Ctrl-C lands promptly.
            const auto until =
                std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(watchSeconds));
            while (std::chrono::steady_clock::now() < until) {
                if (interruptRequested())
                    return 0;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
            }
        }
    }
    if (perf) {
        if (run || !names.empty())
            return usage(stderr);
        PerfOptions options;
        options.quick = quick;
        options.check = perfCheck;
        options.outDir = runtime.outDir;
        options.scale = scale;
        return runPerf(options);
    }
    if (perfCheck) {
        std::fprintf(stderr, "--check only applies to perf\n");
        return usage(stderr);
    }
    if (quick) {
        std::fprintf(stderr, "--quick only applies to perf\n");
        return usage(stderr);
    }
    if (!run || names.empty())
        return usage(stderr);

    ArtifactRegistry &registry = ArtifactRegistry::instance();
    if (names.size() == 1 && names[0] == "all") {
        names.clear();
        for (const ArtifactInfo &info : registry.list())
            names.push_back(info.name);
    }

    // Validate the whole list before simulating anything.
    for (const std::string &name : names) {
        if (!registry.make(name)) {
            std::fprintf(stderr,
                         "unknown artifact '%s' (try --list)\n",
                         name.c_str());
            return 2;
        }
    }

    ArtifactRunOptions options;
    options.outDir = runtime.outDir;
    options.writeRows = true;
    options.rowsToStdout = json;
    options.writeStats = true;
    options.runtime = runtime;
    options.journal = true;
    options.resume = resume;

    // Even an interrupted or partially failed invocation writes what it
    // has: the manifest records every artifact that ran to completion.
    auto writeManifest = [&](const std::vector<std::string> &runs) {
        const std::string manifestPath = joinPath(
            resolveOutputDir(runtime.outDir), "manifest.json");
        std::string doc = "{\"runs\":[";
        for (std::size_t i = 0; i < runs.size(); ++i) {
            if (i)
                doc += ',';
            doc += runs[i];
        }
        doc += "]}\n";
        const Expected<void> wrote =
            atomicWriteFile(manifestPath, doc);
        if (!wrote.ok())
            axm_warn("cannot write manifest: ",
                     wrote.error().describe());
    };

    // The artifact loop, shared by the standard, worker and merge
    // roles. Workers write no manifest.json (report emission is the
    // merge step's job); they write their per-worker shard manifest.
    const auto driveArtifacts = [&](const ArtifactRunOptions &opts)
        -> int {
        const bool worker = opts.shardMode == ShardMode::Worker;
        const auto wallStart = std::chrono::steady_clock::now();
        std::vector<std::string> manifestRuns;
        std::size_t faultedJobs = 0;
        std::size_t damagedSegments = 0;
        std::size_t totalJobs = 0;
        std::uint64_t totalMacro = 0;
        const auto finishWorker = [&] {
            if (!worker || !opts.queue)
                return;
            const double wall =
                opts.runtime.reportTiming
                    ? std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wallStart)
                          .count()
                    : 0.0;
            const Expected<void> wrote = opts.queue->writeShardManifest(
                totalJobs, totalMacro, wall);
            if (!wrote.ok())
                axm_warn("cannot write shard manifest: ",
                         wrote.error().describe());
        };
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (i && !json && !worker)
                std::printf("\n");
            const std::unique_ptr<Artifact> artifact =
                registry.make(names[i]);
            // Per-artifact phase isolation: the manifest's "phases" and
            // the profile view report this run only.
            obs::Profiler::instance().reset();
            const Expected<ArtifactRunRecord> record =
                runArtifact(*artifact, opts);
            if (!record.ok()) {
                std::fprintf(stderr, "%s: %s\n", names[i].c_str(),
                             record.error().describe().c_str());
                if (!worker)
                    writeManifest(manifestRuns);
                finishWorker();
                return 1;
            }
            faultedJobs += record.value().faultedJobs();
            damagedSegments += record.value().damagedSegments;
            totalJobs += record.value().jobs;
            totalMacro += record.value().simulatedMacroInsts;
            if (!worker)
                manifestRuns.push_back(record.value().manifestRun);
            if (interruptRequested())
                break;
            if (profile && !worker) {
                std::printf(
                    "\n== profile %s ==\n%s", names[i].c_str(),
                    obs::Profiler::instance().renderText().c_str());
                std::fflush(stdout);
            }
        }
        if (!worker)
            writeManifest(manifestRuns);
        finishWorker();
        if (interruptRequested()) {
            std::fprintf(stderr,
                         "interrupted by signal %d; partial results "
                         "written (rerun with --resume to continue)\n",
                         interruptSignal());
            return 128 + interruptSignal();
        }
        if (damagedSegments) {
            std::fprintf(stderr,
                         "%zu damaged journal segment(s) skipped; "
                         "their jobs were re-simulated (see "
                         "<name>_shards.json)\n",
                         damagedSegments);
            return 1;
        }
        if (faultedJobs) {
            std::fprintf(stderr,
                         "%zu job(s) did not complete; see "
                         "manifest.json for per-job status\n",
                         faultedJobs);
            return 1;
        }
        return 0;
    };

    // Convenience fan-out: fork N cooperating workers over one shard
    // directory, wait for them, then fall through to the merge role.
    // fork() happens before any thread exists in this process.
    int workerExit = 0;
    if (fanout > 1 && !merge) {
        if (runtime.shardDir.empty())
            runtime.shardDir = joinPath(
                resolveOutputDir(runtime.outDir), "shards");
        const std::string baseId =
            runtime.workerId.empty()
                ? "w" + std::to_string(::getpid())
                : runtime.workerId;
        std::vector<pid_t> children;
        for (unsigned k = 0; k < fanout; ++k) {
            std::fflush(stdout);
            std::fflush(stderr);
            const pid_t pid = ::fork();
            if (pid < 0) {
                std::fprintf(stderr, "fork: %s\n",
                             std::strerror(errno));
                return 1;
            }
            if (pid == 0) {
                runtime.workerId =
                    baseId + "-" + std::to_string(k);
                RuntimeOptions::setGlobal(runtime);
                ShardQueue queue(runtime.shardDir, runtime.workerId,
                                 runtime.leaseSeconds);
                ArtifactRunOptions workerOptions = options;
                workerOptions.runtime = runtime;
                workerOptions.shardMode = ShardMode::Worker;
                workerOptions.queue = &queue;
                const int code = driveArtifacts(workerOptions);
                if (!runtime.timeline.empty()) {
                    std::string error;
                    if (!telemetry::writeTimeline(queue.timelinePath(),
                                                  runtime.workerId,
                                                  &error))
                        axm_warn("timeline segment: ", error);
                }
                std::exit(code);
            }
            children.push_back(pid);
        }
        for (const pid_t pid : children) {
            int status = 0;
            ::waitpid(pid, &status, 0);
            if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
                workerExit = 1;
        }
        merge = true; // this process reduces what the workers drained
    }

    if (merge) {
        if (runtime.shardDir.empty()) {
            std::fprintf(stderr, "merge needs --shard-dir\n");
            return 2;
        }
        options.shardMode = ShardMode::Merge;
        options.shardDir = runtime.shardDir;
        const int code = driveArtifacts(options);
        if (!runtime.timeline.empty()) {
            // Stitch every worker's timeline segment — plus this merge
            // process's own lane — into the one requested file.
            std::size_t damaged = 0;
            const std::string stitched = stitchTimelines(
                ShardQueue::timelineSegments(runtime.shardDir),
                telemetry::renderTimeline("merge"), &damaged);
            if (damaged)
                axm_warn(damaged,
                         " damaged timeline segment(s) skipped");
            const Expected<void> wrote =
                atomicWriteFile(runtime.timeline, stitched);
            if (!wrote.ok())
                axm_warn("cannot write timeline: ",
                         wrote.error().describe());
        }
        return code ? code : workerExit;
    }
    if (!runtime.shardDir.empty()) {
        const std::string workerId =
            runtime.workerId.empty()
                ? "w" + std::to_string(::getpid())
                : runtime.workerId;
        ShardQueue queue(runtime.shardDir, workerId,
                         runtime.leaseSeconds);
        options.shardMode = ShardMode::Worker;
        options.queue = &queue;
        const int code = driveArtifacts(options);
        if (!runtime.timeline.empty()) {
            // A shard worker contributes a per-worker segment; the
            // requested file is the merge step's to write.
            std::string error;
            if (!telemetry::writeTimeline(queue.timelinePath(),
                                          workerId, &error))
                axm_warn("timeline segment: ", error);
        }
        return code;
    }
    const int code = driveArtifacts(options);
    if (!runtime.timeline.empty()) {
        std::string error;
        if (!telemetry::writeTimeline(
                runtime.timeline,
                names.size() == 1 ? names[0] : "run", &error))
            axm_warn("cannot write timeline: ", error);
    }
    return code;
}
