/**
 * @file
 * The unified paper-artifact driver. Every table, figure and ablation
 * registers itself with the artifact registry (core/artifact.hh); this
 * binary lists and runs them:
 *
 *   axmemo --list                      catalog of registered artifacts
 *   axmemo run fig9                    one artifact, legacy-identical
 *                                      stdout
 *   axmemo run fig7 fig9 table2        several in sequence
 *   axmemo run all                     the whole evaluation
 *
 *   axmemo perf [--quick]              data-path microbenchmarks plus an
 *                                      end-to-end fig7 run, appended to
 *                                      BENCH_perf.json (tools/perf.hh)
 *
 *   axmemo profile fig9                run artifacts like `run`, then
 *                                      print the aggregated phase-timer
 *                                      table (per phase and per sweep
 *                                      worker) for each one
 *
 * Options (apply to `run` and `profile`; --scale/--jobs/--out also
 * apply to `perf`):
 *   --scale <f>   dataset scale (sets AXMEMO_SCALE)
 *   --full        paper-size inputs (sets AXMEMO_FULL=1)
 *   --jobs <n>    sweep worker count (sets AXMEMO_JOBS)
 *   --out <dir>   output directory for all emitted files (overrides
 *                 $AXMEMO_SWEEP_DIR; created if missing)
 *   --json        print each artifact's result rows as one JSON
 *                 document on stdout instead of the text report
 *   --quick       perf only: ~8x fewer iterations, CI-smoke sized
 *
 * Observability (any subcommand; see DESIGN.md §8):
 *   --debug-flags <spec>  enable gem5-style trace flags, e.g.
 *                         Exec,Memo,Cache,Dram,Lut,Sweep,Prof or All
 *                         (also: AXMEMO_DEBUG environment variable)
 *   --trace-out <file>    write trace lines to <file> instead of stderr
 *
 * Besides stdout, each run emits <name>_sweep.json (host-side sweep
 * performance), <name>.json (result rows) and <name>_stats.txt (one
 * gem5-like statistics section per simulated job, distribution stats
 * included) into the output directory, plus one manifest.json
 * recording the exact canonical serialized configuration — and the
 * per-run stats — of every simulated job, enough to rerun or diff any
 * result without reading harness code.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hh"
#include "core/artifact.hh"
#include "core/output_paths.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"
#include "tools/perf.hh"

namespace {

using namespace axmemo;

int
usage(FILE *to)
{
    std::fprintf(
        to,
        "usage: axmemo --list\n"
        "       axmemo run <artifact>... | all "
        "[--scale <f>] [--full] [--jobs <n>] [--out <dir>] [--json]\n"
        "       axmemo profile <artifact>... | all [run options]\n"
        "       axmemo perf "
        "[--quick] [--scale <f>] [--jobs <n>] [--out <dir>]\n"
        "options: --debug-flags <Exec,Memo,Cache,Dram,Lut,Sweep,Prof|"
        "All>  --trace-out <file>\n");
    return to == stderr ? 2 : 0;
}

int
listArtifacts()
{
    for (const ArtifactInfo &info : ArtifactRegistry::instance().list())
        std::printf("%-28s %s\n", info.name.c_str(),
                    info.description.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::vector<std::string> names;
    std::string outDir;
    std::string traceOut;
    bool json = false;
    bool run = false;
    bool list = false;
    bool perf = false;
    bool quick = false;
    bool profile = false;
    double scale = 0.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list" || arg == "list") {
            list = true;
        } else if (arg == "run") {
            run = true;
        } else if (arg == "profile") {
            run = true;
            profile = true;
        } else if (arg == "perf") {
            perf = true;
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--scale") {
            const char *v = value();
            scale = std::atof(v);
            setenv("AXMEMO_SCALE", v, 1);
        } else if (arg == "--full") {
            setenv("AXMEMO_FULL", "1", 1);
        } else if (arg == "--jobs") {
            setenv("AXMEMO_JOBS", value(), 1);
        } else if (arg == "--out") {
            outDir = value();
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--debug-flags" ||
                   arg.rfind("--debug-flags=", 0) == 0) {
            const std::string spec =
                arg == "--debug-flags" ? value()
                                       : arg.substr(strlen("--debug-flags="));
            std::string error;
            if (!trace::enableFlags(spec, &error)) {
                std::fprintf(stderr, "--debug-flags: %s\n",
                             error.c_str());
                return 2;
            }
        } else if (arg == "--trace-out" ||
                   arg.rfind("--trace-out=", 0) == 0) {
            traceOut = arg == "--trace-out"
                           ? value()
                           : arg.substr(strlen("--trace-out="));
        } else if (arg == "--help" || arg == "-h") {
            return usage(stdout);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return usage(stderr);
        } else if (run) {
            names.push_back(arg);
        } else {
            std::fprintf(stderr, "unexpected argument %s\n",
                         arg.c_str());
            return usage(stderr);
        }
    }

    trace::initFromEnv();
    if (!traceOut.empty() && !trace::openTraceFile(traceOut)) {
        std::fprintf(stderr, "cannot open trace file '%s'\n",
                     traceOut.c_str());
        return 2;
    }

    if (list)
        return listArtifacts();
    if (perf) {
        if (run || !names.empty())
            return usage(stderr);
        PerfOptions options;
        options.quick = quick;
        options.outDir = outDir;
        options.scale = scale;
        return runPerf(options);
    }
    if (quick) {
        std::fprintf(stderr, "--quick only applies to perf\n");
        return usage(stderr);
    }
    if (!run || names.empty())
        return usage(stderr);

    ArtifactRegistry &registry = ArtifactRegistry::instance();
    if (names.size() == 1 && names[0] == "all") {
        names.clear();
        for (const ArtifactInfo &info : registry.list())
            names.push_back(info.name);
    }

    // Validate the whole list before simulating anything.
    for (const std::string &name : names) {
        if (!registry.make(name)) {
            std::fprintf(stderr,
                         "unknown artifact '%s' (try --list)\n",
                         name.c_str());
            return 2;
        }
    }

    ArtifactRunOptions options;
    options.outDir = outDir;
    options.writeRows = true;
    options.rowsToStdout = json;
    options.writeStats = true;

    std::vector<std::string> manifestRuns;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i && !json)
            std::printf("\n");
        const std::unique_ptr<Artifact> artifact =
            registry.make(names[i]);
        // Per-artifact phase isolation: the manifest's "phases" and the
        // profile view report this run only.
        obs::Profiler::instance().reset();
        ArtifactRunRecord record;
        const int rc = runArtifact(*artifact, options, &record);
        if (rc)
            return rc;
        manifestRuns.push_back(std::move(record.manifestRun));
        if (profile) {
            std::printf("\n== profile %s ==\n%s", names[i].c_str(),
                        obs::Profiler::instance().renderText().c_str());
            std::fflush(stdout);
        }
    }

    const std::string manifestPath =
        joinPath(resolveOutputDir(outDir), "manifest.json");
    std::ofstream manifest(manifestPath);
    if (!manifest) {
        axm_warn("cannot write manifest to ", manifestPath);
    } else {
        manifest << "{\"runs\":[";
        for (std::size_t i = 0; i < manifestRuns.size(); ++i) {
            if (i)
                manifest << ',';
            manifest << manifestRuns[i];
        }
        manifest << "]}\n";
    }
    return 0;
}
