/**
 * @file
 * The unified paper-artifact driver. Every table, figure and ablation
 * registers itself with the artifact registry (core/artifact.hh); this
 * binary lists and runs them:
 *
 *   axmemo --list                      catalog of registered artifacts
 *   axmemo run fig9                    one artifact, legacy-identical
 *                                      stdout
 *   axmemo run fig7 fig9 table2        several in sequence
 *   axmemo run all                     the whole evaluation
 *
 *   axmemo perf [--quick]              data-path microbenchmarks plus an
 *                                      end-to-end fig7 run, appended to
 *                                      BENCH_perf.json (tools/perf.hh)
 *
 *   axmemo profile fig9                run artifacts like `run`, then
 *                                      print the aggregated phase-timer
 *                                      table (per phase and per sweep
 *                                      worker) for each one
 *
 * Options (apply to `run` and `profile`; --scale/--jobs/--out also
 * apply to `perf`):
 *   --scale <f>   dataset scale (sets AXMEMO_SCALE)
 *   --full        paper-size inputs (sets AXMEMO_FULL=1)
 *   --jobs <n>    sweep worker count (sets AXMEMO_JOBS)
 *   --out <dir>   output directory for all emitted files (overrides
 *                 $AXMEMO_SWEEP_DIR; created if missing)
 *   --json        print each artifact's result rows as one JSON
 *                 document on stdout instead of the text report
 *   --quick       perf only: ~8x fewer iterations, CI-smoke sized
 *
 * Fault tolerance (run/profile; see DESIGN.md §9):
 *   --resume          replay each artifact's <name>_sweep.ckpt
 *                     checkpoint journal instead of re-simulating jobs
 *                     whose (workload, mode, config) already completed
 *   --retries <n>     per-job retries after a failure (AXMEMO_RETRIES)
 *   --job-timeout <s> per-job watchdog; expired jobs are marked
 *                     timed-out, not retried (AXMEMO_JOB_TIMEOUT)
 *   --no-timing       zero host-timing fields in every report so two
 *                     runs are byte-comparable (AXMEMO_TIMING=0)
 *   --fault-inject <workload[:n]>  test hook: fail matching jobs
 *
 * Per-job faults are contained: a failed/timed-out job costs its row
 * (recorded with a structured error in manifest.json), the rest of the
 * sweep completes, and the driver exits nonzero. SIGINT/SIGTERM stop
 * gracefully — in-flight jobs abort at the next watchdog poll, the
 * journal keeps everything finished so far, a partial manifest.json is
 * still written, and the exit code is 128 + signal.
 *
 * Observability (any subcommand; see DESIGN.md §8):
 *   --debug-flags <spec>  enable gem5-style trace flags, e.g.
 *                         Exec,Memo,Cache,Dram,Lut,Sweep,Prof,Host or
 *                         All (also: AXMEMO_DEBUG environment variable)
 *   --trace-out <file>    write trace lines to <file> instead of stderr
 *
 * Host data paths (any subcommand; bit-identical simulated results, only
 * simulation speed changes — see DESIGN.md §10):
 *   --dispatch <m>        interpreter loop: auto | threaded | switch
 *   --no-batch            disable basic-block macro-op batching
 *   --no-simd             disable the SSE4.2/PCLMUL CRC kernels
 *
 * Besides stdout, each run emits <name>_sweep.json (host-side sweep
 * performance), <name>.json (result rows) and <name>_stats.txt (one
 * gem5-like statistics section per simulated job, distribution stats
 * included) into the output directory, plus one manifest.json
 * recording the exact canonical serialized configuration — and the
 * per-run stats — of every simulated job, enough to rerun or diff any
 * result without reading harness code.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/interrupt.hh"
#include "common/log.hh"
#include "common/runtime_options.hh"
#include "core/artifact.hh"
#include "core/memo_backends.hh"
#include "core/output_paths.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"
#include "tools/perf.hh"

namespace {

using namespace axmemo;

int
usage(FILE *to)
{
    std::fprintf(
        to,
        "usage: axmemo --list\n"
        "       axmemo run <artifact>... | all "
        "[--scale <f>] [--full] [--jobs <n>] [--out <dir>] [--json]\n"
        "                 [--resume] [--retries <n>] "
        "[--job-timeout <s>] [--no-timing] [--fault-inject <w[:n]>]\n"
        "       axmemo profile <artifact>... | all [run options]\n"
        "       axmemo perf "
        "[--quick] [--scale <f>] [--jobs <n>] [--out <dir>]\n"
        "options: --debug-flags <Exec,Memo,Cache,Dram,Lut,Sweep,Prof,"
        "Host|All>  --trace-out <file>\n"
        "         --dispatch <auto|threaded|switch>  --no-batch  "
        "--no-simd\n"
        "%s",
        RuntimeOptions::describeKnobs().c_str());
    return to == stderr ? 2 : 0;
}

/** Catalog group for a registration order (see artifacts.hh). */
const char *
artifactGroup(int order)
{
    switch (order / 10) {
      case 1: return "tables";
      case 2: return "figures";
      case 3: return "section 6.2 studies";
      case 4: return "ablations";
      case 5: return "micro-benchmarks";
      default: return "other";
    }
}

int
listArtifacts()
{
    const char *group = nullptr;
    for (const ArtifactInfo &info :
         ArtifactRegistry::instance().list()) {
        const char *next = artifactGroup(info.order);
        if (!group || std::strcmp(group, next) != 0) {
            std::printf("%s%s:\n", group ? "\n" : "", next);
            group = next;
        }
        std::printf("  %-26s %s\n", info.name.c_str(),
                    info.description.c_str());
    }
    std::printf("\nmemoization backends (run `axmemo run "
                "memo_backends` to compare):\n");
    for (const MemoBackend *backend : memoBackends().list())
        std::printf("  %-26s %s\n", backend->name().c_str(),
                    backend->description().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::vector<std::string> names;
    std::string traceOut;
    bool json = false;
    bool run = false;
    bool list = false;
    bool perf = false;
    bool quick = false;
    bool profile = false;
    bool resume = false;
    double scale = 0.0;

    // Every knob is parsed from the environment exactly once; the
    // command line layers on top and the result is frozen below.
    RuntimeOptions runtime = RuntimeOptions::fromEnv();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list" || arg == "list") {
            list = true;
        } else if (arg == "run") {
            run = true;
        } else if (arg == "profile") {
            run = true;
            profile = true;
        } else if (arg == "perf") {
            perf = true;
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--scale") {
            const char *v = value();
            scale = std::atof(v);
            runtime.scale = scale;
            runtime.scaleSet = scale > 0.0;
            // Keep the environment in sync for child-style consumers
            // (perf re-reads it when it changes the scale mid-run).
            setenv("AXMEMO_SCALE", v, 1);
        } else if (arg == "--full") {
            runtime.full = true;
            setenv("AXMEMO_FULL", "1", 1);
        } else if (arg == "--jobs") {
            const char *v = value();
            runtime.jobs =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
            setenv("AXMEMO_JOBS", v, 1);
        } else if (arg == "--out") {
            runtime.outDir = value();
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--retries") {
            runtime.retries = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 10));
        } else if (arg == "--job-timeout") {
            runtime.jobTimeoutSeconds = std::atof(value());
        } else if (arg == "--no-timing") {
            runtime.reportTiming = false;
        } else if (arg == "--fault-inject") {
            runtime.faultInject = value();
        } else if (arg == "--dispatch") {
            const std::string mode = value();
            if (mode != "auto" && mode != "threaded" &&
                mode != "switch") {
                std::fprintf(stderr,
                             "--dispatch wants auto, threaded or "
                             "switch (got '%s')\n",
                             mode.c_str());
                return 2;
            }
            runtime.dispatch = mode;
        } else if (arg == "--no-batch") {
            runtime.blockBatch = false;
        } else if (arg == "--no-simd") {
            runtime.simd = false;
        } else if (arg == "--debug-flags" ||
                   arg.rfind("--debug-flags=", 0) == 0) {
            const std::string spec =
                arg == "--debug-flags" ? value()
                                       : arg.substr(strlen("--debug-flags="));
            std::string error;
            if (!trace::enableFlags(spec, &error)) {
                std::fprintf(stderr, "--debug-flags: %s\n",
                             error.c_str());
                return 2;
            }
        } else if (arg == "--trace-out" ||
                   arg.rfind("--trace-out=", 0) == 0) {
            traceOut = arg == "--trace-out"
                           ? value()
                           : arg.substr(strlen("--trace-out="));
        } else if (arg == "--help" || arg == "-h") {
            return usage(stdout);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return usage(stderr);
        } else if (run) {
            names.push_back(arg);
        } else {
            std::fprintf(stderr, "unexpected argument %s\n",
                         arg.c_str());
            return usage(stderr);
        }
    }

    // Freeze the resolved knobs as the process-wide options: ambient
    // RuntimeOptions::global() callers now see CLI overrides too.
    RuntimeOptions::setGlobal(runtime);
    installSignalHandlers();

    trace::initFromEnv();
    if (!traceOut.empty() && !trace::openTraceFile(traceOut)) {
        std::fprintf(stderr, "cannot open trace file '%s'\n",
                     traceOut.c_str());
        return 2;
    }

    if (list)
        return listArtifacts();
    if (perf) {
        if (run || !names.empty())
            return usage(stderr);
        PerfOptions options;
        options.quick = quick;
        options.outDir = runtime.outDir;
        options.scale = scale;
        return runPerf(options);
    }
    if (quick) {
        std::fprintf(stderr, "--quick only applies to perf\n");
        return usage(stderr);
    }
    if (!run || names.empty())
        return usage(stderr);

    ArtifactRegistry &registry = ArtifactRegistry::instance();
    if (names.size() == 1 && names[0] == "all") {
        names.clear();
        for (const ArtifactInfo &info : registry.list())
            names.push_back(info.name);
    }

    // Validate the whole list before simulating anything.
    for (const std::string &name : names) {
        if (!registry.make(name)) {
            std::fprintf(stderr,
                         "unknown artifact '%s' (try --list)\n",
                         name.c_str());
            return 2;
        }
    }

    ArtifactRunOptions options;
    options.outDir = runtime.outDir;
    options.writeRows = true;
    options.rowsToStdout = json;
    options.writeStats = true;
    options.runtime = runtime;
    options.journal = true;
    options.resume = resume;

    // Even an interrupted or partially failed invocation writes what it
    // has: the manifest records every artifact that ran to completion.
    auto writeManifest = [&](const std::vector<std::string> &runs) {
        const std::string manifestPath = joinPath(
            resolveOutputDir(runtime.outDir), "manifest.json");
        std::string doc = "{\"runs\":[";
        for (std::size_t i = 0; i < runs.size(); ++i) {
            if (i)
                doc += ',';
            doc += runs[i];
        }
        doc += "]}\n";
        const Expected<void> wrote =
            atomicWriteFile(manifestPath, doc);
        if (!wrote.ok())
            axm_warn("cannot write manifest: ",
                     wrote.error().describe());
    };

    std::vector<std::string> manifestRuns;
    std::size_t faultedJobs = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i && !json)
            std::printf("\n");
        const std::unique_ptr<Artifact> artifact =
            registry.make(names[i]);
        // Per-artifact phase isolation: the manifest's "phases" and the
        // profile view report this run only.
        obs::Profiler::instance().reset();
        const Expected<ArtifactRunRecord> record =
            runArtifact(*artifact, options);
        if (!record.ok()) {
            std::fprintf(stderr, "%s: %s\n", names[i].c_str(),
                         record.error().describe().c_str());
            writeManifest(manifestRuns);
            return 1;
        }
        faultedJobs += record.value().faultedJobs();
        manifestRuns.push_back(record.value().manifestRun);
        if (interruptRequested())
            break;
        if (profile) {
            std::printf("\n== profile %s ==\n%s", names[i].c_str(),
                        obs::Profiler::instance().renderText().c_str());
            std::fflush(stdout);
        }
    }

    writeManifest(manifestRuns);
    if (interruptRequested()) {
        std::fprintf(stderr,
                     "interrupted by signal %d; partial results "
                     "written (rerun with --resume to continue)\n",
                     interruptSignal());
        return 128 + interruptSignal();
    }
    if (faultedJobs) {
        std::fprintf(stderr,
                     "%zu job(s) did not complete; see manifest.json "
                     "for per-job status\n",
                     faultedJobs);
        return 1;
    }
    return 0;
}
