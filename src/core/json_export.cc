#include "core/json_export.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace axmemo {

namespace {

/** Append `"key": value` pairs with comma management. */
class ObjectBuilder
{
  public:
    explicit ObjectBuilder(std::ostringstream &os) : os_(os)
    {
        os_ << '{';
    }

    void
    field(const char *key, std::uint64_t value)
    {
        sep();
        os_ << '"' << key << "\":" << value;
    }

    void
    field(const char *key, double value)
    {
        sep();
        if (!std::isfinite(value)) {
            os_ << '"' << key << "\":null";
            return;
        }
        os_ << '"' << key << "\":" << std::setprecision(12) << value;
    }

    void
    field(const char *key, bool value)
    {
        sep();
        os_ << '"' << key << "\":" << (value ? "true" : "false");
    }

    void
    field(const char *key, const std::string &value)
    {
        sep();
        os_ << '"' << key << "\":\"" << JsonWriter::escape(value)
            << '"';
    }

    void
    raw(const char *key, const std::string &json)
    {
        sep();
        os_ << '"' << key << "\":" << json;
    }

    std::string
    close()
    {
        os_ << '}';
        return os_.str();
    }

  private:
    void
    sep()
    {
        if (any_)
            os_ << ',';
        any_ = true;
    }

    std::ostringstream &os_;
    bool any_ = false;
};

} // namespace

std::string
JsonWriter::escape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
JsonWriter::toJson(const RunResult &result)
{
    std::ostringstream os;
    ObjectBuilder obj(os);
    obj.field("mode", result.backend);
    obj.field("cycles", result.stats.cycles);
    obj.field("macro_insts", result.stats.macroInsts);
    obj.field("uops", result.stats.uops);
    obj.field("memo_uops", result.stats.memoUops);
    obj.field("branches", result.stats.branches);
    obj.field("mispredicts", result.stats.mispredicts);
    obj.field("lookups", result.lookups);
    obj.field("hits", result.hits);
    obj.field("hit_rate", result.hitRate());
    obj.field("l1_lut_hits", result.stats.memo.l1Hits);
    obj.field("l2_lut_hits", result.stats.memo.l2Hits);
    obj.field("monitor_tripped", result.stats.memo.monitorTripped);
    obj.field("energy_pj", result.energyPj());
    obj.field("energy_core_pj", result.energy.corePj);
    obj.field("energy_cache_pj", result.energy.cachePj);
    obj.field("energy_dram_pj", result.energy.dramPj);
    obj.field("energy_memo_pj", result.energy.memoPj);
    obj.field("energy_leakage_pj", result.energy.leakagePj);

    std::ostringstream regions;
    regions << '[';
    for (std::size_t i = 0; i < result.regions.size(); ++i) {
        const auto &r = result.regions[i];
        if (i)
            regions << ',';
        std::ostringstream ros;
        ObjectBuilder robj(ros);
        robj.field("region_id",
                   static_cast<std::uint64_t>(r.regionId));
        robj.field("lut", static_cast<std::uint64_t>(r.lut));
        robj.field("inputs", static_cast<std::uint64_t>(r.numInputs));
        robj.field("input_bytes",
                   static_cast<std::uint64_t>(r.inputBytes));
        robj.field("outputs",
                   static_cast<std::uint64_t>(r.numOutputs));
        robj.field("fused_loads",
                   static_cast<std::uint64_t>(r.fusedLoads));
        regions << robj.close();
    }
    regions << ']';
    obj.raw("regions", regions.str());
    return obj.close();
}

std::string
JsonWriter::toJson(const Comparison &cmp, const std::string &workload)
{
    std::ostringstream os;
    ObjectBuilder obj(os);
    obj.field("workload", workload);
    obj.field("speedup", cmp.speedup);
    obj.field("energy_reduction", cmp.energyReduction);
    obj.field("quality_loss", cmp.qualityLoss);
    obj.field("normalized_uops", cmp.normalizedUops);
    obj.field("memo_uop_share", cmp.memoUopShare);
    obj.field("error_p50", cmp.errorCdf.quantile(0.5));
    obj.field("error_p99", cmp.errorCdf.quantile(0.99));
    obj.raw("baseline", toJson(cmp.baseline));
    obj.raw("subject", toJson(cmp.subject));
    return obj.close();
}

} // namespace axmemo
