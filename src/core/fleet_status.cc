#include "core/fleet_status.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <dirent.h>

#include "common/lease.hh"
#include "core/json_export.hh"
#include "core/json_value.hh"
#include "core/output_paths.hh"
#include "obs/telemetry.hh"

namespace axmemo {

namespace {

/** Names (not paths) in @p dir matching prefix/suffix, sorted. */
std::vector<std::string>
listNames(const std::string &dir, const std::string &prefix,
          const std::string &suffix)
{
    std::vector<std::string> names;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return names;
    while (const dirent *entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name.size() <= prefix.size() + suffix.size())
            continue;
        if (name.rfind(prefix, 0) != 0)
            continue;
        if (name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        names.push_back(name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
}

/** "<prefix><stem><suffix>" → "<stem>". */
std::string
stemOf(const std::string &name, const std::string &prefix,
       const std::string &suffix)
{
    return name.substr(prefix.size(),
                       name.size() - prefix.size() - suffix.size());
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Last non-empty line of a JSONL file ("" when none). */
std::string
lastLine(const std::string &text)
{
    std::size_t end = text.size();
    while (end > 0 && (text[end - 1] == '\n' || text[end - 1] == '\r'))
        --end;
    if (end == 0)
        return {};
    const std::size_t start = text.find_last_of('\n', end - 1);
    return text.substr(start == std::string::npos ? 0 : start + 1,
                       end - (start == std::string::npos ? 0 : start + 1));
}

double
numberOr(const JValue &v, const char *key, double fallback)
{
    const JValue *member = v.find(key);
    if (!member)
        return fallback;
    const Expected<double> n = jsonNumber(*member, key);
    return n.ok() ? n.value() : fallback;
}

void
appendDouble(std::string &out, double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out += buf;
}

WorkerStatus *
workerById(std::vector<WorkerStatus> &workers, const std::string &id)
{
    for (WorkerStatus &w : workers) {
        if (w.id == id)
            return &w;
    }
    workers.push_back({});
    workers.back().id = id;
    return &workers.back();
}

/** "1.5G" / "48.2M" / "312k" / "17" style size. */
std::string
humanBytes(std::uint64_t bytes)
{
    char buf[32];
    const double b = static_cast<double>(bytes);
    if (bytes >= 1ull << 30)
        std::snprintf(buf, sizeof(buf), "%.1fG", b / (1ull << 30));
    else if (bytes >= 1ull << 20)
        std::snprintf(buf, sizeof(buf), "%.1fM", b / (1ull << 20));
    else if (bytes >= 1ull << 10)
        std::snprintf(buf, sizeof(buf), "%.0fk", b / (1ull << 10));
    else
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

} // namespace

const char *
workerStateName(WorkerStatus::State state)
{
    switch (state) {
      case WorkerStatus::State::Running: return "running";
      case WorkerStatus::State::Idle: return "idle";
      case WorkerStatus::State::Done: return "done";
      case WorkerStatus::State::Dead: return "dead";
    }
    return "unknown";
}

FleetStatus
readFleetStatus(const std::string &dir, double leaseSeconds)
{
    FleetStatus fleet;
    fleet.dir = dir;
    fleet.leaseSeconds = leaseSeconds > 0 ? leaseSeconds : 30.0;

    // A run's --out directory is accepted directly: descend into the
    // default --workers layout when the argument is not itself a
    // shard directory.
    const std::string claims = joinPath(fleet.dir, "claims");
    if (fileAgeSeconds(claims) < 0.0) {
        const std::string nested = joinPath(fleet.dir, "shards");
        if (fileAgeSeconds(joinPath(nested, "claims")) >= 0.0 ||
            !listNames(nested, "metrics.", ".jsonl").empty())
            fleet.dir = nested;
    }
    const std::string claimsDir = joinPath(fleet.dir, "claims");

    // Workers surface through their metrics snapshots first (written
    // on attach), then manifests/journals for fleets predating the
    // snapshot files.
    for (const std::string &name :
         listNames(fleet.dir, "metrics.", ".jsonl")) {
        const std::string id = stemOf(name, "metrics.", ".jsonl");
        WorkerStatus &w = *workerById(fleet.workers, id);
        const std::string path = joinPath(fleet.dir, name);
        w.snapshotAgeSeconds = fileAgeSeconds(path);
        const Expected<JValue> snap =
            parseJsonValue(lastLine(readWholeFile(path)));
        if (!snap.ok())
            continue;
        const JValue &v = snap.value();
        w.jobsDone = static_cast<std::uint64_t>(
            numberOr(v, "jobs_done", 0.0));
        fleet.jobsTotal = std::max(
            fleet.jobsTotal,
            static_cast<std::uint64_t>(numberOr(v, "jobs_total", 0.0)));
        w.jobsPerSecond = numberOr(v, "jobs_per_s", 0.0);
        w.minstrPerSecond = numberOr(v, "minstr_per_s", 0.0);
        w.memoHitRate = numberOr(v, "memo_hit_rate", 0.0);
        w.lutOccupancy = numberOr(v, "lut_occupancy", 0.0);
        w.rssBytes =
            static_cast<std::uint64_t>(numberOr(v, "rss_bytes", 0.0));
        w.journalLagSeconds = numberOr(v, "journal_lag_s", -1.0);
    }
    std::vector<std::string> manifestIds;
    for (const std::string &name :
         listNames(fleet.dir, "shard.", ".json")) {
        const std::string id = stemOf(name, "shard.", ".json");
        manifestIds.push_back(id);
        workerById(fleet.workers, id);
    }
    for (const std::string &name :
         listNames(fleet.dir, "journal.", ".ckpt"))
        workerById(fleet.workers, stemOf(name, "journal.", ".ckpt"));

    // Done markers are the queue's ground truth for fleet progress —
    // counted by name only, so status stays O(readdir) even on a
    // 10^5-job dse grid.
    fleet.jobsDone = listNames(claimsDir, "", ".done").size();

    // Live claims: holder identity + full job key from the lease body;
    // oldest first is the slowest-job watchlist.
    for (const std::string &name : listNames(claimsDir, "", ".claim")) {
        const std::string path = joinPath(claimsDir, name);
        const double age = fileAgeSeconds(path);
        if (age < 0.0)
            continue; // released between readdir and stat
        ClaimStatus claim;
        claim.ageSeconds = age;
        const Expected<JValue> body =
            parseJsonValue(readWholeFile(path));
        if (body.ok()) {
            if (const JValue *key = body.value().find("key");
                key && key->kind == JValue::Kind::String)
                claim.key = key->token;
            if (const JValue *worker = body.value().find("worker");
                worker && worker->kind == JValue::Kind::String)
                claim.worker = worker->token;
        }
        if (!claim.worker.empty())
            ++workerById(fleet.workers, claim.worker)->claimsHeld;
        fleet.watchlist.push_back(std::move(claim));
    }
    std::stable_sort(fleet.watchlist.begin(), fleet.watchlist.end(),
                     [](const ClaimStatus &a, const ClaimStatus &b) {
                         return a.ageSeconds > b.ageSeconds;
                     });

    // Failed-job count: available once workers have written manifests
    // (merge re-simulates those jobs deterministically either way).
    for (const std::string &id : manifestIds) {
        const Expected<JValue> manifest = parseJsonValue(
            readWholeFile(joinPath(fleet.dir, "shard." + id + ".json")));
        if (manifest.ok())
            fleet.jobsFailed += static_cast<std::uint64_t>(
                numberOr(manifest.value(), "failed", 0.0));
    }

    for (WorkerStatus &w : fleet.workers) {
        const bool hasManifest =
            std::find(manifestIds.begin(), manifestIds.end(), w.id) !=
            manifestIds.end();
        const bool fresh = w.snapshotAgeSeconds >= 0.0 &&
                           w.snapshotAgeSeconds <= fleet.leaseSeconds;
        if (hasManifest)
            w.state = WorkerStatus::State::Done;
        else if (fresh)
            w.state = w.claimsHeld ? WorkerStatus::State::Running
                                   : WorkerStatus::State::Idle;
        else
            w.state = WorkerStatus::State::Dead;
        if (w.state == WorkerStatus::State::Running ||
            w.state == WorkerStatus::State::Idle) {
            fleet.aggregateJobsPerSecond += w.jobsPerSecond;
            fleet.aggregateMinstrPerSecond += w.minstrPerSecond;
        }
    }

    if (fleet.jobsTotal > fleet.jobsDone &&
        fleet.aggregateJobsPerSecond > 0.0)
        fleet.etaSeconds = (fleet.jobsTotal - fleet.jobsDone) /
                           fleet.aggregateJobsPerSecond;
    else if (fleet.jobsTotal && fleet.jobsDone >= fleet.jobsTotal)
        fleet.etaSeconds = 0.0;
    else if (fleet.jobsTotal > fleet.jobsDone)
        // Jobs remain but every EWMA rate has decayed to zero: the
        // fleet is stalled, which is different from "no total yet"
        // (etaSeconds stays -1 so existing consumers are unchanged).
        fleet.stalled = true;
    return fleet;
}

std::string
renderFleetText(const FleetStatus &fleet)
{
    std::ostringstream os;
    os.precision(3);
    const double progress =
        fleet.jobsTotal ? static_cast<double>(fleet.jobsDone) /
                              static_cast<double>(fleet.jobsTotal)
                        : 0.0;
    os << "fleet " << fleet.dir << " — " << fleet.jobsDone << "/"
       << fleet.jobsTotal << " jobs";
    if (fleet.jobsFailed)
        os << " (" << fleet.jobsFailed << " failed)";
    os << ", " << fleet.aggregateJobsPerSecond << " jobs/s, "
       << fleet.aggregateMinstrPerSecond << " Minstr/s";
    if (fleet.etaSeconds >= 0.0)
        os << ", ETA " << fleet.etaSeconds << "s";
    else if (fleet.stalled)
        os << ", ETA stalled";
    os << "\n";

    constexpr int barWidth = 40;
    const int filled = static_cast<int>(progress * barWidth + 0.5);
    os << "[";
    for (int i = 0; i < barWidth; ++i)
        os << (i < filled ? '#' : '.');
    os << "] " << static_cast<int>(progress * 100.0 + 0.5) << "%\n";

    char row[160];
    std::snprintf(row, sizeof(row), "%-12s %-8s %8s %8s %9s %6s %6s %8s %7s\n",
                  "worker", "state", "done", "jobs/s", "Minstr/s", "hit",
                  "lut", "rss", "lag");
    os << row;
    for (const WorkerStatus &w : fleet.workers) {
        char lag[24];
        if (w.journalLagSeconds >= 0.0)
            std::snprintf(lag, sizeof(lag), "%.1fs", w.journalLagSeconds);
        else
            std::snprintf(lag, sizeof(lag), "-");
        std::snprintf(row, sizeof(row),
                      "%-12s %-8s %8llu %8.2f %9.1f %6.2f %6.1f %8s %7s\n",
                      w.id.c_str(), workerStateName(w.state),
                      static_cast<unsigned long long>(w.jobsDone),
                      w.jobsPerSecond, w.minstrPerSecond, w.memoHitRate,
                      w.lutOccupancy, humanBytes(w.rssBytes).c_str(),
                      lag);
        os << row;
    }
    if (!fleet.watchlist.empty()) {
        os << "slowest live claims:\n";
        const std::size_t shown =
            std::min<std::size_t>(fleet.watchlist.size(), 5);
        for (std::size_t i = 0; i < shown; ++i) {
            const ClaimStatus &c = fleet.watchlist[i];
            std::snprintf(row, sizeof(row), "  %8.1fs  %-12s  ",
                          c.ageSeconds, c.worker.c_str());
            os << row
               << (c.key.size() > 100 ? c.key.substr(0, 100) + "..."
                                      : c.key)
               << "\n";
        }
    }
    return os.str();
}

std::string
renderFleetJson(const FleetStatus &fleet)
{
    const double progress =
        fleet.jobsTotal ? static_cast<double>(fleet.jobsDone) /
                              static_cast<double>(fleet.jobsTotal)
                        : 0.0;
    std::string out = "{\"dir\":\"";
    out += JsonWriter::escape(fleet.dir);
    out += "\",\"lease_seconds\":";
    appendDouble(out, fleet.leaseSeconds);
    out += ",\"jobs_total\":" + std::to_string(fleet.jobsTotal);
    out += ",\"jobs_done\":" + std::to_string(fleet.jobsDone);
    out += ",\"jobs_failed\":" + std::to_string(fleet.jobsFailed);
    out += ",\"progress\":";
    appendDouble(out, progress);
    out += ",\"jobs_per_second\":";
    appendDouble(out, fleet.aggregateJobsPerSecond);
    out += ",\"minstr_per_second\":";
    appendDouble(out, fleet.aggregateMinstrPerSecond);
    out += ",\"eta_seconds\":";
    appendDouble(out, fleet.etaSeconds);
    out += ",\"stalled\":";
    out += fleet.stalled ? "true" : "false";
    out += ",\"workers\":[";
    for (std::size_t i = 0; i < fleet.workers.size(); ++i) {
        const WorkerStatus &w = fleet.workers[i];
        if (i)
            out += ',';
        out += "{\"worker\":\"";
        out += JsonWriter::escape(w.id);
        out += "\",\"state\":\"";
        out += workerStateName(w.state);
        out += "\",\"snapshot_age_s\":";
        appendDouble(out, w.snapshotAgeSeconds);
        out += ",\"jobs_done\":" + std::to_string(w.jobsDone);
        out += ",\"jobs_per_s\":";
        appendDouble(out, w.jobsPerSecond);
        out += ",\"minstr_per_s\":";
        appendDouble(out, w.minstrPerSecond);
        out += ",\"memo_hit_rate\":";
        appendDouble(out, w.memoHitRate);
        out += ",\"lut_occupancy\":";
        appendDouble(out, w.lutOccupancy);
        out += ",\"rss_bytes\":" + std::to_string(w.rssBytes);
        out += ",\"journal_lag_s\":";
        appendDouble(out, w.journalLagSeconds);
        out += ",\"claims_held\":" + std::to_string(w.claimsHeld);
        out += '}';
    }
    out += "],\"watchlist\":[";
    for (std::size_t i = 0; i < fleet.watchlist.size(); ++i) {
        const ClaimStatus &c = fleet.watchlist[i];
        if (i)
            out += ',';
        out += "{\"key\":\"";
        out += JsonWriter::escape(c.key);
        out += "\",\"worker\":\"";
        out += JsonWriter::escape(c.worker);
        out += "\",\"age_seconds\":";
        appendDouble(out, c.ageSeconds);
        out += '}';
    }
    out += "]}\n";
    return out;
}

namespace {

/** Validate one timeline document and return its traceEvents body
 * (the bytes between the shared prefix/suffix); false = damaged. */
bool
timelineBody(const std::string &document, std::string *body)
{
    const std::size_t prefixLen =
        std::strlen(telemetry::timelinePrefix);
    const std::size_t suffixLen =
        std::strlen(telemetry::timelineSuffix);
    if (document.size() < prefixLen + suffixLen)
        return false;
    if (document.compare(0, prefixLen, telemetry::timelinePrefix) != 0)
        return false;
    if (document.compare(document.size() - suffixLen, suffixLen,
                         telemetry::timelineSuffix) != 0)
        return false;
    if (!parseJsonValue(document).ok())
        return false;
    *body = document.substr(prefixLen,
                            document.size() - prefixLen - suffixLen);
    return true;
}

} // namespace

std::string
stitchTimelines(const std::vector<std::string> &paths,
                const std::string &extraDocument, std::size_t *damaged)
{
    std::vector<std::string> bodies;
    std::size_t bad = 0;
    for (const std::string &path : paths) {
        std::string body;
        if (timelineBody(readWholeFile(path), &body))
            bodies.push_back(std::move(body));
        else
            ++bad;
    }
    if (!extraDocument.empty()) {
        std::string body;
        if (timelineBody(extraDocument, &body))
            bodies.push_back(std::move(body));
        else
            ++bad;
    }
    if (damaged)
        *damaged = bad;
    std::string out = telemetry::timelinePrefix;
    for (std::size_t i = 0; i < bodies.size(); ++i) {
        if (i)
            out += ",\n";
        out += bodies[i];
    }
    out += telemetry::timelineSuffix;
    return out;
}

} // namespace axmemo
