/**
 * @file
 * One resolution rule for where machine-readable outputs go, shared by
 * SweepEngine::writeReport and the axmemo driver: an explicit override
 * (--out) wins, then RuntimeOptions' output directory (the driver's
 * --out / $AXMEMO_SWEEP_DIR), then the current directory. The directory
 * is created if missing and trailing slashes are normalized, replacing
 * the blind string concatenation each writer used to do on its own.
 *
 * Report/manifest/stats writers go through atomicWriteFile(): content
 * is written to a temp file in the target directory, fsync'd, and
 * renamed over the destination, so a reader (or a crash) never sees a
 * torn report — the file is either the old version or the new one.
 */

#ifndef AXMEMO_CORE_OUTPUT_PATHS_HH
#define AXMEMO_CORE_OUTPUT_PATHS_HH

#include <string>

#include "common/expected.hh"

namespace axmemo {

/**
 * Resolve the output directory: @p override (when non-empty), else
 * $AXMEMO_SWEEP_DIR (when set and non-empty), else ".". The result has
 * no trailing slash (except the root "/") and is created on disk if
 * missing; failures to create fall back to "." with a warning.
 */
std::string resolveOutputDir(const std::string &override = {});

/** Join @p dir and @p file with exactly one separator. */
std::string joinPath(const std::string &dir, const std::string &file);

/**
 * Atomically replace @p path with @p content: write to a sibling temp
 * file, fsync, rename. On failure (ErrorCode::Io) the destination is
 * untouched and the temp file is cleaned up.
 */
Expected<void> atomicWriteFile(const std::string &path,
                               const std::string &content);

} // namespace axmemo

#endif // AXMEMO_CORE_OUTPUT_PATHS_HH
