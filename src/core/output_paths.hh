/**
 * @file
 * One resolution rule for where machine-readable outputs go, shared by
 * SweepEngine::writeReport and the axmemo driver: an explicit override
 * (--out) wins, then $AXMEMO_SWEEP_DIR, then the current directory.
 * The directory is created if missing and trailing slashes are
 * normalized, replacing the blind string concatenation each writer used
 * to do on its own.
 */

#ifndef AXMEMO_CORE_OUTPUT_PATHS_HH
#define AXMEMO_CORE_OUTPUT_PATHS_HH

#include <string>

namespace axmemo {

/**
 * Resolve the output directory: @p override (when non-empty), else
 * $AXMEMO_SWEEP_DIR (when set and non-empty), else ".". The result has
 * no trailing slash (except the root "/") and is created on disk if
 * missing; failures to create fall back to "." with a warning.
 */
std::string resolveOutputDir(const std::string &override = {});

/** Join @p dir and @p file with exactly one separator. */
std::string joinPath(const std::string &dir, const std::string &file);

} // namespace axmemo

#endif // AXMEMO_CORE_OUTPUT_PATHS_HH
