/**
 * @file
 * The paper-artifact registry: every table, figure and ablation of the
 * evaluation is an Artifact — a named unit that enqueues its job matrix
 * on a SweepEngine and reduces the outcomes to a text report plus
 * machine-readable JSON rows. Artifacts self-register at static-init
 * time (AXMEMO_REGISTER_ARTIFACT), so the `axmemo` driver, the legacy
 * one-binary-per-figure harnesses, and the tests all run the exact same
 * code through runArtifact(); per-harness main() functions are one line.
 *
 * The run pipeline (runArtifact) is:
 *   banner -> enqueue(engine) -> execute -> reduce(outcomes)
 *   -> stdout text (byte-identical to the pre-registry harnesses)
 *   -> <name>_sweep.json (host-side performance)
 *   -> <name>.json (result rows, optional)
 *   -> manifest record (exact serialized config of every job)
 */

#ifndef AXMEMO_CORE_ARTIFACT_HH
#define AXMEMO_CORE_ARTIFACT_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/sweep.hh"

namespace axmemo {

/** What reduce() hands back to the runner. */
struct ArtifactResult
{
    /** Report body printed to stdout (everything after the banner). */
    std::string text;
    /**
     * One JSON object per result row. Leave empty to let the runner
     * generate the default rows: each enqueued job's workload, mode,
     * canonical config, run result and (when scored) comparison.
     */
    std::vector<std::string> jsonRows;
};

/** One paper artifact; see file comment. */
class Artifact
{
  public:
    virtual ~Artifact() = default;

    /** Registry name, and the label of every emitted file. */
    virtual std::string name() const = 0;
    /** Banner headline; empty suppresses the banner. */
    virtual std::string title() const = 0;
    /** One-line description for `axmemo --list`. */
    virtual std::string description() const = 0;

    /** Enqueue the artifact's job matrix (may be empty for artifacts
     * that compute outside the sweep engine). Called exactly once,
     * before reduce(); state needed by reduce() lives in members. */
    virtual void enqueue(SweepEngine &engine) = 0;

    /** Consume the outcomes (submission order) and build the report. */
    virtual ArtifactResult
    reduce(const std::vector<SweepOutcome> &outcomes) = 0;
};

/** Registry row for listing. */
struct ArtifactInfo
{
    std::string name;
    std::string description;
    int order = 0;
};

/** Process-wide artifact registry (populated by static registrars). */
class ArtifactRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Artifact>()>;

    static ArtifactRegistry &instance();

    /** Register @p factory; @p order controls listing/run-all order. */
    void add(int order, Factory factory);

    /** All artifacts, sorted by (order, name). */
    std::vector<ArtifactInfo> list() const;

    /** @return a fresh instance, or nullptr for unknown names. */
    std::unique_ptr<Artifact> make(const std::string &name) const;

  private:
    struct Entry
    {
        int order = 0;
        std::string name;
        std::string description;
        Factory factory;
    };
    std::vector<Entry> entries_;
};

/** Static-init helper behind AXMEMO_REGISTER_ARTIFACT. */
struct ArtifactRegistrar
{
    ArtifactRegistrar(int order, ArtifactRegistry::Factory factory);
};

/** Define at namespace scope in the artifact's .cc file. */
#define AXMEMO_REGISTER_ARTIFACT(order, cls)                                 \
    static const ::axmemo::ArtifactRegistrar axmemoArtifactReg_##cls{        \
        order, [] { return std::make_unique<cls>(); }};

/** Multi-process sharding role of one runArtifact() call. */
enum class ShardMode
{
    /** Single process: the standard pipeline. */
    Off,
    /** Cooperating worker: claim jobs through the attached ShardQueue,
     * journal outcomes to this worker's segment, and emit NO reports —
     * no stdout, no <name>.json/_sweep.json/_stats, no manifest entry.
     * Reports are the merge step's job. */
    Worker,
    /** Reduce a shard directory: union every readable journal segment
     * into the replay map, re-simulate whatever is missing, and emit
     * the full standard outputs — byte-identical to a single-process
     * run of the same artifact (same --jobs, --no-timing). */
    Merge,
};

/** How runArtifact emits its outputs. */
struct ArtifactRunOptions
{
    /** Output directory override; empty resolves $AXMEMO_SWEEP_DIR. */
    std::string outDir;
    /** Write <name>_sweep.json when the artifact enqueued jobs. */
    bool writeSweepReport = true;
    /** Write <name>.json result rows. */
    bool writeRows = false;
    /** Print the rows document to stdout instead of banner + tables. */
    bool rowsToStdout = false;
    /** Write <name>_stats.txt: one gem5-like statistics section per
     * run, with distribution stats next to their scalar twins. */
    bool writeStats = false;
    /** Engine sizing and fault policy (workers, retries, watchdog,
     * timing); the driver passes its frozen copy. */
    RuntimeOptions runtime = RuntimeOptions::global();
    /** Checkpoint every completed job to <name>_sweep.ckpt; the file
     * is deleted again after a fully successful run. */
    bool journal = false;
    /** Replay a matching checkpoint before simulating (implies
     * journal). */
    bool resume = false;
    /** Sharding role; Worker requires queue, Merge requires shardDir. */
    ShardMode shardMode = ShardMode::Off;
    /** Worker mode: the shared work-queue (owned by the driver, shared
     * across every artifact of the invocation). */
    ShardQueue *queue = nullptr;
    /** Merge mode: the shard directory holding journal segments and
     * per-worker shard manifests. */
    std::string shardDir;
};

/** Driver-side record of one completed runArtifact. */
struct ArtifactRunRecord
{
    /** Manifest entry: artifact, wall seconds, every job's exact
     * serialized config — plus per-run status when jobs faulted. */
    std::string manifestRun;
    double wallSeconds = 0.0;

    // Job-status aggregation (mirrors SweepMetrics).
    std::size_t jobs = 0;
    std::size_t failedJobs = 0;
    std::size_t timedOutJobs = 0;
    std::size_t skippedJobs = 0;
    std::size_t restoredJobs = 0;
    std::size_t retriedJobs = 0;
    /** Jobs another shard worker completed (Worker mode only). */
    std::size_t foreignJobs = 0;
    /** Journal segments probe() rejected (Merge mode only); their jobs
     * were re-simulated, but the driver reports a nonzero exit. */
    std::size_t damagedSegments = 0;
    /** Simulated volume, for the per-worker shard manifest. */
    std::uint64_t simulatedMacroInsts = 0;

    std::size_t
    faultedJobs() const
    {
        return failedJobs + timedOutJobs + skippedJobs;
    }
};

/**
 * Execute one artifact through the standard pipeline. Per-job faults
 * are contained by the sweep engine and reported through the record's
 * status counts (the driver turns faultedJobs() into a nonzero exit);
 * the Error return covers artifact-level failures — enqueue/reduce
 * threw, or an emitted file could not be written.
 */
Expected<ArtifactRunRecord>
runArtifact(Artifact &artifact, const ArtifactRunOptions &options = {});

/** Whole main() of a legacy standalone harness binary: quiet logging,
 * env-resolved output directory, stdout identical to the pre-registry
 * harness (a one-line deprecation notice goes to stderr only).
 * @return process exit code; nonzero when any job faulted. */
int artifactStandaloneMain(const std::string &name);

/** printf-append to a std::string (report-text building helper). */
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void
appendf(std::string &out, const char *fmt, ...);

} // namespace axmemo

#endif // AXMEMO_CORE_ARTIFACT_HH
