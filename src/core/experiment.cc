#include "core/experiment.hh"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/error_metrics.hh"
#include "common/log.hh"
#include "common/run_control.hh"
#include "common/runtime_options.hh"
#include "core/memo_backends.hh"
#include "obs/span.hh"

namespace axmemo {

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Baseline: return "baseline";
      case Mode::AxMemo: return "axmemo";
      case Mode::AxMemoNoTrunc: return "axmemo-notrunc";
      case Mode::SoftwareLut: return "software-lut";
      case Mode::Atm: return "atm";
    }
    return "???";
}

ExperimentRunner::ExperimentRunner(const ExperimentConfig &config)
    : config_(config)
{
}

RunResult
ExperimentRunner::run(Workload &workload,
                      const std::string &backend) const
{
    SimMemory mem;
    workload.prepare(mem, config_.dataset);
    const Program baselineProg = workload.build();
    return runPrepared(workload, backend, baselineProg, mem);
}

RunSession::RunSession(const ExperimentConfig &config,
                       const Workload &workload,
                       const std::string &backend,
                       const Program &baselineProg, SimMemory &mem,
                       BackendSessionHooks hooks)
    : workload_(workload), mem_(mem), backend_(backend),
      energyModel_(config.energy),
      ctx_{workload, config,     baselineProg, mem,
           simConfig_, energyModel_, hooks}
{
    const Expected<const MemoBackend *> resolved =
        memoBackends().resolve(backend);
    if (!resolved.ok())
        throw AxException(resolved.error());

    simConfig_.cpu = config.cpu;
    simConfig_.hierarchy = config.hierarchy;
    simConfig_.control =
        hooks.control && hooks.control->active() ? hooks.control
                                                 : nullptr;
    session_ = resolved.value()->prepare(ctx_);
}

RunSession::~RunSession() = default;

bool
RunSession::step()
{
    if (ctx_.session.control)
        ctx_.session.control->check("backend");
    if (ctx_.session.spanCategory) {
        AXM_SPAN(ctx_.session.spanCategory, session_->phase());
        return session_->step();
    }
    return session_->step();
}

RunResult
RunSession::finish()
{
    RunResult result;
    result.backend = backend_;
    session_->finish(result);
    result.outputs = workload_.readOutputs(mem_);
    return result;
}

RunResult
ExperimentRunner::runPrepared(const Workload &workload,
                              const std::string &backend,
                              const Program &baselineProg,
                              SimMemory &mem,
                              const RunControl *control) const
{
    RunSession session(config_, workload, backend, baselineProg, mem,
                       BackendSessionHooks{control, nullptr});
    while (session.step()) {
    }
    return session.finish();
}

Comparison
ExperimentRunner::compare(Workload &workload,
                          const std::string &backend) const
{
    return score(workload, run(workload, Mode::Baseline),
                 run(workload, backend));
}

Comparison
ExperimentRunner::score(const Workload &workload, RunResult baseline,
                        RunResult subject)
{
    Comparison cmp;
    cmp.baseline = std::move(baseline);
    cmp.subject = std::move(subject);

    if (cmp.subject.stats.cycles == 0 ||
        cmp.baseline.stats.cycles == 0)
        axm_panic("zero-cycle run for ", workload.name());

    cmp.speedup = static_cast<double>(cmp.baseline.stats.cycles) /
                  static_cast<double>(cmp.subject.stats.cycles);
    cmp.energyReduction =
        cmp.baseline.energyPj() / cmp.subject.energyPj();
    cmp.normalizedUops =
        static_cast<double>(cmp.subject.stats.uops) /
        static_cast<double>(cmp.baseline.stats.uops);
    cmp.memoUopShare =
        static_cast<double>(cmp.subject.stats.memoUops) /
        static_cast<double>(cmp.baseline.stats.uops);

    if (workload.qualityMetric() == QualityMetric::Misclassification) {
        cmp.qualityLoss = misclassificationRate(cmp.baseline.outputs,
                                                cmp.subject.outputs);
    } else {
        cmp.qualityLoss = normalizedSquaredError(cmp.baseline.outputs,
                                                 cmp.subject.outputs);
    }
    // Element-wise relative error with a full-scale floor: deviations on
    // near-zero elements are judged against 1% of the output range
    // (the PSNR-style convention for image-like data), not against the
    // element itself.
    double maxAbs = 0.0;
    for (double v : cmp.baseline.outputs)
        maxAbs = std::max(maxAbs, std::abs(v));
    cmp.errorCdf = elementwiseRelativeErrorCdf(
        cmp.baseline.outputs, cmp.subject.outputs,
        std::max(1e-6, 0.01 * maxAbs));
    return cmp;
}

double
ExperimentRunner::benchScaleFromEnv(double fallback)
{
    // One parser for every knob: RuntimeOptions keeps the defensive
    // warnings the inline AXMEMO_FULL/AXMEMO_SCALE parsing had.
    return RuntimeOptions::global().benchScale(fallback);
}

} // namespace axmemo
