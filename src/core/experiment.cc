#include "core/experiment.hh"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/error_metrics.hh"
#include "common/log.hh"
#include "common/runtime_options.hh"

namespace axmemo {

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Baseline: return "baseline";
      case Mode::AxMemo: return "axmemo";
      case Mode::AxMemoNoTrunc: return "axmemo-notrunc";
      case Mode::SoftwareLut: return "software-lut";
      case Mode::Atm: return "atm";
    }
    return "???";
}

ExperimentRunner::ExperimentRunner(const ExperimentConfig &config)
    : config_(config)
{
}

MemoUnitConfig
ExperimentRunner::memoConfigFor(const Workload &workload,
                                unsigned dataBytes) const
{
    MemoUnitConfig memo;
    memo.crc = CrcSpec::ofWidth(config_.crcBits);
    memo.l1Lut.sizeBytes = config_.lut.l1Bytes;
    memo.l1Lut.dataBytes = dataBytes;
    memo.l2LutBytes = config_.lut.l2Bytes;
    memo.quality.enabled = config_.qualityMonitor;
    memo.quality.floatLanes = workload.monitorLanes();
    memo.quality.integerData = workload.integerOutputs();
    memo.adaptive = config_.adaptive;
    memo.l2Policy = config_.l2Policy;
    return memo;
}

void
ExperimentRunner::accumulateSwCounters(const Simulator &sim,
                                       const SwTransformResult &tr,
                                       RunResult &result)
{
    for (const auto &counter : tr.counters) {
        result.lookups += sim.intReg(counter.lookups);
        result.hits += sim.intReg(counter.hits);
    }
}

RunResult
ExperimentRunner::run(Workload &workload, Mode mode) const
{
    SimMemory mem;
    workload.prepare(mem, config_.dataset);
    const Program baselineProg = workload.build();
    return runPrepared(workload, mode, baselineProg, mem);
}

RunResult
ExperimentRunner::runPrepared(const Workload &workload, Mode mode,
                              const Program &baselineProg,
                              SimMemory &mem,
                              const RunControl *control) const
{
    RunResult result;
    result.mode = mode;

    SimConfig simConfig;
    simConfig.cpu = config_.cpu;
    simConfig.hierarchy = config_.hierarchy;
    simConfig.control = control && control->active() ? control
                                                     : nullptr;

    const EnergyModel energyModel(config_.energy);

    switch (mode) {
      case Mode::Baseline: {
        Simulator sim(baselineProg, mem, simConfig);
        result.stats = sim.run();
        result.energy = energyModel.compute(result.stats, nullptr);
        break;
      }
      case Mode::AxMemo:
      case Mode::AxMemoNoTrunc: {
        MemoSpec spec = workload.memoSpec();
        if (mode == Mode::AxMemoNoTrunc)
            spec = spec.withUniformTruncation(0);
        else if (config_.truncOverride >= 0)
            spec = spec.withUniformTruncation(
                static_cast<unsigned>(config_.truncOverride));
        TransformResult tr = MemoTransform::apply(baselineProg, spec);
        simConfig.memoEnabled = true;
        simConfig.memo = memoConfigFor(workload, tr.dataBytes);
        Simulator sim(tr.program, mem, simConfig);
        result.stats = sim.run();
        result.energy =
            energyModel.compute(result.stats, &simConfig.memo);
        result.lookups = result.stats.memo.lookups;
        result.hits = result.stats.memo.hits();
        result.regions = std::move(tr.regions);
        break;
      }
      case Mode::SoftwareLut:
      case Mode::Atm: {
        const MemoSpec spec = workload.memoSpec();
        SwTransformResult tr =
            mode == Mode::Atm
                ? AtmTransform::apply(baselineProg, spec, mem,
                                      config_.atm)
                : SoftwareMemoTransform::apply(baselineProg, spec, mem,
                                               config_.software);
        Simulator sim(tr.program, mem, simConfig);
        result.stats = sim.run();
        result.energy = energyModel.compute(result.stats, nullptr);
        accumulateSwCounters(sim, tr, result);
        result.regions = std::move(tr.regions);
        break;
      }
    }

    result.outputs = workload.readOutputs(mem);
    return result;
}

Comparison
ExperimentRunner::compare(Workload &workload, Mode mode) const
{
    return score(workload, run(workload, Mode::Baseline),
                 run(workload, mode));
}

Comparison
ExperimentRunner::score(const Workload &workload, RunResult baseline,
                        RunResult subject)
{
    Comparison cmp;
    cmp.baseline = std::move(baseline);
    cmp.subject = std::move(subject);

    if (cmp.subject.stats.cycles == 0 ||
        cmp.baseline.stats.cycles == 0)
        axm_panic("zero-cycle run for ", workload.name());

    cmp.speedup = static_cast<double>(cmp.baseline.stats.cycles) /
                  static_cast<double>(cmp.subject.stats.cycles);
    cmp.energyReduction =
        cmp.baseline.energyPj() / cmp.subject.energyPj();
    cmp.normalizedUops =
        static_cast<double>(cmp.subject.stats.uops) /
        static_cast<double>(cmp.baseline.stats.uops);
    cmp.memoUopShare =
        static_cast<double>(cmp.subject.stats.memoUops) /
        static_cast<double>(cmp.baseline.stats.uops);

    if (workload.qualityMetric() == QualityMetric::Misclassification) {
        cmp.qualityLoss = misclassificationRate(cmp.baseline.outputs,
                                                cmp.subject.outputs);
    } else {
        cmp.qualityLoss = normalizedSquaredError(cmp.baseline.outputs,
                                                 cmp.subject.outputs);
    }
    // Element-wise relative error with a full-scale floor: deviations on
    // near-zero elements are judged against 1% of the output range
    // (the PSNR-style convention for image-like data), not against the
    // element itself.
    double maxAbs = 0.0;
    for (double v : cmp.baseline.outputs)
        maxAbs = std::max(maxAbs, std::abs(v));
    cmp.errorCdf = elementwiseRelativeErrorCdf(
        cmp.baseline.outputs, cmp.subject.outputs,
        std::max(1e-6, 0.01 * maxAbs));
    return cmp;
}

double
ExperimentRunner::benchScaleFromEnv(double fallback)
{
    // One parser for every knob: RuntimeOptions keeps the defensive
    // warnings the inline AXMEMO_FULL/AXMEMO_SCALE parsing had.
    return RuntimeOptions::global().benchScale(fallback);
}

} // namespace axmemo
