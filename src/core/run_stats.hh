/**
 * @file
 * Per-run StatSet assembly: one gem5-like statistics section per sweep
 * job, combining the scalar counters the report tables already use with
 * the distribution stats the obs layer collects (hit-streak lengths,
 * lookup latency, region invocation counts, L2 set occupancy) and
 * derived formula stats (IPC, hit rate, energy).
 *
 * Every distribution is emitted next to its scalar twin so consumers
 * can cross-check: memo_hit_streak::sum == memo_hits,
 * memo_lookup_latency::samples == memo_lookups,
 * region_invocations::sum == region_entries, and
 * l2_set_occupancy::sum == l2_valid_lines. The driver writes the text
 * form as <artifact>_stats.txt and embeds the JSON form per run in
 * manifest.json.
 */

#ifndef AXMEMO_CORE_RUN_STATS_HH
#define AXMEMO_CORE_RUN_STATS_HH

#include <string>

#include "core/sweep.hh"
#include "obs/stats.hh"

namespace axmemo {

/** Assemble the full StatSet of one completed sweep job. */
StatSet runStatSet(const SweepJob &job, const SweepOutcome &outcome);

/** One "Begin/End Simulation Statistics" text section for the run,
 * headed by "<runName>: <workload> <mode>". */
std::string runStatsSection(const std::string &runName,
                            const SweepJob &job,
                            const SweepOutcome &outcome);

} // namespace axmemo

#endif // AXMEMO_CORE_RUN_STATS_HH
