/**
 * @file
 * The sweep checkpoint journal: crash-safe resume for long sweeps.
 *
 * While a sweep executes, every successfully completed job is appended
 * to `<label>_sweep.ckpt` as one self-contained JSONL record and the
 * line is flushed immediately, so a SIGKILL (or power loss after the OS
 * buffers drain) costs at most the jobs that were in flight. A later
 * `axmemo run --resume` loads the journal before phase A, keys each
 * record against the re-enqueued jobs, and replays matching outcomes
 * instead of re-simulating them.
 *
 * Identity. A record's key is the job's full identity:
 * `workload|mode|scored|<canonical config JSON>` (core/config_io). The
 * canonical serialization guarantees string equality == configuration
 * equality, so changing any knob between run and resume silently
 * invalidates exactly the affected jobs — they re-simulate, the rest
 * replay.
 *
 * Fidelity. The record stores the complete SweepOutcome — SimStats with
 * every distribution bucket, energy breakdown, outputs, regions, and
 * the scored Comparison — with doubles in %.17g, so a resumed run's
 * reports are byte-identical to an uninterrupted run's (host timing
 * excluded; see RuntimeOptions::reportTiming).
 *
 * Tolerance. load() ignores any line it cannot parse — in particular a
 * torn final line from a mid-write kill. An ignored line only means
 * that job re-simulates; determinism makes that equivalent to a replay.
 */

#ifndef AXMEMO_CORE_RUN_JOURNAL_HH
#define AXMEMO_CORE_RUN_JOURNAL_HH

#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/expected.hh"
#include "core/sweep.hh"

namespace axmemo {

/** Append-side handle and codec for the sweep checkpoint journal. */
class SweepJournal
{
  public:
    SweepJournal() = default;
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /** Journal path for sweep label @p label inside @p outDir. */
    static std::string pathFor(const std::string &label,
                               const std::string &outDir);

    /** Full identity of @p job (see file comment). */
    static std::string jobKey(const SweepJob &job);

    /** One JSONL record (no trailing newline) for a completed job. */
    static std::string encodeLine(const std::string &key,
                                  const SweepOutcome &outcome);

    /** Inverse of encodeLine; Parse errors mean "skip this line". */
    static Expected<std::pair<std::string, SweepOutcome>>
    decodeLine(const std::string &line);

    /** What probe() learned about a journal file's header. */
    struct HeaderInfo
    {
        int version = 0;
    };

    /**
     * Validate @p path's version header without loading records. A
     * structured error — never a fatal — classifies damage: Io for a
     * missing/unreadable file, Parse for a garbled header line or an
     * unsupported version. `axmemo merge` probes every shard segment
     * with this so one corrupt shard is reported and skipped (its jobs
     * re-simulate) instead of aborting the whole reduction.
     */
    static Expected<HeaderInfo> probe(const std::string &path);

    /**
     * Load every decodable record of @p path into a key->outcome map.
     * A missing file is an empty map; torn or garbled lines (including
     * the version header) are skipped. @p skipped, when non-null,
     * receives the number of non-header lines that failed to decode.
     */
    static std::unordered_map<std::string, SweepOutcome>
    load(const std::string &path, std::size_t *skipped = nullptr);

    /**
     * Open @p path for appending. @p fresh truncates and writes a new
     * version header (start of a run); otherwise records append after
     * the existing ones (resume).
     */
    Expected<void> open(const std::string &path, bool fresh);

    /** Append one record and flush it to the OS immediately. */
    void append(const std::string &key, const SweepOutcome &outcome);

    /** Flush and close (idempotent). */
    void close();

    bool isOpen() const { return file_ != nullptr; }
    const std::string &path() const { return path_; }

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
};

} // namespace axmemo

#endif // AXMEMO_CORE_RUN_JOURNAL_HH
