/**
 * @file
 * Umbrella header: the public API of the AxMemo reproduction.
 *
 * Quickstart:
 * @code
 *   auto workload = axmemo::makeWorkload("blackscholes");
 *   axmemo::ExperimentConfig config;
 *   config.dataset.scale = 0.125;
 *   config.lut = {8 * 1024, 512 * 1024};
 *   axmemo::ExperimentRunner runner(config);
 *   auto cmp = runner.compare(*workload, axmemo::Mode::AxMemo);
 *   // cmp.speedup, cmp.energyReduction, cmp.qualityLoss, ...
 * @endcode
 */

#ifndef AXMEMO_CORE_AXMEMO_HH
#define AXMEMO_CORE_AXMEMO_HH

#include "common/error_metrics.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "compiler/atm_transform.hh"
#include "compiler/dddg.hh"
#include "compiler/iact_transform.hh"
#include "compiler/region_finder.hh"
#include "compiler/software_transform.hh"
#include "compiler/trace.hh"
#include "compiler/speedup_estimator.hh"
#include "compiler/transform.hh"
#include "core/experiment.hh"
#include "core/memo_backends.hh"
#include "core/sweep.hh"
#include "core/table.hh"
#include "core/truncation_tuner.hh"
#include "energy/area_model.hh"
#include "energy/energy_model.hh"
#include "isa/builder.hh"
#include "isa/disasm.hh"
#include "memo/backend.hh"
#include "memo/memo_unit.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

#endif // AXMEMO_CORE_AXMEMO_HH
