/**
 * @file
 * Machine-readable (JSON) export of run results and comparisons, so the
 * bench output can feed plotting scripts without scraping text tables.
 * A minimal escaping serializer — no external dependency.
 */

#ifndef AXMEMO_CORE_JSON_EXPORT_HH
#define AXMEMO_CORE_JSON_EXPORT_HH

#include <string>

#include "core/experiment.hh"

namespace axmemo {

/** Minimal JSON object/array builder. */
class JsonWriter
{
  public:
    /** Serialize one run result as a JSON object. */
    static std::string toJson(const RunResult &result);

    /** Serialize a comparison (baseline + subject + derived metrics). */
    static std::string toJson(const Comparison &cmp,
                              const std::string &workload);

    /** Escape a string per RFC 8259. */
    static std::string escape(const std::string &raw);
};

} // namespace axmemo

#endif // AXMEMO_CORE_JSON_EXPORT_HH
