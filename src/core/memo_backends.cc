#include "core/memo_backends.hh"

#include <memory>
#include <utility>

#include "common/log.hh"
#include "compiler/atm_transform.hh"
#include "compiler/iact_transform.hh"
#include "compiler/software_transform.hh"
#include "compiler/transform.hh"
#include "core/experiment.hh"
#include "energy/energy_model.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace axmemo {

namespace {

/** Hardware memo-unit configuration for one run (LUT geometry, CRC
 * width, quality monitor wiring) — the glue between ExperimentConfig
 * and the simulator's memo unit. */
MemoUnitConfig
memoConfigFor(const ExperimentConfig &config, const Workload &workload,
              unsigned dataBytes)
{
    MemoUnitConfig memo;
    memo.crc = CrcSpec::ofWidth(config.crcBits);
    memo.l1Lut.sizeBytes = config.lut.l1Bytes;
    memo.l1Lut.dataBytes = dataBytes;
    memo.l2LutBytes = config.lut.l2Bytes;
    memo.quality.enabled = config.qualityMonitor;
    memo.quality.floatLanes = workload.monitorLanes();
    memo.quality.integerData = workload.integerOutputs();
    memo.adaptive = config.adaptive;
    memo.l2Policy = config.l2Policy;
    return memo;
}

/** Fold a software transform's per-region counter registers into the
 * run's lookup/hit totals. */
void
accumulateSwCounters(const Simulator &sim, const SwTransformResult &tr,
                     RunResult &result)
{
    for (const auto &counter : tr.counters) {
        result.lookups += sim.intReg(counter.lookups);
        result.hits += sim.intReg(counter.hits);
    }
}

/**
 * Two-phase session shared by all builtin backends: "build" applies
 * the backend's transform and constructs the simulator, "simulate"
 * runs it to halt; finish() folds energy and counters. The statement
 * order within each phase is exactly the order of the pre-split
 * monolithic run() bodies — the seam-equivalence suite holds the batch
 * path to byte identity against the frozen legacy switch.
 */
class BuiltinSession : public BackendSession
{
  public:
    explicit BuiltinSession(const BackendRunContext &ctx) : ctx_(ctx) {}

    bool
    step() override
    {
        if (phase_ == 0) {
            build();
            ++phase_;
            return true;
        }
        if (phase_ == 1) {
            stats_ = sim_->run();
            ++phase_;
        }
        return false;
    }

    const char *
    phase() const override
    {
        return phase_ == 0 ? "build" : phase_ == 1 ? "simulate" : "done";
    }

    void
    finish(RunResult &result) override
    {
        if (phase_ < 2)
            axm_panic("BackendSession::finish before completion (in "
                      "phase '", phase(), "')");
        result.stats = stats_;
        fold(result);
    }

  protected:
    /** Transform as needed and construct sim_. */
    virtual void build() = 0;
    /** Fold energy/lookups/regions into @p result (stats are set). */
    virtual void fold(RunResult &result) = 0;

    const BackendRunContext &ctx_;
    std::unique_ptr<Simulator> sim_;
    SimStats stats_{};

  private:
    int phase_ = 0;
};

class BaselineSession final : public BuiltinSession
{
  public:
    using BuiltinSession::BuiltinSession;

  protected:
    void
    build() override
    {
        sim_ = std::make_unique<Simulator>(ctx_.baselineProg, ctx_.mem,
                                           ctx_.sim);
    }
    void
    fold(RunResult &result) override
    {
        result.energy = ctx_.energy.compute(result.stats, nullptr);
    }
};

class BaselineBackend final : public MemoBackend
{
  public:
    std::string name() const override { return "baseline"; }
    std::string
    description() const override
    {
        return "unmodified program; the reference every comparison is "
               "scored against";
    }
    std::string
    configSummary() const override
    {
        return "(shared cpu/hierarchy/energy config only)";
    }

    std::unique_ptr<BackendSession>
    prepare(const BackendRunContext &ctx) const override
    {
        return std::make_unique<BaselineSession>(ctx);
    }
};

class AxMemoSession final : public BuiltinSession
{
  public:
    AxMemoSession(const BackendRunContext &ctx, bool noTrunc)
        : BuiltinSession(ctx), noTrunc_(noTrunc)
    {
    }

  protected:
    void
    build() override
    {
        MemoSpec spec = ctx_.workload.memoSpec();
        if (noTrunc_)
            spec = spec.withUniformTruncation(0);
        else if (ctx_.config.truncOverride >= 0)
            spec = spec.withUniformTruncation(
                static_cast<unsigned>(ctx_.config.truncOverride));
        tr_ = MemoTransform::apply(ctx_.baselineProg, spec);
        ctx_.sim.memoEnabled = true;
        ctx_.sim.memo = memoConfigFor(ctx_.config, ctx_.workload,
                                      tr_.dataBytes);
        sim_ = std::make_unique<Simulator>(tr_.program, ctx_.mem,
                                           ctx_.sim);
    }
    void
    fold(RunResult &result) override
    {
        result.energy =
            ctx_.energy.compute(result.stats, &ctx_.sim.memo);
        result.lookups = result.stats.memo.lookups;
        result.hits = result.stats.memo.hits();
        result.regions = std::move(tr_.regions);
    }

  private:
    const bool noTrunc_;
    TransformResult tr_;
};

/** The hardware memoization unit, with or without input truncation. */
class AxMemoBackend final : public MemoBackend
{
  public:
    explicit AxMemoBackend(bool noTrunc) : noTrunc_(noTrunc) {}

    std::string
    name() const override
    {
        return noTrunc_ ? "axmemo-notrunc" : "axmemo";
    }
    std::string
    description() const override
    {
        return noTrunc_ ? "hardware memoization with truncation "
                          "disabled (Fig. 11 ablation)"
                        : "hardware memoization unit with Table 2 "
                          "truncation (the paper's design)";
    }
    std::string
    configSummary() const override
    {
        return noTrunc_ ? "lut, crc_bits, quality_monitor, adaptive, "
                          "l2_policy"
                        : "lut, crc_bits, quality_monitor, "
                          "trunc_override, adaptive, l2_policy";
    }
    bool hardwareMemo() const override { return true; }

    std::unique_ptr<BackendSession>
    prepare(const BackendRunContext &ctx) const override
    {
        return std::make_unique<AxMemoSession>(ctx, noTrunc_);
    }

  private:
    const bool noTrunc_;
};

/** Session of the pure-software rewriting backends; the backend
 * supplies its transform as a callable. */
class SoftwareSession final : public BuiltinSession
{
  public:
    using TransformFn =
        SwTransformResult (*)(const BackendRunContext &ctx);

    SoftwareSession(const BackendRunContext &ctx, TransformFn transform)
        : BuiltinSession(ctx), transform_(transform)
    {
    }

  protected:
    void
    build() override
    {
        tr_ = transform_(ctx_);
        sim_ = std::make_unique<Simulator>(tr_.program, ctx_.mem,
                                           ctx_.sim);
    }
    void
    fold(RunResult &result) override
    {
        result.energy = ctx_.energy.compute(result.stats, nullptr);
        accumulateSwCounters(*sim_, tr_, result);
        result.regions = std::move(tr_.regions);
    }

  private:
    TransformFn transform_;
    SwTransformResult tr_;
};

class SoftwareLutBackend final : public MemoBackend
{
  public:
    std::string name() const override { return "software-lut"; }
    std::string
    description() const override
    {
        return "software CRC + direct-indexed array LUT contender "
               "(Section 6.2)";
    }
    std::string configSummary() const override { return "software"; }

    std::unique_ptr<BackendSession>
    prepare(const BackendRunContext &ctx) const override
    {
        return std::make_unique<SoftwareSession>(
            ctx, +[](const BackendRunContext &c) {
                return SoftwareMemoTransform::apply(
                    c.baselineProg, c.workload.memoSpec(), c.mem,
                    c.config.software);
            });
    }
};

class AtmBackend final : public MemoBackend
{
  public:
    std::string name() const override { return "atm"; }
    std::string
    description() const override
    {
        return "Approximate Task Memoization: sampled-byte hash plus "
               "task dispatch cost";
    }
    std::string configSummary() const override { return "atm"; }

    std::unique_ptr<BackendSession>
    prepare(const BackendRunContext &ctx) const override
    {
        return std::make_unique<SoftwareSession>(
            ctx, +[](const BackendRunContext &c) {
                return AtmTransform::apply(c.baselineProg,
                                           c.workload.memoSpec(),
                                           c.mem, c.config.atm);
            });
    }
};

class IactBackend final : public MemoBackend
{
  public:
    std::string name() const override { return "iact"; }
    std::string
    description() const override
    {
        return "iACT/HPAC-style software memoization: relative-error "
               "input matching in per-thread pools";
    }
    std::string configSummary() const override { return "iact"; }

    std::unique_ptr<BackendSession>
    prepare(const BackendRunContext &ctx) const override
    {
        return std::make_unique<SoftwareSession>(
            ctx, +[](const BackendRunContext &c) {
                return IactTransform::apply(c.baselineProg,
                                            c.workload.memoSpec(),
                                            c.mem, c.config.iact);
            });
    }
};

} // namespace

MemoBackendRegistry &
memoBackends()
{
    static const bool registered = [] {
        MemoBackendRegistry &r = MemoBackendRegistry::instance();
        r.add(0, std::make_unique<BaselineBackend>());
        r.add(1, std::make_unique<AxMemoBackend>(false));
        r.add(2, std::make_unique<AxMemoBackend>(true));
        r.add(3, std::make_unique<SoftwareLutBackend>());
        r.add(4, std::make_unique<AtmBackend>());
        r.add(5, std::make_unique<IactBackend>());
        return true;
    }();
    (void)registered;
    return MemoBackendRegistry::instance();
}

} // namespace axmemo
