#include "core/memo_backends.hh"

#include <memory>
#include <utility>

#include "compiler/atm_transform.hh"
#include "compiler/iact_transform.hh"
#include "compiler/software_transform.hh"
#include "compiler/transform.hh"
#include "core/experiment.hh"
#include "energy/energy_model.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace axmemo {

namespace {

/** Hardware memo-unit configuration for one run (LUT geometry, CRC
 * width, quality monitor wiring) — the glue between ExperimentConfig
 * and the simulator's memo unit. */
MemoUnitConfig
memoConfigFor(const ExperimentConfig &config, const Workload &workload,
              unsigned dataBytes)
{
    MemoUnitConfig memo;
    memo.crc = CrcSpec::ofWidth(config.crcBits);
    memo.l1Lut.sizeBytes = config.lut.l1Bytes;
    memo.l1Lut.dataBytes = dataBytes;
    memo.l2LutBytes = config.lut.l2Bytes;
    memo.quality.enabled = config.qualityMonitor;
    memo.quality.floatLanes = workload.monitorLanes();
    memo.quality.integerData = workload.integerOutputs();
    memo.adaptive = config.adaptive;
    memo.l2Policy = config.l2Policy;
    return memo;
}

/** Fold a software transform's per-region counter registers into the
 * run's lookup/hit totals. */
void
accumulateSwCounters(const Simulator &sim, const SwTransformResult &tr,
                     RunResult &result)
{
    for (const auto &counter : tr.counters) {
        result.lookups += sim.intReg(counter.lookups);
        result.hits += sim.intReg(counter.hits);
    }
}

class BaselineBackend final : public MemoBackend
{
  public:
    std::string name() const override { return "baseline"; }
    std::string
    description() const override
    {
        return "unmodified program; the reference every comparison is "
               "scored against";
    }
    std::string
    configSummary() const override
    {
        return "(shared cpu/hierarchy/energy config only)";
    }

    void
    run(const BackendRunContext &ctx, RunResult &result) const override
    {
        Simulator sim(ctx.baselineProg, ctx.mem, ctx.sim);
        result.stats = sim.run();
        result.energy = ctx.energy.compute(result.stats, nullptr);
    }
};

/** The hardware memoization unit, with or without input truncation. */
class AxMemoBackend final : public MemoBackend
{
  public:
    explicit AxMemoBackend(bool noTrunc) : noTrunc_(noTrunc) {}

    std::string
    name() const override
    {
        return noTrunc_ ? "axmemo-notrunc" : "axmemo";
    }
    std::string
    description() const override
    {
        return noTrunc_ ? "hardware memoization with truncation "
                          "disabled (Fig. 11 ablation)"
                        : "hardware memoization unit with Table 2 "
                          "truncation (the paper's design)";
    }
    std::string
    configSummary() const override
    {
        return noTrunc_ ? "lut, crc_bits, quality_monitor, adaptive, "
                          "l2_policy"
                        : "lut, crc_bits, quality_monitor, "
                          "trunc_override, adaptive, l2_policy";
    }
    bool hardwareMemo() const override { return true; }

    void
    run(const BackendRunContext &ctx, RunResult &result) const override
    {
        MemoSpec spec = ctx.workload.memoSpec();
        if (noTrunc_)
            spec = spec.withUniformTruncation(0);
        else if (ctx.config.truncOverride >= 0)
            spec = spec.withUniformTruncation(
                static_cast<unsigned>(ctx.config.truncOverride));
        TransformResult tr = MemoTransform::apply(ctx.baselineProg, spec);
        ctx.sim.memoEnabled = true;
        ctx.sim.memo = memoConfigFor(ctx.config, ctx.workload,
                                     tr.dataBytes);
        Simulator sim(tr.program, ctx.mem, ctx.sim);
        result.stats = sim.run();
        result.energy = ctx.energy.compute(result.stats, &ctx.sim.memo);
        result.lookups = result.stats.memo.lookups;
        result.hits = result.stats.memo.hits();
        result.regions = std::move(tr.regions);
    }

  private:
    const bool noTrunc_;
};

/** Shared driver for the pure-software rewriting backends. */
class SoftwareBackendBase : public MemoBackend
{
  protected:
    /** Run @p tr (a software rewrite of the baseline program). */
    static void
    simulate(const BackendRunContext &ctx, SwTransformResult tr,
             RunResult &result)
    {
        Simulator sim(tr.program, ctx.mem, ctx.sim);
        result.stats = sim.run();
        result.energy = ctx.energy.compute(result.stats, nullptr);
        accumulateSwCounters(sim, tr, result);
        result.regions = std::move(tr.regions);
    }
};

class SoftwareLutBackend final : public SoftwareBackendBase
{
  public:
    std::string name() const override { return "software-lut"; }
    std::string
    description() const override
    {
        return "software CRC + direct-indexed array LUT contender "
               "(Section 6.2)";
    }
    std::string configSummary() const override { return "software"; }

    void
    run(const BackendRunContext &ctx, RunResult &result) const override
    {
        simulate(ctx,
                 SoftwareMemoTransform::apply(ctx.baselineProg,
                                              ctx.workload.memoSpec(),
                                              ctx.mem,
                                              ctx.config.software),
                 result);
    }
};

class AtmBackend final : public SoftwareBackendBase
{
  public:
    std::string name() const override { return "atm"; }
    std::string
    description() const override
    {
        return "Approximate Task Memoization: sampled-byte hash plus "
               "task dispatch cost";
    }
    std::string configSummary() const override { return "atm"; }

    void
    run(const BackendRunContext &ctx, RunResult &result) const override
    {
        simulate(ctx,
                 AtmTransform::apply(ctx.baselineProg,
                                     ctx.workload.memoSpec(), ctx.mem,
                                     ctx.config.atm),
                 result);
    }
};

class IactBackend final : public SoftwareBackendBase
{
  public:
    std::string name() const override { return "iact"; }
    std::string
    description() const override
    {
        return "iACT/HPAC-style software memoization: relative-error "
               "input matching in per-thread pools";
    }
    std::string configSummary() const override { return "iact"; }

    void
    run(const BackendRunContext &ctx, RunResult &result) const override
    {
        simulate(ctx,
                 IactTransform::apply(ctx.baselineProg,
                                      ctx.workload.memoSpec(), ctx.mem,
                                      ctx.config.iact),
                 result);
    }
};

} // namespace

MemoBackendRegistry &
memoBackends()
{
    static const bool registered = [] {
        MemoBackendRegistry &r = MemoBackendRegistry::instance();
        r.add(0, std::make_unique<BaselineBackend>());
        r.add(1, std::make_unique<AxMemoBackend>(false));
        r.add(2, std::make_unique<AxMemoBackend>(true));
        r.add(3, std::make_unique<SoftwareLutBackend>());
        r.add(4, std::make_unique<AtmBackend>());
        r.add(5, std::make_unique<IactBackend>());
        return true;
    }();
    (void)registered;
    return MemoBackendRegistry::instance();
}

} // namespace axmemo
