#include "core/shard_queue.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include <dirent.h>

#include "common/lease.hh"
#include "common/log.hh"
#include "core/json_export.hh"
#include "core/output_paths.hh"
#include "obs/telemetry.hh"

namespace axmemo {

namespace {

/** Files in @p dir whose name starts with @p prefix and ends with
 * @p suffix, as full paths sorted by name (deterministic merges). */
std::vector<std::string>
listMatching(const std::string &dir, const std::string &prefix,
             const std::string &suffix)
{
    std::vector<std::string> paths;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return paths;
    while (const dirent *entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name.size() <= prefix.size() + suffix.size())
            continue;
        if (name.rfind(prefix, 0) != 0)
            continue;
        if (name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        paths.push_back(joinPath(dir, name));
    }
    ::closedir(d);
    std::sort(paths.begin(), paths.end());
    return paths;
}

} // namespace

ShardQueue::ShardQueue(std::string dir, std::string workerId,
                       double leaseSeconds)
    : dir_(std::move(dir)), workerId_(std::move(workerId)),
      leaseSeconds_(leaseSeconds > 0 ? leaseSeconds : 30.0)
{
    claimsDir_ = joinPath(dir_, "claims");
    const Expected<void> made = ensureDir(claimsDir_);
    if (!made.ok())
        axm_warn("shard queue: ", made.error().describe(),
                 " (claims will fail)");
    // Metrics snapshots ride the lease heartbeat: the first one lands
    // as soon as the worker joins, so `axmemo status` sees it before
    // any job completes.
    telemetry::setSnapshotPath(
        joinPath(dir_, "metrics." + workerId_ + ".jsonl"), workerId_);
    heartbeat_ = std::thread([this] { heartbeatLoop(); });
}

ShardQueue::~ShardQueue()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    stopCv_.notify_all();
    if (heartbeat_.joinable())
        heartbeat_.join();
}

std::string
ShardQueue::hashKey(const std::string &key)
{
    // FNV-1a 64. A collision would make two distinct jobs share one
    // claim slot; the done marker carries the full key, so a collision
    // degrades to "the other job re-simulates at merge", never to a
    // wrong result.
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::string
ShardQueue::claimPath(const std::string &key) const
{
    return joinPath(claimsDir_, hashKey(key) + ".claim");
}

std::string
ShardQueue::donePath(const std::string &key) const
{
    return joinPath(claimsDir_, hashKey(key) + ".done");
}

std::string
ShardQueue::leaseBody(const std::string &key) const
{
    std::string body = "{\"key\":\"";
    body += JsonWriter::escape(key);
    body += "\",\"worker\":\"";
    body += JsonWriter::escape(workerId_);
    body += "\"}\n";
    return body;
}

ShardQueue::Claim
ShardQueue::tryClaim(const std::string &key)
{
    AXM_SPAN("shard", "claim");
    const std::string done = donePath(key);
    const std::string claim = claimPath(key);
    if (fileAgeSeconds(done) < 0.0) { // no done marker yet
        Expected<bool> created = createExclusive(claim, leaseBody(key));
        bool stole = false;
        if (created.ok() && !created.value()) {
            // Claim exists. Stale? Steal via a rename tombstone so two
            // concurrent stealers cannot both recreate the claim.
            const double age = fileAgeSeconds(claim);
            if (age <= leaseSeconds_)
                return Claim::Busy;
            const std::string tombstone =
                claim + ".steal." + workerId_;
            if (!renameFile(claim, tombstone))
                return Claim::Busy; // lost the steal race
            removeFileQuiet(tombstone);
            stole = true;
            created = createExclusive(claim, leaseBody(key));
            if (created.ok() && !created.value())
                return Claim::Busy; // recreated under us — back off
        }
        if (!created.ok()) {
            axm_warn("shard claim failed: ",
                     created.error().describe());
            return Claim::Busy;
        }
        // Re-check the done marker: a worker may have finished the job
        // between our first check and the (stolen) claim.
        if (fileAgeSeconds(done) >= 0.0) {
            removeFileQuiet(claim);
        } else {
            const std::lock_guard<std::mutex> lock(mutex_);
            held_.insert(claim);
            ++counters_.claimed;
            if (stole)
                ++counters_.stolen;
            return Claim::Acquired;
        }
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.foreign;
    return Claim::Done;
}

void
ShardQueue::markDone(const std::string &key, bool ok)
{
    AXM_SPAN("shard", "markDone");
    std::string body = "{\"key\":\"";
    body += JsonWriter::escape(key);
    body += "\",\"worker\":\"";
    body += JsonWriter::escape(workerId_);
    body += ok ? "\",\"status\":\"ok\"}\n"
               : "\",\"status\":\"failed\"}\n";
    const Expected<void> wrote = atomicWriteFile(donePath(key), body);
    if (!wrote.ok())
        axm_warn("shard done marker: ", wrote.error().describe());
    const std::string claim = claimPath(key);
    removeFileQuiet(claim);
    const std::lock_guard<std::mutex> lock(mutex_);
    held_.erase(claim);
    if (ok)
        ++counters_.completed;
    else
        ++counters_.failed;
}

void
ShardQueue::release(const std::string &key)
{
    const std::string claim = claimPath(key);
    removeFileQuiet(claim);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (held_.erase(claim))
        ++counters_.released;
}

std::string
ShardQueue::journalPath() const
{
    return joinPath(dir_, "journal." + workerId_ + ".ckpt");
}

ShardCounters
ShardQueue::counters() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

Expected<void>
ShardQueue::writeShardManifest(std::size_t jobs,
                               std::uint64_t macroInsts,
                               double wallSeconds) const
{
    const ShardCounters c = counters();
    std::string doc = "{\"worker\":\"";
    doc += JsonWriter::escape(workerId_);
    doc += "\",\"claimed\":" + std::to_string(c.claimed);
    doc += ",\"stolen\":" + std::to_string(c.stolen);
    doc += ",\"foreign\":" + std::to_string(c.foreign);
    doc += ",\"completed\":" + std::to_string(c.completed);
    doc += ",\"failed\":" + std::to_string(c.failed);
    doc += ",\"released\":" + std::to_string(c.released);
    doc += ",\"jobs\":" + std::to_string(jobs);
    doc += ",\"simulated_macro_insts\":" + std::to_string(macroInsts);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6f", wallSeconds);
    doc += ",\"wall_seconds\":";
    doc += buf;
    doc += "}\n";
    // Flush a final metrics snapshot alongside the manifest so status
    // readers see the terminal jobs_done/throughput figures.
    telemetry::heartbeat();
    return atomicWriteFile(
        joinPath(dir_, "shard." + workerId_ + ".json"), doc);
}

std::vector<std::string>
ShardQueue::journalSegments(const std::string &dir)
{
    return listMatching(dir, "journal.", ".ckpt");
}

std::vector<std::string>
ShardQueue::shardManifests(const std::string &dir)
{
    return listMatching(dir, "shard.", ".json");
}

std::vector<std::string>
ShardQueue::metricsFiles(const std::string &dir)
{
    return listMatching(dir, "metrics.", ".jsonl");
}

std::vector<std::string>
ShardQueue::timelineSegments(const std::string &dir)
{
    return listMatching(dir, "timeline.", ".json");
}

std::string
ShardQueue::timelinePath() const
{
    return joinPath(dir_, "timeline." + workerId_ + ".json");
}

void
ShardQueue::heartbeatLoop()
{
    // Touch every held claim at a third of the lease window: two missed
    // beats still keep the claim alive, while a SIGKILLed worker's
    // claims expire one window after its last beat.
    std::unique_lock<std::mutex> lock(mutex_);
    const auto interval = std::chrono::duration<double>(
        std::max(0.2, leaseSeconds_ / 3.0));
    while (!stopping_) {
        stopCv_.wait_for(lock, interval,
                         [this] { return stopping_; });
        if (stopping_)
            return;
        const std::vector<std::string> held(held_.begin(),
                                            held_.end());
        lock.unlock();
        for (const std::string &path : held)
            touchFile(path); // gone = stolen/released; harmless
        telemetry::heartbeat();
        lock.lock();
    }
}

} // namespace axmemo
