/**
 * @file
 * The top-level AxMemo experiment API.
 *
 * ExperimentRunner wires the whole co-design together for one benchmark:
 * dataset synthesis -> AxIR build -> (optional) memoization transform ->
 * timing simulation -> energy model -> quality scoring. Every figure and
 * table of the paper's evaluation is a loop over ExperimentRunner calls
 * with different configurations.
 */

#ifndef AXMEMO_CORE_EXPERIMENT_HH
#define AXMEMO_CORE_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "compiler/atm_transform.hh"
#include "compiler/iact_transform.hh"
#include "compiler/software_transform.hh"
#include "compiler/transform.hh"
#include "energy/energy_model.hh"
#include "memo/backend.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace axmemo {

/**
 * Execution flavor of one run. Runs are dispatched through the
 * MemoBackend registry by NAME (memo/backend.hh); this enum survives as
 * compile-checked sugar for the builtin backends — modeName() maps each
 * enumerator onto its registered backend name, and the Mode overloads
 * of run()/runPrepared()/compare() forward through it. New backends do
 * not get an enumerator: they are addressed by string only.
 */
enum class Mode
{
    Baseline,      ///< unmodified program, no memoization hardware
    AxMemo,        ///< hardware memoization with Table 2 truncation
    AxMemoNoTrunc, ///< hardware memoization, truncation disabled (Fig 11)
    SoftwareLut,   ///< software CRC + array LUT contender
    Atm            ///< Approximate Task Memoization baseline
};

/** @return the registered backend name of builtin @p mode. */
const char *modeName(Mode mode);

/** LUT sizing of one AxMemo configuration (Fig. 7's x-axis). */
struct LutSetup
{
    std::uint64_t l1Bytes = 8 * 1024;
    std::uint64_t l2Bytes = 0; ///< 0 disables the L2 LUT
    std::string
    label() const
    {
        std::string s = "L1(" + std::to_string(l1Bytes / 1024) + "KB)";
        if (l2Bytes)
            s += "+L2(" + std::to_string(l2Bytes / 1024) + "KB)";
        return s;
    }
};

/** Everything one experiment needs beyond the workload itself. */
struct ExperimentConfig
{
    WorkloadParams dataset{};
    LutSetup lut{};
    unsigned crcBits = 32;
    HierarchyConfig hierarchy{};
    bool qualityMonitor = true;
    /**
     * When >= 0, overrides every region's truncation level (used by the
     * ablation benches and the truncation tuner).
     */
    int truncOverride = -1;
    /** Runtime truncation control (Section 3.1's dynamic approach). */
    AdaptiveTruncationConfig adaptive{};
    /** L2 LUT content policy (inclusive vs victim; see memo_unit.hh). */
    L2LutPolicy l2Policy = L2LutPolicy::Inclusive;
    SwMemoConfig software{};
    AtmConfig atm{};
    /** iACT-style similarity backend knobs (iact_transform.hh). */
    IactConfig iact{};
    EnergyParams energy{};
    CpuConfig cpu{};
};

/** Results of one simulated run. */
struct RunResult
{
    /** Registered name of the backend that produced this run. */
    std::string backend = "baseline";
    SimStats stats{};
    EnergyBreakdown energy{};
    /** Total LUT lookups and hits (hardware or software counters). */
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    /** Program outputs, for quality scoring. */
    std::vector<double> outputs;
    /** What the transform reported (empty for Baseline). */
    std::vector<RegionTransformInfo> regions;

    double
    hitRate() const
    {
        return lookups ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }
    double energyPj() const { return energy.totalPj(); }
};

/** A subject run scored against its paired baseline. */
struct Comparison
{
    RunResult baseline;
    RunResult subject;
    double speedup = 1.0;
    double energyReduction = 1.0;
    /** Equation 2 (or misclassification for Jmeint). */
    double qualityLoss = 0.0;
    /** Element-wise relative error distribution (Fig. 10b). */
    EmpiricalCdf errorCdf;
    /** Normalized dynamic µop count and its memoization share (Fig 8). */
    double normalizedUops = 1.0;
    double memoUopShare = 0.0;
};

/**
 * One runPrepared() in flight, owning everything the backend session
 * borrows (SimConfig, EnergyModel, the BackendRunContext) so an
 * incremental driver — the serve worker thread — can hold a run open
 * across its own event loop and advance it phase by phase, interleaving
 * other work between steps. The batch path drives the identical object
 * to completion in ExperimentRunner::runPrepared, so the two paths
 * cannot diverge.
 *
 * The borrowed arguments (workload, baselineProg, mem) must outlive
 * the session, exactly as for runPrepared().
 */
class RunSession
{
  public:
    /** Opens the session; unknown @p backend names throw the registry's
     * structured Config error. @p hooks are polled/applied between
     * phases (see BackendSessionHooks). */
    RunSession(const ExperimentConfig &config, const Workload &workload,
               const std::string &backend, const Program &baselineProg,
               SimMemory &mem, BackendSessionHooks hooks = {});
    ~RunSession();

    RunSession(const RunSession &) = delete;
    RunSession &operator=(const RunSession &) = delete;

    /** Execute the next phase (checking hooks first). @return true
     * while phases remain. */
    bool step();

    /** Name of the phase the next step() runs. */
    const char *phase() const { return session_->phase(); }

    /** After the last step: fold the run and read the workload outputs.
     * Call exactly once. */
    RunResult finish();

  private:
    const Workload &workload_;
    SimMemory &mem_;
    std::string backend_;
    SimConfig simConfig_;
    EnergyModel energyModel_;
    BackendRunContext ctx_;
    std::unique_ptr<BackendSession> session_;
};

/** Runs benchmarks under a configuration; see file comment. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(const ExperimentConfig &config = {});

    const ExperimentConfig &config() const { return config_; }

    /** Execute @p workload once under the backend named @p backend
     * (resolved through memoBackends(); unknown names throw the
     * registry's structured Config error). */
    RunResult run(Workload &workload, const std::string &backend) const;

    /**
     * Execute @p backend on an already-prepared workload:
     * @p baselineProg must be the result of workload.build() after a
     * prepare() with this config's dataset params, and @p mem a private
     * copy of the prepared memory (it is mutated by the run). This is
     * the sweep engine's entry point — prepare/build happen once, runs
     * share them. @p control, when non-null, is polled by the simulator
     * so the watchdog/interrupt can abort a runaway run
     * (common/run_control.hh).
     */
    RunResult runPrepared(const Workload &workload,
                          const std::string &backend,
                          const Program &baselineProg, SimMemory &mem,
                          const RunControl *control = nullptr) const;

    /** Execute baseline + @p backend and score the pair. */
    Comparison compare(Workload &workload,
                       const std::string &backend) const;

    // Mode-enum sugar for the builtin backends.
    RunResult
    run(Workload &workload, Mode mode) const
    {
        return run(workload, std::string(modeName(mode)));
    }
    RunResult
    runPrepared(const Workload &workload, Mode mode,
                const Program &baselineProg, SimMemory &mem,
                const RunControl *control = nullptr) const
    {
        return runPrepared(workload, std::string(modeName(mode)),
                           baselineProg, mem, control);
    }
    Comparison
    compare(Workload &workload, Mode mode) const
    {
        return compare(workload, std::string(modeName(mode)));
    }

    /**
     * Score an already-run pair (reuse one baseline across many subject
     * configurations; the baseline must come from the same dataset
     * parameters). Both results are taken by value and moved into the
     * returned Comparison — std::move() arguments whose last use this
     * is, to avoid copying the output vectors.
     */
    static Comparison score(const Workload &workload, RunResult baseline,
                            RunResult subject);

    /** The dataset scale from AXMEMO_FULL / AXMEMO_SCALE (bench use). */
    static double benchScaleFromEnv(double fallback = 0.125);

  private:
    ExperimentConfig config_;
};

} // namespace axmemo

#endif // AXMEMO_CORE_EXPERIMENT_HH
