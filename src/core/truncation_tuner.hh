/**
 * @file
 * Profile-driven truncation selection (Section 5, "Code Generation").
 *
 * The tuner sweeps uniform truncation levels on the benchmark's *sample*
 * input set (disjoint from the evaluation set) and picks the largest level
 * whose output error stays within the bound — 0.1% in the paper, 1% for
 * image outputs. Workloads ship Table 2's levels as defaults; the tuner
 * regenerates them (bench/table2) and is the hook for users memoizing
 * their own kernels.
 */

#ifndef AXMEMO_CORE_TRUNCATION_TUNER_HH
#define AXMEMO_CORE_TRUNCATION_TUNER_HH

#include <vector>

#include "core/experiment.hh"

namespace axmemo {

/** One point of the tuning sweep. */
struct TuningPoint
{
    unsigned truncBits = 0;
    double qualityLoss = 0.0;
    double hitRate = 0.0;
    double speedup = 1.0;
};

/** Outcome of a tuning run. */
struct TuningResult
{
    /** Largest truncation meeting the bound. */
    unsigned chosenBits = 0;
    std::vector<TuningPoint> sweep;
};

/** The profile-driven tuner; see file comment. */
class TruncationTuner
{
  public:
    /**
     * @param config experiment configuration; its dataset is switched to
     *        the sample set internally.
     * @param errorBound maximum acceptable quality loss.
     */
    TruncationTuner(const ExperimentConfig &config, double errorBound);

    /** Sweep @p candidates (default 0,2,...,20) and pick. */
    TuningResult
    tune(Workload &workload,
         const std::vector<unsigned> &candidates = defaultCandidates());

    static std::vector<unsigned> defaultCandidates();

  private:
    ExperimentConfig config_;
    double errorBound_;
};

} // namespace axmemo

#endif // AXMEMO_CORE_TRUNCATION_TUNER_HH
