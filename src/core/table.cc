#include "core/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace axmemo {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell =
                i < cells.size() ? cells[i] : std::string();
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << cell;
            if (i + 1 < widths.size())
                os << "  ";
        }
        os << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        for (std::size_t i = 0; i < widths.size(); ++i) {
            os << std::string(widths[i], '-');
            if (i + 1 < widths.size())
                os << "  ";
        }
        os << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TextTable::percent(double fraction, int precision)
{
    return num(100.0 * fraction, precision) + "%";
}

std::string
TextTable::times(double factor, int precision)
{
    return num(factor, precision) + "x";
}

} // namespace axmemo
