#include "core/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "common/interrupt.hh"
#include "common/log.hh"
#include "common/proc.hh"
#include "common/run_control.hh"
#include "core/config_io.hh"
#include "core/json_export.hh"
#include "core/output_paths.hh"
#include "core/run_journal.hh"
#include "core/shard_queue.hh"
#include "obs/profiler.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"

namespace axmemo {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Key of the prepared-program cache: workload + dataset parameters, in
 * the canonical config_io serialization. Because the serializer emits
 * every field of the struct, a new WorkloadParams field automatically
 * participates in the key (the old hand-appended byte keys silently
 * went stale instead; the config_io field-count guard test enforces
 * that the serializer itself keeps up).
 */
std::string
prepareKey(const std::string &workload, const WorkloadParams &d)
{
    std::string key = workload;
    key.push_back('\0');
    key += toJson(d);
    return key;
}

/**
 * Key of the baseline result cache: everything a Mode::Baseline run can
 * observe — dataset, CPU, memory hierarchy and energy parameters. LUT
 * geometry, CRC width, memo policies etc. deliberately do not
 * participate — the baseline has no memoization unit, which is what
 * lets one baseline serve a whole row of subject configurations.
 */
std::string
baselineKey(const std::string &workload, const ExperimentConfig &cfg)
{
    std::string key = prepareKey(workload, cfg.dataset);
    key += toJson(cfg.cpu);
    key += toJson(cfg.hierarchy);
    key += toJson(cfg.energy);
    return key;
}

/** Outcome status for a fault propagated from a dependency. */
JobStatus
statusForError(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Timeout: return JobStatus::TimedOut;
      case ErrorCode::Cancelled: return JobStatus::Skipped;
      default: return JobStatus::Failed;
    }
}

/** The watchdog/interrupt context of one simulation attempt. */
RunControl
makeControl(const RuntimeOptions &options)
{
    RunControl control;
    if (options.jobTimeoutSeconds > 0.0) {
        control.hasDeadline = true;
        control.deadline =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(
                    options.jobTimeoutSeconds));
    }
    control.cancelled = &interruptRequested;
    return control;
}

struct Attempt
{
    JobStatus status = JobStatus::Ok;
    Error fault{};
    unsigned attempts = 0;
};

/**
 * The worker boundary: run @p fn, containing any exception as a
 * structured fault. Failed attempts are retried up to @p retries more
 * times; Timeout and Cancelled are deterministic, so they never are.
 */
template <typename Fn>
Attempt
runWithRetry(Fn &&fn, unsigned retries)
{
    Attempt a;
    for (;;) {
        ++a.attempts;
        try {
            fn(a.attempts);
            a.status = JobStatus::Ok;
            a.fault = Error{};
            return a;
        } catch (const AxException &e) {
            a.fault = e.error();
            if (a.fault.code == ErrorCode::Timeout) {
                a.status = JobStatus::TimedOut;
                return a;
            }
            if (a.fault.code == ErrorCode::Cancelled) {
                a.status = JobStatus::Skipped;
                return a;
            }
            a.status = JobStatus::Failed;
        } catch (const std::exception &e) {
            a.fault =
                Error{ErrorCode::Internal, "sweep", e.what()};
            a.status = JobStatus::Failed;
        }
        if (a.attempts > retries)
            return a;
        AXM_TRACE(Sweep, "sweep", "retry (attempt ", a.attempts + 1,
                  ") after: ", a.fault.describe());
    }
}

/** A job under the baseline backend (shared-result fast path). */
bool
isBaseline(const SweepJob &job)
{
    return job.backend == modeName(Mode::Baseline);
}

/** The AXMEMO_FAULT_INJECT test hook; see RuntimeOptions. */
void
maybeInjectFault(const RuntimeOptions &options, const SweepJob &job,
                 unsigned attempt)
{
    if (options.faultInject.empty() || isBaseline(job))
        return;
    const std::string target = options.faultWorkload();
    if (target.empty() ||
        job.workload.find(target) == std::string::npos)
        return;
    if (attempt <= options.faultAttempts())
        raiseError(ErrorCode::Simulation, "fault-inject",
                   "injected failure (attempt " +
                       std::to_string(attempt) + " of workload " +
                       job.workload + ")");
}

/**
 * Run @p simulate in a forked child (--isolate): a crash, deadlock or
 * runaway allocation in one job is contained at the process boundary.
 * The child ships its RunResult back as a journal-codec line over a
 * pipe; the parent's poll deadline (SIGKILL on expiry) becomes the
 * watchdog, surfacing as ErrorCode::Timeout. All failures re-throw as
 * AxException so the standard retry/timeout policy applies unchanged.
 */
RunResult
simulateIsolated(const std::function<RunResult()> &simulate,
                 const RuntimeOptions &options)
{
    const Expected<std::string> payload = runInForkedChild(
        [&] {
            SweepOutcome child;
            child.run = simulate();
            return SweepJournal::encodeLine("isolated", child);
        },
        options.jobTimeoutSeconds);
    if (!payload.ok())
        throw AxException(payload.error());
    Expected<std::pair<std::string, SweepOutcome>> decoded =
        SweepJournal::decodeLine(payload.value());
    if (!decoded.ok())
        throw AxException(Error{ErrorCode::Internal, "isolate",
                                "undecodable child result: " +
                                    decoded.error().describe()});
    return std::move(decoded.value().second.run);
}

} // namespace

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Failed: return "failed";
      case JobStatus::TimedOut: return "timed_out";
      case JobStatus::Skipped: return "skipped";
      case JobStatus::Foreign: return "foreign";
    }
    return "unknown";
}

SweepEngine::SweepEngine(unsigned workers)
    : options_(RuntimeOptions::global()),
      workers_(workers == 0 ? 1 : workers),
      pool_(std::make_unique<ThreadPool>(workers_))
{
}

SweepEngine::SweepEngine(const RuntimeOptions &options)
    : options_(options),
      workers_(options.workerCount() == 0 ? 1 : options.workerCount()),
      pool_(std::make_unique<ThreadPool>(workers_))
{
}

SweepEngine::~SweepEngine() = default;

std::size_t
SweepEngine::enqueueRun(const std::string &workload,
                        const std::string &backend,
                        const ExperimentConfig &config)
{
    jobs_.push_back({workload, backend, config, /*scored=*/false});
    return jobs_.size() - 1;
}

std::size_t
SweepEngine::enqueueCompare(const std::string &workload,
                            const std::string &backend,
                            const ExperimentConfig &config)
{
    jobs_.push_back({workload, backend, config, /*scored=*/true});
    return jobs_.size() - 1;
}

std::size_t
SweepEngine::setJournal(const std::string &path, bool resume)
{
    journal_ = std::make_unique<SweepJournal>();
    replay_.clear();
    // Trace the basename only: trace output must not depend on where
    // the output directory happens to live (tests diff trace streams
    // of runs pointed at different directories).
    const std::size_t slash = path.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    std::size_t skipped = 0;
    if (resume) {
        replay_ = SweepJournal::load(path, &skipped);
        if (skipped)
            AXM_TRACE(Sweep, "sweep", "journal '", base, "': ", skipped,
                      " undecodable line(s) ignored (torn write?)");
    }
    const Expected<void> opened = journal_->open(path, !resume);
    if (!opened.ok()) {
        axm_warn("sweep checkpointing disabled: ",
                 opened.error().describe());
        journal_.reset();
    }
    AXM_TRACE(Sweep, "sweep", "journal '", base, "': ", replay_.size(),
              " outcome(s) loaded for replay");
    return replay_.size();
}

std::size_t
SweepEngine::addReplaySegments(const std::vector<std::string> &paths)
{
    std::size_t loaded = 0;
    for (const std::string &path : paths) {
        std::size_t skipped = 0;
        for (auto &[key, outcome] : SweepJournal::load(path, &skipped)) {
            replay_[key] = std::move(outcome);
            ++loaded;
        }
        if (skipped)
            AXM_TRACE(Sweep, "sweep", "segment '", path, "': ", skipped,
                      " undecodable line(s) ignored");
    }
    return loaded;
}

void
SweepEngine::closeJournal(bool removeFile)
{
    if (!journal_)
        return;
    const std::string path = journal_->path();
    journal_->close();
    journal_.reset();
    replay_.clear();
    if (removeFile)
        std::remove(path.c_str());
}

std::vector<SweepOutcome>
SweepEngine::execute()
{
    const auto wallStart = Clock::now();
    AXM_SPAN("sweep", "execute");
    metrics_ = {};
    metrics_.workers = workers_;
    metrics_.jobs = jobs_.size();
    telemetry::metrics().jobsTotal.fetch_add(jobs_.size(),
                                             std::memory_order_relaxed);

    std::vector<SweepOutcome> results(jobs_.size());
    std::vector<char> handled(jobs_.size(), 0);

    // ---- Phase R: replay journaled outcomes (resume). A replayed
    // scored outcome carries its full baseline result, which also
    // backfills the simulated-instruction accounting for baselines the
    // replay makes unnecessary to re-simulate.
    std::unordered_map<std::string, std::uint64_t> replayedBaseMacro;
    if (!replay_.empty()) {
        AXM_SPAN("sweep", "replay");
        for (std::size_t i = 0; i < jobs_.size(); ++i) {
            const auto it = replay_.find(SweepJournal::jobKey(jobs_[i]));
            if (it == replay_.end())
                continue;
            results[i] = it->second;
            results[i].scored = jobs_[i].scored;
            if (!options_.reportTiming)
                results[i].seconds = 0.0;
            handled[i] = 1;
            ++metrics_.restoredJobs;
            telemetry::metrics().jobsDone.fetch_add(
                1, std::memory_order_relaxed);
            const std::string bKey =
                baselineKey(jobs_[i].workload, jobs_[i].config);
            if (isBaseline(jobs_[i]))
                replayedBaseMacro[bKey] =
                    results[i].run.stats.macroInsts;
            else if (jobs_[i].scored)
                replayedBaseMacro[bKey] =
                    results[i].cmp.baseline.stats.macroInsts;
            AXM_TRACE(Sweep, "sweep", "job ", i, " (",
                      jobs_[i].workload, ") replayed from journal");
        }
        if (metrics_.restoredJobs)
            AXM_TRACE(Sweep, "sweep", "resume: ", metrics_.restoredJobs,
                      "/", jobs_.size(), " job(s) replayed");
    }

    // ---- Phase A: prepared-program cache fill. Entries are inserted
    // serially so the map never rehashes under concurrency; the
    // expensive prepare()/build() work runs on the pool, each worker
    // touching only its own entry. Entries are inserted for every job
    // (including replayed ones, keeping the cache metrics identical to
    // an uninterrupted run) but only prepared when a job that will
    // actually simulate needs them.
    std::vector<PreparedEntry *> newPrepared;
    std::vector<PreparedEntry *> toPrepare;
    std::vector<const SweepJob *> prepareSource;
    std::unordered_set<PreparedEntry *> prepareScheduled;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const SweepJob &job = jobs_[i];
        const std::string key =
            prepareKey(job.workload, job.config.dataset);
        auto [it, inserted] = prepared_.try_emplace(key, nullptr);
        if (inserted) {
            it->second = std::make_unique<PreparedEntry>();
            newPrepared.push_back(it->second.get());
        }
        PreparedEntry &entry = *it->second;
        if (!handled[i] && !entry.workload && !entry.failed &&
            prepareScheduled.insert(&entry).second) {
            toPrepare.push_back(&entry);
            prepareSource.push_back(&job);
        }
    }
    AXM_TRACE(Sweep, "sweep", "phase prepare: ", toPrepare.size(),
              " new program(s), ", jobs_.size(), " job(s) pending");
    {
        AXM_PROF("sweep.prepare");
        const std::function<void(std::size_t)> fn =
            [&](std::size_t i) {
                AXM_PROF("sweep.prepare.job");
                PreparedEntry &entry = *toPrepare[i];
                const SweepJob &job = *prepareSource[i];
                if (interruptRequested()) {
                    entry.failed = true;
                    entry.fault = Error{ErrorCode::Cancelled, "sweep",
                                        "interrupted before prepare"};
                    return;
                }
                const auto start = Clock::now();
                const Attempt a = runWithRetry(
                    [&](unsigned) {
                        entry.mem = SimMemory{}; // fresh on retry
                        entry.workload = makeWorkload(job.workload);
                        entry.workload->prepare(entry.mem,
                                                job.config.dataset);
                        entry.program = entry.workload->build();
                    },
                    options_.retries);
                entry.attempts = a.attempts;
                if (a.status != JobStatus::Ok) {
                    entry.failed = true;
                    entry.fault = a.fault;
                    entry.workload.reset();
                    AXM_TRACE(Sweep, "sweep", "prepare ", job.workload,
                              " faulted: ", a.fault.describe());
                    return;
                }
                entry.seconds = options_.reportTiming
                                    ? secondsSince(start)
                                    : 0.0;
                // Host seconds stay out of the trace (byte-reproducible
                // serial traces); timing lives in the phase profiler.
                AXM_TRACE(Sweep, "sweep", "prepared ", job.workload);
            };
        for (std::size_t i = 0; i < toPrepare.size(); ++i)
            pool_->submit([&fn, i] { fn(i); });
        pool_->wait();
    }
    metrics_.preparedPrograms = newPrepared.size();

    // ---- Phase B: baseline result cache fill, one simulation per
    // distinct (workload, dataset, cpu, hierarchy, energy) key that a
    // to-be-simulated job still needs.
    std::vector<BaselineEntry *> newBaselines;
    std::vector<std::string> newBaselineKeys;
    std::vector<BaselineEntry *> toSimulate;
    std::vector<const SweepJob *> baselineSource;
    std::unordered_set<BaselineEntry *> baselineScheduled;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const SweepJob &job = jobs_[i];
        if (!job.scored && !isBaseline(job))
            continue;
        ++metrics_.baselineRequests;
        const std::string key = baselineKey(job.workload, job.config);
        auto [it, inserted] = baselines_.try_emplace(key, nullptr);
        if (inserted) {
            it->second = std::make_unique<BaselineEntry>();
            it->second->prepared =
                prepared_
                    .at(prepareKey(job.workload, job.config.dataset))
                    .get();
            newBaselines.push_back(it->second.get());
            newBaselineKeys.push_back(key);
        }
        BaselineEntry &entry = *it->second;
        if (!handled[i] && !entry.simulated && !entry.failed &&
            baselineScheduled.insert(&entry).second) {
            toSimulate.push_back(&entry);
            baselineSource.push_back(&job);
        }
    }
    AXM_TRACE(Sweep, "sweep", "phase baseline: ", toSimulate.size(),
              " simulated, ",
              metrics_.baselineRequests - toSimulate.size(),
              " served from cache or journal");
    {
        AXM_PROF("sweep.baseline");
        const std::function<void(std::size_t)> fn =
            [&](std::size_t i) {
                AXM_PROF("sweep.baseline.job");
                BaselineEntry &entry = *toSimulate[i];
                const SweepJob &job = *baselineSource[i];
                if (entry.prepared->failed) {
                    entry.failed = true;
                    entry.fault = entry.prepared->fault;
                    return;
                }
                if (interruptRequested()) {
                    entry.failed = true;
                    entry.fault = Error{ErrorCode::Cancelled, "sweep",
                                        "interrupted before baseline"};
                    return;
                }
                const auto start = Clock::now();
                const Attempt a = runWithRetry(
                    [&](unsigned) {
                        const auto simulate = [&] {
                            SimMemory mem =
                                entry.prepared->mem.clone();
                            const ExperimentRunner runner(job.config);
                            const RunControl control =
                                makeControl(options_);
                            return runner.runPrepared(
                                *entry.prepared->workload,
                                Mode::Baseline,
                                entry.prepared->program, mem,
                                &control);
                        };
                        entry.result =
                            options_.isolate
                                ? simulateIsolated(simulate, options_)
                                : simulate();
                    },
                    options_.retries);
                entry.attempts = a.attempts;
                if (a.status != JobStatus::Ok) {
                    entry.failed = true;
                    entry.fault = a.fault;
                    AXM_TRACE(Sweep, "sweep", "baseline ",
                              job.workload,
                              " faulted: ", a.fault.describe());
                    return;
                }
                entry.simulated = true;
                entry.seconds = options_.reportTiming
                                    ? secondsSince(start)
                                    : 0.0;
                telemetry::metrics().macroInsts.fetch_add(
                    entry.result.stats.macroInsts,
                    std::memory_order_relaxed);
                AXM_TRACE(Sweep, "sweep", "baseline ", job.workload,
                          " done");
            };
        for (std::size_t i = 0; i < toSimulate.size(); ++i)
            pool_->submit([&fn, i] { fn(i); });
        pool_->wait();
    }
    metrics_.baselineSimulations = newBaselines.size();

    // ---- Phase C: subject runs, results in submission order.
    AXM_TRACE(Sweep, "sweep", "phase subject: ", jobs_.size(), " job(s)");
    {
        AXM_PROF("sweep.subject");
        const std::function<void(std::size_t)> fn = [&](std::size_t i) {
            if (handled[i])
                return; // replayed from the journal in phase R
            AXM_PROF("sweep.subject.job");
            AXM_SPAN("job", jobs_[i].workload);
            const SweepJob &job = jobs_[i];
            SweepOutcome &out = results[i];
            out.scored = job.scored;
            const PreparedEntry &prep = *prepared_.at(
                prepareKey(job.workload, job.config.dataset));
            if (prep.failed) {
                out.status = statusForError(prep.fault.code);
                out.fault = prep.fault;
                AXM_TRACE(Sweep, "sweep", "job ", i, " (",
                          job.workload, ") ", jobStatusName(out.status),
                          ": dependency fault");
                return;
            }
            const BaselineEntry *base = nullptr;
            if (job.scored || isBaseline(job)) {
                base = baselines_.at(baselineKey(job.workload,
                                                 job.config))
                           .get();
                if (base->failed) {
                    out.status = statusForError(base->fault.code);
                    out.fault = base->fault;
                    AXM_TRACE(Sweep, "sweep", "job ", i, " (",
                              job.workload, ") ",
                              jobStatusName(out.status),
                              ": baseline fault");
                    return;
                }
            }
            if (interruptRequested()) {
                out.status = JobStatus::Skipped;
                out.fault = Error{ErrorCode::Cancelled, "sweep",
                                  "interrupted before job start"};
                return;
            }

            const auto start = Clock::now();
            const Attempt a = runWithRetry(
                [&](unsigned attempt) {
                    maybeInjectFault(options_, job, attempt);
                    if (isBaseline(job)) {
                        out.run = base->result; // simulated once, shared
                    } else {
                        const auto simulate = [&] {
                            SimMemory mem = prep.mem.clone();
                            const ExperimentRunner runner(job.config);
                            const RunControl control =
                                makeControl(options_);
                            return runner.runPrepared(
                                *prep.workload, job.backend,
                                prep.program, mem, &control);
                        };
                        out.run =
                            options_.isolate
                                ? simulateIsolated(simulate, options_)
                                : simulate();
                    }
                },
                options_.retries);
            out.attempts = a.attempts;
            out.status = a.status;
            out.fault = a.fault;
            if (!isBaseline(job) && out.ok())
                out.seconds = options_.reportTiming
                                  ? secondsSince(start)
                                  : 0.0;
            if (out.ok() && job.scored)
                out.cmp = ExperimentRunner::score(*prep.workload,
                                                  base->result, out.run);
            if (out.ok() && journal_) {
                const std::lock_guard<std::mutex> lock(journalMutex_);
                journal_->append(SweepJournal::jobKey(job), out);
                telemetry::noteJournalAppend();
            }
            {
                // Fleet-metrics accounting: one completed job, its
                // simulated volume (baselines share one cached result,
                // charged once in phase B), memo traffic and LUT
                // occupancy for the status/snapshot rates.
                telemetry::MetricsCounters &tm = telemetry::metrics();
                tm.jobsDone.fetch_add(1, std::memory_order_relaxed);
                if (!isBaseline(job) && out.ok()) {
                    tm.macroInsts.fetch_add(out.run.stats.macroInsts,
                                            std::memory_order_relaxed);
                    tm.memoLookups.fetch_add(out.run.lookups,
                                             std::memory_order_relaxed);
                    tm.memoHits.fetch_add(out.run.hits,
                                          std::memory_order_relaxed);
                    const auto &occ = out.run.stats.dists.l2SetOccupancy;
                    tm.lutLinesSum.fetch_add(occ.sum(),
                                             std::memory_order_relaxed);
                    tm.lutLinesSamples.fetch_add(
                        occ.count(), std::memory_order_relaxed);
                }
            }
            AXM_TRACE(Sweep, "sweep", "job ", i, " (", job.workload,
                      ") ", jobStatusName(out.status));
        };
        if (!shard_) {
            for (std::size_t i = 0; i < jobs_.size(); ++i)
                pool_->submit([&fn, i] { fn(i); });
            pool_->wait();
        } else {
            // Shard drain: every unresolved job is claimed through the
            // shared queue before it simulates. Jobs a sibling worker
            // finished resolve as Foreign (their outcome lives in that
            // worker's journal segment; merge unions it back). Jobs a
            // sibling currently holds stay unresolved and are rescanned
            // — when the holder dies, its lease expires and the claim
            // is stolen, so the sweep always drains.
            std::vector<std::string> keys(jobs_.size());
            for (std::size_t i = 0; i < jobs_.size(); ++i)
                keys[i] = SweepJournal::jobKey(jobs_[i]);
            for (;;) {
                AXM_SPAN("sweep", "shard-round");
                std::atomic<std::size_t> busy{0};
                std::atomic<std::size_t> progress{0};
                for (std::size_t i = 0; i < jobs_.size(); ++i) {
                    if (handled[i])
                        continue;
                    pool_->submit([&, i] {
                        if (interruptRequested()) {
                            results[i].scored = jobs_[i].scored;
                            results[i].status = JobStatus::Skipped;
                            results[i].fault =
                                Error{ErrorCode::Cancelled, "sweep",
                                      "interrupted before job start"};
                            handled[i] = 1;
                            ++progress;
                            return;
                        }
                        switch (shard_->tryClaim(keys[i])) {
                          case ShardQueue::Claim::Done:
                            results[i].scored = jobs_[i].scored;
                            results[i].status = JobStatus::Foreign;
                            handled[i] = 1;
                            ++progress;
                            return;
                          case ShardQueue::Claim::Busy:
                            ++busy;
                            return;
                          case ShardQueue::Claim::Acquired:
                            break;
                        }
                        fn(i);
                        handled[i] = 1;
                        ++progress;
                        // Terminal statuses get a done marker (merge
                        // re-simulates failures deterministically);
                        // an interrupt releases the claim for any
                        // worker to pick up.
                        if (results[i].status == JobStatus::Skipped)
                            shard_->release(keys[i]);
                        else
                            shard_->markDone(keys[i], results[i].ok());
                    });
                }
                pool_->wait();
                if (busy == 0)
                    break;
                // Brief back-off before rescanning jobs a sibling
                // holds: long enough to stop a drained worker from
                // hammering the claims directory, short enough that
                // the tail wait after the last foreign job resolves
                // stays well under one job's runtime.
                if (progress == 0)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(std::min(
                            shard_->leaseSeconds() / 4.0, 0.25)));
            }
        }
    }

    // ---- Metrics: every simulation this sweep accounts for. Replayed
    // jobs contribute their journaled instruction counts so a resumed
    // sweep reports the same simulated volume as an uninterrupted one.
    double serial = 0.0;
    std::uint64_t macroInsts = 0;
    for (const PreparedEntry *entry : newPrepared)
        serial += entry->seconds;
    for (std::size_t i = 0; i < newBaselines.size(); ++i) {
        const BaselineEntry *entry = newBaselines[i];
        serial += entry->seconds;
        if (entry->simulated) {
            macroInsts += entry->result.stats.macroInsts;
        } else {
            // Never simulated: every consumer replayed. Charge the
            // journaled baseline instead.
            const auto it = replayedBaseMacro.find(newBaselineKeys[i]);
            if (it != replayedBaseMacro.end())
                macroInsts += it->second;
        }
    }
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const SweepOutcome &out = results[i];
        serial += out.seconds;
        if (!isBaseline(jobs_[i]))
            macroInsts += out.run.stats.macroInsts;
        switch (out.status) {
          case JobStatus::Ok: break;
          case JobStatus::Failed: ++metrics_.failedJobs; break;
          case JobStatus::TimedOut: ++metrics_.timedOutJobs; break;
          case JobStatus::Skipped: ++metrics_.skippedJobs; break;
          case JobStatus::Foreign: ++metrics_.foreignJobs; break;
        }
        if (out.attempts > 1)
            metrics_.retriedJobs += out.attempts - 1;
    }
    metrics_.wallSeconds =
        options_.reportTiming ? secondsSince(wallStart) : 0.0;
    metrics_.serialEstimateSeconds = serial;
    metrics_.simulatedMacroInsts = macroInsts;
    if (metrics_.wallSeconds > 0.0) {
        metrics_.jobsPerSecond =
            static_cast<double>(metrics_.jobs) / metrics_.wallSeconds;
        metrics_.speedupVsSerial = serial / metrics_.wallSeconds;
        metrics_.simulatedMinstrPerSecond =
            static_cast<double>(macroInsts) / 1e6 /
            metrics_.wallSeconds;
    }

    jobs_.clear();
    return results;
}

std::string
SweepEngine::summary() const
{
    std::ostringstream os;
    os.precision(3);
    os << metrics_.jobs << " jobs on " << metrics_.workers
       << " worker(s): " << metrics_.wallSeconds << "s wall, "
       << metrics_.jobsPerSecond << " jobs/s, "
       << metrics_.simulatedMinstrPerSecond << " simulated Minstr/s, "
       << metrics_.speedupVsSerial << "x vs serial ("
       << metrics_.baselineSimulations << "/"
       << metrics_.baselineRequests << " baselines simulated)";
    if (metrics_.faultedJobs() || metrics_.restoredJobs ||
        metrics_.foreignJobs) {
        os << "; " << metrics_.failedJobs << " failed, "
           << metrics_.timedOutJobs << " timed out, "
           << metrics_.skippedJobs << " skipped, "
           << metrics_.restoredJobs << " replayed";
        if (metrics_.foreignJobs)
            os << ", " << metrics_.foreignJobs
               << " done by other workers";
    }
    return os.str();
}

void
SweepEngine::writeReport(const std::string &label,
                         const std::string &outDir) const
{
    const std::string path =
        joinPath(resolveOutputDir(outDir), label + "_sweep.json");
    std::ostringstream out;
    out.precision(9);
    out << "{\n"
        << "  \"label\": \"" << JsonWriter::escape(label) << "\",\n"
        << "  \"workers\": " << metrics_.workers << ",\n"
        << "  \"jobs\": " << metrics_.jobs << ",\n"
        << "  \"wall_seconds\": " << metrics_.wallSeconds << ",\n"
        << "  \"serial_estimate_seconds\": "
        << metrics_.serialEstimateSeconds << ",\n"
        << "  \"speedup_vs_serial\": " << metrics_.speedupVsSerial
        << ",\n"
        << "  \"jobs_per_second\": " << metrics_.jobsPerSecond << ",\n"
        << "  \"simulated_macro_insts\": "
        << metrics_.simulatedMacroInsts << ",\n"
        << "  \"simulated_minstr_per_second\": "
        << metrics_.simulatedMinstrPerSecond << ",\n"
        << "  \"baseline_requests\": " << metrics_.baselineRequests
        << ",\n"
        << "  \"baseline_simulations\": "
        << metrics_.baselineSimulations << ",\n"
        << "  \"prepared_programs\": " << metrics_.preparedPrograms;
    // Fault counters appear only when something faulted or retried, so
    // a fully-successful sweep's report keeps its historical bytes.
    // The replayed count deliberately stays out: a resumed and an
    // uninterrupted run of the same sweep must render identically.
    if (metrics_.faultedJobs() || metrics_.retriedJobs) {
        out << ",\n  \"failed_jobs\": " << metrics_.failedJobs
            << ",\n  \"timed_out_jobs\": " << metrics_.timedOutJobs
            << ",\n  \"skipped_jobs\": " << metrics_.skippedJobs
            << ",\n  \"retried_jobs\": " << metrics_.retriedJobs;
    }
    out << "\n}\n";
    const Expected<void> written = atomicWriteFile(path, out.str());
    if (!written.ok())
        axm_warn("cannot write sweep report: ",
                 written.error().describe());
}

} // namespace axmemo
