#include "core/sweep.hh"

#include <chrono>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "core/config_io.hh"
#include "core/json_export.hh"
#include "core/output_paths.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"

namespace axmemo {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Key of the prepared-program cache: workload + dataset parameters, in
 * the canonical config_io serialization. Because the serializer emits
 * every field of the struct, a new WorkloadParams field automatically
 * participates in the key (the old hand-appended byte keys silently
 * went stale instead; the config_io field-count guard test enforces
 * that the serializer itself keeps up).
 */
std::string
prepareKey(const std::string &workload, const WorkloadParams &d)
{
    std::string key = workload;
    key.push_back('\0');
    key += toJson(d);
    return key;
}

/**
 * Key of the baseline result cache: everything a Mode::Baseline run can
 * observe — dataset, CPU, memory hierarchy and energy parameters. LUT
 * geometry, CRC width, memo policies etc. deliberately do not
 * participate — the baseline has no memoization unit, which is what
 * lets one baseline serve a whole row of subject configurations.
 */
std::string
baselineKey(const std::string &workload, const ExperimentConfig &cfg)
{
    std::string key = prepareKey(workload, cfg.dataset);
    key += toJson(cfg.cpu);
    key += toJson(cfg.hierarchy);
    key += toJson(cfg.energy);
    return key;
}

} // namespace

SweepEngine::SweepEngine(unsigned workers)
    : workers_(workers == 0 ? 1 : workers),
      pool_(std::make_unique<ThreadPool>(workers_))
{
}

SweepEngine::~SweepEngine() = default;

std::size_t
SweepEngine::enqueueRun(const std::string &workload, Mode mode,
                        const ExperimentConfig &config)
{
    jobs_.push_back({workload, mode, config, /*scored=*/false});
    return jobs_.size() - 1;
}

std::size_t
SweepEngine::enqueueCompare(const std::string &workload, Mode mode,
                            const ExperimentConfig &config)
{
    jobs_.push_back({workload, mode, config, /*scored=*/true});
    return jobs_.size() - 1;
}

std::vector<SweepOutcome>
SweepEngine::execute()
{
    const auto wallStart = Clock::now();
    metrics_ = {};
    metrics_.workers = workers_;
    metrics_.jobs = jobs_.size();

    // ---- Phase A: prepared-program cache fill. Entries are inserted
    // serially so the map never rehashes under concurrency; the
    // expensive prepare()/build() work runs on the pool, each worker
    // touching only its own entry.
    std::vector<PreparedEntry *> newPrepared;
    std::vector<const SweepJob *> prepareSource;
    for (const SweepJob &job : jobs_) {
        const std::string key = prepareKey(job.workload,
                                           job.config.dataset);
        auto [it, inserted] = prepared_.try_emplace(key, nullptr);
        if (inserted) {
            it->second = std::make_unique<PreparedEntry>();
            newPrepared.push_back(it->second.get());
            prepareSource.push_back(&job);
        }
    }
    AXM_TRACE(Sweep, "sweep", "phase prepare: ", newPrepared.size(),
              " new program(s), ", jobs_.size(), " job(s) pending");
    {
        AXM_PROF("sweep.prepare");
        const std::function<void(std::size_t)> fn =
            [&](std::size_t i) {
                AXM_PROF("sweep.prepare.job");
                PreparedEntry &entry = *newPrepared[i];
                const SweepJob &job = *prepareSource[i];
                const auto start = Clock::now();
                entry.workload = makeWorkload(job.workload);
                entry.workload->prepare(entry.mem, job.config.dataset);
                entry.program = entry.workload->build();
                entry.seconds = secondsSince(start);
                // Host seconds stay out of the trace (byte-reproducible
                // serial traces); timing lives in the phase profiler.
                AXM_TRACE(Sweep, "sweep", "prepared ", job.workload);
            };
        for (std::size_t i = 0; i < newPrepared.size(); ++i)
            pool_->submit([&fn, i] { fn(i); });
        pool_->wait();
    }
    metrics_.preparedPrograms = newPrepared.size();

    // ---- Phase B: baseline result cache fill, one simulation per
    // distinct (workload, dataset, cpu, hierarchy, energy) key.
    std::vector<BaselineEntry *> newBaselines;
    std::vector<const SweepJob *> baselineSource;
    for (const SweepJob &job : jobs_) {
        if (!job.scored && job.mode != Mode::Baseline)
            continue;
        ++metrics_.baselineRequests;
        const std::string key = baselineKey(job.workload, job.config);
        auto [it, inserted] = baselines_.try_emplace(key, nullptr);
        if (inserted) {
            it->second = std::make_unique<BaselineEntry>();
            it->second->prepared =
                prepared_
                    .at(prepareKey(job.workload, job.config.dataset))
                    .get();
            newBaselines.push_back(it->second.get());
            baselineSource.push_back(&job);
        }
    }
    AXM_TRACE(Sweep, "sweep", "phase baseline: ", newBaselines.size(),
              " simulated, ",
              metrics_.baselineRequests - newBaselines.size(),
              " served from cache");
    {
        AXM_PROF("sweep.baseline");
        const std::function<void(std::size_t)> fn =
            [&](std::size_t i) {
                AXM_PROF("sweep.baseline.job");
                BaselineEntry &entry = *newBaselines[i];
                const SweepJob &job = *baselineSource[i];
                const auto start = Clock::now();
                SimMemory mem = entry.prepared->mem.clone();
                const ExperimentRunner runner(job.config);
                entry.result = runner.runPrepared(
                    *entry.prepared->workload, Mode::Baseline,
                    entry.prepared->program, mem);
                entry.seconds = secondsSince(start);
                AXM_TRACE(Sweep, "sweep", "baseline ", job.workload,
                          " done");
            };
        for (std::size_t i = 0; i < newBaselines.size(); ++i)
            pool_->submit([&fn, i] { fn(i); });
        pool_->wait();
    }
    metrics_.baselineSimulations = newBaselines.size();

    // ---- Phase C: subject runs, results in submission order.
    AXM_TRACE(Sweep, "sweep", "phase subject: ", jobs_.size(), " job(s)");
    std::vector<SweepOutcome> results(jobs_.size());
    {
        AXM_PROF("sweep.subject");
        const std::function<void(std::size_t)> fn = [&](std::size_t i) {
            AXM_PROF("sweep.subject.job");
            const SweepJob &job = jobs_[i];
            SweepOutcome &out = results[i];
            const PreparedEntry &prep = *prepared_.at(
                prepareKey(job.workload, job.config.dataset));
            const BaselineEntry *base = nullptr;
            if (job.scored || job.mode == Mode::Baseline)
                base = baselines_.at(baselineKey(job.workload,
                                                 job.config))
                           .get();

            const auto start = Clock::now();
            if (job.mode == Mode::Baseline) {
                out.run = base->result; // simulated once, shared
            } else {
                SimMemory mem = prep.mem.clone();
                const ExperimentRunner runner(job.config);
                out.run = runner.runPrepared(*prep.workload, job.mode,
                                             prep.program, mem);
                out.seconds = secondsSince(start);
            }
            if (job.scored)
                out.cmp = ExperimentRunner::score(*prep.workload,
                                                  base->result, out.run);
            AXM_TRACE(Sweep, "sweep", "job ", i, " (", job.workload,
                      ") done");
        };
        for (std::size_t i = 0; i < jobs_.size(); ++i)
            pool_->submit([&fn, i] { fn(i); });
        pool_->wait();
    }

    // ---- Metrics: every simulation actually executed this sweep.
    double serial = 0.0;
    std::uint64_t macroInsts = 0;
    for (const PreparedEntry *entry : newPrepared)
        serial += entry->seconds;
    for (const BaselineEntry *entry : newBaselines) {
        serial += entry->seconds;
        macroInsts += entry->result.stats.macroInsts;
    }
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        serial += results[i].seconds;
        if (jobs_[i].mode != Mode::Baseline)
            macroInsts += results[i].run.stats.macroInsts;
    }
    metrics_.wallSeconds = secondsSince(wallStart);
    metrics_.serialEstimateSeconds = serial;
    metrics_.simulatedMacroInsts = macroInsts;
    if (metrics_.wallSeconds > 0.0) {
        metrics_.jobsPerSecond =
            static_cast<double>(metrics_.jobs) / metrics_.wallSeconds;
        metrics_.speedupVsSerial = serial / metrics_.wallSeconds;
        metrics_.simulatedMinstrPerSecond =
            static_cast<double>(macroInsts) / 1e6 /
            metrics_.wallSeconds;
    }

    jobs_.clear();
    return results;
}

std::string
SweepEngine::summary() const
{
    std::ostringstream os;
    os.precision(3);
    os << metrics_.jobs << " jobs on " << metrics_.workers
       << " worker(s): " << metrics_.wallSeconds << "s wall, "
       << metrics_.jobsPerSecond << " jobs/s, "
       << metrics_.simulatedMinstrPerSecond << " simulated Minstr/s, "
       << metrics_.speedupVsSerial << "x vs serial ("
       << metrics_.baselineSimulations << "/"
       << metrics_.baselineRequests << " baselines simulated)";
    return os.str();
}

void
SweepEngine::writeReport(const std::string &label,
                         const std::string &outDir) const
{
    const std::string path =
        joinPath(resolveOutputDir(outDir), label + "_sweep.json");
    std::ofstream out(path);
    if (!out) {
        axm_warn("cannot write sweep report to ", path);
        return;
    }
    out.precision(9);
    out << "{\n"
        << "  \"label\": \"" << JsonWriter::escape(label) << "\",\n"
        << "  \"workers\": " << metrics_.workers << ",\n"
        << "  \"jobs\": " << metrics_.jobs << ",\n"
        << "  \"wall_seconds\": " << metrics_.wallSeconds << ",\n"
        << "  \"serial_estimate_seconds\": "
        << metrics_.serialEstimateSeconds << ",\n"
        << "  \"speedup_vs_serial\": " << metrics_.speedupVsSerial
        << ",\n"
        << "  \"jobs_per_second\": " << metrics_.jobsPerSecond << ",\n"
        << "  \"simulated_macro_insts\": "
        << metrics_.simulatedMacroInsts << ",\n"
        << "  \"simulated_minstr_per_second\": "
        << metrics_.simulatedMinstrPerSecond << ",\n"
        << "  \"baseline_requests\": " << metrics_.baselineRequests
        << ",\n"
        << "  \"baseline_simulations\": "
        << metrics_.baselineSimulations << ",\n"
        << "  \"prepared_programs\": " << metrics_.preparedPrograms
        << "\n}\n";
}

} // namespace axmemo
