#include "core/config_io.hh"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/json_export.hh"
#include "core/json_value.hh"
#include "core/memo_backends.hh"

namespace axmemo {

namespace {

// ---------------------------------------------------------------- writer

/** Appends `"key":value` pairs in declaration order, compactly. */
class Obj
{
  public:
    Obj() { out_ << '{'; }

    void
    field(const char *key, double v)
    {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        raw(key, buf);
    }
    void
    field(const char *key, std::uint64_t v)
    {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
        raw(key, buf);
    }
    void
    field(const char *key, std::uint32_t v)
    {
        field(key, static_cast<std::uint64_t>(v));
    }
    void
    field(const char *key, int v)
    {
        raw(key, std::to_string(v));
    }
    void
    field(const char *key, bool v)
    {
        raw(key, v ? "true" : "false");
    }
    void
    field(const char *key, const std::string &v)
    {
        raw(key, '"' + JsonWriter::escape(v) + '"');
    }
    void
    raw(const char *key, const std::string &json)
    {
        if (any_)
            out_ << ',';
        any_ = true;
        out_ << '"' << key << "\":" << json;
    }

    std::string
    close()
    {
        out_ << '}';
        return out_.str();
    }

  private:
    std::ostringstream out_;
    bool any_ = false;
};

const char *
l2PolicyName(L2LutPolicy policy)
{
    return policy == L2LutPolicy::Victim ? "victim" : "inclusive";
}

const char *
swHashName(SwHashKind kind)
{
    return kind == SwHashKind::ByteSample ? "byte_sample" : "table_crc";
}

// ----------------------------------------------------- field application

/** Applies parsed members onto config structs with strict key checks. */
class Apply
{
  public:
    bool ok = true;
    std::string error;

    void
    fail(const std::string &what)
    {
        if (ok)
            error = what;
        ok = false;
    }

    bool
    number(const JValue &v, const std::string &key, double &out)
    {
        if (v.kind != JValue::Kind::Number) {
            fail("field '" + key + "' must be a number");
            return false;
        }
        out = std::strtod(v.token.c_str(), nullptr);
        return true;
    }

    bool
    number(const JValue &v, const std::string &key, std::uint64_t &out)
    {
        if (v.kind != JValue::Kind::Number ||
            v.token.find_first_of(".eE-") != std::string::npos) {
            fail("field '" + key +
                 "' must be a non-negative integer");
            return false;
        }
        errno = 0;
        out = std::strtoull(v.token.c_str(), nullptr, 10);
        if (errno == ERANGE) {
            fail("field '" + key + "' out of range");
            return false;
        }
        return true;
    }

    template <typename T>
        requires(std::is_unsigned_v<T> && !std::is_same_v<T, bool> &&
                 !std::is_same_v<T, std::uint64_t>)
    bool
    number(const JValue &v, const std::string &key, T &out)
    {
        std::uint64_t wide = 0;
        if (!number(v, key, wide))
            return false;
        if (wide > std::numeric_limits<T>::max()) {
            fail("field '" + key + "' out of range");
            return false;
        }
        out = static_cast<T>(wide);
        return true;
    }

    bool
    number(const JValue &v, const std::string &key, int &out)
    {
        if (v.kind != JValue::Kind::Number ||
            v.token.find_first_of(".eE") != std::string::npos) {
            fail("field '" + key + "' must be an integer");
            return false;
        }
        errno = 0;
        const long parsed = std::strtol(v.token.c_str(), nullptr, 10);
        if (errno == ERANGE || parsed < std::numeric_limits<int>::min() ||
            parsed > std::numeric_limits<int>::max()) {
            fail("field '" + key + "' out of range");
            return false;
        }
        out = static_cast<int>(parsed);
        return true;
    }

    bool
    boolean(const JValue &v, const std::string &key, bool &out)
    {
        if (v.kind != JValue::Kind::Bool) {
            fail("field '" + key + "' must be a boolean");
            return false;
        }
        out = v.boolean;
        return true;
    }

    bool
    string(const JValue &v, const std::string &key, std::string &out)
    {
        if (v.kind != JValue::Kind::String) {
            fail("field '" + key + "' must be a string");
            return false;
        }
        out = v.token;
        return true;
    }

    /** Dispatch every member of @p v through @p setter(key, value);
     * setter returns false for unknown keys. */
    template <typename Setter>
    void
    object(const JValue &v, const std::string &what, Setter &&setter)
    {
        if (!ok)
            return;
        if (v.kind != JValue::Kind::Object) {
            fail("'" + what + "' must be an object");
            return;
        }
        for (const auto &[key, value] : v.members) {
            if (!ok)
                return;
            if (!setter(key, value)) {
                fail("unknown field '" + key + "' in " + what);
                return;
            }
        }
    }

    void apply(const JValue &v, WorkloadParams &p);
    void apply(const JValue &v, LutSetup &l);
    void apply(const JValue &v, CacheConfig &c);
    void apply(const JValue &v, DramConfig &d);
    void apply(const JValue &v, HierarchyConfig &h);
    void apply(const JValue &v, AdaptiveTruncationConfig &a);
    void apply(const JValue &v, SwMemoConfig &s);
    void apply(const JValue &v, AtmConfig &a);
    void apply(const JValue &v, IactConfig &i);
    void apply(const JValue &v, EnergyParams &e);
    void apply(const JValue &v, CpuConfig &c);
    void apply(const JValue &v, ExperimentConfig &config);
};

void
Apply::apply(const JValue &v, WorkloadParams &p)
{
    object(v, "dataset", [&](const std::string &k, const JValue &j) {
        if (k == "scale") return number(j, k, p.scale);
        if (k == "seed") return number(j, k, p.seed);
        if (k == "sample_set") return boolean(j, k, p.sampleSet);
        return false;
    });
}

void
Apply::apply(const JValue &v, LutSetup &l)
{
    object(v, "lut", [&](const std::string &k, const JValue &j) {
        if (k == "l1_bytes") return number(j, k, l.l1Bytes);
        if (k == "l2_bytes") return number(j, k, l.l2Bytes);
        return false;
    });
}

void
Apply::apply(const JValue &v, CacheConfig &c)
{
    object(v, "cache", [&](const std::string &k, const JValue &j) {
        if (k == "name") return string(j, k, c.name);
        if (k == "size_bytes") return number(j, k, c.sizeBytes);
        if (k == "assoc") return number(j, k, c.assoc);
        if (k == "line_size") return number(j, k, c.lineSize);
        if (k == "hit_latency") return number(j, k, c.hitLatency);
        return false;
    });
}

void
Apply::apply(const JValue &v, DramConfig &d)
{
    object(v, "dram", [&](const std::string &k, const JValue &j) {
        if (k == "channels") return number(j, k, d.channels);
        if (k == "banks_per_channel")
            return number(j, k, d.banksPerChannel);
        if (k == "row_bytes") return number(j, k, d.rowBytes);
        if (k == "row_hit_latency")
            return number(j, k, d.rowHitLatency);
        if (k == "row_miss_latency")
            return number(j, k, d.rowMissLatency);
        return false;
    });
}

void
Apply::apply(const JValue &v, HierarchyConfig &h)
{
    object(v, "hierarchy", [&](const std::string &k, const JValue &j) {
        if (k == "l1d") { apply(j, h.l1d); return true; }
        if (k == "l2") { apply(j, h.l2); return true; }
        if (k == "dram") { apply(j, h.dram); return true; }
        return false;
    });
}

void
Apply::apply(const JValue &v, AdaptiveTruncationConfig &a)
{
    object(v, "adaptive", [&](const std::string &k, const JValue &j) {
        if (k == "enabled") return boolean(j, k, a.enabled);
        if (k == "profile_period")
            return number(j, k, a.profilePeriod);
        if (k == "profile_length")
            return number(j, k, a.profileLength);
        if (k == "target_error") return number(j, k, a.targetError);
        if (k == "raise_band") return number(j, k, a.raiseBand);
        if (k == "hit_target") return number(j, k, a.hitTarget);
        if (k == "max_extra_bits")
            return number(j, k, a.maxExtraBits);
        if (k == "absolute_floor")
            return number(j, k, a.absoluteFloor);
        return false;
    });
}

void
Apply::apply(const JValue &v, SwMemoConfig &s)
{
    object(v, "software", [&](const std::string &k, const JValue &j) {
        if (k == "hash") {
            std::string name;
            if (!string(j, k, name))
                return true;
            if (name == "table_crc")
                s.hash = SwHashKind::TableCrc;
            else if (name == "byte_sample")
                s.hash = SwHashKind::ByteSample;
            else
                fail("unknown software hash '" + name + "'");
            return true;
        }
        if (k == "log2_entries") return number(j, k, s.log2Entries);
        if (k == "sample_bytes") return number(j, k, s.sampleBytes);
        if (k == "task_overhead_insts")
            return number(j, k, s.taskOverheadInsts);
        if (k == "seed") return number(j, k, s.seed);
        return false;
    });
}

void
Apply::apply(const JValue &v, AtmConfig &a)
{
    object(v, "atm", [&](const std::string &k, const JValue &j) {
        if (k == "sample_bytes") return number(j, k, a.sampleBytes);
        if (k == "task_overhead_insts")
            return number(j, k, a.taskOverheadInsts);
        if (k == "log2_entries") return number(j, k, a.log2Entries);
        if (k == "seed") return number(j, k, a.seed);
        return false;
    });
}

void
Apply::apply(const JValue &v, IactConfig &i)
{
    object(v, "iact", [&](const std::string &k, const JValue &j) {
        if (k == "threshold") return number(j, k, i.threshold);
        if (k == "log2_entries") return number(j, k, i.log2Entries);
        if (k == "pools") return number(j, k, i.pools);
        if (k == "task_overhead_insts")
            return number(j, k, i.taskOverheadInsts);
        return false;
    });
}

void
Apply::apply(const JValue &v, EnergyParams &e)
{
    object(v, "energy", [&](const std::string &k, const JValue &j) {
        if (k == "frontend_per_uop")
            return number(j, k, e.frontendPerUop);
        if (k == "int_alu") return number(j, k, e.intAlu);
        if (k == "int_mul") return number(j, k, e.intMul);
        if (k == "int_div") return number(j, k, e.intDiv);
        if (k == "fp_simple") return number(j, k, e.fpSimple);
        if (k == "fp_mul") return number(j, k, e.fpMul);
        if (k == "fp_div") return number(j, k, e.fpDiv);
        if (k == "fp_long_per_uop")
            return number(j, k, e.fpLongPerUop);
        if (k == "mem_agen") return number(j, k, e.memAgen);
        if (k == "branch") return number(j, k, e.branch);
        if (k == "memo_issue") return number(j, k, e.memoIssue);
        if (k == "l1d_access") return number(j, k, e.l1dAccess);
        if (k == "l2_access") return number(j, k, e.l2Access);
        if (k == "dram_access") return number(j, k, e.dramAccess);
        if (k == "crc_per_4_bytes")
            return number(j, k, e.crcPer4Bytes);
        if (k == "hvr_access") return number(j, k, e.hvrAccess);
        if (k == "leakage_per_cycle")
            return number(j, k, e.leakagePerCycle);
        if (k == "memo_leakage_per_cycle")
            return number(j, k, e.memoLeakagePerCycle);
        return false;
    });
}

void
Apply::apply(const JValue &v, CpuConfig &c)
{
    object(v, "cpu", [&](const std::string &k, const JValue &j) {
        if (k == "issue_width") return number(j, k, c.issueWidth);
        if (k == "mispredict_penalty")
            return number(j, k, c.mispredictPenalty);
        if (k == "freq_ghz") return number(j, k, c.freqGhz);
        if (k == "num_int_alus") return number(j, k, c.numIntAlus);
        if (k == "predictor_entries")
            return number(j, k, c.predictorEntries);
        if (k == "out_of_order") return boolean(j, k, c.outOfOrder);
        if (k == "rob_size") return number(j, k, c.robSize);
        return false;
    });
}

void
Apply::apply(const JValue &v, ExperimentConfig &config)
{
    object(v, "config", [&](const std::string &k, const JValue &j) {
        if (k == "dataset") { apply(j, config.dataset); return true; }
        if (k == "lut") { apply(j, config.lut); return true; }
        if (k == "crc_bits") return number(j, k, config.crcBits);
        if (k == "hierarchy") {
            apply(j, config.hierarchy);
            return true;
        }
        if (k == "quality_monitor")
            return boolean(j, k, config.qualityMonitor);
        if (k == "trunc_override")
            return number(j, k, config.truncOverride);
        if (k == "adaptive") { apply(j, config.adaptive); return true; }
        if (k == "l2_policy") {
            std::string name;
            if (!string(j, k, name))
                return true;
            if (name == "inclusive")
                config.l2Policy = L2LutPolicy::Inclusive;
            else if (name == "victim")
                config.l2Policy = L2LutPolicy::Victim;
            else
                fail("unknown l2_policy '" + name + "'");
            return true;
        }
        if (k == "software") { apply(j, config.software); return true; }
        if (k == "atm") { apply(j, config.atm); return true; }
        if (k == "iact") { apply(j, config.iact); return true; }
        if (k == "energy") { apply(j, config.energy); return true; }
        if (k == "cpu") { apply(j, config.cpu); return true; }
        return false;
    });
}

} // namespace

std::string
toJson(const WorkloadParams &p)
{
    Obj o;
    o.field("scale", p.scale);
    o.field("seed", p.seed);
    o.field("sample_set", p.sampleSet);
    return o.close();
}

std::string
toJson(const LutSetup &l)
{
    Obj o;
    o.field("l1_bytes", l.l1Bytes);
    o.field("l2_bytes", l.l2Bytes);
    return o.close();
}

std::string
toJson(const CacheConfig &c)
{
    Obj o;
    o.field("name", c.name);
    o.field("size_bytes", c.sizeBytes);
    o.field("assoc", c.assoc);
    o.field("line_size", c.lineSize);
    o.field("hit_latency", c.hitLatency);
    return o.close();
}

std::string
toJson(const DramConfig &d)
{
    Obj o;
    o.field("channels", d.channels);
    o.field("banks_per_channel", d.banksPerChannel);
    o.field("row_bytes", d.rowBytes);
    o.field("row_hit_latency", d.rowHitLatency);
    o.field("row_miss_latency", d.rowMissLatency);
    return o.close();
}

std::string
toJson(const HierarchyConfig &h)
{
    Obj o;
    o.raw("l1d", toJson(h.l1d));
    o.raw("l2", toJson(h.l2));
    o.raw("dram", toJson(h.dram));
    return o.close();
}

std::string
toJson(const AdaptiveTruncationConfig &a)
{
    Obj o;
    o.field("enabled", a.enabled);
    o.field("profile_period", a.profilePeriod);
    o.field("profile_length", a.profileLength);
    o.field("target_error", a.targetError);
    o.field("raise_band", a.raiseBand);
    o.field("hit_target", a.hitTarget);
    o.field("max_extra_bits", a.maxExtraBits);
    o.field("absolute_floor", a.absoluteFloor);
    return o.close();
}

std::string
toJson(const SwMemoConfig &s)
{
    Obj o;
    o.field("hash", std::string(swHashName(s.hash)));
    o.field("log2_entries", s.log2Entries);
    o.field("sample_bytes", s.sampleBytes);
    o.field("task_overhead_insts", s.taskOverheadInsts);
    o.field("seed", s.seed);
    return o.close();
}

std::string
toJson(const AtmConfig &a)
{
    Obj o;
    o.field("sample_bytes", a.sampleBytes);
    o.field("task_overhead_insts", a.taskOverheadInsts);
    o.field("log2_entries", a.log2Entries);
    o.field("seed", a.seed);
    return o.close();
}

std::string
toJson(const IactConfig &i)
{
    Obj o;
    o.field("threshold", i.threshold);
    o.field("log2_entries", i.log2Entries);
    o.field("pools", i.pools);
    o.field("task_overhead_insts", i.taskOverheadInsts);
    return o.close();
}

std::string
toJson(const EnergyParams &e)
{
    Obj o;
    o.field("frontend_per_uop", e.frontendPerUop);
    o.field("int_alu", e.intAlu);
    o.field("int_mul", e.intMul);
    o.field("int_div", e.intDiv);
    o.field("fp_simple", e.fpSimple);
    o.field("fp_mul", e.fpMul);
    o.field("fp_div", e.fpDiv);
    o.field("fp_long_per_uop", e.fpLongPerUop);
    o.field("mem_agen", e.memAgen);
    o.field("branch", e.branch);
    o.field("memo_issue", e.memoIssue);
    o.field("l1d_access", e.l1dAccess);
    o.field("l2_access", e.l2Access);
    o.field("dram_access", e.dramAccess);
    o.field("crc_per_4_bytes", e.crcPer4Bytes);
    o.field("hvr_access", e.hvrAccess);
    o.field("leakage_per_cycle", e.leakagePerCycle);
    o.field("memo_leakage_per_cycle", e.memoLeakagePerCycle);
    return o.close();
}

std::string
toJson(const CpuConfig &c)
{
    Obj o;
    o.field("issue_width", c.issueWidth);
    o.field("mispredict_penalty", c.mispredictPenalty);
    o.field("freq_ghz", c.freqGhz);
    o.field("num_int_alus", c.numIntAlus);
    o.field("predictor_entries", c.predictorEntries);
    o.field("out_of_order", c.outOfOrder);
    o.field("rob_size", c.robSize);
    return o.close();
}

std::string
toJson(const ExperimentConfig &config)
{
    Obj o;
    o.raw("dataset", toJson(config.dataset));
    o.raw("lut", toJson(config.lut));
    o.field("crc_bits", config.crcBits);
    o.raw("hierarchy", toJson(config.hierarchy));
    o.field("quality_monitor", config.qualityMonitor);
    o.field("trunc_override", config.truncOverride);
    o.raw("adaptive", toJson(config.adaptive));
    o.field("l2_policy", std::string(l2PolicyName(config.l2Policy)));
    o.raw("software", toJson(config.software));
    o.raw("atm", toJson(config.atm));
    o.raw("iact", toJson(config.iact));
    o.raw("energy", toJson(config.energy));
    o.raw("cpu", toJson(config.cpu));
    return o.close();
}

Expected<ExperimentConfig>
parseConfig(const std::string &json)
{
    Expected<JValue> root = parseJsonValue(json);
    if (!root.ok())
        return Error{ErrorCode::Parse, "config", root.error().message};
    ExperimentConfig config;
    Apply apply;
    apply.apply(root.value(), config);
    if (!apply.ok)
        return Error{ErrorCode::Parse, "config", apply.error};
    return config;
}

bool
configEquals(const ExperimentConfig &a, const ExperimentConfig &b)
{
    return toJson(a) == toJson(b);
}

Expected<const MemoBackend *>
parseBackend(const std::string &name)
{
    return memoBackends().resolve(name);
}

} // namespace axmemo
