/**
 * @file
 * Human-readable reports over run results: a gem5-style stats dump for
 * one run and a side-by-side comparison summary. Used by the CLI
 * frontend and handy for debugging configurations.
 */

#ifndef AXMEMO_CORE_REPORT_HH
#define AXMEMO_CORE_REPORT_HH

#include <string>

#include "core/experiment.hh"

namespace axmemo {

/** Render one run's statistics (cycles, IPC, events, memo, energy). */
std::string formatRunReport(const RunResult &result,
                            const ExperimentConfig &config);

/** Render a baseline-vs-subject comparison summary. */
std::string formatComparison(const Comparison &cmp,
                             const Workload &workload);

} // namespace axmemo

#endif // AXMEMO_CORE_REPORT_HH
