#include "core/artifact.hh"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>

#include "common/interrupt.hh"
#include "common/log.hh"
#include "core/config_io.hh"
#include "core/json_export.hh"
#include "core/json_value.hh"
#include "core/output_paths.hh"
#include "core/run_journal.hh"
#include "core/run_stats.hh"
#include "core/shard_queue.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"

namespace axmemo {

namespace {

using Clock = std::chrono::steady_clock;

/** The standard bench banner (formerly bench_util.hh's banner()). */
void
printBanner(const std::string &title, const RuntimeOptions &runtime)
{
    const double scale = runtime.benchScale();
    std::printf("== %s ==\n", title.c_str());
    std::printf("dataset scale %.4g (AXMEMO_FULL=1 for paper-size "
                "inputs)\n\n",
                scale);
}

/** Structured error as a compact JSON object. */
std::string
errorJson(const Error &fault)
{
    std::string out = "{\"code\":\"";
    out += errorCodeName(fault.code);
    out += "\",\"component\":\"";
    out += JsonWriter::escape(fault.component);
    out += "\",\"message\":\"";
    out += JsonWriter::escape(fault.message);
    out += "\"}";
    return out;
}

/** The per-row status/attempts suffix: empty for a clean first-attempt
 * success, so fully-successful runs keep their historical bytes. */
std::string
statusFields(const SweepOutcome &outcome)
{
    std::string out;
    if (!outcome.ok()) {
        out += ",\"status\":\"";
        out += jobStatusName(outcome.status);
        out += "\",\"error\":";
        out += errorJson(outcome.fault);
    }
    if (outcome.attempts > 1)
        out += ",\"attempts\":" + std::to_string(outcome.attempts);
    return out;
}

/** Default result rows: one object per enqueued job. */
std::vector<std::string>
defaultRows(const std::vector<SweepJob> &jobs,
            const std::vector<SweepOutcome> &outcomes)
{
    std::vector<std::string> rows;
    rows.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        std::string row = "{\"workload\":\"";
        row += JsonWriter::escape(jobs[i].workload);
        row += "\",\"mode\":\"";
        row += JsonWriter::escape(jobs[i].backend);
        row += "\",\"scored\":";
        row += jobs[i].scored ? "true" : "false";
        row += ",\"config\":";
        row += toJson(jobs[i].config);
        if (!outcomes[i].ok()) {
            row += statusFields(outcomes[i]);
        } else if (jobs[i].scored) {
            row += ",\"comparison\":";
            row += JsonWriter::toJson(outcomes[i].cmp,
                                      jobs[i].workload);
            row += statusFields(outcomes[i]);
        } else {
            row += ",\"run\":";
            row += JsonWriter::toJson(outcomes[i].run);
            row += statusFields(outcomes[i]);
        }
        row += '}';
        rows.push_back(std::move(row));
    }
    return rows;
}

/** Assemble the <name>.json document from rows. */
std::string
rowsDocument(const Artifact &artifact, const SweepEngine &engine,
             const std::vector<std::string> &rows)
{
    std::string doc = "{\"artifact\":\"";
    doc += JsonWriter::escape(artifact.name());
    doc += "\",\"title\":\"";
    doc += JsonWriter::escape(artifact.title());
    doc += "\",\"scale\":";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g",
                  engine.options().benchScale());
    doc += buf;
    doc += ",\"workers\":";
    doc += std::to_string(engine.workers());
    doc += ",\"rows\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i)
            doc += ',';
        doc += rows[i];
    }
    doc += "]}";
    return doc;
}

/** Manifest entry: the exact serialized config — and per-run stats —
 * of every job. */
std::string
manifestRun(const Artifact &artifact,
            const std::vector<SweepJob> &jobs,
            const std::vector<SweepOutcome> &outcomes,
            double wallSeconds, const SweepMetrics &metrics)
{
    std::string entry = "{\"artifact\":\"";
    entry += JsonWriter::escape(artifact.name());
    entry += "\",\"jobs\":";
    entry += std::to_string(jobs.size());
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6f", wallSeconds);
    entry += ",\"wall_seconds\":";
    entry += buf;
    // Fault counters appear only when something went wrong, so a clean
    // run's manifest keeps its historical byte layout.
    if (metrics.faultedJobs() || metrics.retriedJobs) {
        entry += ",\"failed_jobs\":";
        entry += std::to_string(metrics.failedJobs);
        entry += ",\"timed_out_jobs\":";
        entry += std::to_string(metrics.timedOutJobs);
        entry += ",\"skipped_jobs\":";
        entry += std::to_string(metrics.skippedJobs);
        entry += ",\"retried_jobs\":";
        entry += std::to_string(metrics.retriedJobs);
    }
    entry += ",\"runs\":[";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i)
            entry += ',';
        entry += "{\"workload\":\"";
        entry += JsonWriter::escape(jobs[i].workload);
        entry += "\",\"mode\":\"";
        entry += JsonWriter::escape(jobs[i].backend);
        entry += "\",\"scored\":";
        entry += jobs[i].scored ? "true" : "false";
        entry += ",\"config\":";
        entry += toJson(jobs[i].config);
        entry += statusFields(outcomes[i]);
        // A faulted run has no simulation results; its statistics
        // section would be all zeros (and derived rates NaN), so the
        // status/error object above replaces it.
        if (outcomes[i].ok()) {
            entry += ",\"stats\":";
            entry += runStatSet(jobs[i], outcomes[i]).renderJson();
        }
        entry += '}';
    }
    entry += "]}";
    return entry;
}

/** @p path's final component (reports must not leak directory names). */
std::string
baseName(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/** Whole file as a string; empty optional-style "" on failure. */
std::string
readWholeFile(const std::string &path)
{
    std::string content;
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return content;
    char buf[1 << 12];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0)
        content.append(buf, got);
    std::fclose(file);
    return content;
}

/** One probed journal segment of a merge. */
struct SegmentStatus
{
    std::string path;
    Error fault{};
    bool ok = false;
};

/**
 * The merge-side shard report <name>_shards.json: per-segment probe
 * status, the damaged count, and every per-worker shard manifest
 * inlined. This is a separate file — the standard reports must stay
 * byte-identical to a single-process run, and worker counters are
 * inherently run-specific.
 */
std::string
shardsDocument(const std::string &name,
               const std::vector<SegmentStatus> &segments,
               std::size_t damaged, const std::string &shardDir)
{
    std::string doc = "{\"artifact\":\"";
    doc += JsonWriter::escape(name);
    doc += "\",\"damaged_segments\":";
    doc += std::to_string(damaged);
    doc += ",\"segments\":[";
    for (std::size_t i = 0; i < segments.size(); ++i) {
        if (i)
            doc += ',';
        doc += "{\"segment\":\"";
        doc += JsonWriter::escape(baseName(segments[i].path));
        if (segments[i].ok) {
            doc += "\",\"status\":\"ok\"}";
        } else {
            doc += "\",\"status\":\"damaged\",\"error\":";
            doc += errorJson(segments[i].fault);
            doc += '}';
        }
    }
    doc += "],\"workers\":[";
    bool first = true;
    for (const std::string &path : ShardQueue::shardManifests(shardDir)) {
        std::string manifest = readWholeFile(path);
        while (!manifest.empty() &&
               (manifest.back() == '\n' || manifest.back() == '\r'))
            manifest.pop_back();
        if (!parseJsonValue(manifest).ok()) {
            axm_warn("skipping unreadable shard manifest '", path, "'");
            continue;
        }
        if (!first)
            doc += ',';
        first = false;
        doc += manifest;
    }
    doc += "]}";
    return doc;
}

} // namespace

ArtifactRegistry &
ArtifactRegistry::instance()
{
    static ArtifactRegistry registry;
    return registry;
}

void
ArtifactRegistry::add(int order, Factory factory)
{
    const std::unique_ptr<Artifact> probe = factory();
    Entry entry;
    entry.order = order;
    entry.name = probe->name();
    entry.description = probe->description();
    entry.factory = std::move(factory);
    for (const Entry &existing : entries_)
        if (existing.name == entry.name)
            axm_panic("duplicate artifact registration '", entry.name,
                      "'");
    entries_.push_back(std::move(entry));
}

std::vector<ArtifactInfo>
ArtifactRegistry::list() const
{
    std::vector<ArtifactInfo> infos;
    infos.reserve(entries_.size());
    for (const Entry &entry : entries_)
        infos.push_back({entry.name, entry.description, entry.order});
    std::sort(infos.begin(), infos.end(),
              [](const ArtifactInfo &a, const ArtifactInfo &b) {
                  return a.order != b.order ? a.order < b.order
                                            : a.name < b.name;
              });
    return infos;
}

std::unique_ptr<Artifact>
ArtifactRegistry::make(const std::string &name) const
{
    for (const Entry &entry : entries_)
        if (entry.name == name)
            return entry.factory();
    return nullptr;
}

ArtifactRegistrar::ArtifactRegistrar(int order,
                                     ArtifactRegistry::Factory factory)
{
    ArtifactRegistry::instance().add(order, std::move(factory));
}

Expected<ArtifactRunRecord>
runArtifact(Artifact &artifact, const ArtifactRunOptions &options)
{
    const auto wallStart = Clock::now();
    const std::string name = artifact.name();
    const std::string title = artifact.title();
    const bool worker = options.shardMode == ShardMode::Worker;
    if (worker && !options.queue)
        return Error{ErrorCode::Config, "artifact",
                     "shard worker mode needs a work-queue"};
    if (!options.rowsToStdout && !title.empty() && !worker)
        printBanner(title, options.runtime);

    SweepEngine engine(options.runtime);
    try {
        AXM_PROF("artifact.enqueue");
        artifact.enqueue(engine);
    } catch (const AxException &e) {
        return e.error();
    } catch (const std::exception &e) {
        return Error{ErrorCode::Internal, "artifact",
                     name + ": enqueue threw: " + e.what()};
    }
    const std::vector<SweepJob> jobs = engine.pending();
    std::vector<SegmentStatus> segments;
    std::size_t damagedSegments = 0;
    if (worker) {
        engine.setShardQueue(options.queue);
        // The worker's journal segment is shared across every artifact
        // of the invocation and survives restarts: resume semantics
        // replay this worker's own completed records after a crash.
        if (!jobs.empty())
            engine.setJournal(options.queue->journalPath(),
                              /*resume=*/true);
    } else if (options.shardMode == ShardMode::Merge) {
        // Probe every segment before loading: a damaged shard is
        // reported and skipped (its jobs re-simulate below) — one
        // corrupt file never aborts the reduction.
        std::vector<std::string> readable;
        for (const std::string &path :
             ShardQueue::journalSegments(options.shardDir)) {
            SegmentStatus status;
            status.path = path;
            const Expected<SweepJournal::HeaderInfo> probed =
                SweepJournal::probe(path);
            status.ok = probed.ok();
            if (probed.ok()) {
                readable.push_back(path);
            } else {
                status.fault = probed.error();
                ++damagedSegments;
                axm_warn("merge: skipping damaged segment '", path,
                         "': ", probed.error().describe());
            }
            segments.push_back(std::move(status));
        }
        engine.addReplaySegments(readable);
    } else if ((options.journal || options.resume) && !jobs.empty()) {
        engine.setJournal(SweepJournal::pathFor(name, options.outDir),
                          options.resume);
    }
    std::vector<SweepOutcome> outcomes;
    {
        AXM_PROF("artifact.execute");
        outcomes = engine.execute();
    }
    // A fully successful sweep needs no checkpoint; anything faulted
    // or interrupted keeps it so `--resume` can pick up the rest. A
    // worker's segment always survives — merge consumes it.
    engine.closeJournal(!worker &&
                        engine.metrics().faultedJobs() == 0 &&
                        !interruptRequested());
    if (worker) {
        const SweepMetrics &metrics = engine.metrics();
        ArtifactRunRecord record;
        record.wallSeconds =
            options.runtime.reportTiming
                ? std::chrono::duration<double>(Clock::now() -
                                                wallStart)
                      .count()
                : 0.0;
        record.jobs = jobs.size();
        record.failedJobs = metrics.failedJobs;
        record.timedOutJobs = metrics.timedOutJobs;
        record.skippedJobs = metrics.skippedJobs;
        record.restoredJobs = metrics.restoredJobs;
        record.retriedJobs = metrics.retriedJobs;
        record.foreignJobs = metrics.foreignJobs;
        record.simulatedMacroInsts = metrics.simulatedMacroInsts;
        std::fprintf(stderr, "[%s %s] %s\n", name.c_str(),
                     options.queue->workerId().c_str(),
                     engine.summary().c_str());
        return record;
    }
    ArtifactResult result;
    try {
        AXM_PROF("artifact.reduce");
        result = artifact.reduce(outcomes);
    } catch (const AxException &e) {
        return e.error();
    } catch (const std::exception &e) {
        return Error{ErrorCode::Internal, "artifact",
                     name + ": reduce threw: " + e.what()};
    }
    AXM_PROF("artifact.emit");

    if (result.jsonRows.empty() && !jobs.empty())
        result.jsonRows = defaultRows(jobs, outcomes);
    const double wallSeconds =
        options.runtime.reportTiming
            ? std::chrono::duration<double>(Clock::now() - wallStart)
                  .count()
            : 0.0;

    if (options.rowsToStdout) {
        const std::string doc =
            rowsDocument(artifact, engine, result.jsonRows);
        std::fwrite(doc.data(), 1, doc.size(), stdout);
        std::fputc('\n', stdout);
    } else {
        std::fwrite(result.text.data(), 1, result.text.size(),
                    stdout);
    }
    std::fflush(stdout);

    if (options.writeSweepReport && !jobs.empty()) {
        engine.writeReport(name, options.outDir);
        std::fprintf(stderr, "[%s] %s\n", name.c_str(),
                     engine.summary().c_str());
    }

    if (options.writeRows) {
        const std::string path = joinPath(
            resolveOutputDir(options.outDir), name + ".json");
        const Expected<void> wrote = atomicWriteFile(
            path,
            rowsDocument(artifact, engine, result.jsonRows) + '\n');
        if (!wrote.ok())
            axm_warn("cannot write result rows: ",
                     wrote.error().describe());
    }

    if (options.writeStats && !jobs.empty()) {
        std::string sections;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            sections += runStatsSection(
                name + "/run" + std::to_string(i), jobs[i],
                outcomes[i]);
            sections += '\n';
        }
        const std::string path = joinPath(
            resolveOutputDir(options.outDir), name + "_stats.txt");
        const Expected<void> wrote = atomicWriteFile(path, sections);
        if (!wrote.ok())
            axm_warn("cannot write run statistics: ",
                     wrote.error().describe());
    }

    if (options.shardMode == ShardMode::Merge && !jobs.empty()) {
        const std::string path = joinPath(
            resolveOutputDir(options.outDir), name + "_shards.json");
        const Expected<void> wrote = atomicWriteFile(
            path,
            shardsDocument(name, segments, damagedSegments,
                           options.shardDir) +
                '\n');
        if (!wrote.ok())
            axm_warn("cannot write shard report: ",
                     wrote.error().describe());
    }

    const SweepMetrics &metrics = engine.metrics();
    ArtifactRunRecord record;
    record.wallSeconds = wallSeconds;
    record.jobs = jobs.size();
    record.failedJobs = metrics.failedJobs;
    record.timedOutJobs = metrics.timedOutJobs;
    record.skippedJobs = metrics.skippedJobs;
    record.restoredJobs = metrics.restoredJobs;
    record.retriedJobs = metrics.retriedJobs;
    record.foreignJobs = metrics.foreignJobs;
    record.damagedSegments = damagedSegments;
    record.simulatedMacroInsts = metrics.simulatedMacroInsts;
    record.manifestRun =
        manifestRun(artifact, jobs, outcomes, wallSeconds, metrics);
    return record;
}

int
artifactStandaloneMain(const std::string &name)
{
    setQuiet(true);
    trace::initFromEnv();
    // stdout stays byte-identical to the pre-registry harness; the
    // notice goes to stderr only.
    std::fprintf(stderr,
                 "note: the standalone '%s' binary is deprecated; "
                 "use `axmemo run %s`\n",
                 name.c_str(), name.c_str());
    const std::unique_ptr<Artifact> artifact =
        ArtifactRegistry::instance().make(name);
    if (!artifact) {
        std::fprintf(stderr, "unknown artifact '%s'\n", name.c_str());
        return 1;
    }
    const Expected<ArtifactRunRecord> record =
        runArtifact(*artifact, ArtifactRunOptions{});
    if (!record.ok()) {
        std::fprintf(stderr, "%s: %s\n", name.c_str(),
                     record.error().describe().c_str());
        return 1;
    }
    return record.value().faultedJobs() ? 1 : 0;
}

void
appendf(std::string &out, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n > 0) {
        const std::size_t base = out.size();
        out.resize(base + static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data() + base,
                       static_cast<std::size_t>(n) + 1, fmt, args);
        out.resize(base + static_cast<std::size_t>(n));
    }
    va_end(args);
}

} // namespace axmemo
