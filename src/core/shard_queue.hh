/**
 * @file
 * The filesystem-backed shared work-queue behind multi-process sweep
 * sharding (DESIGN.md §12).
 *
 * N independent `axmemo run --shard-dir <dir>` processes — on one host
 * or on several hosts mounting the same directory — cooperatively
 * drain one sweep. There is no coordinator: the directory IS the
 * queue, and every operation is an atomic filesystem primitive
 * (common/lease.hh):
 *
 *   <dir>/claims/<h>.claim    lease: holder identity JSON; mtime is the
 *                             heartbeat, refreshed by a background
 *                             thread while the holder works
 *   <dir>/claims/<h>.done     terminal marker: some worker journaled
 *                             (or durably failed) this job
 *   <dir>/journal.<w>.ckpt    per-worker checkpoint journal segment
 *                             (core/run_journal.hh records, shared
 *                             across every artifact the worker runs)
 *   <dir>/shard.<w>.json      per-worker manifest: claim/steal/foreign
 *                             counters, jobs run, simulated volume
 *
 * where <h> = FNV-1a hash of the job's full identity key and <w> = the
 * worker id. Claiming is create-exclusive; a claim whose mtime is older
 * than the lease window belongs to a SIGKILLed worker and is stolen via
 * a rename tombstone, so exactly one stealer wins. Because every job is
 * deterministic, the rare double-execution (worker killed between its
 * journal append and the done marker) just writes an identical record
 * into a second segment — `axmemo merge` deduplicates by key and the
 * reduction stays byte-identical to a single-process run.
 */

#ifndef AXMEMO_CORE_SHARD_QUEUE_HH
#define AXMEMO_CORE_SHARD_QUEUE_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/expected.hh"

namespace axmemo {

/** Per-worker lifetime counters, rendered into shard.<w>.json. */
struct ShardCounters
{
    std::uint64_t claimed = 0;  ///< claims acquired (incl. steals)
    std::uint64_t stolen = 0;   ///< claims reclaimed from dead workers
    std::uint64_t foreign = 0;  ///< jobs skipped: done elsewhere
    std::uint64_t completed = 0; ///< claimed jobs finished Ok
    std::uint64_t failed = 0;   ///< claimed jobs finished faulted
    std::uint64_t released = 0; ///< claims released unfinished
};

/** One worker's handle on a shard directory; see file comment. */
class ShardQueue
{
  public:
    /** Outcome of one claim attempt. */
    enum class Claim
    {
        Acquired, ///< this worker owns the job now
        Done,     ///< a done marker exists: completed elsewhere
        Busy,     ///< live claim held by another worker
    };

    /**
     * Attach to (creating if needed) shard directory @p dir as
     * @p workerId. Claims older than @p leaseSeconds are considered
     * abandoned. Starts the heartbeat thread.
     */
    ShardQueue(std::string dir, std::string workerId,
               double leaseSeconds);

    /** Stops the heartbeat. Held claims are NOT removed — normal
     * operation releases them per job; after a crash the lease window
     * recycles them. */
    ~ShardQueue();

    ShardQueue(const ShardQueue &) = delete;
    ShardQueue &operator=(const ShardQueue &) = delete;

    /** Try to claim the job identified by @p key (steal included). */
    Claim tryClaim(const std::string &key);

    /** Mark a held claim terminal: write the done marker, then release
     * the claim. @p ok distinguishes completed from durably-failed in
     * the marker (merge re-simulates failed jobs either way). */
    void markDone(const std::string &key, bool ok);

    /** Release a held claim without a done marker (interrupt path):
     * any worker may claim the job again. */
    void release(const std::string &key);

    const std::string &dir() const { return dir_; }
    const std::string &workerId() const { return workerId_; }
    double leaseSeconds() const { return leaseSeconds_; }

    /** This worker's checkpoint journal segment path. */
    std::string journalPath() const;

    /** Lifetime counters (consistent snapshot). */
    ShardCounters counters() const;

    /**
     * Write shard.<worker>.json: identity, counters, and the caller's
     * aggregate run totals.
     */
    Expected<void> writeShardManifest(std::size_t jobs,
                                      std::uint64_t macroInsts,
                                      double wallSeconds) const;

    /** All journal segments in @p dir, sorted by name. */
    static std::vector<std::string>
    journalSegments(const std::string &dir);

    /** All per-worker shard manifests in @p dir, sorted by name. */
    static std::vector<std::string>
    shardManifests(const std::string &dir);

    /** All per-worker metrics snapshot files in @p dir, sorted. */
    static std::vector<std::string>
    metricsFiles(const std::string &dir);

    /** All per-worker timeline segments in @p dir, sorted. */
    static std::vector<std::string>
    timelineSegments(const std::string &dir);

    /** This worker's timeline segment path (timeline.<w>.json). */
    std::string timelinePath() const;

    /** FNV-1a-64 of @p key as fixed-width hex (claim file stem). */
    static std::string hashKey(const std::string &key);

  private:
    std::string claimPath(const std::string &key) const;
    std::string donePath(const std::string &key) const;
    std::string leaseBody(const std::string &key) const;
    void heartbeatLoop();

    std::string dir_;
    std::string claimsDir_;
    std::string workerId_;
    double leaseSeconds_ = 30.0;

    mutable std::mutex mutex_;
    std::unordered_set<std::string> held_; ///< claim paths we own
    ShardCounters counters_;

    std::thread heartbeat_;
    std::condition_variable stopCv_;
    bool stopping_ = false;
};

} // namespace axmemo

#endif // AXMEMO_CORE_SHARD_QUEUE_HH
