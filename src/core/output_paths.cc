#include "core/output_paths.hh"

#include <cstdlib>
#include <filesystem>

#include "common/log.hh"

namespace axmemo {

std::string
resolveOutputDir(const std::string &override)
{
    std::string dir = override;
    if (dir.empty()) {
        if (const char *env = std::getenv("AXMEMO_SWEEP_DIR");
            env && *env)
            dir = env;
    }
    if (dir.empty())
        return ".";

    while (dir.size() > 1 && dir.back() == '/')
        dir.pop_back();

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        axm_warn("cannot create output directory '", dir, "': ",
                 ec.message(), "; writing to current directory");
        return ".";
    }
    return dir;
}

std::string
joinPath(const std::string &dir, const std::string &file)
{
    if (dir.empty() || dir == ".")
        return file;
    if (dir.back() == '/')
        return dir + file;
    return dir + "/" + file;
}

} // namespace axmemo
