#include "core/output_paths.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <unistd.h>

#include "common/log.hh"
#include "common/runtime_options.hh"

namespace axmemo {

std::string
resolveOutputDir(const std::string &override)
{
    std::string dir = override;
    if (dir.empty())
        dir = RuntimeOptions::global().outDir;
    if (dir.empty())
        return ".";

    while (dir.size() > 1 && dir.back() == '/')
        dir.pop_back();

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        axm_warn("cannot create output directory '", dir, "': ",
                 ec.message(), "; writing to current directory");
        return ".";
    }
    return dir;
}

std::string
joinPath(const std::string &dir, const std::string &file)
{
    if (dir.empty() || dir == ".")
        return file;
    if (dir.back() == '/')
        return dir + file;
    return dir + "/" + file;
}

Expected<void>
atomicWriteFile(const std::string &path, const std::string &content)
{
    // The temp file must live in the destination's directory: rename()
    // is only atomic within one filesystem.
    const std::string tmp = path + ".tmp." + std::to_string(getpid());

    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0)
        return Error{ErrorCode::Io, "output",
                     "cannot open '" + tmp +
                         "': " + std::strerror(errno)};

    const auto fail = [&](const std::string &what) -> Expected<void> {
        const int err = errno;
        ::close(fd);
        std::remove(tmp.c_str());
        return Error{ErrorCode::Io, "output",
                     what + " '" + tmp + "': " + std::strerror(err)};
    };

    std::size_t written = 0;
    while (written < content.size()) {
        const ssize_t n = ::write(fd, content.data() + written,
                                  content.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return fail("cannot write");
        }
        written += static_cast<std::size_t>(n);
    }

    // fsync before rename: otherwise a crash can leave the new name
    // pointing at not-yet-durable content.
    if (::fsync(fd) != 0)
        return fail("cannot fsync");
    if (::close(fd) != 0) {
        std::remove(tmp.c_str());
        return Error{ErrorCode::Io, "output",
                     "cannot close '" + tmp +
                         "': " + std::strerror(errno)};
    }

    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        std::remove(tmp.c_str());
        return Error{ErrorCode::Io, "output",
                     "cannot rename '" + tmp + "' to '" + path +
                         "': " + std::strerror(err)};
    }
    return {};
}

} // namespace axmemo
