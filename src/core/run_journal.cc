#include "core/run_journal.hh"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/config_io.hh"
#include "core/json_value.hh"
#include "core/memo_backends.hh"
#include "core/output_paths.hh"

namespace axmemo {

namespace {

// ---------------------------------------------------------------------
// Encoding. Compact JSON; numbers go through std::to_chars — doubles in
// shortest-round-trip form (strtod parses them back bit-exactly, like
// the %.17g this replaces, but several times faster to produce and with
// no locale or allocation) — repeated fixed-shape records as arrays to
// keep lines short. A journal line can carry tens of thousands of
// numbers (outputs + error CDF), so the encoder appends in place; it is
// a measurable slice of sweep wall time (`axmemo perf`).
// ---------------------------------------------------------------------

void
appendDouble(std::string &out, double value)
{
    char buf[40];
    const auto r = std::to_chars(buf, buf + sizeof(buf), value);
    out.append(buf, r.ptr);
}

template <typename Int>
void
appendInt(std::string &out, Int value)
{
    char buf[24];
    const auto r = std::to_chars(buf, buf + sizeof(buf), value);
    out.append(buf, r.ptr);
}

/** Transitional shim for the cold paths below that still build by
 * concatenation (header-ish fields, not the per-sample arrays). */
std::string
fd(double value)
{
    std::string out;
    appendDouble(out, value);
    return out;
}

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

template <typename Buckets>
void
appendSparseBuckets(std::string &out, const Buckets &buckets,
                    std::size_t n)
{
    out += '[';
    bool first = true;
    for (std::size_t i = 0; i < n; ++i) {
        if (!buckets[i])
            continue;
        if (!first)
            out += ',';
        first = false;
        out += '[';
        appendInt(out, i);
        out += ',';
        appendInt(out, buckets[i]);
        out += ']';
    }
    out += ']';
}

void
appendHistogram(std::string &out, const Histogram &h)
{
    out += '[';
    appendInt(out, h.count());
    out += ',';
    appendInt(out, h.sum());
    out += ',';
    appendInt(out, h.sampleMin());
    out += ',';
    appendInt(out, h.sampleMax());
    out += ',';
    appendSparseBuckets(out, h.buckets(), Histogram::numBuckets);
    out += ']';
}

void
appendDistribution(std::string &out, const Distribution &d)
{
    out += '[';
    appendInt(out, d.lo());
    out += ',';
    appendInt(out, d.hi());
    out += ',';
    appendInt(out, d.bucketSize());
    out += ',';
    appendInt(out, d.buckets().size());
    out += ',';
    appendInt(out, d.count());
    out += ',';
    appendInt(out, d.sum());
    out += ',';
    appendDouble(out, d.sumSq());
    out += ',';
    appendInt(out, d.sampleMin());
    out += ',';
    appendInt(out, d.sampleMax());
    out += ',';
    appendInt(out, d.underflow());
    out += ',';
    appendInt(out, d.overflow());
    out += ',';
    appendSparseBuckets(out, d.buckets(), d.buckets().size());
    out += ']';
}

void
appendSimStats(std::string &out, const SimStats &s)
{
    out += "{\"cycles\":";
    appendInt(out, s.cycles);
    out += ",\"macro\":";
    appendInt(out, s.macroInsts);
    out += ",\"uops\":";
    appendInt(out, s.uops);
    out += ",\"memoUops\":";
    appendInt(out, s.memoUops);
    out += ",\"branches\":";
    appendInt(out, s.branches);
    out += ",\"mispredicts\":";
    appendInt(out, s.mispredicts);
    out += ",\"loads\":";
    appendInt(out, s.loads);
    out += ",\"stores\":";
    appendInt(out, s.stores);
    out += ",\"stalls\":";
    appendInt(out, s.memoQueueStalls);
    out += ",\"regionEntries\":";
    appendInt(out, s.regionEntries);
    out += ",\"memo\":[";
    appendInt(out, s.memo.lookups);
    out += ',';
    appendInt(out, s.memo.l1Hits);
    out += ',';
    appendInt(out, s.memo.l2Hits);
    out += ',';
    appendInt(out, s.memo.misses);
    out += ',';
    appendInt(out, s.memo.sampledHits);
    out += ',';
    appendInt(out, s.memo.profiledHits);
    out += ',';
    appendInt(out, s.memo.adaptiveRaises);
    out += ',';
    appendInt(out, s.memo.adaptiveLowers);
    out += ',';
    appendInt(out, s.memo.updates);
    out += ',';
    appendInt(out, s.memo.invalidates);
    out += ',';
    appendInt(out, s.memo.inputBytesHashed);
    out += s.memo.monitorTripped ? ",1]" : ",0]";
    out += ",\"hitStreak\":";
    appendHistogram(out, s.dists.memoHitStreak);
    out += ",\"lookupLatency\":";
    appendDistribution(out, s.dists.memoLookupLatency);
    out += ",\"regionInvocations\":";
    appendHistogram(out, s.dists.regionInvocations);
    out += ",\"l2SetOccupancy\":";
    appendDistribution(out, s.dists.l2SetOccupancy);
    out += ",\"events\":{";
    bool first = true;
    for (const auto &[name, value] : s.events.all()) {
        if (!first)
            out += ',';
        first = false;
        appendEscaped(out, name);
        out += ':';
        appendInt(out, value);
    }
    out += "}}";
}

void
appendRunResult(std::string &out, const RunResult &r)
{
    out += "{\"mode\":";
    appendEscaped(out, r.backend);
    out += ",\"lookups\":";
    appendInt(out, r.lookups);
    out += ",\"hits\":";
    appendInt(out, r.hits);
    out += ",\"stats\":";
    appendSimStats(out, r.stats);
    out += ",\"energy\":[";
    appendDouble(out, r.energy.corePj);
    out += ',';
    appendDouble(out, r.energy.cachePj);
    out += ',';
    appendDouble(out, r.energy.dramPj);
    out += ',';
    appendDouble(out, r.energy.memoPj);
    out += ',';
    appendDouble(out, r.energy.leakagePj);
    out += ']';
    out += ",\"outputs\":[";
    for (std::size_t i = 0; i < r.outputs.size(); ++i) {
        if (i)
            out += ',';
        appendDouble(out, r.outputs[i]);
    }
    out += "],\"regions\":[";
    for (std::size_t i = 0; i < r.regions.size(); ++i) {
        const RegionTransformInfo &g = r.regions[i];
        if (i)
            out += ',';
        out += '[';
        appendInt(out, g.regionId);
        out += ',';
        appendInt(out, static_cast<unsigned>(g.lut));
        out += ',';
        appendInt(out, g.numInputs);
        out += ',';
        appendInt(out, g.inputBytes);
        out += ',';
        appendInt(out, g.numOutputs);
        out += ',';
        appendInt(out, g.outputBytes);
        out += ',';
        appendInt(out, g.fusedLoads);
        out += ']';
    }
    out += "]}";
}

void
appendComparison(std::string &out, const Comparison &c)
{
    out += "{\"baseline\":";
    appendRunResult(out, c.baseline);
    out += ",\"subject\":";
    appendRunResult(out, c.subject);
    out += ",\"speedup\":";
    appendDouble(out, c.speedup);
    out += ",\"energyReduction\":";
    appendDouble(out, c.energyReduction);
    out += ",\"qualityLoss\":";
    appendDouble(out, c.qualityLoss);
    out += ",\"cdf\":[";
    const std::vector<double> &samples = c.errorCdf.samples();
    for (std::size_t i = 0; i < samples.size(); ++i) {
        if (i)
            out += ',';
        appendDouble(out, samples[i]);
    }
    out += "],\"normalizedUops\":";
    appendDouble(out, c.normalizedUops);
    out += ",\"memoUopShare\":";
    appendDouble(out, c.memoUopShare);
    out += '}';
}

// ---------------------------------------------------------------------
// Decoding. Helpers raise AxException(Parse); decodeLine() catches at
// its boundary, so one malformed field skips the whole line.
// ---------------------------------------------------------------------

const JValue &
member(const JValue &v, const char *key)
{
    const JValue *m = v.find(key);
    if (!m)
        raiseError(ErrorCode::Parse, "journal",
                   std::string("missing field '") + key + "'");
    return *m;
}

std::uint64_t
asU64(const JValue &v, const char *key)
{
    Expected<std::uint64_t> r = jsonU64(v, key);
    if (!r.ok())
        throw AxException(r.error());
    return r.value();
}

double
asDouble(const JValue &v, const char *key)
{
    Expected<double> r = jsonNumber(v, key);
    if (!r.ok())
        throw AxException(r.error());
    return r.value();
}

std::int64_t
asI64(const JValue &v, const char *key)
{
    if (v.kind != JValue::Kind::Number ||
        v.token.find_first_of(".eE") != std::string::npos)
        raiseError(ErrorCode::Parse, "journal",
                   std::string("field '") + key +
                       "' must be an integer");
    return std::strtoll(v.token.c_str(), nullptr, 10);
}

const JValue &
element(const JValue &v, std::size_t i, const char *key)
{
    if (v.kind != JValue::Kind::Array || i >= v.elements.size())
        raiseError(ErrorCode::Parse, "journal",
                   std::string("array '") + key + "' too short");
    return v.elements[i];
}

std::vector<std::uint64_t>
decodeSparseBuckets(const JValue &v, std::size_t n, const char *key)
{
    std::vector<std::uint64_t> buckets(n, 0);
    if (v.kind != JValue::Kind::Array)
        raiseError(ErrorCode::Parse, "journal",
                   std::string("field '") + key + "' must be an array");
    for (const JValue &pair : v.elements) {
        const std::uint64_t index = asU64(element(pair, 0, key), key);
        const std::uint64_t count = asU64(element(pair, 1, key), key);
        if (index >= n)
            raiseError(ErrorCode::Parse, "journal",
                       std::string("bucket index out of range in '") +
                           key + "'");
        buckets[index] = count;
    }
    return buckets;
}

void
decodeHistogram(const JValue &v, Histogram &h, const char *key)
{
    h.restore(asU64(element(v, 0, key), key),
              asU64(element(v, 1, key), key),
              asU64(element(v, 2, key), key),
              asU64(element(v, 3, key), key),
              decodeSparseBuckets(element(v, 4, key),
                                  Histogram::numBuckets, key));
}

void
decodeDistribution(const JValue &v, Distribution &d, const char *key)
{
    const std::uint64_t numBuckets = asU64(element(v, 3, key), key);
    if (numBuckets > (1u << 24))
        raiseError(ErrorCode::Parse, "journal",
                   std::string("implausible bucket count in '") + key +
                       "'");
    d.restore(asU64(element(v, 0, key), key),
              asU64(element(v, 1, key), key),
              asU64(element(v, 2, key), key),
              asU64(element(v, 4, key), key),
              asU64(element(v, 5, key), key),
              asDouble(element(v, 6, key), key),
              asU64(element(v, 7, key), key),
              asU64(element(v, 8, key), key),
              asU64(element(v, 9, key), key),
              asU64(element(v, 10, key), key),
              decodeSparseBuckets(element(v, 11, key),
                                  static_cast<std::size_t>(numBuckets),
                                  key));
}

void
decodeSimStats(const JValue &v, SimStats &s)
{
    s.cycles = asU64(member(v, "cycles"), "cycles");
    s.macroInsts = asU64(member(v, "macro"), "macro");
    s.uops = asU64(member(v, "uops"), "uops");
    s.memoUops = asU64(member(v, "memoUops"), "memoUops");
    s.branches = asU64(member(v, "branches"), "branches");
    s.mispredicts = asU64(member(v, "mispredicts"), "mispredicts");
    s.loads = asU64(member(v, "loads"), "loads");
    s.stores = asU64(member(v, "stores"), "stores");
    s.memoQueueStalls = asU64(member(v, "stalls"), "stalls");
    s.regionEntries =
        asU64(member(v, "regionEntries"), "regionEntries");

    const JValue &m = member(v, "memo");
    s.memo.lookups = asU64(element(m, 0, "memo"), "memo");
    s.memo.l1Hits = asU64(element(m, 1, "memo"), "memo");
    s.memo.l2Hits = asU64(element(m, 2, "memo"), "memo");
    s.memo.misses = asU64(element(m, 3, "memo"), "memo");
    s.memo.sampledHits = asU64(element(m, 4, "memo"), "memo");
    s.memo.profiledHits = asU64(element(m, 5, "memo"), "memo");
    s.memo.adaptiveRaises = asU64(element(m, 6, "memo"), "memo");
    s.memo.adaptiveLowers = asU64(element(m, 7, "memo"), "memo");
    s.memo.updates = asU64(element(m, 8, "memo"), "memo");
    s.memo.invalidates = asU64(element(m, 9, "memo"), "memo");
    s.memo.inputBytesHashed = asU64(element(m, 10, "memo"), "memo");
    s.memo.monitorTripped = asU64(element(m, 11, "memo"), "memo") != 0;

    decodeHistogram(member(v, "hitStreak"), s.dists.memoHitStreak,
                    "hitStreak");
    decodeDistribution(member(v, "lookupLatency"),
                       s.dists.memoLookupLatency, "lookupLatency");
    decodeHistogram(member(v, "regionInvocations"),
                    s.dists.regionInvocations, "regionInvocations");
    decodeDistribution(member(v, "l2SetOccupancy"),
                       s.dists.l2SetOccupancy, "l2SetOccupancy");

    s.events = CounterSet{};
    const JValue &events = member(v, "events");
    if (events.kind != JValue::Kind::Object)
        raiseError(ErrorCode::Parse, "journal",
                   "field 'events' must be an object");
    for (const auto &[name, value] : events.members)
        s.events.add(name, asU64(value, "events"));
}

void
decodeRunResult(const JValue &v, RunResult &r)
{
    // Since journal version 2 the mode field holds the backend NAME;
    // version-1 lines carried a Mode ordinal and fail here, which the
    // tolerant load() turns into a re-simulation rather than an abort.
    Expected<std::string> backend =
        jsonString(member(v, "mode"), "mode");
    if (!backend.ok())
        throw AxException(backend.error());
    if (!memoBackends().find(backend.value()))
        raiseError(ErrorCode::Parse, "journal",
                   "unknown backend '" + backend.value() + "'");
    r.backend = std::move(backend).value();
    r.lookups = asU64(member(v, "lookups"), "lookups");
    r.hits = asU64(member(v, "hits"), "hits");
    decodeSimStats(member(v, "stats"), r.stats);

    const JValue &e = member(v, "energy");
    r.energy.corePj = asDouble(element(e, 0, "energy"), "energy");
    r.energy.cachePj = asDouble(element(e, 1, "energy"), "energy");
    r.energy.dramPj = asDouble(element(e, 2, "energy"), "energy");
    r.energy.memoPj = asDouble(element(e, 3, "energy"), "energy");
    r.energy.leakagePj = asDouble(element(e, 4, "energy"), "energy");

    const JValue &outputs = member(v, "outputs");
    if (outputs.kind != JValue::Kind::Array)
        raiseError(ErrorCode::Parse, "journal",
                   "field 'outputs' must be an array");
    r.outputs.clear();
    r.outputs.reserve(outputs.elements.size());
    for (const JValue &o : outputs.elements)
        r.outputs.push_back(asDouble(o, "outputs"));

    const JValue &regions = member(v, "regions");
    if (regions.kind != JValue::Kind::Array)
        raiseError(ErrorCode::Parse, "journal",
                   "field 'regions' must be an array");
    r.regions.clear();
    r.regions.reserve(regions.elements.size());
    for (const JValue &g : regions.elements) {
        RegionTransformInfo info;
        info.regionId = static_cast<int>(
            asI64(element(g, 0, "regions"), "regions"));
        info.lut = static_cast<LutId>(
            asU64(element(g, 1, "regions"), "regions"));
        info.numInputs = static_cast<unsigned>(
            asU64(element(g, 2, "regions"), "regions"));
        info.inputBytes = static_cast<unsigned>(
            asU64(element(g, 3, "regions"), "regions"));
        info.numOutputs = static_cast<unsigned>(
            asU64(element(g, 4, "regions"), "regions"));
        info.outputBytes = static_cast<unsigned>(
            asU64(element(g, 5, "regions"), "regions"));
        info.fusedLoads = static_cast<unsigned>(
            asU64(element(g, 6, "regions"), "regions"));
        r.regions.push_back(info);
    }
}

void
decodeComparison(const JValue &v, Comparison &c)
{
    decodeRunResult(member(v, "baseline"), c.baseline);
    decodeRunResult(member(v, "subject"), c.subject);
    c.speedup = asDouble(member(v, "speedup"), "speedup");
    c.energyReduction =
        asDouble(member(v, "energyReduction"), "energyReduction");
    c.qualityLoss = asDouble(member(v, "qualityLoss"), "qualityLoss");
    const JValue &cdf = member(v, "cdf");
    if (cdf.kind != JValue::Kind::Array)
        raiseError(ErrorCode::Parse, "journal",
                   "field 'cdf' must be an array");
    c.errorCdf = EmpiricalCdf{};
    for (const JValue &sample : cdf.elements)
        c.errorCdf.add(asDouble(sample, "cdf"));
    c.normalizedUops =
        asDouble(member(v, "normalizedUops"), "normalizedUops");
    c.memoUopShare =
        asDouble(member(v, "memoUopShare"), "memoUopShare");
}

} // namespace

SweepJournal::~SweepJournal()
{
    close();
}

std::string
SweepJournal::pathFor(const std::string &label,
                      const std::string &outDir)
{
    return joinPath(resolveOutputDir(outDir), label + "_sweep.ckpt");
}

std::string
SweepJournal::jobKey(const SweepJob &job)
{
    std::string key = job.workload;
    key += '|';
    key += job.backend;
    key += job.scored ? "|1|" : "|0|";
    key += toJson(job.config);
    return key;
}

std::string
SweepJournal::encodeLine(const std::string &key,
                         const SweepOutcome &outcome)
{
    std::string out;
    out.reserve(16 * 1024); // typical line size; avoids regrowth churn
    out += "{\"key\":";
    appendEscaped(out, key);
    out += ",\"seconds\":" + fd(outcome.seconds);
    out += outcome.scored ? ",\"scored\":true" : ",\"scored\":false";
    out += ",\"run\":";
    appendRunResult(out, outcome.run);
    if (outcome.scored) {
        out += ",\"cmp\":";
        appendComparison(out, outcome.cmp);
    }
    out += '}';
    return out;
}

Expected<std::pair<std::string, SweepOutcome>>
SweepJournal::decodeLine(const std::string &line)
{
    Expected<JValue> parsed = parseJsonValue(line);
    if (!parsed.ok())
        return parsed.error();
    const JValue &root = parsed.value();
    try {
        std::pair<std::string, SweepOutcome> record;
        Expected<std::string> key =
            jsonString(member(root, "key"), "key");
        if (!key.ok())
            return key.error();
        record.first = key.value();
        SweepOutcome &outcome = record.second;
        outcome.seconds = asDouble(member(root, "seconds"), "seconds");
        Expected<bool> scored =
            jsonBool(member(root, "scored"), "scored");
        if (!scored.ok())
            return scored.error();
        outcome.scored = scored.value();
        decodeRunResult(member(root, "run"), outcome.run);
        if (outcome.scored)
            decodeComparison(member(root, "cmp"), outcome.cmp);
        outcome.restored = true;
        return record;
    } catch (const AxException &e) {
        return e.error();
    }
}

Expected<SweepJournal::HeaderInfo>
SweepJournal::probe(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return Error{ErrorCode::Io, "journal",
                     "cannot open '" + path + "' for reading"};
    std::string line;
    int c = 0;
    while ((c = std::fgetc(file)) != EOF && c != '\n' &&
           line.size() < 256)
        line += static_cast<char>(c);
    std::fclose(file);
    const Expected<JValue> parsed = parseJsonValue(line);
    if (!parsed.ok() || parsed.value().kind != JValue::Kind::Object)
        return Error{ErrorCode::Parse, "journal",
                     "'" + path + "' has a garbled header line"};
    const JValue *version = parsed.value().find("axmemo_sweep_journal");
    if (!version)
        return Error{ErrorCode::Parse, "journal",
                     "'" + path + "' is not a sweep journal"};
    const Expected<std::uint64_t> v =
        jsonU64(*version, "axmemo_sweep_journal");
    if (!v.ok() || v.value() < 2 || v.value() > 2)
        return Error{ErrorCode::Parse, "journal",
                     "'" + path + "' has unsupported journal version"};
    HeaderInfo info;
    info.version = static_cast<int>(v.value());
    return info;
}

std::unordered_map<std::string, SweepOutcome>
SweepJournal::load(const std::string &path, std::size_t *skipped)
{
    std::unordered_map<std::string, SweepOutcome> records;
    if (skipped)
        *skipped = 0;
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return records;
    std::string line;
    char buf[1 << 16];
    const auto consume = [&]() {
        if (line.empty())
            return;
        // The version header ({"axmemo_sweep_journal":...}) has no
        // "key" member and fails decode like any garbled line; it is
        // not counted as skipped.
        Expected<std::pair<std::string, SweepOutcome>> record =
            decodeLine(line);
        if (record.ok()) {
            records[record.value().first] =
                std::move(record.value().second);
        } else if (skipped &&
                   line.find("\"axmemo_sweep_journal\"") ==
                       std::string::npos) {
            ++*skipped;
        }
        line.clear();
    };
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
        for (std::size_t i = 0; i < got; ++i) {
            if (buf[i] == '\n')
                consume();
            else
                line += buf[i];
        }
    }
    // No trailing newline = the final line was torn mid-write; still
    // try it (it may just lack the newline) and drop it if garbled.
    consume();
    std::fclose(file);
    return records;
}

Expected<void>
SweepJournal::open(const std::string &path, bool fresh)
{
    close();
    std::FILE *file = std::fopen(path.c_str(), fresh ? "wb" : "ab");
    if (!file)
        return Error{ErrorCode::Io, "journal",
                     "cannot open '" + path + "' for writing"};
    file_ = file;
    path_ = path;
    // An append-mode open of a missing file creates it; it still needs
    // the version header (first use of a worker's shard segment opens
    // with resume semantics), else probe() would flag it as damaged.
    // Append streams report position 0 until the first write, so seek.
    if (!fresh)
        std::fseek(file_, 0, SEEK_END);
    if (fresh || std::ftell(file_) == 0) {
        std::fputs("{\"axmemo_sweep_journal\":2}\n", file_);
        std::fflush(file_);
    }
    return {};
}

void
SweepJournal::append(const std::string &key,
                     const SweepOutcome &outcome)
{
    if (!file_)
        return;
    const std::string line = encodeLine(key, outcome);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    // Per-record flush: after this returns, losing the process costs
    // only in-flight jobs, not completed ones.
    std::fflush(file_);
}

void
SweepJournal::close()
{
    if (file_) {
        std::fflush(file_);
        std::fclose(file_);
        file_ = nullptr;
    }
}

} // namespace axmemo
