/**
 * @file
 * The sweep execution engine: parallel evaluation of experiment matrices.
 *
 * Every paper artifact (Tables 1-5, Figs. 7-11, the ablations) is a sweep
 * over {workloads} x {backends} x {configurations}. Each simulation is
 * deterministic (seeded-xorshift datasets, single-threaded core model)
 * and owns all of its mutable state, so whole runs are embarrassingly
 * parallel. Callers enqueue (workload, backend, config) jobs; a fixed-size
 * worker pool (AXMEMO_JOBS, default: hardware threads) runs each job in
 * its own Simulator/SimMemory instance, and execute() returns results in
 * deterministic submission order regardless of completion order.
 *
 * Two caches remove redundant work the serial harnesses used to repeat:
 *
 *  - Prepared-program cache, keyed by (workload, dataset params): the
 *    dataset is synthesized and the baseline AxIR program built once;
 *    every run clones the prepared memory image instead of re-running
 *    prepare()/build().
 *  - Baseline result cache, keyed by (workload, dataset params,
 *    CpuConfig, HierarchyConfig, EnergyParams) — everything a baseline
 *    run can observe. Each distinct baseline is simulated exactly once
 *    per sweep and shared across the modes and LUT configurations scored
 *    against it.
 *
 * Fault tolerance (see DESIGN.md §9). A job that throws is caught at
 * the worker boundary and recorded as its outcome's status — Failed
 * jobs are retried up to RuntimeOptions::retries times, TimedOut
 * (watchdog) and Skipped (interrupt) never — so one bad configuration
 * costs one row, not the sweep. With setJournal(), every Ok outcome is
 * checkpointed to an append-only JSONL file as it completes, and a
 * resumed sweep replays journaled outcomes instead of re-simulating
 * (core/run_journal.hh).
 *
 * The engine records wall-clock, per-job time, jobs/s and simulated
 * Minstr/s; writeReport() emits them as <label>_sweep.json so the
 * performance trajectory of the harnesses is machine-readable.
 */

#ifndef AXMEMO_CORE_SWEEP_HH
#define AXMEMO_CORE_SWEEP_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/expected.hh"
#include "common/runtime_options.hh"
#include "common/thread_pool.hh"
#include "core/experiment.hh"

namespace axmemo {

class ShardQueue;
class SweepJournal;

/** One enqueued simulation request. */
struct SweepJob
{
    std::string workload;
    /** Registered MemoBackend name — the sweep's backend axis. */
    std::string backend = "baseline";
    ExperimentConfig config{};
    /** Also score against the cached baseline (fills SweepOutcome.cmp). */
    bool scored = false;
};

/** Terminal state of one job. */
enum class JobStatus
{
    Ok,       ///< simulation completed (possibly after retries)
    Failed,   ///< faulted on every allowed attempt
    TimedOut, ///< watchdog deadline expired (never retried)
    Skipped,  ///< not run: interrupted, or a dependency failed
    Foreign,  ///< not run here: another shard worker owns the result
};

/** @return the stable lower-case name of @p status ("ok", ...). */
const char *jobStatusName(JobStatus status);

/** Result of one job, in submission order. */
struct SweepOutcome
{
    /** The subject run (for Baseline jobs, the baseline itself).
     * Meaningful only when status == Ok. */
    RunResult run;
    /** Valid only when scored and status == Ok. */
    Comparison cmp;
    /** Host wall-clock seconds this job's simulation took (0 when
     * RuntimeOptions::reportTiming is off). */
    double seconds = 0.0;

    JobStatus status = JobStatus::Ok;
    /** The last attempt's error when status != Ok. */
    Error fault{};
    /** Simulation attempts made (attempts - 1 = retries). */
    unsigned attempts = 0;
    /** The job was enqueued via enqueueCompare(). */
    bool scored = false;
    /** Replayed from the checkpoint journal, not simulated. */
    bool restored = false;

    bool ok() const { return status == JobStatus::Ok; }
};

/** Host-side performance record of one execute(). */
struct SweepMetrics
{
    unsigned workers = 0;
    std::size_t jobs = 0;
    double wallSeconds = 0.0;
    /** Sum of per-simulation host seconds = serial cost of this sweep. */
    double serialEstimateSeconds = 0.0;
    double jobsPerSecond = 0.0;
    /** serialEstimateSeconds / wallSeconds (1.0 when serial). */
    double speedupVsSerial = 1.0;
    std::uint64_t simulatedMacroInsts = 0;
    double simulatedMinstrPerSecond = 0.0;
    /** Baselines needed vs actually simulated (cache effectiveness). */
    std::size_t baselineRequests = 0;
    std::size_t baselineSimulations = 0;
    /** Distinct (workload, dataset) prepare()/build() executions. */
    std::size_t preparedPrograms = 0;

    // Fault-tolerance accounting of the most recent execute().
    std::size_t failedJobs = 0;
    std::size_t timedOutJobs = 0;
    std::size_t skippedJobs = 0;
    /** Extra attempts spent on jobs that eventually resolved. */
    std::size_t retriedJobs = 0;
    /** Jobs replayed from the checkpoint journal. */
    std::size_t restoredJobs = 0;
    /** Jobs another shard worker completed (shard mode only). */
    std::size_t foreignJobs = 0;

    std::size_t
    faultedJobs() const
    {
        // Foreign jobs are not faults: their results exist, in another
        // worker's journal segment, and merge unions them back in.
        return failedJobs + timedOutJobs + skippedJobs;
    }
};

/** Parallel sweep executor; see file comment. */
class SweepEngine
{
  public:
    /** @param workers pool size; 0 or 1 = serial (AXMEMO_JOBS default).
     * Retry/timeout/timing policy comes from RuntimeOptions::global(). */
    explicit SweepEngine(unsigned workers = ThreadPool::jobsFromEnv());

    /** Pool size and fault policy from @p options (the driver path). */
    explicit SweepEngine(const RuntimeOptions &options);

    ~SweepEngine();

    SweepEngine(const SweepEngine &) = delete;
    SweepEngine &operator=(const SweepEngine &) = delete;

    /** Enqueue a raw run under the backend named @p backend. @return
     * the job's index into execute()'s result vector. */
    std::size_t enqueueRun(const std::string &workload,
                           const std::string &backend,
                           const ExperimentConfig &config);

    /** Enqueue a run that is also scored against the cached baseline of
     * its (workload, dataset, cpu, hierarchy, energy) key. */
    std::size_t enqueueCompare(const std::string &workload,
                               const std::string &backend,
                               const ExperimentConfig &config);

    // Mode-enum sugar for the builtin backends.
    std::size_t
    enqueueRun(const std::string &workload, Mode mode,
               const ExperimentConfig &config)
    {
        return enqueueRun(workload, std::string(modeName(mode)),
                          config);
    }
    std::size_t
    enqueueCompare(const std::string &workload, Mode mode,
                   const ExperimentConfig &config)
    {
        return enqueueCompare(workload, std::string(modeName(mode)),
                              config);
    }

    /**
     * Run every job enqueued since the last execute(). Results are in
     * submission order and bit-identical to a serial per-job
     * ExperimentRunner::run()/compare() evaluation. Job faults are
     * contained: execute() itself only throws on engine-internal bugs.
     */
    std::vector<SweepOutcome> execute();

    /**
     * Enable checkpoint journaling to @p path. With @p resume, existing
     * records are loaded for replay and new ones append after them;
     * otherwise the file restarts empty.
     * @return number of journaled outcomes loaded for replay.
     */
    std::size_t setJournal(const std::string &path, bool resume);

    /** Stop journaling; delete the file when @p removeFile (a fully
     * successful sweep needs no checkpoint). */
    void closeJournal(bool removeFile);

    /**
     * Attach a shared work-queue (core/shard_queue.hh) for the next
     * execute(): each job is claimed before it simulates, jobs a
     * sibling worker owns or finished resolve as JobStatus::Foreign,
     * and claimed jobs get a done marker (Ok/Failed/TimedOut) or a
     * claim release (Skipped) when they resolve. The queue must
     * outlive the engine; nullptr detaches.
     */
    void setShardQueue(ShardQueue *queue) { shard_ = queue; }

    /**
     * Union extra journal segments into the replay map (merge step:
     * one segment per shard worker). Later segments win duplicate
     * keys; records are deterministic, so duplicates are identical.
     * @return records loaded from @p paths.
     */
    std::size_t
    addReplaySegments(const std::vector<std::string> &paths);

    unsigned workers() const { return workers_; }

    /** The fault policy this engine runs under. */
    const RuntimeOptions &options() const { return options_; }

    /** Metrics of the most recent execute(). */
    const SweepMetrics &metrics() const { return metrics_; }

    /** One-line human-readable summary of metrics(). */
    std::string summary() const;

    /**
     * Write metrics() as JSON to <label>_sweep.json in the resolved
     * output directory (@p outDir override, else $AXMEMO_SWEEP_DIR,
     * else the current directory; see core/output_paths.hh). Fault
     * counters are emitted only when nonzero, so fully-successful
     * sweeps keep their historical byte layout.
     */
    void writeReport(const std::string &label,
                     const std::string &outDir = {}) const;

    /** Jobs enqueued since the last execute(), in submission order
     * (the driver snapshots these into manifest.json). */
    const std::vector<SweepJob> &pending() const { return jobs_; }

  private:
    struct PreparedEntry
    {
        std::unique_ptr<Workload> workload;
        SimMemory mem;   ///< master prepared image; jobs clone it
        Program program; ///< built baseline program, shared read-only
        double seconds = 0.0;
        bool failed = false;
        Error fault{};
        unsigned attempts = 0;
    };
    struct BaselineEntry
    {
        const PreparedEntry *prepared = nullptr;
        RunResult result;
        double seconds = 0.0;
        /** False for entries every consumer replayed from the journal
         * (the baseline simulation itself was skipped). */
        bool simulated = false;
        bool failed = false;
        Error fault{};
        unsigned attempts = 0;
    };

    std::vector<SweepJob> jobs_;
    std::unordered_map<std::string, std::unique_ptr<PreparedEntry>>
        prepared_;
    std::unordered_map<std::string, std::unique_ptr<BaselineEntry>>
        baselines_;
    SweepMetrics metrics_;
    RuntimeOptions options_{};
    unsigned workers_ = 1;
    std::unique_ptr<ThreadPool> pool_;

    // Checkpoint journal state (setJournal).
    std::unique_ptr<SweepJournal> journal_;
    std::unordered_map<std::string, SweepOutcome> replay_;
    std::mutex journalMutex_;

    /** Shared work-queue for shard mode; not owned (setShardQueue). */
    ShardQueue *shard_ = nullptr;
};

} // namespace axmemo

#endif // AXMEMO_CORE_SWEEP_HH
