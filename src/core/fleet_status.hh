/**
 * @file
 * Read-only fleet view over a shard directory (DESIGN.md §13).
 *
 * `axmemo status <dir>` is a pure observer: it never takes claims,
 * writes markers or joins the queue — it reads the artifacts the
 * workers already maintain (claim leases, done markers, metrics
 * snapshots, shard manifests) and classifies each worker:
 *
 *   running  fresh metrics heartbeat (younger than the lease window)
 *   idle     fresh heartbeat but no claim held (waiting on siblings)
 *   done     shard manifest written (worker exited cleanly)
 *   dead     stale heartbeat and no manifest — SIGKILLed or wedged;
 *            its claims are visible in the watchlist until a sibling
 *            steals them
 *
 * Fleet progress comes from the done markers (the queue's own ground
 * truth, not any worker's view), throughput and the ETA from the
 * EWMA rates in the newest snapshot of every live worker.
 *
 * The same file hosts the timeline stitcher `axmemo merge` uses to
 * splice per-worker Chrome-trace files into one fleet timeline.
 */

#ifndef AXMEMO_CORE_FLEET_STATUS_HH
#define AXMEMO_CORE_FLEET_STATUS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace axmemo {

/** One worker's classified state + newest snapshot fields. */
struct WorkerStatus
{
    enum class State { Running, Idle, Done, Dead };

    std::string id;
    State state = State::Idle;
    /** Seconds since the newest metrics snapshot (-1: none seen). */
    double snapshotAgeSeconds = -1.0;
    std::uint64_t jobsDone = 0;
    double jobsPerSecond = 0.0;
    double minstrPerSecond = 0.0;
    double memoHitRate = 0.0;
    double lutOccupancy = 0.0;
    std::uint64_t rssBytes = 0;
    double journalLagSeconds = -1.0;
    std::size_t claimsHeld = 0;
};

/** One live claim, oldest-first in the watchlist. */
struct ClaimStatus
{
    std::string key;    ///< full job identity key from the lease body
    std::string worker; ///< holder id
    double ageSeconds = 0.0;
};

/** The whole fleet, as read from one shard directory. */
struct FleetStatus
{
    std::string dir;            ///< shard directory actually read
    double leaseSeconds = 30.0; ///< staleness window used
    std::vector<WorkerStatus> workers;
    std::uint64_t jobsTotal = 0;  ///< max jobs_total any worker saw
    std::uint64_t jobsDone = 0;   ///< done markers (fleet ground truth)
    std::uint64_t jobsFailed = 0; ///< "status":"failed" done markers
    double aggregateJobsPerSecond = 0.0;
    double aggregateMinstrPerSecond = 0.0;
    /** remaining / aggregate EWMA rate; -1 when unknowable (no rate
     * or no total yet). */
    double etaSeconds = -1.0;
    /** Jobs remain but the aggregate EWMA throughput has decayed to
     * zero — every live worker is wedged (or everything alive is
     * dead). Rendered as "ETA stalled" instead of a finite ETA, so a
     * hung fleet is not mistaken for one that is merely unmeasured. */
    bool stalled = false;
    /** Live claims, oldest first — the slowest-job watchlist. */
    std::vector<ClaimStatus> watchlist;
};

const char *workerStateName(WorkerStatus::State state);

/**
 * Read @p dir as a shard directory. When @p dir has no claims/ but
 * contains a shards/ subdirectory (the default --workers layout under
 * a run's --out), that subdirectory is read instead. A missing or
 * empty directory yields an empty fleet, not an error — status must
 * be pollable before the first worker arrives.
 */
FleetStatus readFleetStatus(const std::string &dir, double leaseSeconds);

/** One-screen human view: header, progress bar, per-worker table,
 * slowest-claim watchlist. */
std::string renderFleetText(const FleetStatus &fleet);

/** The same view as one JSON object (--json). */
std::string renderFleetJson(const FleetStatus &fleet);

/**
 * Splice per-worker timeline files into one Chrome-trace document.
 * Each input must be a complete telemetry::writeTimeline() product
 * (validated before splicing; damaged files are skipped and counted
 * in @p damaged when non-null). @p extraDocument optionally appends
 * the calling process's own renderTimeline() output as one more lane.
 */
std::string stitchTimelines(const std::vector<std::string> &paths,
                            const std::string &extraDocument = {},
                            std::size_t *damaged = nullptr);

} // namespace axmemo

#endif // AXMEMO_CORE_FLEET_STATUS_HH
