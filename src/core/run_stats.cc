#include "core/run_stats.hh"

namespace axmemo {

StatSet
runStatSet(const SweepJob &job, const SweepOutcome &outcome)
{
    const RunResult &run = outcome.run;
    const SimStats &s = run.stats;

    StatSet set;
    set.scalar("sim_cycles", s.cycles, "simulated core cycles");
    set.scalar("macro_insts", s.macroInsts,
               "macro AxIR instructions retired");
    set.scalar("uops", s.uops, "micro-ops retired");
    set.scalar("memo_uops", s.memoUops, "micro-ops of memo instructions");
    set.scalar("branches", s.branches, "conditional branches retired");
    set.scalar("mispredicts", s.mispredicts, "branch mispredictions");
    set.scalar("loads", s.loads, "load instructions");
    set.scalar("stores", s.stores, "store instructions");
    set.scalar("memo_queue_stalls", s.memoQueueStalls,
               "cycles stalled on a full memo input queue");
    set.formula("ipc",
                s.cycles ? static_cast<double>(s.uops) /
                               static_cast<double>(s.cycles)
                         : 0.0,
                "retired micro-ops per cycle");

    // Memoization-unit scalars and their distribution twins.
    set.scalar("memo_lookups", s.memo.lookups, "lookup instructions");
    set.scalar("memo_hits", s.memo.hits(),
               "reported hits (l1 + l2, after sacrifices)");
    set.scalar("memo_l1_hits", s.memo.l1Hits, "hits served by the L1 LUT");
    set.scalar("memo_l2_hits", s.memo.l2Hits, "hits served by the L2 LUT");
    set.scalar("memo_misses", s.memo.misses, "reported misses");
    set.scalar("memo_sampled_hits", s.memo.sampledHits,
               "hits sacrificed by the quality monitor");
    set.scalar("memo_updates", s.memo.updates, "update instructions");
    set.scalar("memo_invalidates", s.memo.invalidates,
               "invalidate instructions");
    set.formula("memo_hit_rate", s.memo.hitRate(),
                "reported hits / lookups");
    set.hist("memo_hit_streak", s.dists.memoHitStreak,
             "consecutive reported hits (sum == memo_hits)");
    set.dist("memo_lookup_latency", s.dists.memoLookupLatency,
             "lookup latency, cycles (samples == memo_lookups)");

    // Region activity.
    set.scalar("region_entries", s.regionEntries,
               "dynamic region_begin markers");
    set.hist("region_invocations", s.dists.regionInvocations,
             "entries per static region (sum == region_entries)");

    // L2 data-cache residency at halt.
    set.scalar("l2_valid_lines", s.dists.l2SetOccupancy.sum(),
               "valid L2 data lines at halt");
    set.dist("l2_set_occupancy", s.dists.l2SetOccupancy,
             "valid lines per L2 set (sum == l2_valid_lines)");

    // Energy and the comparison row, when the job was scored.
    set.formula("energy_pj", run.energy.totalPj(), "total energy, pJ");
    if (job.scored) {
        set.formula("speedup", outcome.cmp.speedup,
                    "baseline cycles / subject cycles");
        set.formula("energy_reduction", outcome.cmp.energyReduction,
                    "baseline energy / subject energy");
        set.formula("quality_loss", outcome.cmp.qualityLoss,
                    "output quality degradation (Eq. 2)");
    }
    set.formula("host_seconds", outcome.seconds,
                "host wall-clock of this simulation");
    return set;
}

std::string
runStatsSection(const std::string &runName, const SweepJob &job,
                const SweepOutcome &outcome)
{
    const std::string header =
        runName + ": " + job.workload + " " + job.backend;
    return runStatSet(job, outcome).renderSection(header);
}

} // namespace axmemo
