#include "core/truncation_tuner.hh"

namespace axmemo {

TruncationTuner::TruncationTuner(const ExperimentConfig &config,
                                 double errorBound)
    : config_(config), errorBound_(errorBound)
{
    // Profiling always runs on the sample input set (Section 5): the
    // evaluation inputs must remain unseen.
    config_.dataset.sampleSet = true;
    // The quality monitor would mask the very errors being measured.
    config_.qualityMonitor = false;
}

std::vector<unsigned>
TruncationTuner::defaultCandidates()
{
    return {0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20};
}

TuningResult
TruncationTuner::tune(Workload &workload,
                      const std::vector<unsigned> &candidates)
{
    TuningResult result;
    for (unsigned bits : candidates) {
        ExperimentConfig config = config_;
        config.truncOverride = static_cast<int>(bits);
        const ExperimentRunner runner(config);
        const Comparison cmp = runner.compare(workload, Mode::AxMemo);
        TuningPoint point;
        point.truncBits = bits;
        point.qualityLoss = cmp.qualityLoss;
        point.hitRate = cmp.subject.hitRate();
        point.speedup = cmp.speedup;
        result.sweep.push_back(point);
        if (cmp.qualityLoss > errorBound_)
            break; // error grows monotonically with truncation
    }

    // Among the levels meeting the bound, pick the *least* truncation
    // that achieves (nearly) the best hit rate: truncating deeper than
    // reuse requires only discards precision for nothing.
    double bestHit = 0.0;
    for (const TuningPoint &point : result.sweep) {
        if (point.qualityLoss <= errorBound_)
            bestHit = std::max(bestHit, point.hitRate);
    }
    for (const TuningPoint &point : result.sweep) {
        if (point.qualityLoss <= errorBound_ &&
            point.hitRate >= bestHit - 0.01) {
            result.chosenBits = point.truncBits;
            break;
        }
    }
    return result;
}

} // namespace axmemo
