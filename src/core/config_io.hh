/**
 * @file
 * Canonical serialization of ExperimentConfig and every nested struct.
 *
 * One JSON form is THE identity of a configuration: the sweep engine
 * derives its prepare/baseline cache keys from it, the driver's
 * manifest.json records it, and tests round-trip it. The format is
 * canonical in the strict sense:
 *
 *  - fields are emitted in declaration order, every field always
 *    present (no minimization), objects compact (no whitespace);
 *  - doubles are printed with %.17g, which round-trips every finite
 *    IEEE-754 value bit-exactly through parseConfig();
 *  - therefore serialize(parse(serialize(c))) == serialize(c), and
 *    string equality of serializations is configuration equality.
 *
 * Adding a field to ExperimentConfig (or a nested struct) without
 * updating the serializer here is caught by the field-count guard in
 * tests/test_config_io.cc — the failure mode the old hand-maintained
 * byte-appending cache keys in sweep.cc could not detect.
 */

#ifndef AXMEMO_CORE_CONFIG_IO_HH
#define AXMEMO_CORE_CONFIG_IO_HH

#include <string>

#include "common/expected.hh"
#include "core/experiment.hh"

namespace axmemo {

// Canonical compact-JSON serializers, one per configuration struct.
std::string toJson(const WorkloadParams &p);
std::string toJson(const LutSetup &l);
std::string toJson(const CacheConfig &c);
std::string toJson(const DramConfig &d);
std::string toJson(const HierarchyConfig &h);
std::string toJson(const AdaptiveTruncationConfig &a);
std::string toJson(const SwMemoConfig &s);
std::string toJson(const AtmConfig &a);
std::string toJson(const IactConfig &i);
std::string toJson(const EnergyParams &e);
std::string toJson(const CpuConfig &c);
std::string toJson(const ExperimentConfig &config);

/**
 * Parse a serialized ExperimentConfig (any JSON whitespace accepted).
 * Fields absent from the JSON keep their default values; unknown keys
 * and malformed JSON are errors carrying ErrorCode::Parse — the caller
 * decides whether that is fatal.
 */
Expected<ExperimentConfig> parseConfig(const std::string &json);

/** Canonical equality: serializations compare equal. */
bool configEquals(const ExperimentConfig &a, const ExperimentConfig &b);

class MemoBackend;

/**
 * Resolve a memoization backend by its registered name. Unknown names
 * return an ErrorCode::Config error that lists every registered
 * backend and, when the name is a near miss, a did-you-mean
 * suggestion — configuration surfaces (CLI flags, config files)
 * should report it and exit rather than crash.
 */
Expected<const MemoBackend *> parseBackend(const std::string &name);

} // namespace axmemo

#endif // AXMEMO_CORE_CONFIG_IO_HH
