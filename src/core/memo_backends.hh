/**
 * @file
 * The builtin MemoBackend catalog.
 *
 * memoBackends() is the one way to reach the backend registry: it
 * registers the six builtin strategies (baseline, axmemo,
 * axmemo-notrunc, software-lut, atm, iact) exactly once on first use
 * and returns the registry. Going through an explicit accessor instead
 * of static registrar objects keeps the builtins immune to the
 * static-library dead-stripping that would silently drop
 * self-registering translation units (the artifact registry pays for
 * that with OBJECT libraries; backends are needed by core itself, so
 * an accessor is simpler).
 *
 * Out-of-tree backends still use AXMEMO_REGISTER_MEMO_BACKEND from
 * memo/backend.hh; they land in the same registry.
 */

#ifndef AXMEMO_CORE_MEMO_BACKENDS_HH
#define AXMEMO_CORE_MEMO_BACKENDS_HH

#include "memo/backend.hh"

namespace axmemo {

/** The backend registry, with the builtins registered. */
MemoBackendRegistry &memoBackends();

} // namespace axmemo

#endif // AXMEMO_CORE_MEMO_BACKENDS_HH
