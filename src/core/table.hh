/**
 * @file
 * Minimal fixed-width text table used by the bench harnesses to print the
 * paper's tables and figure series in a uniform, diffable format.
 */

#ifndef AXMEMO_CORE_TABLE_HH
#define AXMEMO_CORE_TABLE_HH

#include <string>
#include <vector>

namespace axmemo {

/** Column-aligned text table. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render with aligned columns and a separator under the header. */
    std::string render() const;

    /** Format helpers. */
    static std::string num(double value, int precision = 2);
    static std::string percent(double fraction, int precision = 1);
    static std::string times(double factor, int precision = 2);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace axmemo

#endif // AXMEMO_CORE_TABLE_HH
