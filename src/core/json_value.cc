#include "core/json_value.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace axmemo {

namespace {

/** Recursive-descent parser over one text; see header. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool
    parse(JValue &out, std::string &error)
    {
        skipWs();
        if (!parseValue(out)) {
            error = error_.empty() ? "malformed JSON" : error_;
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            error = "trailing characters after JSON value";
            return false;
        }
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += n;
        return true;
    }

    bool
    parseValue(JValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind = JValue::Kind::String;
            return parseString(out.token);
          case 't':
            out.kind = JValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JValue::Kind::Null;
            return literal("null");
          default: return parseNumber(out);
        }
    }

    bool
    parseObject(JValue &out)
    {
        out.kind = JValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JValue value;
            if (!parseValue(value))
                return false;
            out.members.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JValue &out)
    {
        out.kind = JValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JValue value;
            if (!parseValue(value))
                return false;
            out.elements.push_back(std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // '"'
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= text_.size())
                    return fail("unterminated escape");
                const char esc = text_[pos_ + 1];
                pos_ += 2;
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_ + i];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            code |= h - 'A' + 10;
                        else
                            return fail("bad \\u escape");
                    }
                    pos_ += 4;
                    // Config strings are ASCII; reject the rest rather
                    // than silently mangling them.
                    if (code > 0x7f)
                        return fail("non-ASCII \\u escape unsupported");
                    out += static_cast<char>(code);
                    break;
                  }
                  default: return fail("unknown escape");
                }
                continue;
            }
            out += c;
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected value");
        out.kind = JValue::Kind::Number;
        out.token = text_.substr(start, pos_ - start);
        // Validate by conversion.
        char *end = nullptr;
        errno = 0;
        std::strtod(out.token.c_str(), &end);
        if (end != out.token.c_str() + out.token.size())
            return fail("malformed number '" + out.token + "'");
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

const JValue *
JValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members)
        if (name == key)
            return &value;
    return nullptr;
}

Expected<JValue>
parseJsonValue(const std::string &text)
{
    JValue root;
    std::string error;
    Parser parser(text);
    if (!parser.parse(root, error))
        return Error{ErrorCode::Parse, "json", error};
    return root;
}

Expected<double>
jsonNumber(const JValue &v, const std::string &key)
{
    if (v.kind != JValue::Kind::Number)
        return Error{ErrorCode::Parse, "json",
                     "field '" + key + "' must be a number"};
    return std::strtod(v.token.c_str(), nullptr);
}

Expected<std::uint64_t>
jsonU64(const JValue &v, const std::string &key)
{
    if (v.kind != JValue::Kind::Number ||
        v.token.find_first_of(".eE-") != std::string::npos)
        return Error{ErrorCode::Parse, "json",
                     "field '" + key +
                         "' must be a non-negative integer"};
    errno = 0;
    const std::uint64_t parsed =
        std::strtoull(v.token.c_str(), nullptr, 10);
    if (errno == ERANGE)
        return Error{ErrorCode::Parse, "json",
                     "field '" + key + "' out of range"};
    return parsed;
}

Expected<bool>
jsonBool(const JValue &v, const std::string &key)
{
    if (v.kind != JValue::Kind::Bool)
        return Error{ErrorCode::Parse, "json",
                     "field '" + key + "' must be a boolean"};
    return v.boolean;
}

Expected<std::string>
jsonString(const JValue &v, const std::string &key)
{
    if (v.kind != JValue::Kind::String)
        return Error{ErrorCode::Parse, "json",
                     "field '" + key + "' must be a string"};
    return v.token;
}

} // namespace axmemo
