/**
 * @file
 * Minimal strict JSON value parser (RFC 8259 subset), shared by the
 * canonical config deserializer (core/config_io) and the sweep journal
 * (core/run_journal). Extracted from config_io.cc when the journal
 * needed to parse its own lines; still no external dependency.
 *
 * Numbers keep their raw token so integer consumers can convert
 * losslessly (strtod would clip a 64-bit seed) and doubles round-trip
 * the %.17g form bit-exactly.
 */

#ifndef AXMEMO_CORE_JSON_VALUE_HH
#define AXMEMO_CORE_JSON_VALUE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/expected.hh"

namespace axmemo {

/** Parsed JSON value; see file comment. */
struct JValue
{
    enum class Kind { Null, Bool, Number, String, Object, Array };
    Kind kind = Kind::Null;
    bool boolean = false;
    std::string token; ///< raw number text, or decoded string
    std::vector<std::pair<std::string, JValue>> members;
    std::vector<JValue> elements;

    /** Object member by key; null when absent or not an object. */
    const JValue *find(const std::string &key) const;
};

/** Parse @p text as one JSON value; errors carry ErrorCode::Parse. */
Expected<JValue> parseJsonValue(const std::string &text);

// Typed extraction helpers; errors carry ErrorCode::Parse and name the
// offending @p key in the message.
Expected<double> jsonNumber(const JValue &v, const std::string &key);
Expected<std::uint64_t> jsonU64(const JValue &v, const std::string &key);
Expected<bool> jsonBool(const JValue &v, const std::string &key);
Expected<std::string> jsonString(const JValue &v,
                                 const std::string &key);

} // namespace axmemo

#endif // AXMEMO_CORE_JSON_VALUE_HH
