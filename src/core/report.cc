#include "core/report.hh"

#include <iomanip>
#include <sstream>

#include "core/memo_backends.hh"

namespace axmemo {

namespace {

void
line(std::ostringstream &os, const char *name, double value,
     const char *unit = "")
{
    os << std::left << std::setw(28) << name << std::right
       << std::setw(16) << std::setprecision(6) << value << ' ' << unit
       << '\n';
}

void
line(std::ostringstream &os, const char *name, std::uint64_t value,
     const char *unit = "")
{
    os << std::left << std::setw(28) << name << std::right
       << std::setw(16) << value << ' ' << unit << '\n';
}

} // namespace

std::string
formatRunReport(const RunResult &result, const ExperimentConfig &config)
{
    const SimStats &s = result.stats;
    std::ostringstream os;
    os << "---------- run report (" << result.backend
       << ") ----------\n";
    line(os, "cycles", s.cycles);
    line(os, "seconds",
         s.seconds(config.cpu.freqGhz), "s @2GHz");
    line(os, "macro_insts", s.macroInsts);
    line(os, "uops", s.uops);
    line(os, "ipc",
         s.cycles ? static_cast<double>(s.uops) /
                        static_cast<double>(s.cycles)
                  : 0.0);
    line(os, "memo_uops", s.memoUops);
    line(os, "branches", s.branches);
    line(os, "mispredicts", s.mispredicts);
    line(os, "loads", s.loads);
    line(os, "stores", s.stores);

    os << "-- memory system --\n";
    line(os, "l1d_hits", s.events.get("l1d_hit"));
    line(os, "l1d_misses", s.events.get("l1d_miss"));
    line(os, "l2_hits", s.events.get("l2_hit"));
    line(os, "l2_misses", s.events.get("l2_miss"));
    line(os, "dram_reads", s.events.get("dram_read"));
    line(os, "dram_writes", s.events.get("dram_write"));

    const MemoBackend *backend = memoBackends().find(result.backend);
    if (backend && backend->hardwareMemo()) {
        os << "-- memoization unit --\n";
        line(os, "lookups", s.memo.lookups);
        line(os, "l1_lut_hits", s.memo.l1Hits);
        line(os, "l2_lut_hits", s.memo.l2Hits);
        line(os, "misses", s.memo.misses);
        line(os, "hit_rate", s.memo.hitRate());
        line(os, "updates", s.memo.updates);
        line(os, "invalidates", s.memo.invalidates);
        line(os, "sampled_hits", s.memo.sampledHits);
        line(os, "profiled_hits", s.memo.profiledHits);
        line(os, "input_bytes_hashed", s.memo.inputBytesHashed);
        line(os, "queue_stall_cycles", s.memoQueueStalls);
        line(os, "monitor_tripped",
             static_cast<std::uint64_t>(s.memo.monitorTripped));
    } else if (result.lookups > 0) {
        os << "-- software memoization --\n";
        line(os, "lookups", result.lookups);
        line(os, "hits", result.hits);
        line(os, "hit_rate", result.hitRate());
    }

    os << "-- energy --\n";
    line(os, "core_uj", result.energy.corePj / 1e6, "uJ");
    line(os, "cache_uj", result.energy.cachePj / 1e6, "uJ");
    line(os, "dram_uj", result.energy.dramPj / 1e6, "uJ");
    line(os, "memo_uj", result.energy.memoPj / 1e6, "uJ");
    line(os, "leakage_uj", result.energy.leakagePj / 1e6, "uJ");
    line(os, "total_uj", result.energy.totalPj() / 1e6, "uJ");

    for (const auto &region : result.regions) {
        os << "-- region " << region.regionId << " (lut "
           << static_cast<int>(region.lut) << ") --\n";
        line(os, "inputs",
             static_cast<std::uint64_t>(region.numInputs));
        line(os, "input_bytes",
             static_cast<std::uint64_t>(region.inputBytes));
        line(os, "outputs",
             static_cast<std::uint64_t>(region.numOutputs));
        line(os, "fused_loads",
             static_cast<std::uint64_t>(region.fusedLoads));
    }
    return os.str();
}

std::string
formatComparison(const Comparison &cmp, const Workload &workload)
{
    std::ostringstream os;
    os << "---------- " << workload.name() << " ("
       << workload.domain() << ") ----------\n";
    os << std::fixed << std::setprecision(2);
    os << "speedup            " << cmp.speedup << "x\n";
    os << "energy saving      " << cmp.energyReduction << "x\n";
    os << "dynamic uops       " << 100.0 * cmp.normalizedUops
       << "% of baseline (" << 100.0 * cmp.memoUopShare
       << "% memoization ops)\n";
    os << "hit rate           " << 100.0 * cmp.subject.hitRate()
       << "%\n";
    os << std::setprecision(4);
    os << "quality loss       " << 100.0 * cmp.qualityLoss << "% ("
       << (workload.qualityMetric() ==
                   QualityMetric::Misclassification
               ? "misclassification"
               : "Equation 2")
       << ")\n";
    os << "error p50 / p99    " << cmp.errorCdf.quantile(0.5) << " / "
       << cmp.errorCdf.quantile(0.99) << "\n";
    return os.str();
}

} // namespace axmemo
