/**
 * @file
 * The AxIR instruction set.
 *
 * AxIR is the RISC-style intermediate ISA this reproduction uses in place
 * of ARMv8: a load/store architecture with separate integer (64-bit) and
 * single-precision float register spaces, plus the five AxMemo extension
 * instructions of Section 4 (ld_crc, reg_crc, lookup, update, invalidate).
 *
 * Transcendental operations (exp, log, sin, ...) are ISA intrinsics that
 * stand in for the inlined libm sequences of a real ARM binary; their µop
 * expansion counts (see op_traits.cc) make dynamic-instruction statistics
 * comparable to the paper's.
 */

#ifndef AXMEMO_ISA_OPCODES_HH
#define AXMEMO_ISA_OPCODES_HH

#include <cstdint>

namespace axmemo {

/** AxIR opcodes. */
enum class Op : std::uint8_t
{
    // --- integer ALU (64-bit); src2 may be an immediate form ---
    Movi,  ///< dst = imm
    Mov,   ///< dst = src1
    Add,
    Sub,
    Mul,
    Div,   ///< signed divide
    Rem,   ///< signed remainder
    And,
    Or,
    Xor,
    Shl,
    Shr,   ///< logical shift right
    Sra,   ///< arithmetic shift right
    Slt,   ///< dst = (src1 < src2) signed
    Sle,
    Seq,
    Sne,
    MinI,
    MaxI,

    // --- single-precision floating point ---
    Fmovi, ///< dst = float immediate (bit pattern in imm)
    Fmov,  ///< dst = src1
    Fadd,
    Fsub,
    Fmul,
    Fdiv,
    Fsqrt,
    Fneg,
    Fabs,
    Fmin,
    Fmax,
    Flt,   ///< int dst = (fsrc1 < fsrc2)
    Fle,
    Feq,

    // --- conversions / bit moves ---
    CvtIF,  ///< float dst = (float)int src1
    CvtFI,  ///< int dst = (int64)truncate(float src1)
    FBits,  ///< int dst = 32-bit pattern of float src1 (zero-extended)
    BitsF,  ///< float dst = pattern of low 32 bits of int src1

    // --- transcendental intrinsics (libm stand-ins) ---
    Fexp,
    Flog,
    Fsin,
    Fcos,
    Fatan2, ///< dst = atan2(src1, src2)
    Facos,
    Fasin,

    // --- memory ---
    Ld,  ///< int dst = zero-extended size-byte load at [src1 + imm]
    St,  ///< store low size bytes of int src2 at [src1 + imm]
    Ldf, ///< float dst = 4-byte load at [src1 + imm]
    Stf, ///< store float src2 (4 bytes) at [src1 + imm]

    // --- control ---
    Br,     ///< unconditional branch to static index imm
    Bt,     ///< branch if int src1 != 0
    Bf,     ///< branch if int src1 == 0
    Halt,   ///< stop the program

    // --- AxMemo ISA extension (Section 4) ---
    LdCrc,      ///< Ld + stream loaded bytes (trunc n LSBs) into LUT's CRC
    RegCrc,     ///< stream a register's raw bits (trunc n LSBs) into CRC
    Lookup,     ///< LUT lookup; int dst = data on hit; sets hit flag
    Update,     ///< insert int src1's low dataBytes into the missed entry
    Invalidate, ///< flash-invalidate all entries of a logical LUT

    // --- memoization-aware control (the paper uses plain B.cond on the
    //     condition code set by lookup; AxIR names them explicitly) ---
    BrHit,  ///< branch if the last lookup on this thread hit
    BrMiss, ///< branch if it missed

    // --- zero-cost analysis markers ---
    RegionBegin, ///< imm = region id (programmer hint, Section 5)
    RegionEnd,   ///< imm = region id

    NumOps
};

/** Functional-unit class an op issues to (structural hazards, Table 3). */
enum class FuClass : std::uint8_t
{
    IntAlu,  ///< one of the two ALUs
    IntMul,  ///< the single multiplier
    IntDiv,  ///< the single divider
    Fp,      ///< the single FP unit
    Mem,     ///< the single load/store unit
    Branch,  ///< resolved in the ALU stage
    Memo,    ///< memoization-unit ops
    None     ///< markers
};

/** @return the mnemonic for @p op. */
const char *opName(Op op);

} // namespace axmemo

#endif // AXMEMO_ISA_OPCODES_HH
