/**
 * @file
 * KernelBuilder: an embedded assembler for AxIR.
 *
 * Workloads express their full per-item loops in AxIR through this DSL.
 * Virtual registers are allocated on demand; labels are patched at
 * finish(); structured helpers (forRange / ifThen / whileLoop) emit the
 * standard compare-and-branch idioms so kernels stay readable.
 */

#ifndef AXMEMO_ISA_BUILDER_HH
#define AXMEMO_ISA_BUILDER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace axmemo {

/** Opaque label handle for branch targets. */
struct Label
{
    int id = -1;
};

/** Embedded AxIR assembler; see file comment. */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name = "kernel");

    /** Allocate a fresh integer register. */
    IReg newIReg();
    /** Allocate a fresh float register. */
    FReg newFReg();

    // --- integer arithmetic (allocating forms) ---
    IReg imm(std::int64_t value);
    IReg add(IReg a, IReg b);
    IReg add(IReg a, std::int64_t i);
    IReg sub(IReg a, IReg b);
    IReg sub(IReg a, std::int64_t i);
    IReg mul(IReg a, IReg b);
    IReg mul(IReg a, std::int64_t i);
    IReg div(IReg a, IReg b);
    IReg rem(IReg a, IReg b);
    IReg rem(IReg a, std::int64_t i);
    IReg band(IReg a, std::int64_t i);
    IReg band(IReg a, IReg b);
    IReg bor(IReg a, IReg b);
    IReg bxor(IReg a, IReg b);
    IReg bxor(IReg a, std::int64_t i);
    IReg shl(IReg a, std::int64_t i);
    IReg shr(IReg a, std::int64_t i);
    IReg shl(IReg a, IReg b);
    IReg shr(IReg a, IReg b);
    IReg sra(IReg a, std::int64_t i);
    /** Sign-extend the low @p bits of @p a (shl + sra pair). */
    IReg sext(IReg a, unsigned bits);
    IReg slt(IReg a, IReg b);
    IReg slt(IReg a, std::int64_t i);
    IReg sle(IReg a, IReg b);
    IReg seq(IReg a, IReg b);
    IReg seq(IReg a, std::int64_t i);
    IReg sne(IReg a, IReg b);
    IReg sne(IReg a, std::int64_t i);
    IReg imin(IReg a, IReg b);
    IReg imax(IReg a, IReg b);

    // --- in-place forms for loop-carried variables ---
    void assign(IReg dst, IReg src);
    void assign(IReg dst, std::int64_t value);
    void addTo(IReg dst, IReg a, IReg b);
    void addTo(IReg dst, IReg a, std::int64_t i);
    void assign(FReg dst, FReg src);
    void assign(FReg dst, float value);
    void faddTo(FReg dst, FReg a, FReg b);

    // --- float arithmetic ---
    FReg fimm(float value);
    FReg fadd(FReg a, FReg b);
    FReg fsub(FReg a, FReg b);
    FReg fmul(FReg a, FReg b);
    FReg fdiv(FReg a, FReg b);
    FReg fsqrt(FReg a);
    FReg fneg(FReg a);
    FReg fabs(FReg a);
    FReg fmin(FReg a, FReg b);
    FReg fmax(FReg a, FReg b);
    IReg flt(FReg a, FReg b);
    IReg fle(FReg a, FReg b);
    IReg feq(FReg a, FReg b);

    // --- intrinsics ---
    FReg fexp(FReg a);
    FReg flog(FReg a);
    FReg fsin(FReg a);
    FReg fcos(FReg a);
    FReg fatan2(FReg y, FReg x);
    FReg facos(FReg a);
    FReg fasin(FReg a);

    // --- conversions ---
    FReg itof(IReg a);
    IReg ftoi(FReg a);
    IReg fbits(FReg a);
    FReg bitsf(IReg a);

    // --- memory ---
    IReg ld(IReg base, std::int64_t offset, unsigned size = 4);
    FReg ldf(IReg base, std::int64_t offset);
    void st(IReg base, std::int64_t offset, IReg value, unsigned size = 4);
    void stf(IReg base, std::int64_t offset, FReg value);

    // --- control ---
    Label newLabel();
    void bind(Label label);
    void br(Label label);
    void brTrue(IReg cond, Label label);
    void brFalse(IReg cond, Label label);
    void halt();

    // --- structured control ---
    /** for (i = begin; i != end; i += step) body(i) — end/step immediates */
    void forRange(std::int64_t begin, std::int64_t end, std::int64_t step,
                  const std::function<void(IReg)> &body);
    /** for (i = begin; i != endReg; i += step) body(i) */
    void forRange(std::int64_t begin, IReg end, std::int64_t step,
                  const std::function<void(IReg)> &body);
    void ifThen(IReg cond, const std::function<void()> &then);
    void ifThenElse(IReg cond, const std::function<void()> &then,
                    const std::function<void()> &otherwise);

    // --- analysis regions (Section 5 programmer hints) ---
    void regionBegin(int regionId);
    void regionEnd(int regionId);

    // --- AxMemo ISA extension (Section 4) ---
    IReg ldCrc(IReg base, std::int64_t offset, LutId lut, unsigned trunc,
               unsigned size = 4);
    FReg ldfCrc(IReg base, std::int64_t offset, LutId lut, unsigned trunc);
    void regCrc(IReg src, LutId lut, unsigned trunc, unsigned size = 8);
    void regCrc(FReg src, LutId lut, unsigned trunc);
    IReg lookup(LutId lut);
    void update(IReg src, LutId lut, unsigned size = 4);
    void invalidate(LutId lut);
    void brHit(Label label);
    void brMiss(Label label);

    /** Current instruction index (the index the next append gets). */
    InstIndex here() const { return prog_.size(); }

    /** Raw append escape hatch (used by tests). */
    InstIndex emit(const Inst &inst) { return prog_.append(inst); }

    /**
     * Patch labels, append a final halt (unless one is already last),
     * verify, and return the program. The builder must not be reused.
     */
    Program finish();

  private:
    IReg emitI(Op op, IReg a, IReg b);
    IReg emitI(Op op, IReg a, std::int64_t i);
    FReg emitF(Op op, FReg a, FReg b);
    FReg emitF1(Op op, FReg a);
    void emitBranch(Op op, RegId cond, Label label);

    Program prog_;
    std::vector<InstIndex> labelTargets_;
    unsigned nextIntReg_ = 0;
    unsigned nextFloatReg_ = 0;
    bool finished_ = false;
};

} // namespace axmemo

#endif // AXMEMO_ISA_BUILDER_HH
