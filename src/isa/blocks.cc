#include "isa/blocks.hh"

#include "common/log.hh"

namespace axmemo {

BlockMap
partitionBlocks(const Program &prog)
{
    const auto n = static_cast<std::size_t>(prog.size());
    BlockMap map;
    if (n == 0)
        return map;

    // Leaders: entry, branch targets, and fallthroughs of terminators.
    std::vector<bool> leader(n, false);
    leader[0] = true;
    for (std::size_t i = 0; i < n; ++i) {
        const Inst &inst = prog.at(static_cast<InstIndex>(i));
        if (inst.isBranch()) {
            if (inst.imm < 0 ||
                inst.imm >= static_cast<std::int64_t>(n))
                axm_fatal(prog.name(), ": branch target ", inst.imm,
                          " out of range (run Program::verify first)");
            leader[static_cast<std::size_t>(inst.imm)] = true;
        }
        if ((inst.isBranch() || inst.op == Op::Halt) && i + 1 < n)
            leader[i + 1] = true;
    }

    map.blockOf.resize(n, 0);
    for (std::size_t i = 0; i < n;) {
        BasicBlock bb;
        bb.begin = static_cast<InstIndex>(i);
        const auto blockIndex =
            static_cast<std::uint32_t>(map.blocks.size());
        do {
            map.blockOf[i] = blockIndex;
            const Inst &inst = prog.at(static_cast<InstIndex>(i));
            ++i;
            if (inst.op == Op::RegionBegin || inst.op == Op::RegionEnd)
                continue; // markers ride along but cost nothing
            const OpTraits &traits = opTraits(inst.op);
            const std::uint64_t uops = std::max(1u, traits.uops);
            ++bb.macroInsts;
            bb.uops += uops;
            bb.uopEvents[static_cast<std::size_t>(Ev::FrontendUops)] +=
                uops;
            const Ev ev = uopEventOf(traits.energy);
            if (ev != Ev::NumEvents)
                bb.uopEvents[static_cast<std::size_t>(ev)] += uops;
            if (inst.isMemoOp() && inst.op != Op::LdCrc)
                bb.memoUops += uops;
        } while (i < n && !leader[i]);
        bb.end = static_cast<InstIndex>(i);
        map.blocks.push_back(bb);
    }
    return map;
}

} // namespace axmemo
