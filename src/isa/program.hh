/**
 * @file
 * AxIR program container, operand introspection, and structural verifier.
 */

#ifndef AXMEMO_ISA_PROGRAM_HH
#define AXMEMO_ISA_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace axmemo {

/** Static instruction index inside a Program. */
using InstIndex = std::int64_t;

/** A [begin, end) range of static instructions. */
struct InstRange
{
    InstIndex begin = 0;
    InstIndex end = 0;

    bool contains(InstIndex i) const { return i >= begin && i < end; }
    InstIndex length() const { return end - begin; }
};

/** A straight-line AxIR program with labeled analysis regions. */
class Program
{
  public:
    explicit Program(std::string name = "program") : name_(std::move(name))
    {
    }

    const std::string &name() const { return name_; }

    /** Append an instruction; @return its static index. */
    InstIndex append(const Inst &inst);

    /** Number of static instructions. */
    InstIndex size() const { return static_cast<InstIndex>(insts_.size()); }

    Inst &at(InstIndex i) { return insts_[static_cast<std::size_t>(i)]; }
    const Inst &at(InstIndex i) const
    {
        return insts_[static_cast<std::size_t>(i)];
    }

    const std::vector<Inst> &insts() const { return insts_; }
    std::vector<Inst> &insts() { return insts_; }

    /** Record the static extent of a programmer-hinted analysis region. */
    void setRegion(int regionId, InstRange range);

    /** All hinted regions (id -> static range). */
    const std::map<int, InstRange> &regions() const { return regions_; }

    /** Highest register index used + 1, per register file. */
    unsigned numIntRegs() const { return numIntRegs_; }
    unsigned numFloatRegs() const { return numFloatRegs_; }

    /**
     * Check structural invariants: in-range branch targets, matched region
     * markers, trailing Halt, valid operand shapes. Calls axm_fatal on the
     * first violation.
     */
    void verify() const;

  private:
    void noteReg(RegId reg);

    std::string name_;
    std::vector<Inst> insts_;
    std::map<int, InstRange> regions_;
    unsigned numIntRegs_ = 0;
    unsigned numFloatRegs_ = 0;
};

/**
 * Operand introspection shared by the executor, liveness analysis, and the
 * DDDG builder: which registers an instruction reads and writes.
 */
struct OperandInfo
{
    RegId sources[3] = {invalidReg, invalidReg, invalidReg};
    unsigned numSources = 0;
    RegId dest = invalidReg;
};

/** @return the register operands of @p inst. */
OperandInfo operandsOf(const Inst &inst);

} // namespace axmemo

#endif // AXMEMO_ISA_PROGRAM_HH
