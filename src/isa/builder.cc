#include "isa/builder.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace axmemo {

KernelBuilder::KernelBuilder(std::string name) : prog_(std::move(name)) {}

IReg
KernelBuilder::newIReg()
{
    return {iregId(nextIntReg_++)};
}

FReg
KernelBuilder::newFReg()
{
    return {fregId(nextFloatReg_++)};
}

IReg
KernelBuilder::emitI(Op op, IReg a, IReg b)
{
    IReg dst = newIReg();
    prog_.append({.op = op, .dst = dst.id, .src1 = a.id, .src2 = b.id});
    return dst;
}

IReg
KernelBuilder::emitI(Op op, IReg a, std::int64_t i)
{
    IReg dst = newIReg();
    prog_.append({.op = op, .dst = dst.id, .src1 = a.id, .imm = i});
    return dst;
}

FReg
KernelBuilder::emitF(Op op, FReg a, FReg b)
{
    FReg dst = newFReg();
    prog_.append({.op = op, .dst = dst.id, .src1 = a.id, .src2 = b.id});
    return dst;
}

FReg
KernelBuilder::emitF1(Op op, FReg a)
{
    FReg dst = newFReg();
    prog_.append({.op = op, .dst = dst.id, .src1 = a.id});
    return dst;
}

IReg
KernelBuilder::imm(std::int64_t value)
{
    IReg dst = newIReg();
    prog_.append({.op = Op::Movi, .dst = dst.id, .imm = value});
    return dst;
}

IReg KernelBuilder::add(IReg a, IReg b) { return emitI(Op::Add, a, b); }
IReg KernelBuilder::add(IReg a, std::int64_t i)
{
    return emitI(Op::Add, a, i);
}
IReg KernelBuilder::sub(IReg a, IReg b) { return emitI(Op::Sub, a, b); }
IReg KernelBuilder::sub(IReg a, std::int64_t i)
{
    return emitI(Op::Sub, a, i);
}
IReg KernelBuilder::mul(IReg a, IReg b) { return emitI(Op::Mul, a, b); }
IReg KernelBuilder::mul(IReg a, std::int64_t i)
{
    return emitI(Op::Mul, a, i);
}
IReg KernelBuilder::div(IReg a, IReg b) { return emitI(Op::Div, a, b); }
IReg KernelBuilder::rem(IReg a, IReg b) { return emitI(Op::Rem, a, b); }
IReg KernelBuilder::rem(IReg a, std::int64_t i)
{
    return emitI(Op::Rem, a, i);
}
IReg KernelBuilder::band(IReg a, std::int64_t i)
{
    return emitI(Op::And, a, i);
}
IReg KernelBuilder::band(IReg a, IReg b) { return emitI(Op::And, a, b); }
IReg KernelBuilder::bor(IReg a, IReg b) { return emitI(Op::Or, a, b); }
IReg KernelBuilder::bxor(IReg a, IReg b) { return emitI(Op::Xor, a, b); }
IReg KernelBuilder::bxor(IReg a, std::int64_t i)
{
    return emitI(Op::Xor, a, i);
}
IReg KernelBuilder::shl(IReg a, std::int64_t i)
{
    return emitI(Op::Shl, a, i);
}
IReg KernelBuilder::shr(IReg a, std::int64_t i)
{
    return emitI(Op::Shr, a, i);
}
IReg KernelBuilder::shl(IReg a, IReg b) { return emitI(Op::Shl, a, b); }
IReg KernelBuilder::shr(IReg a, IReg b) { return emitI(Op::Shr, a, b); }
IReg KernelBuilder::sra(IReg a, std::int64_t i)
{
    return emitI(Op::Sra, a, i);
}
IReg
KernelBuilder::sext(IReg a, unsigned bits)
{
    return sra(shl(a, 64 - bits), 64 - bits);
}
IReg KernelBuilder::slt(IReg a, IReg b) { return emitI(Op::Slt, a, b); }
IReg KernelBuilder::slt(IReg a, std::int64_t i)
{
    return emitI(Op::Slt, a, i);
}
IReg KernelBuilder::sle(IReg a, IReg b) { return emitI(Op::Sle, a, b); }
IReg KernelBuilder::seq(IReg a, IReg b) { return emitI(Op::Seq, a, b); }
IReg KernelBuilder::seq(IReg a, std::int64_t i)
{
    return emitI(Op::Seq, a, i);
}
IReg KernelBuilder::sne(IReg a, IReg b) { return emitI(Op::Sne, a, b); }
IReg KernelBuilder::sne(IReg a, std::int64_t i)
{
    return emitI(Op::Sne, a, i);
}
IReg KernelBuilder::imin(IReg a, IReg b) { return emitI(Op::MinI, a, b); }
IReg KernelBuilder::imax(IReg a, IReg b) { return emitI(Op::MaxI, a, b); }

void
KernelBuilder::assign(IReg dst, IReg src)
{
    prog_.append({.op = Op::Mov, .dst = dst.id, .src1 = src.id});
}

void
KernelBuilder::assign(IReg dst, std::int64_t value)
{
    prog_.append({.op = Op::Movi, .dst = dst.id, .imm = value});
}

void
KernelBuilder::addTo(IReg dst, IReg a, IReg b)
{
    prog_.append({.op = Op::Add, .dst = dst.id, .src1 = a.id,
                  .src2 = b.id});
}

void
KernelBuilder::addTo(IReg dst, IReg a, std::int64_t i)
{
    prog_.append({.op = Op::Add, .dst = dst.id, .src1 = a.id, .imm = i});
}

void
KernelBuilder::assign(FReg dst, FReg src)
{
    prog_.append({.op = Op::Fmov, .dst = dst.id, .src1 = src.id});
}

void
KernelBuilder::assign(FReg dst, float value)
{
    prog_.append({.op = Op::Fmovi, .dst = dst.id,
                  .imm = static_cast<std::int64_t>(floatBits(value))});
}

void
KernelBuilder::faddTo(FReg dst, FReg a, FReg b)
{
    prog_.append({.op = Op::Fadd, .dst = dst.id, .src1 = a.id,
                  .src2 = b.id});
}

FReg
KernelBuilder::fimm(float value)
{
    FReg dst = newFReg();
    prog_.append({.op = Op::Fmovi, .dst = dst.id,
                  .imm = static_cast<std::int64_t>(floatBits(value))});
    return dst;
}

FReg KernelBuilder::fadd(FReg a, FReg b) { return emitF(Op::Fadd, a, b); }
FReg KernelBuilder::fsub(FReg a, FReg b) { return emitF(Op::Fsub, a, b); }
FReg KernelBuilder::fmul(FReg a, FReg b) { return emitF(Op::Fmul, a, b); }
FReg KernelBuilder::fdiv(FReg a, FReg b) { return emitF(Op::Fdiv, a, b); }
FReg KernelBuilder::fsqrt(FReg a) { return emitF1(Op::Fsqrt, a); }
FReg KernelBuilder::fneg(FReg a) { return emitF1(Op::Fneg, a); }
FReg KernelBuilder::fabs(FReg a) { return emitF1(Op::Fabs, a); }
FReg KernelBuilder::fmin(FReg a, FReg b) { return emitF(Op::Fmin, a, b); }
FReg KernelBuilder::fmax(FReg a, FReg b) { return emitF(Op::Fmax, a, b); }

IReg
KernelBuilder::flt(FReg a, FReg b)
{
    IReg dst = newIReg();
    prog_.append({.op = Op::Flt, .dst = dst.id, .src1 = a.id,
                  .src2 = b.id});
    return dst;
}

IReg
KernelBuilder::fle(FReg a, FReg b)
{
    IReg dst = newIReg();
    prog_.append({.op = Op::Fle, .dst = dst.id, .src1 = a.id,
                  .src2 = b.id});
    return dst;
}

IReg
KernelBuilder::feq(FReg a, FReg b)
{
    IReg dst = newIReg();
    prog_.append({.op = Op::Feq, .dst = dst.id, .src1 = a.id,
                  .src2 = b.id});
    return dst;
}

FReg KernelBuilder::fexp(FReg a) { return emitF1(Op::Fexp, a); }
FReg KernelBuilder::flog(FReg a) { return emitF1(Op::Flog, a); }
FReg KernelBuilder::fsin(FReg a) { return emitF1(Op::Fsin, a); }
FReg KernelBuilder::fcos(FReg a) { return emitF1(Op::Fcos, a); }
FReg
KernelBuilder::fatan2(FReg y, FReg x)
{
    return emitF(Op::Fatan2, y, x);
}
FReg KernelBuilder::facos(FReg a) { return emitF1(Op::Facos, a); }
FReg KernelBuilder::fasin(FReg a) { return emitF1(Op::Fasin, a); }

FReg
KernelBuilder::itof(IReg a)
{
    FReg dst = newFReg();
    prog_.append({.op = Op::CvtIF, .dst = dst.id, .src1 = a.id});
    return dst;
}

IReg
KernelBuilder::ftoi(FReg a)
{
    IReg dst = newIReg();
    prog_.append({.op = Op::CvtFI, .dst = dst.id, .src1 = a.id});
    return dst;
}

IReg
KernelBuilder::fbits(FReg a)
{
    IReg dst = newIReg();
    prog_.append({.op = Op::FBits, .dst = dst.id, .src1 = a.id});
    return dst;
}

FReg
KernelBuilder::bitsf(IReg a)
{
    FReg dst = newFReg();
    prog_.append({.op = Op::BitsF, .dst = dst.id, .src1 = a.id});
    return dst;
}

IReg
KernelBuilder::ld(IReg base, std::int64_t offset, unsigned size)
{
    IReg dst = newIReg();
    prog_.append({.op = Op::Ld, .dst = dst.id, .src1 = base.id,
                  .imm = offset, .size = static_cast<std::uint8_t>(size)});
    return dst;
}

FReg
KernelBuilder::ldf(IReg base, std::int64_t offset)
{
    FReg dst = newFReg();
    prog_.append({.op = Op::Ldf, .dst = dst.id, .src1 = base.id,
                  .imm = offset, .size = 4});
    return dst;
}

void
KernelBuilder::st(IReg base, std::int64_t offset, IReg value,
                  unsigned size)
{
    prog_.append({.op = Op::St, .src1 = base.id, .src2 = value.id,
                  .imm = offset, .size = static_cast<std::uint8_t>(size)});
}

void
KernelBuilder::stf(IReg base, std::int64_t offset, FReg value)
{
    prog_.append({.op = Op::Stf, .src1 = base.id, .src2 = value.id,
                  .imm = offset, .size = 4});
}

Label
KernelBuilder::newLabel()
{
    labelTargets_.push_back(-1);
    return {static_cast<int>(labelTargets_.size()) - 1};
}

void
KernelBuilder::bind(Label label)
{
    if (label.id < 0 ||
        label.id >= static_cast<int>(labelTargets_.size()))
        axm_panic("bind of unknown label");
    if (labelTargets_[label.id] != -1)
        axm_panic("label bound twice");
    labelTargets_[label.id] = prog_.size();
}

void
KernelBuilder::emitBranch(Op op, RegId cond, Label label)
{
    if (label.id < 0 ||
        label.id >= static_cast<int>(labelTargets_.size()))
        axm_panic("branch to unknown label");
    // Encode the unresolved label as a negative immediate; finish()
    // rewrites it to the bound static index.
    prog_.append({.op = op, .src1 = cond,
                  .imm = -1 - static_cast<std::int64_t>(label.id)});
}

void
KernelBuilder::br(Label label)
{
    emitBranch(Op::Br, invalidReg, label);
}

void
KernelBuilder::brTrue(IReg cond, Label label)
{
    emitBranch(Op::Bt, cond.id, label);
}

void
KernelBuilder::brFalse(IReg cond, Label label)
{
    emitBranch(Op::Bf, cond.id, label);
}

void
KernelBuilder::halt()
{
    prog_.append({.op = Op::Halt});
}

void
KernelBuilder::forRange(std::int64_t begin, std::int64_t end,
                        std::int64_t step,
                        const std::function<void(IReg)> &body)
{
    IReg endReg = imm(end);
    forRange(begin, endReg, step, body);
}

void
KernelBuilder::forRange(std::int64_t begin, IReg end, std::int64_t step,
                        const std::function<void(IReg)> &body)
{
    if (step == 0)
        axm_panic("forRange with zero step");
    IReg idx = newIReg();
    assign(idx, begin);
    Label head = newLabel();
    Label exit = newLabel();
    bind(head);
    // Condition: idx < end for positive step, idx > end for negative.
    IReg cont = step > 0 ? slt(idx, end) : slt(end, idx);
    brFalse(cont, exit);
    body(idx);
    addTo(idx, idx, step);
    br(head);
    bind(exit);
}

void
KernelBuilder::ifThen(IReg cond, const std::function<void()> &then)
{
    Label skip = newLabel();
    brFalse(cond, skip);
    then();
    bind(skip);
}

void
KernelBuilder::ifThenElse(IReg cond, const std::function<void()> &then,
                          const std::function<void()> &otherwise)
{
    Label elseLabel = newLabel();
    Label doneLabel = newLabel();
    brFalse(cond, elseLabel);
    then();
    br(doneLabel);
    bind(elseLabel);
    otherwise();
    bind(doneLabel);
}

void
KernelBuilder::regionBegin(int regionId)
{
    prog_.append({.op = Op::RegionBegin, .imm = regionId});
}

void
KernelBuilder::regionEnd(int regionId)
{
    prog_.append({.op = Op::RegionEnd, .imm = regionId});
}

IReg
KernelBuilder::ldCrc(IReg base, std::int64_t offset, LutId lut,
                     unsigned trunc, unsigned size)
{
    IReg dst = newIReg();
    prog_.append({.op = Op::LdCrc, .dst = dst.id, .src1 = base.id,
                  .imm = offset, .size = static_cast<std::uint8_t>(size),
                  .lut = lut,
                  .truncBits = static_cast<std::uint8_t>(trunc)});
    return dst;
}

FReg
KernelBuilder::ldfCrc(IReg base, std::int64_t offset, LutId lut,
                      unsigned trunc)
{
    FReg dst = newFReg();
    prog_.append({.op = Op::LdCrc, .dst = dst.id, .src1 = base.id,
                  .imm = offset, .size = 4, .lut = lut,
                  .truncBits = static_cast<std::uint8_t>(trunc)});
    return dst;
}

void
KernelBuilder::regCrc(IReg src, LutId lut, unsigned trunc, unsigned size)
{
    prog_.append({.op = Op::RegCrc, .src1 = src.id,
                  .size = static_cast<std::uint8_t>(size), .lut = lut,
                  .truncBits = static_cast<std::uint8_t>(trunc)});
}

void
KernelBuilder::regCrc(FReg src, LutId lut, unsigned trunc)
{
    prog_.append({.op = Op::RegCrc, .src1 = src.id, .size = 4, .lut = lut,
                  .truncBits = static_cast<std::uint8_t>(trunc)});
}

IReg
KernelBuilder::lookup(LutId lut)
{
    IReg dst = newIReg();
    prog_.append({.op = Op::Lookup, .dst = dst.id, .lut = lut});
    return dst;
}

void
KernelBuilder::update(IReg src, LutId lut, unsigned size)
{
    prog_.append({.op = Op::Update, .src1 = src.id,
                  .size = static_cast<std::uint8_t>(size), .lut = lut});
}

void
KernelBuilder::invalidate(LutId lut)
{
    prog_.append({.op = Op::Invalidate, .lut = lut});
}

void
KernelBuilder::brHit(Label label)
{
    emitBranch(Op::BrHit, invalidReg, label);
}

void
KernelBuilder::brMiss(Label label)
{
    emitBranch(Op::BrMiss, invalidReg, label);
}

Program
KernelBuilder::finish()
{
    if (finished_)
        axm_panic("KernelBuilder::finish called twice");
    finished_ = true;

    if (prog_.size() == 0 || prog_.at(prog_.size() - 1).op != Op::Halt)
        halt();

    // Patch label-encoded branch targets.
    for (InstIndex i = 0; i < prog_.size(); ++i) {
        Inst &inst = prog_.at(i);
        if (inst.isBranch() && inst.imm < 0) {
            const auto labelId = static_cast<std::size_t>(-1 - inst.imm);
            if (labelId >= labelTargets_.size())
                axm_panic(prog_.name(), ": bad label id");
            if (labelTargets_[labelId] < 0)
                axm_panic(prog_.name(), ": branch to unbound label ",
                          labelId);
            inst.imm = labelTargets_[labelId];
        }
    }

    // Record hinted regions: match RegionBegin/RegionEnd pairs by id.
    for (InstIndex i = 0; i < prog_.size(); ++i) {
        const Inst &inst = prog_.at(i);
        if (inst.op != Op::RegionBegin)
            continue;
        for (InstIndex j = i + 1; j < prog_.size(); ++j) {
            const Inst &end = prog_.at(j);
            if (end.op == Op::RegionEnd && end.imm == inst.imm) {
                prog_.setRegion(static_cast<int>(inst.imm),
                                {.begin = i + 1, .end = j});
                break;
            }
        }
    }

    prog_.verify();
    return std::move(prog_);
}

} // namespace axmemo
