/**
 * @file
 * Reusable dynamic-trace capture buffer.
 *
 * The simulator's original trace path invoked a std::function per retired
 * instruction — an indirect call plus capture overhead on the hottest loop
 * in the system. TraceBuffer is the allocation-free alternative: the
 * simulator appends records directly into a caller-owned, bounded vector
 * whose capacity survives reset(), so sweeping many traced runs reuses one
 * buffer instead of reallocating per run.
 */

#ifndef AXMEMO_ISA_DYN_TRACE_HH
#define AXMEMO_ISA_DYN_TRACE_HH

#include <cstdint>
#include <vector>

#include "isa/opcodes.hh"
#include "isa/program.hh"

namespace axmemo {

/** One dynamic instruction record. */
struct TraceEntry
{
    InstIndex staticId = 0;
    Op op = Op::Halt;
};

/** Bounded, reusable dynamic trace of one program execution. */
class TraceBuffer
{
  public:
    /** @param maxEntries stop recording after this many records. */
    explicit TraceBuffer(std::size_t maxEntries = 1u << 20)
        : maxEntries_(maxEntries)
    {
        entries_.reserve(std::min<std::size_t>(maxEntries, 1u << 16));
    }

    /** Record one retired instruction (hot path: branch + push_back). */
    void
    append(InstIndex staticId, Op op)
    {
        ++observed_;
        if (entries_.size() >= maxEntries_) {
            truncated_ = true;
            return;
        }
        entries_.push_back({staticId, op});
    }

    const std::vector<TraceEntry> &entries() const { return entries_; }

    /** True if the window filled before the program ended. */
    bool truncated() const { return truncated_; }

    /** Total dynamic instructions observed (even past the window). */
    std::uint64_t observed() const { return observed_; }

    /** Forget the recorded trace but keep the buffer's capacity. */
    void
    reset()
    {
        entries_.clear();
        truncated_ = false;
        observed_ = 0;
    }

  private:
    std::size_t maxEntries_;
    std::vector<TraceEntry> entries_;
    bool truncated_ = false;
    std::uint64_t observed_ = 0;
};

} // namespace axmemo

#endif // AXMEMO_ISA_DYN_TRACE_HH
