#include "isa/analysis.hh"

#include <algorithm>

#include "common/log.hh"

namespace axmemo {

std::vector<InstIndex>
successorsOf(const Program &prog, InstIndex i)
{
    const Inst &inst = prog.at(i);
    std::vector<InstIndex> succs;
    if (inst.fallsThrough() && i + 1 < prog.size())
        succs.push_back(i + 1);
    if (inst.isBranch())
        succs.push_back(inst.imm);
    // Deduplicate (a conditional branch to the next instruction).
    std::sort(succs.begin(), succs.end());
    succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
    return succs;
}

Liveness::Liveness(const Program &prog)
    : liveIn_(static_cast<std::size_t>(prog.size()))
{
    // Classic backward may-dataflow to fixpoint. Programs are small
    // (hundreds of static instructions) so the simple iteration is fine.
    bool changed = true;
    while (changed) {
        changed = false;
        for (InstIndex i = prog.size() - 1; i >= 0; --i) {
            const Inst &inst = prog.at(i);
            const OperandInfo ops = operandsOf(inst);

            std::set<RegId> out;
            for (InstIndex s : successorsOf(prog, i)) {
                if (s >= prog.size())
                    continue;
                const auto &succIn =
                    liveIn_[static_cast<std::size_t>(s)];
                out.insert(succIn.begin(), succIn.end());
            }

            // in = (out - def) + use
            if (ops.dest != invalidReg)
                out.erase(ops.dest);
            for (unsigned k = 0; k < ops.numSources; ++k)
                out.insert(ops.sources[k]);

            auto &in = liveIn_[static_cast<std::size_t>(i)];
            if (out != in) {
                in = std::move(out);
                changed = true;
            }
        }
    }
}

std::set<RegId>
Liveness::liveOut(const Program &prog, InstIndex i) const
{
    std::set<RegId> out;
    for (InstIndex s : successorsOf(prog, i)) {
        if (s >= prog.size())
            continue;
        const auto &succIn = liveIn_[static_cast<std::size_t>(s)];
        out.insert(succIn.begin(), succIn.end());
    }
    return out;
}

RangeInterface
analyzeRange(const Program &prog, const Liveness &liveness, InstRange range)
{
    if (range.begin < 0 || range.end > prog.size() ||
        range.begin >= range.end)
        axm_panic("analyzeRange: bad range [", range.begin, ", ",
                  range.end, ")");

    RangeInterface iface;
    std::set<RegId> written;
    std::set<RegId> inputSet;

    for (InstIndex i = range.begin; i < range.end; ++i) {
        const Inst &inst = prog.at(i);
        if (inst.op == Op::St || inst.op == Op::Stf)
            iface.hasStores = true;
        if (inst.isBranch() && !range.contains(inst.imm) &&
            inst.imm != range.end)
            iface.escapes = true;

        const OperandInfo ops = operandsOf(inst);
        for (unsigned k = 0; k < ops.numSources; ++k) {
            const RegId src = ops.sources[k];
            // Inputs are recorded in first-read program order: the memo
            // transform streams them to the CRC unit in exactly this
            // order, satisfying Section 4's ordering requirement.
            if (!written.count(src) && inputSet.insert(src).second)
                iface.inputs.push_back(src);
        }
        if (ops.dest != invalidReg)
            written.insert(ops.dest);
    }

    // Outputs: registers written in the range that are live after it.
    // Live-out at the last instruction of the range approximates "live
    // after the range" for single-exit fall-through ranges.
    std::set<RegId> liveAfter;
    if (range.end < prog.size())
        liveAfter = liveness.liveIn(range.end);
    for (RegId reg : written) {
        if (liveAfter.count(reg))
            iface.outputs.push_back(reg);
    }
    return iface;
}

} // namespace axmemo
