/**
 * @file
 * AxIR disassembler — human-readable program listings for debugging,
 * golden tests, and the compiler's transform reports.
 */

#ifndef AXMEMO_ISA_DISASM_HH
#define AXMEMO_ISA_DISASM_HH

#include <string>

#include "isa/program.hh"

namespace axmemo {

/** @return one-line rendering of @p inst. */
std::string disassemble(const Inst &inst);

/** @return full listing of @p prog with instruction indices. */
std::string disassemble(const Program &prog);

} // namespace axmemo

#endif // AXMEMO_ISA_DISASM_HH
