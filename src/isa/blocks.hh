/**
 * @file
 * Basic-block partitioning of an AxIR program, with per-block static
 * aggregates for the simulator's macro-op batching (DESIGN.md §10).
 *
 * A block is a maximal straight-line run: leaders are instruction 0,
 * every branch target, and every instruction after a branch or Halt;
 * the terminator is the first branch/Halt at or after the leader (or
 * the last instruction). Because AxIR control transfers only target
 * leaders, execution that enters a block always runs it leader to
 * terminator — so any *static* per-instruction accounting can be
 * summed once per block instead of once per instruction. The
 * aggregates here cover exactly the counters the interpreter would
 * otherwise bump on every dynamic instruction: macro-instruction and
 * µop totals, the memo-µop subset, and the per-event-class µop deltas
 * that feed EventCounters::addRange(). Region markers execute inside
 * blocks but are excluded from the aggregates, mirroring the
 * interpreter's marker shortcut. Dynamic quantities (mispredicts,
 * queue stalls, latencies, loads on this path vs that) are untouched —
 * batching amortizes associative counters only, never timing.
 */

#ifndef AXMEMO_ISA_BLOCKS_HH
#define AXMEMO_ISA_BLOCKS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/events.hh"
#include "isa/op_traits.hh"
#include "isa/program.hh"

namespace axmemo {

/** EnergyClass -> µop event id (NumEvents = "charge nothing"). */
constexpr Ev
uopEventOf(EnergyClass cls)
{
    constexpr Ev map[] = {
        Ev::UopIntAlu,   // EnergyClass::IntAlu
        Ev::UopIntMul,   // EnergyClass::IntMul
        Ev::UopIntDiv,   // EnergyClass::IntDiv
        Ev::UopFpSimple, // EnergyClass::FpSimple
        Ev::UopFpMul,    // EnergyClass::FpMul
        Ev::UopFpDiv,    // EnergyClass::FpDiv
        Ev::UopFpLong,   // EnergyClass::FpLong
        Ev::UopMem,      // EnergyClass::Mem
        Ev::UopBranch,   // EnergyClass::Branch
        Ev::UopMemo,     // EnergyClass::Memo
        Ev::NumEvents,   // EnergyClass::None
    };
    return map[static_cast<std::size_t>(cls)];
}

/** One straight-line run with its static per-execution costs. */
struct BasicBlock
{
    /** [begin, end): leader through terminator, inclusive. */
    InstIndex begin = 0;
    InstIndex end = 0;

    /** Non-marker instructions executed per pass through the block. */
    std::uint64_t macroInsts = 0;
    /** Total µops (max(1, traits.uops) per non-marker instruction). */
    std::uint64_t uops = 0;
    /** µops of memo-counted instructions (memo ops except ld_crc). */
    std::uint64_t memoUops = 0;
    /** Per-event µop deltas for the front-end/µop-class prefix of Ev
     * (index 0 = FrontendUops); EventCounters::addRange() operand. */
    std::array<std::uint64_t, numUopEvents> uopEvents{};

    InstIndex length() const { return end - begin; }
};

/** A program's block decomposition. */
struct BlockMap
{
    std::vector<BasicBlock> blocks;
    /** Static instruction index -> index into blocks. */
    std::vector<std::uint32_t> blockOf;

    /** The block led by @p leader (valid for any leader pc). */
    const BasicBlock &at(InstIndex leader) const
    {
        return blocks[blockOf[static_cast<std::size_t>(leader)]];
    }
};

/** Partition @p prog into basic blocks with static aggregates. The
 * program should already be verified (in-range branch targets). */
BlockMap partitionBlocks(const Program &prog);

} // namespace axmemo

#endif // AXMEMO_ISA_BLOCKS_HH
