/**
 * @file
 * Static analyses over AxIR programs: control-flow successors, live-register
 * dataflow, and region input/output classification.
 *
 * The compiler's memoization transform (Section 5, step 4) uses these to
 * determine which registers are live-in (memoization inputs) and live-out
 * (memoization outputs) of a candidate code range.
 */

#ifndef AXMEMO_ISA_ANALYSIS_HH
#define AXMEMO_ISA_ANALYSIS_HH

#include <set>
#include <vector>

#include "isa/program.hh"

namespace axmemo {

/** Static successors of instruction @p i in @p prog. */
std::vector<InstIndex> successorsOf(const Program &prog, InstIndex i);

/** Result of whole-program liveness: live-in set per instruction. */
class Liveness
{
  public:
    /** Run backward liveness over @p prog (iterates to fixpoint). */
    explicit Liveness(const Program &prog);

    /** Registers live immediately before instruction @p i executes. */
    const std::set<RegId> &liveIn(InstIndex i) const
    {
        return liveIn_[static_cast<std::size_t>(i)];
    }

    /** Registers live immediately after instruction @p i. */
    std::set<RegId> liveOut(const Program &prog, InstIndex i) const;

  private:
    std::vector<std::set<RegId>> liveIn_;
};

/** Inputs/outputs of a static range, per the subgraph rules of Section 5. */
struct RangeInterface
{
    /** Registers read inside the range before any write inside it. */
    std::vector<RegId> inputs;
    /** Registers written inside the range and live after it. */
    std::vector<RegId> outputs;
    /** True if the range contains stores (ineligible for memoization). */
    bool hasStores = false;
    /** True if any branch inside the range targets outside it. */
    bool escapes = false;
};

/**
 * Classify the live interface of prog[range.begin, range.end).
 * Control must enter at range.begin; internal branches may stay inside.
 */
RangeInterface analyzeRange(const Program &prog, const Liveness &liveness,
                            InstRange range);

} // namespace axmemo

#endif // AXMEMO_ISA_ANALYSIS_HH
