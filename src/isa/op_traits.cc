#include "isa/op_traits.hh"

#include <array>

#include "common/log.hh"

namespace axmemo {

namespace {

/**
 * Latency / µop calibration.
 *
 * Native ops follow ARM Cortex-A53/HPI-class timings: 1-cycle ALU, 3-cycle
 * pipelined multiply, ~12-cycle blocking divide, 3-4 cycle pipelined FP,
 * ~10-13 cycle blocking FP divide/sqrt.
 *
 * Intrinsics stand in for inlined single-precision libm kernels. Their µop
 * counts approximate the dynamic instruction counts of ARM libm/musl
 * implementations (range reduction + polynomial evaluation):
 * expf ~30, logf ~35, sinf/cosf ~40, atan2f ~55, acosf/asinf ~45
 * (range reduction, polynomial, special-case handling, call overhead).
 * Latency equals µops (the in-order core cannot overlap a blocking
 * sequence with itself) which slightly *understates* baseline run time —
 * a conservative choice for AxMemo's reported speedups.
 */
constexpr OpTraits
make(FuClass fu, Cycle latency, unsigned uops, bool pipelined,
     EnergyClass energy)
{
    return {fu, latency, uops, pipelined, energy};
}

constexpr auto intAlu = make(FuClass::IntAlu, 1, 1, true,
                             EnergyClass::IntAlu);
constexpr auto fpSimple = make(FuClass::Fp, 3, 1, true,
                               EnergyClass::FpSimple);

std::array<OpTraits, static_cast<std::size_t>(Op::NumOps)>
buildTable()
{
    std::array<OpTraits, static_cast<std::size_t>(Op::NumOps)> t{};
    auto set = [&t](Op op, OpTraits traits) {
        t[static_cast<std::size_t>(op)] = traits;
    };

    for (Op op : {Op::Movi, Op::Mov, Op::Add, Op::Sub, Op::And, Op::Or,
                  Op::Xor, Op::Shl, Op::Shr, Op::Sra, Op::Slt, Op::Sle,
                  Op::Seq, Op::Sne, Op::MinI, Op::MaxI})
        set(op, intAlu);

    set(Op::Mul, make(FuClass::IntMul, 3, 1, true, EnergyClass::IntMul));
    set(Op::Div, make(FuClass::IntDiv, 12, 1, false, EnergyClass::IntDiv));
    set(Op::Rem, make(FuClass::IntDiv, 12, 1, false, EnergyClass::IntDiv));

    for (Op op : {Op::Fmovi, Op::Fmov, Op::Fneg, Op::Fabs, Op::Fmin,
                  Op::Fmax, Op::Flt, Op::Fle, Op::Feq, Op::CvtIF,
                  Op::CvtFI, Op::FBits, Op::BitsF})
        set(op, fpSimple);

    set(Op::Fadd, make(FuClass::Fp, 3, 1, true, EnergyClass::FpSimple));
    set(Op::Fsub, make(FuClass::Fp, 3, 1, true, EnergyClass::FpSimple));
    set(Op::Fmul, make(FuClass::Fp, 4, 1, true, EnergyClass::FpMul));
    set(Op::Fdiv, make(FuClass::Fp, 10, 1, false, EnergyClass::FpDiv));
    set(Op::Fsqrt, make(FuClass::Fp, 13, 1, false, EnergyClass::FpDiv));

    set(Op::Fexp, make(FuClass::Fp, 30, 30, false, EnergyClass::FpLong));
    set(Op::Flog, make(FuClass::Fp, 35, 35, false, EnergyClass::FpLong));
    set(Op::Fsin, make(FuClass::Fp, 60, 60, false, EnergyClass::FpLong));
    set(Op::Fcos, make(FuClass::Fp, 60, 60, false, EnergyClass::FpLong));
    set(Op::Fatan2, make(FuClass::Fp, 70, 70, false, EnergyClass::FpLong));
    set(Op::Facos, make(FuClass::Fp, 45, 45, false, EnergyClass::FpLong));
    set(Op::Fasin, make(FuClass::Fp, 45, 45, false, EnergyClass::FpLong));

    // Memory latency below is address generation + L1 hit; the simulator
    // adds the hierarchy's extra cycles per access.
    set(Op::Ld, make(FuClass::Mem, 1, 1, true, EnergyClass::Mem));
    set(Op::Ldf, make(FuClass::Mem, 1, 1, true, EnergyClass::Mem));
    set(Op::St, make(FuClass::Mem, 1, 1, true, EnergyClass::Mem));
    set(Op::Stf, make(FuClass::Mem, 1, 1, true, EnergyClass::Mem));

    for (Op op : {Op::Br, Op::Bt, Op::Bf, Op::BrHit, Op::BrMiss})
        set(op, make(FuClass::Branch, 1, 1, true, EnergyClass::Branch));

    set(Op::Halt, make(FuClass::None, 1, 1, true, EnergyClass::None));

    // Memo ops: Table 4. ld_crc behaves as a load for the CPU (its CRC
    // side channel is handled by the memoization unit); reg_crc issues in
    // one cycle; lookup/update/invalidate latencies are modeled inside the
    // memoization unit, plus the 1-cycle dummy-register ordering overhead
    // already folded into Table 4's figures.
    set(Op::LdCrc, make(FuClass::Mem, 1, 1, true, EnergyClass::Mem));
    set(Op::RegCrc, make(FuClass::Memo, 1, 1, true, EnergyClass::Memo));
    set(Op::Lookup, make(FuClass::Memo, 2, 1, false, EnergyClass::Memo));
    set(Op::Update, make(FuClass::Memo, 2, 1, true, EnergyClass::Memo));
    set(Op::Invalidate,
        make(FuClass::Memo, 1, 1, false, EnergyClass::Memo));

    set(Op::RegionBegin, make(FuClass::None, 0, 0, true,
                              EnergyClass::None));
    set(Op::RegionEnd, make(FuClass::None, 0, 0, true, EnergyClass::None));

    return t;
}

const auto traitsTable = buildTable();

} // namespace

const OpTraits &
opTraits(Op op)
{
    const auto idx = static_cast<std::size_t>(op);
    if (idx >= traitsTable.size())
        axm_panic("opTraits: bad opcode ", idx);
    return traitsTable[idx];
}

const char *
energyClassName(EnergyClass cls)
{
    switch (cls) {
      case EnergyClass::IntAlu: return "int_alu";
      case EnergyClass::IntMul: return "int_mul";
      case EnergyClass::IntDiv: return "int_div";
      case EnergyClass::FpSimple: return "fp_simple";
      case EnergyClass::FpMul: return "fp_mul";
      case EnergyClass::FpDiv: return "fp_div";
      case EnergyClass::FpLong: return "fp_long";
      case EnergyClass::Mem: return "mem";
      case EnergyClass::Branch: return "branch";
      case EnergyClass::Memo: return "memo";
      case EnergyClass::None: return "none";
    }
    return "???";
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Movi: return "movi";
      case Op::Mov: return "mov";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Div: return "div";
      case Op::Rem: return "rem";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::Sra: return "sra";
      case Op::Slt: return "slt";
      case Op::Sle: return "sle";
      case Op::Seq: return "seq";
      case Op::Sne: return "sne";
      case Op::MinI: return "min";
      case Op::MaxI: return "max";
      case Op::Fmovi: return "fmovi";
      case Op::Fmov: return "fmov";
      case Op::Fadd: return "fadd";
      case Op::Fsub: return "fsub";
      case Op::Fmul: return "fmul";
      case Op::Fdiv: return "fdiv";
      case Op::Fsqrt: return "fsqrt";
      case Op::Fneg: return "fneg";
      case Op::Fabs: return "fabs";
      case Op::Fmin: return "fmin";
      case Op::Fmax: return "fmax";
      case Op::Flt: return "flt";
      case Op::Fle: return "fle";
      case Op::Feq: return "feq";
      case Op::CvtIF: return "cvtif";
      case Op::CvtFI: return "cvtfi";
      case Op::FBits: return "fbits";
      case Op::BitsF: return "bitsf";
      case Op::Fexp: return "fexp";
      case Op::Flog: return "flog";
      case Op::Fsin: return "fsin";
      case Op::Fcos: return "fcos";
      case Op::Fatan2: return "fatan2";
      case Op::Facos: return "facos";
      case Op::Fasin: return "fasin";
      case Op::Ld: return "ld";
      case Op::St: return "st";
      case Op::Ldf: return "ldf";
      case Op::Stf: return "stf";
      case Op::Br: return "br";
      case Op::Bt: return "bt";
      case Op::Bf: return "bf";
      case Op::Halt: return "halt";
      case Op::LdCrc: return "ld_crc";
      case Op::RegCrc: return "reg_crc";
      case Op::Lookup: return "lookup";
      case Op::Update: return "update";
      case Op::Invalidate: return "invalidate";
      case Op::BrHit: return "br_hit";
      case Op::BrMiss: return "br_miss";
      case Op::RegionBegin: return "region_begin";
      case Op::RegionEnd: return "region_end";
      case Op::NumOps: break;
    }
    return "???";
}

} // namespace axmemo
