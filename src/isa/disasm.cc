#include "isa/disasm.hh"

#include <sstream>

#include "common/bits.hh"

namespace axmemo {

namespace {

std::string
regName(RegId reg)
{
    if (reg == invalidReg)
        return "-";
    std::ostringstream os;
    os << (isFloatReg(reg) ? 'f' : 'r') << regIndex(reg);
    return os.str();
}

} // namespace

std::string
disassemble(const Inst &inst)
{
    std::ostringstream os;
    os << opName(inst.op);

    switch (inst.op) {
      case Op::Movi:
        os << ' ' << regName(inst.dst) << ", " << inst.imm;
        break;
      case Op::Fmovi:
        os << ' ' << regName(inst.dst) << ", "
           << bitsToFloat(static_cast<std::uint32_t>(inst.imm));
        break;
      case Op::Ld:
      case Op::Ldf:
        os << ' ' << regName(inst.dst) << ", [" << regName(inst.src1)
           << " + " << inst.imm << "], " << static_cast<int>(inst.size);
        break;
      case Op::St:
      case Op::Stf:
        os << " [" << regName(inst.src1) << " + " << inst.imm << "], "
           << regName(inst.src2) << ", " << static_cast<int>(inst.size);
        break;
      case Op::Br:
        os << ' ' << inst.imm;
        break;
      case Op::Bt:
      case Op::Bf:
        os << ' ' << regName(inst.src1) << ", " << inst.imm;
        break;
      case Op::BrHit:
      case Op::BrMiss:
        os << ' ' << inst.imm;
        break;
      case Op::LdCrc:
        os << ' ' << regName(inst.dst) << ", [" << regName(inst.src1)
           << " + " << inst.imm << "], lut" << static_cast<int>(inst.lut)
           << ", n=" << static_cast<int>(inst.truncBits) << ", "
           << static_cast<int>(inst.size);
        break;
      case Op::RegCrc:
        os << ' ' << regName(inst.src1) << ", lut"
           << static_cast<int>(inst.lut) << ", n="
           << static_cast<int>(inst.truncBits) << ", "
           << static_cast<int>(inst.size);
        break;
      case Op::Lookup:
        os << ' ' << regName(inst.dst) << ", lut"
           << static_cast<int>(inst.lut);
        break;
      case Op::Update:
        os << ' ' << regName(inst.src1) << ", lut"
           << static_cast<int>(inst.lut) << ", "
           << static_cast<int>(inst.size);
        break;
      case Op::Invalidate:
        os << " lut" << static_cast<int>(inst.lut);
        break;
      case Op::RegionBegin:
      case Op::RegionEnd:
        os << ' ' << inst.imm;
        break;
      case Op::Halt:
        break;
      default: {
        os << ' ' << regName(inst.dst);
        if (inst.src1 != invalidReg)
            os << ", " << regName(inst.src1);
        if (inst.src2 != invalidReg)
            os << ", " << regName(inst.src2);
        else if (inst.op != Op::Mov && inst.op != Op::Fmov &&
                 inst.op != Op::Fneg && inst.op != Op::Fabs &&
                 inst.op != Op::Fsqrt && inst.op != Op::CvtIF &&
                 inst.op != Op::CvtFI && inst.op != Op::FBits &&
                 inst.op != Op::BitsF && inst.op != Op::Fexp &&
                 inst.op != Op::Flog && inst.op != Op::Fsin &&
                 inst.op != Op::Fcos && inst.op != Op::Facos &&
                 inst.op != Op::Fasin)
            os << ", " << inst.imm;
        break;
      }
    }
    return os.str();
}

std::string
disassemble(const Program &prog)
{
    std::ostringstream os;
    os << "; program " << prog.name() << " (" << prog.size()
       << " insts)\n";
    for (InstIndex i = 0; i < prog.size(); ++i)
        os << i << ":\t" << disassemble(prog.at(i)) << '\n';
    return os.str();
}

} // namespace axmemo
