#include "isa/program.hh"

#include <set>

#include "common/log.hh"
#include "isa/op_traits.hh"

namespace axmemo {

InstIndex
Program::append(const Inst &inst)
{
    noteReg(inst.dst);
    noteReg(inst.src1);
    noteReg(inst.src2);
    insts_.push_back(inst);
    return static_cast<InstIndex>(insts_.size()) - 1;
}

void
Program::noteReg(RegId reg)
{
    if (reg == invalidReg)
        return;
    const unsigned idx = regIndex(reg) + 1;
    if (isFloatReg(reg))
        numFloatRegs_ = std::max(numFloatRegs_, idx);
    else
        numIntRegs_ = std::max(numIntRegs_, idx);
}

void
Program::setRegion(int regionId, InstRange range)
{
    regions_[regionId] = range;
}

OperandInfo
operandsOf(const Inst &inst)
{
    OperandInfo info;
    auto addSrc = [&info](RegId reg) {
        if (reg != invalidReg)
            info.sources[info.numSources++] = reg;
    };

    switch (inst.op) {
      case Op::Movi:
      case Op::Fmovi:
        info.dest = inst.dst;
        break;
      case Op::St:
      case Op::Stf:
        addSrc(inst.src1); // base address
        addSrc(inst.src2); // stored value
        break;
      case Op::Bt:
      case Op::Bf:
        addSrc(inst.src1);
        break;
      case Op::Br:
      case Op::Halt:
      case Op::BrHit:
      case Op::BrMiss:
      case Op::Invalidate:
      case Op::RegionBegin:
      case Op::RegionEnd:
        break;
      case Op::RegCrc:
      case Op::Update:
        addSrc(inst.src1);
        break;
      case Op::Lookup:
        info.dest = inst.dst;
        break;
      default:
        // Generic computational form: dst <- op(src1[, src2]).
        addSrc(inst.src1);
        addSrc(inst.src2);
        info.dest = inst.dst;
        break;
    }
    return info;
}

void
Program::verify() const
{
    if (insts_.empty())
        axm_fatal(name_, ": empty program");
    if (insts_.back().op != Op::Halt &&
        insts_.back().op != Op::Br)
        axm_fatal(name_, ": program must end in halt or br");

    int regionDepth = 0;
    std::set<std::int64_t> beginIds;
    for (InstIndex i = 0; i < size(); ++i) {
        const Inst &inst = at(i);
        if (inst.op == Op::RegionBegin &&
            !beginIds.insert(inst.imm).second)
            axm_fatal(name_, ": region id ", inst.imm,
                      " hinted at two static sites; use distinct ids");
        if (inst.isBranch()) {
            if (inst.imm < 0 || inst.imm > size())
                axm_fatal(name_, ": inst ", i, " branches to ", inst.imm,
                          " (program size ", size(), ")");
        }
        if (inst.op == Op::RegionBegin)
            ++regionDepth;
        if (inst.op == Op::RegionEnd) {
            --regionDepth;
            if (regionDepth < 0)
                axm_fatal(name_, ": unmatched region_end at ", i);
        }
        if (inst.touchesMemory() && inst.op != Op::St &&
            inst.op != Op::Stf) {
            if (inst.src1 == invalidReg)
                axm_fatal(name_, ": load at ", i, " without base register");
            if (isFloatReg(inst.src1))
                axm_fatal(name_, ": load at ", i,
                          " with float base register");
        }
        if ((inst.op == Op::Ld || inst.op == Op::St ||
             inst.op == Op::LdCrc) &&
            inst.size != 1 && inst.size != 2 && inst.size != 4 &&
            inst.size != 8)
            axm_fatal(name_, ": inst ", i, " has bad access size ",
                      static_cast<int>(inst.size));
        if (inst.isMemoOp() && inst.lut >= maxLutsPerThread)
            axm_fatal(name_, ": inst ", i, " uses LUT id ",
                      static_cast<int>(inst.lut), " >= ",
                      maxLutsPerThread);
    }
    if (regionDepth != 0)
        axm_fatal(name_, ": unmatched region_begin");
}

} // namespace axmemo
