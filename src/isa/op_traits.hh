/**
 * @file
 * Per-opcode execution traits: functional-unit class, result latency,
 * dynamic-µop expansion, pipelining, and energy class.
 *
 * These numbers define the HPI-like core model (Table 3) and the µop
 * accounting that keeps dynamic-instruction statistics comparable with the
 * paper's ARM binaries (intrinsics expand to the cost of their inlined
 * libm sequences).
 */

#ifndef AXMEMO_ISA_OP_TRAITS_HH
#define AXMEMO_ISA_OP_TRAITS_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace axmemo {

/** Coarse energy classes mapped to pJ values by the energy model. */
enum class EnergyClass : std::uint8_t
{
    IntAlu,
    IntMul,
    IntDiv,
    FpSimple, ///< add/sub/compare/convert/move
    FpMul,
    FpDiv,    ///< div/sqrt
    FpLong,   ///< transcendental intrinsics (per µop)
    Mem,      ///< address generation; cache energy is counted separately
    Branch,
    Memo,     ///< memo-unit request issue; unit energy counted separately
    None
};

/** Static execution traits of one opcode. */
struct OpTraits
{
    FuClass fu = FuClass::IntAlu;
    /** Cycles until the result is ready (base; memory adds hierarchy). */
    Cycle latency = 1;
    /**
     * Dynamic µops this op stands for. 1 for native ops; the inlined-libm
     * equivalent for intrinsics. Counted in dynamic-instruction stats and
     * charged per-µop front-end energy.
     */
    unsigned uops = 1;
    /** False for ops that monopolize their unit (div, sqrt, intrinsics). */
    bool pipelined = true;
    EnergyClass energy = EnergyClass::IntAlu;
};

/** @return the traits of @p op. */
const OpTraits &opTraits(Op op);

/** @return a stable lowercase name for @p cls (energy event keys). */
const char *energyClassName(EnergyClass cls);

} // namespace axmemo

#endif // AXMEMO_ISA_OP_TRAITS_HH
