/**
 * @file
 * AxIR instruction word and typed register handles.
 */

#ifndef AXMEMO_ISA_INST_HH
#define AXMEMO_ISA_INST_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace axmemo {

/**
 * Register encoding: one flat RegId space where bit 15 selects the float
 * register file. AxIR programs use virtual registers (the builder allocates
 * freely); the timing model charges no cost for register pressure, standing
 * in for a compiler's register allocator on these small kernels.
 */
inline constexpr RegId floatRegFlag = 0x8000;

/** @return the RegId of integer register @p index. */
constexpr RegId
iregId(unsigned index)
{
    return static_cast<RegId>(index);
}

/** @return the RegId of float register @p index. */
constexpr RegId
fregId(unsigned index)
{
    return static_cast<RegId>(index) | floatRegFlag;
}

/** @return true if @p reg names a float register. */
constexpr bool
isFloatReg(RegId reg)
{
    return reg != invalidReg && (reg & floatRegFlag) != 0;
}

/** @return the index within its register file. */
constexpr unsigned
regIndex(RegId reg)
{
    return reg & ~floatRegFlag;
}

/** Strongly-typed integer register handle used by the builder. */
struct IReg
{
    RegId id = invalidReg;
    bool valid() const { return id != invalidReg; }
};

/** Strongly-typed float register handle used by the builder. */
struct FReg
{
    RegId id = invalidReg;
    bool valid() const { return id != invalidReg; }
};

/** One AxIR instruction. */
struct Inst
{
    Op op = Op::Halt;

    RegId dst = invalidReg;
    RegId src1 = invalidReg;
    RegId src2 = invalidReg;

    /**
     * Immediate operand. Meaning depends on op: ALU second operand when
     * src2 is invalid, load/store byte offset, branch target (static
     * instruction index), float bit pattern for Fmovi, region id for
     * markers.
     */
    std::int64_t imm = 0;

    /** Memory access / CRC stream size in bytes (Ld/St/LdCrc/RegCrc). */
    std::uint8_t size = 4;

    /** Logical LUT for memoization ops. */
    LutId lut = 0;

    /** LSBs truncated before hashing (ld_crc/reg_crc operand n). */
    std::uint8_t truncBits = 0;

    /** @return true for the five memo ops + memo branches. */
    bool
    isMemoOp() const
    {
        return op == Op::LdCrc || op == Op::RegCrc || op == Op::Lookup ||
               op == Op::Update || op == Op::Invalidate ||
               op == Op::BrHit || op == Op::BrMiss;
    }

    /** @return true for any branch (target in imm). */
    bool
    isBranch() const
    {
        return op == Op::Br || op == Op::Bt || op == Op::Bf ||
               op == Op::BrHit || op == Op::BrMiss;
    }

    /** @return true if control can fall through to the next instruction. */
    bool
    fallsThrough() const
    {
        return op != Op::Br && op != Op::Halt;
    }

    /** @return true for loads/stores (including ld_crc). */
    bool
    touchesMemory() const
    {
        return op == Op::Ld || op == Op::St || op == Op::Ldf ||
               op == Op::Stf || op == Op::LdCrc;
    }
};

} // namespace axmemo

#endif // AXMEMO_ISA_INST_HH
