#include "obs/profiler.hh"

#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>

namespace axmemo {
namespace obs {

namespace {

struct Cell
{
    std::uint64_t calls = 0;
    double seconds = 0.0;
    std::size_t order = 0; ///< first-recorded rank for stable reports
};

struct State
{
    mutable std::mutex mutex;
    std::map<std::pair<std::string, std::string>, Cell> cells;
    std::size_t nextOrder = 0;
};

State &
state()
{
    static State s;
    return s;
}

std::string
secondsStr(double s)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6f", s);
    return buf;
}

} // namespace

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::record(const std::string &phase, double seconds)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    Cell &cell = s.cells[{phase, threadLabel()}];
    if (cell.calls == 0)
        cell.order = s.nextOrder++;
    ++cell.calls;
    cell.seconds += seconds;
}

std::vector<PhaseTiming>
Profiler::snapshot() const
{
    State &s = state();
    std::vector<PhaseTiming> out;
    std::vector<std::size_t> order;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        out.reserve(s.cells.size());
        order.reserve(s.cells.size());
        for (const auto &kv : s.cells) {
            out.push_back({kv.first.first, kv.first.second,
                           kv.second.calls, kv.second.seconds});
            order.push_back(kv.second.order);
        }
    }
    std::vector<std::size_t> idx(out.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return order[a] < order[b];
    });
    std::vector<PhaseTiming> sorted;
    sorted.reserve(out.size());
    for (std::size_t i : idx)
        sorted.push_back(std::move(out[i]));
    return sorted;
}

std::vector<PhaseTiming>
Profiler::snapshotByPhase() const
{
    std::vector<PhaseTiming> merged;
    for (const PhaseTiming &cell : snapshot()) {
        auto it = std::find_if(merged.begin(), merged.end(),
                               [&](const PhaseTiming &m) {
                                   return m.phase == cell.phase;
                               });
        if (it == merged.end()) {
            merged.push_back({cell.phase, "", cell.calls, cell.seconds});
        } else {
            it->calls += cell.calls;
            it->seconds += cell.seconds;
        }
    }
    return merged;
}

void
Profiler::reset()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.cells.clear();
    s.nextOrder = 0;
}

std::string
Profiler::renderText() const
{
    const std::vector<PhaseTiming> byPhase = snapshotByPhase();
    const std::vector<PhaseTiming> all = snapshot();
    double maxSeconds = 0.0;
    for (const PhaseTiming &p : byPhase)
        maxSeconds = std::max(maxSeconds, p.seconds);

    std::string out;
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%-32s %10s %14s %8s\n", "phase",
                  "calls", "seconds", "rel");
    out += buf;
    for (const PhaseTiming &p : byPhase) {
        const double rel = maxSeconds > 0.0 ? p.seconds / maxSeconds : 0.0;
        std::snprintf(buf, sizeof(buf), "%-32s %10llu %14.6f %7.1f%%\n",
                      p.phase.c_str(),
                      static_cast<unsigned long long>(p.calls), p.seconds,
                      rel * 100.0);
        out += buf;
        // Per-worker breakdown, shown only when phases actually ran on
        // labelled threads.
        for (const PhaseTiming &cell : all) {
            if (cell.phase != p.phase || cell.thread.empty())
                continue;
            std::snprintf(buf, sizeof(buf),
                          "  %-30s %10llu %14.6f\n",
                          ("[" + cell.thread + "]").c_str(),
                          static_cast<unsigned long long>(cell.calls),
                          cell.seconds);
            out += buf;
        }
    }
    if (byPhase.empty())
        out += "(no phases recorded)\n";
    return out;
}

std::string
Profiler::renderJson() const
{
    const std::vector<PhaseTiming> byPhase = snapshotByPhase();
    const std::vector<PhaseTiming> all = snapshot();
    std::string out = "{";
    bool firstPhase = true;
    for (const PhaseTiming &p : byPhase) {
        if (!firstPhase)
            out += ',';
        firstPhase = false;
        out += '"' + p.phase + "\":{\"calls\":" +
               std::to_string(p.calls) +
               ",\"seconds\":" + secondsStr(p.seconds);
        std::string threads;
        bool firstThread = true;
        for (const PhaseTiming &cell : all) {
            if (cell.phase != p.phase || cell.thread.empty())
                continue;
            if (!firstThread)
                threads += ',';
            firstThread = false;
            threads += '"' + cell.thread +
                       "\":" + secondsStr(cell.seconds);
        }
        if (!threads.empty())
            out += ",\"threads\":{" + threads + '}';
        out += '}';
    }
    out += '}';
    return out;
}

ScopedPhase::ScopedPhase(const char *phase)
    : phase_(phase), span_("phase", phase),
      start_(std::chrono::steady_clock::now())
{
    AXM_TRACE(Prof, "prof", "begin ", phase_);
}

ScopedPhase::~ScopedPhase()
{
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    Profiler::instance().record(phase_, elapsed.count());
    // Elapsed time stays out of the trace line: host wall-clock varies
    // run to run, and serial traces must stay byte-reproducible (the
    // aggregate is available through `axmemo profile`).
    AXM_TRACE(Prof, "prof", "end ", phase_);
}

} // namespace obs
} // namespace axmemo
