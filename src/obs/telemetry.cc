#include "obs/telemetry.hh"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <map>
#include <mutex>

#include <unistd.h>

namespace axmemo {
namespace telemetry {

namespace {

/** Collected-event store: everything drained from the span rings so
 * far, in drain order. One mutex guards store + snapshot state. */
struct Store
{
    std::mutex mutex;
    std::vector<SpanEvent> events;
    std::uint64_t dropped = 0;

    // Metrics-snapshot routing + EWMA state (heartbeat cadence).
    std::string snapshotPath;
    std::string workerId;
    std::uint64_t lastBeatUs = 0;
    std::uint64_t lastJobs = 0;
    std::uint64_t lastInsts = 0;
    double ewmaJobsPerS = -1.0;
    double ewmaMinstrPerS = -1.0;
};

Store &
store()
{
    static Store s;
    return s;
}

void
collectLocked(Store &s)
{
    s.dropped += detail::drainAll(s.events);
}

void
appendEscaped(std::string &out, const char *text)
{
    for (const char *p = text; *p; ++p) {
        const unsigned char c = static_cast<unsigned char>(*p);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
}

void
appendDouble(std::string &out, double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out += buf;
}

/**
 * Map thread labels to Chrome-trace tids: the unlabelled main thread
 * is tid 0, worker labels get 1.. in sorted order so tracks render in
 * a stable order regardless of drain interleaving.
 */
std::map<std::string, int>
tidTable(const std::vector<SpanEvent> &events)
{
    std::map<std::string, int> tids;
    tids[""] = 0;
    for (const SpanEvent &event : events)
        tids.emplace(event.thread, 0);
    int next = 1;
    for (auto &entry : tids) {
        if (!entry.first.empty())
            entry.second = next++;
    }
    return tids;
}

/** Resident set size in bytes from /proc/self/statm (0 if unknown). */
std::uint64_t
residentBytes()
{
    std::uint64_t pages = 0;
    if (FILE *f = std::fopen("/proc/self/statm", "r")) {
        unsigned long long total = 0, resident = 0;
        if (std::fscanf(f, "%llu %llu", &total, &resident) == 2)
            pages = resident;
        std::fclose(f);
    }
    const long pageSize = ::sysconf(_SC_PAGESIZE);
    return pages * static_cast<std::uint64_t>(pageSize > 0 ? pageSize : 4096);
}

std::string
renderSnapshotLineLocked(Store &s)
{
    MetricsCounters &m = metrics();
    const std::uint64_t nowUs = detail::nowUs();
    const std::uint64_t jobsDone =
        m.jobsDone.load(std::memory_order_relaxed);
    const std::uint64_t jobsTotal =
        m.jobsTotal.load(std::memory_order_relaxed);
    const std::uint64_t insts = m.macroInsts.load(std::memory_order_relaxed);
    const std::uint64_t lookups =
        m.memoLookups.load(std::memory_order_relaxed);
    const std::uint64_t hits = m.memoHits.load(std::memory_order_relaxed);
    const std::uint64_t lutSum =
        m.lutLinesSum.load(std::memory_order_relaxed);
    const std::uint64_t lutSamples =
        m.lutLinesSamples.load(std::memory_order_relaxed);
    const std::uint64_t journalUs =
        m.lastJournalAppendUs.load(std::memory_order_relaxed);

    // Instantaneous rates over the last heartbeat interval, smoothed
    // with an EWMA (alpha 0.3) so the status ETA doesn't whipsaw on
    // one slow job.
    const double dtS = (nowUs - s.lastBeatUs) * 1e-6;
    if (dtS > 0 && s.lastBeatUs > 0) {
        const double jobsRate = (jobsDone - s.lastJobs) / dtS;
        const double minstrRate = (insts - s.lastInsts) / dtS * 1e-6;
        constexpr double alpha = 0.3;
        s.ewmaJobsPerS = s.ewmaJobsPerS < 0
                             ? jobsRate
                             : alpha * jobsRate + (1 - alpha) * s.ewmaJobsPerS;
        s.ewmaMinstrPerS = s.ewmaMinstrPerS < 0
                               ? minstrRate
                               : alpha * minstrRate +
                                     (1 - alpha) * s.ewmaMinstrPerS;
    }
    s.lastBeatUs = nowUs;
    s.lastJobs = jobsDone;
    s.lastInsts = insts;

    std::string line = "{\"worker\":\"";
    appendEscaped(line, s.workerId.c_str());
    line += "\",\"ts\":";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(std::time(nullptr)));
    line += buf;
    line += ",\"uptime_s\":";
    appendDouble(line, nowUs * 1e-6);
    std::snprintf(buf, sizeof(buf),
                  ",\"jobs_done\":%" PRIu64 ",\"jobs_total\":%" PRIu64,
                  jobsDone, jobsTotal);
    line += buf;
    line += ",\"jobs_per_s\":";
    appendDouble(line, s.ewmaJobsPerS < 0 ? 0.0 : s.ewmaJobsPerS);
    line += ",\"minstr_per_s\":";
    appendDouble(line, s.ewmaMinstrPerS < 0 ? 0.0 : s.ewmaMinstrPerS);
    std::snprintf(buf, sizeof(buf), ",\"macro_insts\":%" PRIu64, insts);
    line += buf;
    line += ",\"memo_hit_rate\":";
    appendDouble(line, lookups ? static_cast<double>(hits) / lookups : 0.0);
    line += ",\"lut_occupancy\":";
    appendDouble(line, lutSamples ? static_cast<double>(lutSum) / lutSamples
                                  : 0.0);
    std::snprintf(buf, sizeof(buf), ",\"rss_bytes\":%" PRIu64,
                  residentBytes());
    line += buf;
    line += ",\"journal_lag_s\":";
    appendDouble(line, journalUs ? (nowUs - journalUs) * 1e-6 : -1.0);
    line += "}";
    return line;
}

void
appendSnapshotLocked(Store &s)
{
    if (s.snapshotPath.empty())
        return;
    const std::string line = renderSnapshotLineLocked(s) + "\n";
    if (FILE *f = std::fopen(s.snapshotPath.c_str(), "a")) {
        // One whole line per fwrite in O_APPEND mode: readers polling
        // the file never observe a torn record.
        std::fwrite(line.data(), 1, line.size(), f);
        std::fclose(f);
    }
}

} // namespace

void
collect()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    collectLocked(s);
}

std::vector<SpanEvent>
collectedEvents()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    collectLocked(s);
    return s.events;
}

std::uint64_t
droppedEvents()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    collectLocked(s);
    return s.dropped;
}

std::string
renderTimeline(const std::string &processLabel)
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    collectLocked(s);

    const long long pid = static_cast<long long>(::getpid());
    char buf[160];
    std::string out = timelinePrefix;

    // Metadata events first: process lane name, then one thread track
    // per distinct worker label.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%lld,"
                  "\"tid\":0,\"args\":{\"name\":\"",
                  pid);
    out += buf;
    appendEscaped(out, processLabel.c_str());
    out += "\"}}";

    const std::map<std::string, int> tids = tidTable(s.events);
    for (const auto &entry : tids) {
        std::snprintf(buf, sizeof(buf),
                      ",\n{\"name\":\"thread_name\",\"ph\":\"M\","
                      "\"pid\":%lld,\"tid\":%d,\"args\":{\"name\":\"",
                      pid, entry.second);
        out += buf;
        appendEscaped(out,
                      entry.first.empty() ? "main" : entry.first.c_str());
        out += "\"}}";
    }

    for (const SpanEvent &event : s.events) {
        const int tid = tids.at(event.thread);
        if (event.kind == SpanEvent::Kind::Counter) {
            std::snprintf(buf, sizeof(buf),
                          ",\n{\"ph\":\"C\",\"pid\":%lld,\"tid\":%d,"
                          "\"ts\":%" PRIu64 ",\"name\":\"",
                          pid, tid, event.startUs);
            out += buf;
            appendEscaped(out, event.name);
            out += "\",\"args\":{\"value\":";
            appendDouble(out, event.value);
            out += "}}";
            continue;
        }
        std::snprintf(buf, sizeof(buf),
                      ",\n{\"ph\":\"X\",\"pid\":%lld,\"tid\":%d,"
                      "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64 ",\"cat\":\"",
                      pid, tid, event.startUs, event.durUs);
        out += buf;
        appendEscaped(out, event.category);
        out += "\",\"name\":\"";
        appendEscaped(out, event.name);
        std::snprintf(buf, sizeof(buf),
                      "\",\"args\":{\"id\":%" PRIu64 ",\"parent\":%" PRIu64
                      "}}",
                      event.id, event.parent);
        out += buf;
    }

    out += timelineSuffix;
    return out;
}

bool
writeTimeline(const std::string &path, const std::string &processLabel,
              std::string *error)
{
    const std::string document = renderTimeline(processLabel);
    // Self-contained temp+rename (obs cannot reach the core output
    // helpers): readers only ever see a complete document.
    const std::string temp = path + ".tmp";
    FILE *f = std::fopen(temp.c_str(), "w");
    if (!f) {
        if (error)
            *error = "cannot open " + temp;
        return false;
    }
    const bool wrote =
        std::fwrite(document.data(), 1, document.size(), f) ==
        document.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed || std::rename(temp.c_str(), path.c_str()) != 0) {
        std::remove(temp.c_str());
        if (error)
            *error = "cannot write " + path;
        return false;
    }
    return true;
}

MetricsCounters &
metrics()
{
    static MetricsCounters counters;
    return counters;
}

void
setSnapshotPath(const std::string &path, const std::string &workerId)
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.snapshotPath = path;
    s.workerId = workerId;
    appendSnapshotLocked(s);
}

void
heartbeat()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    appendSnapshotLocked(s);
}

std::string
renderSnapshotLine()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    return renderSnapshotLineLocked(s);
}

void
resetForTest()
{
    Store &s = store();
    std::lock_guard<std::mutex> lock(s.mutex);
    collectLocked(s);
    s.events.clear();
    s.dropped = 0;
    s.snapshotPath.clear();
    s.workerId.clear();
    s.lastBeatUs = 0;
    s.lastJobs = 0;
    s.lastInsts = 0;
    s.ewmaJobsPerS = -1.0;
    s.ewmaMinstrPerS = -1.0;
    MetricsCounters &m = metrics();
    m.jobsDone.store(0, std::memory_order_relaxed);
    m.jobsTotal.store(0, std::memory_order_relaxed);
    m.macroInsts.store(0, std::memory_order_relaxed);
    m.memoLookups.store(0, std::memory_order_relaxed);
    m.memoHits.store(0, std::memory_order_relaxed);
    m.lutLinesSum.store(0, std::memory_order_relaxed);
    m.lutLinesSamples.store(0, std::memory_order_relaxed);
    m.lastJournalAppendUs.store(0, std::memory_order_relaxed);
}

} // namespace telemetry
} // namespace axmemo
