/**
 * @file
 * gem5-style distribution statistics and the stats.txt renderer.
 *
 * CounterSet (common/stats.hh) answers "how many": scalars suitable for
 * the energy model and the report tables. The types here answer "how
 * were they distributed": Distribution buckets integer samples linearly
 * over a fixed range (with underflow/overflow bins), Histogram buckets
 * them by power of two for values of unknown magnitude, and StatSet
 * assembles named scalars, formulas and distributions into a gem5-like
 * stats.txt section plus a machine-readable JSON object.
 *
 * Every container keeps exact count/sum alongside the buckets so a
 * distribution can be cross-checked against its matching scalar counter
 * (e.g. sum(hit-streak samples) == memo hits) — the consistency the
 * trace-smoke CI stage asserts.
 */

#ifndef AXMEMO_OBS_STATS_HH
#define AXMEMO_OBS_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace axmemo {

/**
 * Linear-bucket distribution over [lo, hi] in steps of bucketSize, with
 * dedicated underflow/overflow bins (gem5's Stats::Distribution).
 * Count, sum and sample min/max are exact regardless of bucketing.
 */
class Distribution
{
  public:
    Distribution() = default;
    Distribution(std::uint64_t lo, std::uint64_t hi,
                 std::uint64_t bucketSize);

    /** (Re)configure the bucket range; drops all samples. */
    void init(std::uint64_t lo, std::uint64_t hi,
              std::uint64_t bucketSize);

    /** Record @p count occurrences of @p value. */
    void sample(std::uint64_t value, std::uint64_t count = 1);

    /** Fold @p other (same geometry) into this distribution. */
    void merge(const Distribution &other);

    /** Drop all samples, keeping the geometry. */
    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    double mean() const;
    /** Population standard deviation of the samples. */
    double stddev() const;
    std::uint64_t sampleMin() const { return count_ ? min_ : 0; }
    std::uint64_t sampleMax() const { return count_ ? max_ : 0; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /** Sum of squared samples (exact journal round-trip needs it). */
    double sumSq() const { return sumSq_; }

    /** Overwrite every field from journaled state — the exact inverse
     * of the getters above, including the bucket vector verbatim (so a
     * never-configured distribution restores as such). */
    void restore(std::uint64_t lo, std::uint64_t hi,
                 std::uint64_t bucketSize, std::uint64_t count,
                 std::uint64_t sum, double sumSq, std::uint64_t min,
                 std::uint64_t max, std::uint64_t underflow,
                 std::uint64_t overflow,
                 const std::vector<std::uint64_t> &buckets);

    std::uint64_t lo() const { return lo_; }
    std::uint64_t hi() const { return hi_; }
    std::uint64_t bucketSize() const { return bucketSize_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    /** Smallest value mapping into bucket @p i. */
    std::uint64_t bucketLow(std::size_t i) const
    {
        return lo_ + i * bucketSize_;
    }

  private:
    std::uint64_t lo_ = 0;
    std::uint64_t hi_ = 0;
    std::uint64_t bucketSize_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    double sumSq_ = 0.0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::vector<std::uint64_t> buckets_;
};

/**
 * Power-of-two histogram for values of unknown magnitude (streak
 * lengths, invocation counts). Bucket 0 holds value 0; bucket k >= 1
 * holds [2^(k-1), 2^k). No configuration needed, merge always works.
 */
class Histogram
{
  public:
    /** Record @p count occurrences of @p value. */
    void sample(std::uint64_t value, std::uint64_t count = 1);

    /** Fold @p other into this histogram. */
    void merge(const Histogram &other);

    /** Drop all samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    double mean() const;
    std::uint64_t sampleMin() const { return count_ ? min_ : 0; }
    std::uint64_t sampleMax() const { return count_ ? max_ : 0; }

    /** Overwrite every field from journaled state; @p buckets beyond
     * numBuckets entries are ignored, missing ones are zero. */
    void restore(std::uint64_t count, std::uint64_t sum,
                 std::uint64_t min, std::uint64_t max,
                 const std::vector<std::uint64_t> &buckets);

    static constexpr std::size_t numBuckets = 65;
    const std::uint64_t *buckets() const { return buckets_; }
    /** Inclusive [low, high] value range of bucket @p i. */
    static std::uint64_t bucketLow(std::size_t i);
    static std::uint64_t bucketHigh(std::size_t i);

  private:
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    std::uint64_t buckets_[numBuckets] = {};
};

/**
 * An ordered set of named statistics rendered gem5-style. Scalars are
 * exact integers, formulas are derived doubles (rates, ratios),
 * distributions and histograms expand into ::samples/::mean/::<bucket>
 * rows. renderText() emits one stats.txt section; renderJson() the
 * equivalent JSON object for embedding in manifest.json.
 */
class StatSet
{
  public:
    void scalar(const std::string &name, std::uint64_t value,
                const std::string &desc = {});
    void formula(const std::string &name, double value,
                 const std::string &desc = {});
    void dist(const std::string &name, const Distribution &d,
              const std::string &desc = {});
    void hist(const std::string &name, const Histogram &h,
              const std::string &desc = {});

    /** gem5 stats.txt body (no Begin/End markers; see renderSection). */
    std::string renderText() const;

    /** One full "---------- Begin ... ----------" section; @p header
     * is appended to the Begin marker as a comment. */
    std::string renderSection(const std::string &header) const;

    /** Compact JSON object: scalars/formulas by name, distributions as
     * {samples,sum,mean,min,max,buckets:{label:count}}. */
    std::string renderJson() const;

    bool empty() const { return items_.empty(); }

  private:
    enum class Kind
    {
        Scalar,
        Formula,
        Dist,
        Hist
    };
    struct Item
    {
        Kind kind;
        std::string name;
        std::string desc;
        std::uint64_t scalar = 0;
        double formula = 0.0;
        Distribution dist;
        Histogram hist;
    };
    std::vector<Item> items_;
};

} // namespace axmemo

#endif // AXMEMO_OBS_STATS_HH
