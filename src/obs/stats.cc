#include "obs/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace axmemo {

Distribution::Distribution(std::uint64_t lo, std::uint64_t hi,
                           std::uint64_t bucketSize)
{
    init(lo, hi, bucketSize);
}

void
Distribution::init(std::uint64_t lo, std::uint64_t hi,
                   std::uint64_t bucketSize)
{
    lo_ = lo;
    hi_ = std::max(hi, lo);
    bucketSize_ = std::max<std::uint64_t>(bucketSize, 1);
    const std::uint64_t span = hi_ - lo_ + 1;
    buckets_.assign((span + bucketSize_ - 1) / bucketSize_, 0);
    reset();
}

void
Distribution::sample(std::uint64_t value, std::uint64_t count)
{
    if (!count)
        return;
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    count_ += count;
    sum_ += value * count;
    sumSq_ += static_cast<double>(value) * static_cast<double>(value) *
              static_cast<double>(count);
    if (value < lo_ || buckets_.empty()) {
        underflow_ += count;
    } else if (value > hi_) {
        overflow_ += count;
    } else {
        buckets_[(value - lo_) / bucketSize_] += count;
    }
}

void
Distribution::merge(const Distribution &other)
{
    if (!other.count_)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    sumSq_ += other.sumSq_;
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    const std::size_t n = std::min(buckets_.size(), other.buckets_.size());
    for (std::size_t i = 0; i < n; ++i)
        buckets_[i] += other.buckets_[i];
    // Geometry mismatch: anything beyond our last bucket is overflow.
    for (std::size_t i = n; i < other.buckets_.size(); ++i)
        overflow_ += other.buckets_[i];
}

void
Distribution::reset()
{
    count_ = sum_ = 0;
    sumSq_ = 0.0;
    min_ = max_ = 0;
    underflow_ = overflow_ = 0;
    std::fill(buckets_.begin(), buckets_.end(), 0);
}

double
Distribution::mean() const
{
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
}

void
Distribution::restore(std::uint64_t lo, std::uint64_t hi,
                      std::uint64_t bucketSize, std::uint64_t count,
                      std::uint64_t sum, double sumSq,
                      std::uint64_t min, std::uint64_t max,
                      std::uint64_t underflow, std::uint64_t overflow,
                      const std::vector<std::uint64_t> &buckets)
{
    // Direct assignment, not init(): a never-configured distribution
    // (bucketSize 0, no buckets) must restore to exactly that state,
    // and init() would invent a 1-wide bucket for it.
    lo_ = lo;
    hi_ = hi;
    bucketSize_ = bucketSize;
    count_ = count;
    sum_ = sum;
    sumSq_ = sumSq;
    min_ = min;
    max_ = max;
    underflow_ = underflow;
    overflow_ = overflow;
    buckets_ = buckets;
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double m = mean();
    const double var = sumSq_ / n - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

namespace {

std::size_t
log2Bucket(std::uint64_t value)
{
    if (value == 0)
        return 0;
    std::size_t k = 1;
    while (value > 1) {
        value >>= 1;
        ++k;
    }
    return k;
}

} // namespace

void
Histogram::sample(std::uint64_t value, std::uint64_t count)
{
    if (!count)
        return;
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    count_ += count;
    sum_ += value * count;
    buckets_[log2Bucket(value)] += count;
}

void
Histogram::merge(const Histogram &other)
{
    if (!other.count_)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < numBuckets; ++i)
        buckets_[i] += other.buckets_[i];
}

void
Histogram::reset()
{
    count_ = sum_ = 0;
    min_ = max_ = 0;
    std::fill(buckets_, buckets_ + numBuckets, 0);
}

void
Histogram::restore(std::uint64_t count, std::uint64_t sum,
                   std::uint64_t min, std::uint64_t max,
                   const std::vector<std::uint64_t> &buckets)
{
    reset();
    count_ = count;
    sum_ = sum;
    min_ = min;
    max_ = max;
    const std::size_t n =
        std::min<std::size_t>(numBuckets, buckets.size());
    for (std::size_t i = 0; i < n; ++i)
        buckets_[i] = buckets[i];
}

double
Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
}

std::uint64_t
Histogram::bucketLow(std::size_t i)
{
    if (i == 0)
        return 0;
    return std::uint64_t{1} << (i - 1);
}

std::uint64_t
Histogram::bucketHigh(std::size_t i)
{
    if (i == 0)
        return 0;
    if (i >= 64)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
}

void
StatSet::scalar(const std::string &name, std::uint64_t value,
                const std::string &desc)
{
    Item item;
    item.kind = Kind::Scalar;
    item.name = name;
    item.desc = desc;
    item.scalar = value;
    items_.push_back(std::move(item));
}

void
StatSet::formula(const std::string &name, double value,
                 const std::string &desc)
{
    Item item;
    item.kind = Kind::Formula;
    item.name = name;
    item.desc = desc;
    item.formula = value;
    items_.push_back(std::move(item));
}

void
StatSet::dist(const std::string &name, const Distribution &d,
              const std::string &desc)
{
    Item item;
    item.kind = Kind::Dist;
    item.name = name;
    item.desc = desc;
    item.dist = d;
    items_.push_back(std::move(item));
}

void
StatSet::hist(const std::string &name, const Histogram &h,
              const std::string &desc)
{
    Item item;
    item.kind = Kind::Hist;
    item.name = name;
    item.desc = desc;
    item.hist = h;
    items_.push_back(std::move(item));
}

namespace {

/** One gem5 stats.txt row: name, value column, optional "# desc". */
void
row(std::string &out, const std::string &name, const std::string &value,
    const std::string &desc)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%-44s %16s", name.c_str(),
                  value.c_str());
    out += buf;
    if (!desc.empty()) {
        out += " # ";
        out += desc;
    }
    out += '\n';
}

std::string
u64Str(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
dblStr(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

std::string
jsonDbl(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::string
StatSet::renderText() const
{
    std::string out;
    for (const Item &item : items_) {
        switch (item.kind) {
          case Kind::Scalar:
            row(out, item.name, u64Str(item.scalar), item.desc);
            break;
          case Kind::Formula:
            row(out, item.name, dblStr(item.formula), item.desc);
            break;
          case Kind::Dist: {
            const Distribution &d = item.dist;
            row(out, item.name + "::samples", u64Str(d.count()), item.desc);
            row(out, item.name + "::sum", u64Str(d.sum()), {});
            row(out, item.name + "::mean", dblStr(d.mean()), {});
            row(out, item.name + "::stdev", dblStr(d.stddev()), {});
            row(out, item.name + "::min_value", u64Str(d.sampleMin()), {});
            row(out, item.name + "::max_value", u64Str(d.sampleMax()), {});
            if (d.underflow())
                row(out, item.name + "::underflows", u64Str(d.underflow()),
                    {});
            for (std::size_t i = 0; i < d.buckets().size(); ++i) {
                if (!d.buckets()[i])
                    continue;
                const std::uint64_t blo = d.bucketLow(i);
                std::string label = u64Str(blo);
                if (d.bucketSize() > 1) {
                    label += '-';
                    label += u64Str(std::min(blo + d.bucketSize() - 1,
                                             d.hi()));
                }
                row(out, item.name + "::" + label, u64Str(d.buckets()[i]),
                    {});
            }
            if (d.overflow())
                row(out, item.name + "::overflows", u64Str(d.overflow()),
                    {});
            row(out, item.name + "::total", u64Str(d.count()), {});
            break;
          }
          case Kind::Hist: {
            const Histogram &h = item.hist;
            row(out, item.name + "::samples", u64Str(h.count()), item.desc);
            row(out, item.name + "::sum", u64Str(h.sum()), {});
            row(out, item.name + "::mean", dblStr(h.mean()), {});
            row(out, item.name + "::min_value", u64Str(h.sampleMin()), {});
            row(out, item.name + "::max_value", u64Str(h.sampleMax()), {});
            for (std::size_t i = 0; i < Histogram::numBuckets; ++i) {
                if (!h.buckets()[i])
                    continue;
                std::string label = u64Str(Histogram::bucketLow(i));
                if (i > 1) {
                    label += '-';
                    label += u64Str(Histogram::bucketHigh(i));
                }
                row(out, item.name + "::" + label, u64Str(h.buckets()[i]),
                    {});
            }
            row(out, item.name + "::total", u64Str(h.count()), {});
            break;
          }
        }
    }
    return out;
}

std::string
StatSet::renderSection(const std::string &header) const
{
    std::string out;
    out += "---------- Begin Simulation Statistics ----------";
    if (!header.empty()) {
        out += " # ";
        out += header;
    }
    out += '\n';
    out += renderText();
    out += "---------- End Simulation Statistics   ----------\n";
    return out;
}

namespace {

void
jsonKey(std::string &out, bool &first, const std::string &name)
{
    if (!first)
        out += ',';
    first = false;
    out += '"';
    out += name; // stat names are identifier-like; no escaping needed
    out += "\":";
}

template <typename Buckets>
void
jsonDistBody(std::string &out, std::uint64_t samples, std::uint64_t sum,
             double mean, std::uint64_t mn, std::uint64_t mx,
             const Buckets &labelled)
{
    out += "{\"samples\":" + u64Str(samples);
    out += ",\"sum\":" + u64Str(sum);
    out += ",\"mean\":" + jsonDbl(mean);
    out += ",\"min\":" + u64Str(mn);
    out += ",\"max\":" + u64Str(mx);
    out += ",\"buckets\":{";
    bool first = true;
    for (const auto &kv : labelled) {
        jsonKey(out, first, kv.first);
        out += u64Str(kv.second);
    }
    out += "}}";
}

} // namespace

std::string
StatSet::renderJson() const
{
    std::string out = "{";
    bool first = true;
    for (const Item &item : items_) {
        jsonKey(out, first, item.name);
        switch (item.kind) {
          case Kind::Scalar:
            out += u64Str(item.scalar);
            break;
          case Kind::Formula:
            out += jsonDbl(item.formula);
            break;
          case Kind::Dist: {
            const Distribution &d = item.dist;
            std::vector<std::pair<std::string, std::uint64_t>> labelled;
            if (d.underflow())
                labelled.emplace_back("underflow", d.underflow());
            for (std::size_t i = 0; i < d.buckets().size(); ++i) {
                if (d.buckets()[i])
                    labelled.emplace_back(u64Str(d.bucketLow(i)),
                                          d.buckets()[i]);
            }
            if (d.overflow())
                labelled.emplace_back("overflow", d.overflow());
            jsonDistBody(out, d.count(), d.sum(), d.mean(), d.sampleMin(),
                         d.sampleMax(), labelled);
            break;
          }
          case Kind::Hist: {
            const Histogram &h = item.hist;
            std::vector<std::pair<std::string, std::uint64_t>> labelled;
            for (std::size_t i = 0; i < Histogram::numBuckets; ++i) {
                if (h.buckets()[i])
                    labelled.emplace_back(u64Str(Histogram::bucketLow(i)),
                                          h.buckets()[i]);
            }
            jsonDistBody(out, h.count(), h.sum(), h.mean(), h.sampleMin(),
                         h.sampleMax(), labelled);
            break;
          }
        }
    }
    out += '}';
    return out;
}

} // namespace axmemo
