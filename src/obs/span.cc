#include "obs/span.hh"

#include "obs/trace.hh"

#include <chrono>
#include <cstring>
#include <mutex>
#include <new>

namespace axmemo {
namespace telemetry {
namespace detail {

std::atomic<bool> recording{false};

namespace {

/**
 * Single-producer/single-consumer event ring. The owning thread is the
 * only writer (emit), the telemetry collector the only reader (drain);
 * a release store on writeIdx publishes the slot, an acquire load on
 * the reader side observes it. Full ring → the event is counted in
 * `dropped` and discarded, never blocking the simulator.
 *
 * Buffers are allocated on a thread's first enabled emit, registered
 * in a global list, and deliberately never freed: sweep worker threads
 * exit before the end-of-run drain, and the collector must still be
 * able to read their tails.
 */
struct SpanBuffer
{
    static constexpr std::size_t capacity = std::size_t{1} << 14;

    SpanEvent slots[capacity];
    std::atomic<std::uint64_t> writeIdx{0};
    std::atomic<std::uint64_t> readIdx{0};
    std::atomic<std::uint64_t> dropped{0};

    void
    push(const SpanEvent &event)
    {
        const std::uint64_t write = writeIdx.load(std::memory_order_relaxed);
        const std::uint64_t read = readIdx.load(std::memory_order_acquire);
        if (write - read >= capacity) {
            dropped.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        slots[write % capacity] = event;
        writeIdx.store(write + 1, std::memory_order_release);
    }
};

std::mutex &
registryMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::vector<SpanBuffer *> &
registry()
{
    static std::vector<SpanBuffer *> buffers;
    return buffers;
}

thread_local SpanBuffer *tlsBuffer = nullptr;
thread_local std::uint64_t tlsCurrentSpan = 0;

std::atomic<std::uint64_t> nextSpanId{1};

SpanBuffer &
threadBuffer()
{
    if (!tlsBuffer) {
        auto *buffer = new SpanBuffer;
        std::lock_guard<std::mutex> lock(registryMutex());
        registry().push_back(buffer);
        tlsBuffer = buffer;
    }
    return *tlsBuffer;
}

} // namespace

std::uint64_t
currentSpan()
{
    return tlsCurrentSpan;
}

void
emit(SpanEvent event)
{
    const char *label = obs::threadLabel();
    std::size_t i = 0;
    for (; label[i] && i + 1 < sizeof(event.thread); ++i)
        event.thread[i] = label[i];
    event.thread[i] = '\0';
    threadBuffer().push(event);
}

std::uint64_t
beginSpan()
{
    const std::uint64_t previous = tlsCurrentSpan;
    tlsCurrentSpan = nextSpanId.fetch_add(1, std::memory_order_relaxed);
    return previous;
}

void
endSpan(std::uint64_t previousParent)
{
    tlsCurrentSpan = previousParent;
}

std::uint64_t
nowUs()
{
    using namespace std::chrono;
    // The epoch is the first call, made at static-init time below, so
    // every thread's timestamps share one zero point.
    static const steady_clock::time_point epoch = steady_clock::now();
    return static_cast<std::uint64_t>(
        duration_cast<microseconds>(steady_clock::now() - epoch).count());
}

namespace {
// Pin the epoch before main() so timestamps start near zero even when
// telemetry is armed late from the CLI.
const std::uint64_t epochAnchor = nowUs();
} // namespace

std::uint64_t
drainAll(std::vector<SpanEvent> &out)
{
    (void)epochAnchor;
    std::lock_guard<std::mutex> lock(registryMutex());
    std::uint64_t droppedTotal = 0;
    for (SpanBuffer *buffer : registry()) {
        std::uint64_t read = buffer->readIdx.load(std::memory_order_relaxed);
        const std::uint64_t write =
            buffer->writeIdx.load(std::memory_order_acquire);
        for (; read != write; ++read)
            out.push_back(buffer->slots[read % SpanBuffer::capacity]);
        buffer->readIdx.store(read, std::memory_order_release);
        droppedTotal += buffer->dropped.exchange(0,
                                                 std::memory_order_relaxed);
    }
    return droppedTotal;
}

} // namespace detail

void
setEnabled(bool on)
{
#ifdef AXMEMO_NO_TRACE
    (void)on;
#else
    detail::recording.store(on, std::memory_order_relaxed);
#endif
}

namespace {

void
copyBounded(char *to, std::size_t cap, const char *from)
{
    std::size_t i = 0;
    for (; from[i] && i + 1 < cap; ++i)
        to[i] = from[i];
    to[i] = '\0';
}

} // namespace

void
ScopedSpan::open(const char *category, const char *name)
{
    active_ = true;
    new (&event_) SpanEvent; // the union member starts uninitialized
    copyBounded(event_.category, sizeof(event_.category), category);
    copyBounded(event_.name, sizeof(event_.name), name);
    savedParent_ = detail::beginSpan();
    event_.id = detail::currentSpan();
    event_.parent = savedParent_;
    event_.startUs = detail::nowUs();
}

void
ScopedSpan::close()
{
    const std::uint64_t end = detail::nowUs();
    event_.durUs = end - event_.startUs;
    detail::endSpan(savedParent_);
    detail::emit(event_);
}

} // namespace telemetry
} // namespace axmemo
