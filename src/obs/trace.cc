#include "obs/trace.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace axmemo {

namespace {

/** One mutex for every sink writer: log lines and trace lines never
 * interleave mid-line, even when both target stderr. */
std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** Trace destination; stderr unless openTraceFile() succeeded. */
FILE *traceFile = nullptr;

thread_local char tlsLabel[16] = "";

} // namespace

namespace trace {

namespace detail {
std::atomic<std::uint32_t> flagWord{0};
thread_local std::uint64_t tlsCycle = 0;
} // namespace detail

const char *
flagName(Flag flag)
{
    switch (flag) {
      case Flag::Exec: return "Exec";
      case Flag::Memo: return "Memo";
      case Flag::Cache: return "Cache";
      case Flag::Dram: return "Dram";
      case Flag::Lut: return "Lut";
      case Flag::Sweep: return "Sweep";
      case Flag::Prof: return "Prof";
      case Flag::Host: return "Host";
      case Flag::NumFlags: break;
    }
    return "???";
}

void
setFlag(Flag flag, bool on)
{
    const std::uint32_t bit = 1u << static_cast<unsigned>(flag);
    if (on)
        detail::flagWord.fetch_or(bit, std::memory_order_relaxed);
    else
        detail::flagWord.fetch_and(~bit, std::memory_order_relaxed);
}

void
clearAllFlags()
{
    detail::flagWord.store(0, std::memory_order_relaxed);
}

namespace {

bool
equalsIgnoreCase(const std::string &a, const char *b)
{
    if (a.size() != std::strlen(b))
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

} // namespace

bool
enableFlags(const std::string &spec, std::string *error)
{
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string name = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        if (equalsIgnoreCase(name, "all")) {
            for (unsigned i = 0; i < numFlags; ++i)
                setFlag(static_cast<Flag>(i), true);
            continue;
        }
        bool found = false;
        for (unsigned i = 0; i < numFlags; ++i) {
            if (equalsIgnoreCase(name, flagName(static_cast<Flag>(i)))) {
                setFlag(static_cast<Flag>(i), true);
                found = true;
                break;
            }
        }
        if (!found) {
            if (error) {
                *error = "unknown debug flag '" + name +
                         "' (known: Exec, Memo, Cache, Dram, Lut, "
                         "Sweep, Prof, Host, All)";
            }
            return false;
        }
    }
    return true;
}

void
initFromEnv()
{
    const char *env = std::getenv("AXMEMO_DEBUG");
    if (!env || !*env)
        return;
    std::string error;
    if (!enableFlags(env, &error))
        std::fprintf(stderr, "AXMEMO_DEBUG: %s\n", error.c_str());
}

void
print(Flag flag, const char *component, const std::string &message)
{
    (void)flag;
    char prefix[48];
    const char *label = tlsLabel;
    if (label[0]) {
        std::snprintf(prefix, sizeof(prefix), "%10llu: [%s] %s: ",
                      static_cast<unsigned long long>(detail::tlsCycle),
                      label, component);
    } else {
        std::snprintf(prefix, sizeof(prefix), "%10llu: %s: ",
                      static_cast<unsigned long long>(detail::tlsCycle),
                      component);
    }
    std::string line;
    line.reserve(std::strlen(prefix) + message.size() + 1);
    line += prefix;
    line += message;
    line += '\n';
    std::lock_guard<std::mutex> lock(sinkMutex());
    FILE *to = traceFile ? traceFile : stderr;
    std::fwrite(line.data(), 1, line.size(), to);
}

bool
openTraceFile(const std::string &path)
{
    FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    std::lock_guard<std::mutex> lock(sinkMutex());
    if (traceFile)
        std::fclose(traceFile);
    traceFile = file;
    return true;
}

void
closeTraceFile()
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    if (traceFile) {
        std::fclose(traceFile);
        traceFile = nullptr;
    }
}

} // namespace trace

namespace obs {

void
logLine(FILE *to, const std::string &line)
{
    std::string out;
    const char *label = tlsLabel;
    out.reserve(line.size() + 8);
    if (label[0]) {
        out += '[';
        out += label;
        out += "] ";
    }
    out += line;
    if (out.empty() || out.back() != '\n')
        out += '\n';
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fwrite(out.data(), 1, out.size(), to);
    std::fflush(to);
}

void
forwardLine(FILE *to, const std::string &line)
{
    std::string out = line;
    if (out.empty() || out.back() != '\n')
        out += '\n';
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fwrite(out.data(), 1, out.size(), to);
    std::fflush(to);
}

void
setThreadLabel(unsigned workerIndex)
{
    std::snprintf(tlsLabel, sizeof(tlsLabel), "w%u", workerIndex);
}

void
clearThreadLabel()
{
    tlsLabel[0] = '\0';
}

const char *
threadLabel()
{
    return tlsLabel;
}

} // namespace obs

} // namespace axmemo
