/**
 * @file
 * gem5-style named debug flags and the process-wide trace/log sink.
 *
 * Tracing is a debugging instrument, not a reporting channel: every trace
 * point in the simulator is guarded by Trace-flag checks that cost one
 * predictable branch on a cached word when tracing is disabled, and the
 * whole subsystem compiles away under -DAXMEMO_NO_TRACE. Flags are
 * selected at runtime (`axmemo --debug-flags=Exec,Memo` or the
 * AXMEMO_DEBUG environment variable) and every emitted line carries a
 * gem5-like `cycle: component: message` prefix, so serial traces are
 * byte-reproducible and diffable across runs.
 *
 * The sink machinery below the flags is shared with common/log.cc: warn,
 * inform and trace lines all funnel through one mutex-guarded writer, so
 * concurrent sweep workers never interleave partial lines, and worker
 * threads (common/thread_pool) tag their lines with a `[w<n>]` prefix.
 */

#ifndef AXMEMO_OBS_TRACE_HH
#define AXMEMO_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

namespace axmemo {

namespace detail {

/** Fold a pack of streamable values into one string (shared with the
 * axm_warn/axm_panic macros in common/log.hh). */
template <typename... Args>
std::string
obsConcat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

namespace trace {

/** Every named debug flag (gem5's debug-flag registry, sized to us). */
enum class Flag : unsigned
{
    Exec,  ///< committed instruction stream (cycle, pc, disassembly)
    Memo,  ///< memoization unit: feed/lookup/update/invalidate
    Cache, ///< memory hierarchy: per-access path and latency
    Dram,  ///< DRAM row hits/misses
    Lut,   ///< lookup-table internals: insert/evict/invalidate
    Sweep, ///< sweep engine: phases, job lifecycle, cache reuse
    Prof,  ///< phase-timer begin/end events
    Host,  ///< host-side execution paths (dispatch mode, CRC kernel)
    NumFlags
};

constexpr unsigned numFlags = static_cast<unsigned>(Flag::NumFlags);

/** @return the canonical name of @p flag ("Exec", "Memo", ...). */
const char *flagName(Flag flag);

namespace detail {
/** Bitmask of enabled flags; relaxed loads keep the guard one test. */
extern std::atomic<std::uint32_t> flagWord;
/** Current simulated cycle of this thread (trace-line prefix). */
extern thread_local std::uint64_t tlsCycle;
} // namespace detail

#ifdef AXMEMO_NO_TRACE

/** Compile-time kill switch: guards fold to constant false and every
 * trace point dead-code-eliminates, message formatting included. */
constexpr bool enabled(Flag) { return false; }
constexpr bool anyEnabled() { return false; }

#else

/** @return true iff @p flag is enabled. One relaxed load + bit test. */
inline bool
enabled(Flag flag)
{
    return detail::flagWord.load(std::memory_order_relaxed) &
           (1u << static_cast<unsigned>(flag));
}

/** @return true iff any flag is enabled (hoistable hot-loop guard). */
inline bool
anyEnabled()
{
    return detail::flagWord.load(std::memory_order_relaxed) != 0;
}

#endif // AXMEMO_NO_TRACE

/** Enable or disable one flag. */
void setFlag(Flag flag, bool on);

/** Disable every flag. */
void clearAllFlags();

/**
 * Parse a comma-separated flag list ("Exec,Memo", case-insensitive,
 * "All" enables everything) and enable the named flags on top of the
 * current set. @return false (with @p error filled) on unknown names.
 */
bool enableFlags(const std::string &spec, std::string *error = nullptr);

/** Enable flags named in $AXMEMO_DEBUG, if set (malformed specs warn
 * on stderr and are ignored). Safe to call more than once. */
void initFromEnv();

/**
 * Set the simulated cycle stamped on subsequent trace lines from this
 * thread. Components without their own clock (caches, LUTs, DRAM)
 * inherit the cycle their caller set.
 */
inline void
setCycle(std::uint64_t cycle)
{
#ifndef AXMEMO_NO_TRACE
    detail::tlsCycle = cycle;
#else
    (void)cycle;
#endif
}

/** The cycle most recently set on this thread. */
inline std::uint64_t
currentCycle()
{
#ifndef AXMEMO_NO_TRACE
    return detail::tlsCycle;
#else
    return 0;
#endif
}

/**
 * Emit one trace line: "<cycle>: [label] <component>: <message>\n" to
 * the trace sink, atomically with respect to every other sink writer.
 * Callers must have checked enabled() — use the AXM_TRACE macro.
 */
void print(Flag flag, const char *component, const std::string &message);

/**
 * Redirect trace output to @p path (append is false: truncate).
 * @return false if the file cannot be opened (sink unchanged).
 */
bool openTraceFile(const std::string &path);

/** Route trace output back to stderr, closing any open trace file. */
void closeTraceFile();

/** Stream-manipulator for hexadecimal values in trace messages. */
struct Hex
{
    std::uint64_t value;
};

inline std::ostream &
operator<<(std::ostream &os, Hex h)
{
    const auto flags = os.flags();
    os << "0x" << std::hex << h.value;
    os.flags(flags);
    return os;
}

inline Hex hex(std::uint64_t value) { return Hex{value}; }

} // namespace trace

namespace obs {

/**
 * Mutex-guarded line writer shared by warn/inform (common/log.cc) and
 * the trace sink: one fwrite per line, so concurrent writers cannot
 * produce torn output. Lines without a trailing newline get one.
 */
void logLine(FILE *to, const std::string &line);

/**
 * Write one already-formatted line through the sink without adding
 * this thread's label. Used to relay stderr lines captured from
 * --isolate child processes: the child formatted (and labelled) the
 * line itself; the parent only guarantees it lands untorn.
 */
void forwardLine(FILE *to, const std::string &line);

/** Tag this thread's log and trace lines with "[w<index>] " (sweep
 * workers call this once at startup). */
void setThreadLabel(unsigned workerIndex);

/** Remove this thread's label (main-thread output stays unprefixed). */
void clearThreadLabel();

/** The current thread's label ("" when unset). */
const char *threadLabel();

} // namespace obs

} // namespace axmemo

/**
 * Guarded trace point: evaluates its message arguments only when
 * @p flag is enabled; compiles to nothing under AXMEMO_NO_TRACE. The
 * emitted cycle is the thread's current cycle (trace::setCycle).
 *
 *   AXM_TRACE(Memo, "memo", "lookup lut", id, " hash=", trace::hex(h));
 */
#define AXM_TRACE(flag, component, ...)                                      \
    do {                                                                     \
        if (::axmemo::trace::enabled(::axmemo::trace::Flag::flag))           \
            ::axmemo::trace::print(                                          \
                ::axmemo::trace::Flag::flag, (component),                    \
                ::axmemo::detail::obsConcat(__VA_ARGS__));                   \
    } while (0)

#endif // AXMEMO_OBS_TRACE_HH
