/**
 * @file
 * Scoped phase timers aggregated per phase and per worker thread.
 *
 * `AXM_PROF("sweep.prepare")` opens a RAII scope whose wall-clock time
 * is added to the process-wide Profiler under the key
 * (phase, thread label). The driver reads the aggregate to embed phase
 * timings in manifest.json and to serve `axmemo profile`; the perf
 * harness uses the same timers for its per-section wall-clock. Timers
 * are always on — one steady_clock read per scope boundary plus a
 * mutex-guarded map update at close, which is noise next to the phases
 * they bracket (whole sweeps, artifact stages) — so profile data is
 * available without any flag. The Prof debug flag additionally emits
 * begin/end trace lines for phase-ordering questions.
 */

#ifndef AXMEMO_OBS_PROFILER_HH
#define AXMEMO_OBS_PROFILER_HH

#include "obs/span.hh"

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace axmemo {
namespace obs {

/** One aggregated (phase, thread) timing cell. */
struct PhaseTiming
{
    std::string phase;   ///< phase name as given to AXM_PROF
    std::string thread;  ///< worker label ("" = main thread)
    std::uint64_t calls; ///< number of closed scopes
    double seconds;      ///< total wall-clock across those scopes
};

/**
 * Process-wide phase-timer aggregate. All methods are thread-safe;
 * record() is called from every closing ScopedPhase.
 */
class Profiler
{
  public:
    static Profiler &instance();

    /** Add one closed scope of @p seconds to (phase, current thread). */
    void record(const std::string &phase, double seconds);

    /** Snapshot every cell, ordered by first-recorded phase then
     * thread label. */
    std::vector<PhaseTiming> snapshot() const;

    /** Cells merged across threads: one row per phase, ordered by
     * first-recorded phase. */
    std::vector<PhaseTiming> snapshotByPhase() const;

    /** Drop all recorded timings (per-run isolation in the driver). */
    void reset();

    /** Human-readable table (phase, calls, total, share of the longest
     * phase) — the `axmemo profile` report body. */
    std::string renderText() const;

    /** JSON object {phase: {"calls": n, "seconds": s, "threads":
     * {label: s}}} for manifest.json / BENCH_perf.json embedding. */
    std::string renderJson() const;

  private:
    Profiler() = default;
};

/**
 * RAII phase scope: measures construction-to-destruction wall clock and
 * records it into Profiler::instance(). Emits Prof-flag trace lines at
 * both edges when that flag is enabled, and doubles as a "phase"
 * timeline span, so every AXM_PROF point appears in --trace-timeline
 * output while `axmemo profile` keeps reading the same aggregate.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(const char *phase);
    ~ScopedPhase();

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    const char *phase_;
    telemetry::ScopedSpan span_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace obs
} // namespace axmemo

#define AXM_PROF_CONCAT2(a, b) a##b
#define AXM_PROF_CONCAT(a, b) AXM_PROF_CONCAT2(a, b)

/** Time the rest of the enclosing scope under @p phase. */
#define AXM_PROF(phase)                                                      \
    ::axmemo::obs::ScopedPhase AXM_PROF_CONCAT(axmProfScope_,                \
                                               __LINE__)(phase)

#endif // AXMEMO_OBS_PROFILER_HH
