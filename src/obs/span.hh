/**
 * @file
 * Hierarchical run-timeline spans (DESIGN.md §13).
 *
 * The trace flags (obs/trace.hh) answer "what happened, event by
 * event"; the phase profiler (obs/profiler.hh) answers "where did the
 * wall clock go, in aggregate". Spans answer the question between the
 * two: *when* did each sweep round, job and pipeline phase run, on
 * which worker thread, nested under what — the timeline view that
 * Perfetto / chrome://tracing renders, and the per-worker lane data
 * `axmemo merge` stitches across a shard fleet.
 *
 * A span is an RAII scope (`AXM_SPAN("job", workload)`): construction
 * stamps a start time, allocates a span id, and pushes itself as the
 * thread's current parent; destruction pops and appends one fixed-size
 * SpanEvent record to the calling thread's ring buffer. The buffers are
 * single-producer/single-consumer: the owning thread appends with
 * release stores, the telemetry collector (obs/telemetry.hh) drains
 * with acquire loads, no lock on the hot path. When telemetry is
 * disabled — the default — a span costs one relaxed atomic load and a
 * predictable branch, the same budget as a disabled trace point, and
 * under -DAXMEMO_NO_TRACE the whole thing compiles away.
 */

#ifndef AXMEMO_OBS_SPAN_HH
#define AXMEMO_OBS_SPAN_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace axmemo {
namespace telemetry {

/** One drained timeline record (a closed span or a counter sample). */
struct SpanEvent
{
    enum class Kind : std::uint8_t
    {
        Span,    ///< closed AXM_SPAN scope ("X" complete event)
        Counter, ///< counter(name, value) sample ("C" event)
    };

    Kind kind = Kind::Span;
    char category[16] = "";  ///< coarse lane: "phase", "job", "shard"...
    char name[48] = "";      ///< span/counter name (truncated to fit)
    char thread[16] = "";    ///< obs::threadLabel() at emit ("" = main)
    std::uint64_t id = 0;     ///< span id, unique per process
    std::uint64_t parent = 0; ///< enclosing span id (0 = root)
    std::uint64_t startUs = 0; ///< µs since the telemetry epoch
    std::uint64_t durUs = 0;   ///< span wall-clock µs (counters: 0)
    double value = 0.0;        ///< counter value (spans: 0)
};

namespace detail {
/** Span recording armed? One relaxed load guards every span point. */
extern std::atomic<bool> recording;
/** The calling thread's innermost open span id (parent of new spans). */
std::uint64_t currentSpan();
/** Stamp the thread label and append one event to the calling
 * thread's ring buffer. */
void emit(SpanEvent event);
/** Enter/leave a span scope on this thread's parent stack. */
std::uint64_t beginSpan();
void endSpan(std::uint64_t previousParent);
/** µs since the process-wide telemetry epoch (steady clock). */
std::uint64_t nowUs();
/**
 * Drain every thread's ring buffer into @p out (collector side of the
 * SPSC rings; obs/telemetry.hh is the only intended caller).
 * @return events dropped to ring overflow since the last drain.
 */
std::uint64_t drainAll(std::vector<SpanEvent> &out);
} // namespace detail

#ifdef AXMEMO_NO_TRACE

/** Compile-time kill switch shared with the trace layer: span scopes
 * fold to empty objects and every span point dead-code-eliminates. */
constexpr bool enabled() { return false; }

#else

/** @return true iff span recording is armed (--trace-timeline). */
inline bool
enabled()
{
    return detail::recording.load(std::memory_order_relaxed);
}

#endif // AXMEMO_NO_TRACE

/** Arm or disarm span recording process-wide (obs/telemetry.hh owns
 * the drained data; this is a no-op under AXMEMO_NO_TRACE). */
void setEnabled(bool on);

/**
 * RAII timeline span. Inactive (one relaxed load, nothing else) unless
 * telemetry is enabled at construction; active spans nest through a
 * thread-local parent stack, so the exported timeline reproduces the
 * sweep → job → phase hierarchy.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *category, const char *name)
    {
        if (enabled())
            open(category, name);
    }

    ScopedSpan(const char *category, const std::string &name)
    {
        if (enabled())
            open(category, name.c_str());
    }

    ~ScopedSpan()
    {
        if (active_)
            close();
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    void open(const char *category, const char *name);
    void close();

    bool active_ = false;
    std::uint64_t savedParent_ = 0;
    /** Placement-constructed by open() only: value-initializing the
     * ~150-byte event on every disabled span would cost ~10ns and blow
     * the trace-guard budget. Trivially destructible, so the inactive
     * path never touches it. */
    union
    {
        SpanEvent event_;
    };
};

/**
 * Record one counter sample (rendered as a Perfetto counter track).
 * Cheap no-op when telemetry is disabled; use for occupancy/backlog
 * style values worth seeing against the span timeline.
 */
inline void
counter(const char *name, double value)
{
    if (!enabled())
        return;
    SpanEvent event;
    event.kind = SpanEvent::Kind::Counter;
    std::size_t i = 0;
    for (; name[i] && i + 1 < sizeof(event.name); ++i)
        event.name[i] = name[i];
    event.name[i] = '\0';
    event.startUs = detail::nowUs();
    event.parent = detail::currentSpan();
    event.value = value;
    detail::emit(event);
}

} // namespace telemetry
} // namespace axmemo

#define AXM_SPAN_CONCAT2(a, b) a##b
#define AXM_SPAN_CONCAT(a, b) AXM_SPAN_CONCAT2(a, b)

/** Open a timeline span covering the rest of the enclosing scope. */
#define AXM_SPAN(category, name)                                             \
    ::axmemo::telemetry::ScopedSpan AXM_SPAN_CONCAT(                         \
        axmSpanScope_, __LINE__)((category), (name))

#endif // AXMEMO_OBS_SPAN_HH
