/**
 * @file
 * Telemetry collection: timeline export and per-worker metrics
 * snapshots (DESIGN.md §13).
 *
 * Two consumers sit on top of the span rings (obs/span.hh):
 *
 *  - The **timeline exporter** drains every thread's ring into a
 *    process-wide store and renders it as Chrome-trace / Perfetto JSON
 *    (`{"traceEvents":[...],"displayTimeUnit":"ms"}`): one process
 *    lane per worker process (pid + process_name metadata), one thread
 *    track per sweep worker, "X" complete events for spans and "C"
 *    events for counters. `axmemo run --trace-timeline <file>` writes
 *    one file per process; `axmemo merge` stitches the per-worker
 *    files into a single fleet timeline (src/core/fleet_status.cc).
 *
 *  - The **metrics snapshotter** turns a handful of always-on relaxed
 *    counters (jobs done, macro-instructions, memo hits, LUT
 *    occupancy) into periodic JSONL snapshots
 *    (`<shard-dir>/metrics.<worker>.jsonl`), appended one whole line
 *    at a time on the shard-lease heartbeat cadence so `axmemo status`
 *    can read fleet throughput without touching the workers.
 *
 * Like the rest of obs, this layer depends on nothing outside
 * src/obs and the C++ standard library.
 */

#ifndef AXMEMO_OBS_TELEMETRY_HH
#define AXMEMO_OBS_TELEMETRY_HH

#include "obs/span.hh"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace axmemo {
namespace telemetry {

/** Exact first/last bytes of every timeline file. The merge stitcher
 * relies on these to splice per-worker traceEvents arrays textually. */
constexpr char timelinePrefix[] = "{\"traceEvents\":[\n";
constexpr char timelineSuffix[] = "\n],\"displayTimeUnit\":\"ms\"}\n";

/** Drain every span ring into the process-wide event store. Cheap when
 * nothing new was recorded; called by renderTimeline and heartbeat. */
void collect();

/** Copy of the collected event store (drains first). Test hook. */
std::vector<SpanEvent> collectedEvents();

/** Events lost to ring overflow since process start (drains first). */
std::uint64_t droppedEvents();

/**
 * Render the collected spans as a complete Chrome-trace JSON document.
 * @p processLabel names this process's lane in the merged view (the
 * worker id for shard workers, the artifact/run name otherwise).
 */
std::string renderTimeline(const std::string &processLabel);

/**
 * Atomically write renderTimeline() output to @p path (temp file +
 * rename, same crash-safety contract as the report writers).
 * @return false with @p error filled on I/O failure.
 */
bool writeTimeline(const std::string &path, const std::string &processLabel,
                   std::string *error = nullptr);

/**
 * Always-on run counters feeding the metrics snapshots. Relaxed
 * atomic adds at job granularity — never on the instruction path —
 * so they stay on even when span recording is off.
 */
struct MetricsCounters
{
    std::atomic<std::uint64_t> jobsDone{0};
    std::atomic<std::uint64_t> jobsTotal{0};
    std::atomic<std::uint64_t> macroInsts{0};
    std::atomic<std::uint64_t> memoLookups{0};
    std::atomic<std::uint64_t> memoHits{0};
    /** Occupied L2 LUT lines summed over completed jobs (mean per-job
     * occupancy = lutLinesSum / lutLinesSamples). */
    std::atomic<std::uint64_t> lutLinesSum{0};
    std::atomic<std::uint64_t> lutLinesSamples{0};
    /** detail::nowUs() of the most recent journal append (0 = never);
     * snapshot field journal_lag_s measures staleness from it. */
    std::atomic<std::uint64_t> lastJournalAppendUs{0};
};

/** The process-wide counter block. */
MetricsCounters &metrics();

/** Stamp "the journal was appended to just now" (feeds the snapshot
 * journal_lag_s field — a worker whose lag keeps growing is wedged). */
inline void
noteJournalAppend()
{
    metrics().lastJournalAppendUs.store(detail::nowUs(),
                                        std::memory_order_relaxed);
}

/**
 * Route heartbeat() snapshots to @p path, labelled @p workerId, and
 * write an immediate first snapshot so the file exists as soon as the
 * worker joins the fleet. Empty @p path disables snapshots.
 */
void setSnapshotPath(const std::string &path, const std::string &workerId);

/**
 * Append one metrics snapshot line to the configured JSONL file (one
 * whole line per fwrite in append mode, so concurrent readers never
 * see a torn record). No-op without a configured path. Called from
 * the shard-lease heartbeat thread.
 */
void heartbeat();

/** Render one snapshot line (no trailing newline). Exposed for tests;
 * heartbeat() appends exactly this plus '\n'. */
std::string renderSnapshotLine();

/** Reset collected events, drop counts, metrics and snapshot state —
 * test isolation only. */
void resetForTest();

} // namespace telemetry
} // namespace axmemo

#endif // AXMEMO_OBS_TELEMETRY_HH
