#include "sim/simulator.hh"

#include <cmath>

#include "common/bits.hh"
#include "common/expected.hh"
#include "common/log.hh"
#include "common/runtime_options.hh"
#include "crc/cpu_features.hh"
#include "isa/disasm.hh"
#include "obs/trace.hh"

/**
 * Computed-goto (labels-as-values) threaded dispatch is a GNU
 * extension; gate it on the compilers that provide it and leave
 * -DAXMEMO_FORCE_PORTABLE a single switch that strips every
 * non-standard fast path from the build (matching crc_accel.cc).
 */
#if (defined(__GNUC__) || defined(__clang__)) &&                             \
    !defined(AXMEMO_FORCE_PORTABLE)
#define AXMEMO_HAVE_COMPUTED_GOTO 1
#else
#define AXMEMO_HAVE_COMPUTED_GOTO 0
#endif

namespace axmemo {

namespace {

/** EnergyClass -> µop event id (NumEvents = "charge nothing"). */
constexpr Ev kUopEvent[] = {
    Ev::UopIntAlu,    // EnergyClass::IntAlu
    Ev::UopIntMul,    // EnergyClass::IntMul
    Ev::UopIntDiv,    // EnergyClass::IntDiv
    Ev::UopFpSimple,  // EnergyClass::FpSimple
    Ev::UopFpMul,     // EnergyClass::FpMul
    Ev::UopFpDiv,     // EnergyClass::FpDiv
    Ev::UopFpLong,    // EnergyClass::FpLong
    Ev::UopMem,       // EnergyClass::Mem
    Ev::UopBranch,    // EnergyClass::Branch
    Ev::UopMemo,      // EnergyClass::Memo
    Ev::NumEvents,    // EnergyClass::None
};

} // namespace

Simulator::Simulator(const Program &prog, SimMemory &mem,
                     const SimConfig &config)
    : prog_(prog), mem_(mem), config_(config),
      hierarchy_(config.hierarchy), memoUnit_(config.memo),
      predictor_(config.cpu.predictorEntries),
      intRegs_(prog.numIntRegs(), 0),
      floatRegs_(prog.numFloatRegs(), 0.0f)
{
    if (config_.cpu.numIntAlus == 0 ||
        config_.cpu.numIntAlus > kMaxIntAlus)
        axm_fatal("numIntAlus must be in [1, ", kMaxIntAlus, "]");
    numAlus_ = config_.cpu.numIntAlus;
    slotsLeft_ = config_.cpu.issueWidth;

    // Unified readiness scoreboard: int regs, then float regs, then a
    // write-only dummy slot that absorbs "no destination" writebacks.
    const auto nInt = static_cast<std::uint32_t>(prog.numIntRegs());
    dummyReadyIdx_ = nInt + prog.numFloatRegs();
    zeroReadyIdx_ = dummyReadyIdx_ + 1;
    regReady_.assign(zeroReadyIdx_ + 1, 0);
    const auto readyIndex = [&](RegId reg) -> std::uint32_t {
        if (reg == invalidReg)
            return dummyReadyIdx_;
        const auto idx = static_cast<std::uint32_t>(regIndex(reg));
        return isFloatReg(reg) ? nInt + idx : idx;
    };

    // Predecode: resolve everything about a static instruction that the
    // cycle loop would otherwise recompute per dynamic instance.
    decoded_.resize(prog.size());
    for (InstIndex i = 0; i < prog.size(); ++i) {
        const Inst &inst = prog.at(i);
        const OpTraits &traits = opTraits(inst.op);
        Decoded &d = decoded_[static_cast<std::size_t>(i)];
        const OperandInfo ops = operandsOf(inst);
        d.nsrc = ops.numSources;
        for (unsigned k = 0; k < 3; ++k)
            d.src[k] = k < ops.numSources
                           ? readyIndex(ops.sources[k])
                           : zeroReadyIdx_;
        d.dst = readyIndex(ops.dest);
        d.latency = traits.latency;
        d.uops = std::max(1u, traits.uops);
        d.fu = traits.fu;
        d.issueFu =
            traits.fu == FuClass::None ? FuClass::IntAlu : traits.fu;
        d.pipelined = traits.pipelined;
        d.memoCounted = inst.isMemoOp() && inst.op != Op::LdCrc;
        d.uopEv = kUopEvent[static_cast<std::size_t>(traits.energy)];
    }
    blocks_ = partitionBlocks(prog);
    // Mark fallthrough block boundaries: an instruction whose
    // straight-line successor leads a different block (a branch
    // target). Branches and Halt transfer control explicitly and
    // handle block entry themselves.
    for (InstIndex i = 0; i + 1 < prog.size(); ++i) {
        const Inst &inst = prog.at(i);
        if (inst.isBranch() || inst.op == Op::Halt)
            continue;
        const auto cur = static_cast<std::size_t>(i);
        decoded_[cur].enterNext =
            blocks_.blockOf[cur] != blocks_.blockOf[cur + 1];
    }
    if (config_.cpu.outOfOrder) {
        if (config_.cpu.robSize == 0)
            axm_fatal("out-of-order mode needs a nonzero ROB");
        retireRing_.assign(config_.cpu.robSize, 0);
    }
    // When the memoization unit's L2 LUT lives in LLC ways, carve those
    // ways out of the L2 cache (Section 3.3).
    if (config_.memoEnabled && config_.memo.l2LutBytes > 0) {
        const auto &l2cfg = config_.hierarchy.l2;
        const std::uint64_t wayBytes = l2cfg.sizeBytes / l2cfg.assoc;
        const unsigned ways = static_cast<unsigned>(
            (config_.memo.l2LutBytes + wayBytes - 1) / wayBytes);
        hierarchy_.reserveL2Ways(ways);
    }
}

std::uint64_t
Simulator::readInt(RegId reg) const
{
    if (reg == invalidReg || isFloatReg(reg))
        axm_panic("readInt of bad register");
    return intRegs_[regIndex(reg)];
}

float
Simulator::readFloat(RegId reg) const
{
    if (reg == invalidReg || !isFloatReg(reg))
        axm_panic("readFloat of bad register");
    return floatRegs_[regIndex(reg)];
}

void
Simulator::writeInt(RegId reg, std::uint64_t value)
{
    intRegs_[regIndex(reg)] = value;
}

void
Simulator::writeFloat(RegId reg, float value)
{
    floatRegs_[regIndex(reg)] = value;
}

std::uint64_t
Simulator::intReg(IReg reg) const
{
    return readInt(reg.id);
}

float
Simulator::floatReg(FReg reg) const
{
    return readFloat(reg.id);
}

Cycle
Simulator::issueUops(Cycle earliest, unsigned uops)
{
    if (frontCycle_ < earliest) {
        frontCycle_ = earliest;
        slotsLeft_ = config_.cpu.issueWidth;
    }
    const Cycle issued = frontCycle_;
    // Closed form of draining uops through issueWidth slots per cycle
    // (replaces the per-chunk loop the libm intrinsics used to spin in).
    if (uops >= slotsLeft_) {
        const unsigned width = config_.cpu.issueWidth;
        const unsigned rem = uops - slotsLeft_;
        frontCycle_ += 1 + rem / width;
        slotsLeft_ = width - rem % width;
    } else {
        slotsLeft_ -= uops;
    }
    return issued;
}

Cycle *
Simulator::fuSlot(FuClass fu)
{
    if (fu == FuClass::IntAlu) {
        // Pick the ALU instance that frees up first (lowest index wins
        // ties, matching the original scoreboard scan).
        std::size_t best = 0;
        for (std::size_t i = 1; i < numAlus_; ++i) {
            if (aluReady_[i] < aluReady_[best])
                best = i;
        }
        return &aluReady_[best];
    }
    return &unitReady_[static_cast<std::size_t>(fu)];
}

void
Simulator::raiseRunaway()
{
    raiseError(ErrorCode::Simulation, "simulator",
               prog_.name() + ": exceeded max macro instructions (" +
                   std::to_string(config_.maxMacroInsts) +
                   ") — runaway loop?");
}

Cycle
Simulator::runSwitch()
{
#define AXM_THREADED 0
#include "sim/interp_body.inc"
#undef AXM_THREADED
}

#if AXMEMO_HAVE_COMPUTED_GOTO
Cycle
Simulator::runThreaded()
{
#define AXM_THREADED 1
#include "sim/interp_body.inc"
#undef AXM_THREADED
}
#else
Cycle
Simulator::runThreaded()
{
    return runSwitch(); // threaded dispatch not compiled in
}
#endif

const SimStats &
Simulator::run()
{
    if (ran_)
        axm_panic("Simulator::run called twice");
    ran_ = true;
    if (config_.memoEnabled)
        memoUnit_.reset();

    // Resolve the host-side execution strategy. These knobs select
    // between bit-identical data paths (simulated state, stats, and
    // traces match across all settings), so they are run-time options,
    // not part of the experiment configuration.
    const RuntimeOptions opts = RuntimeOptions::global();
    batched_ = opts.blockBatch;
    nextPoll_ = 0x10000;
#if AXMEMO_HAVE_COMPUTED_GOTO
    const bool threaded = opts.dispatch != "switch";
#else
    const bool threaded = false;
    if (opts.dispatch == "threaded")
        axm_warn("simulator: threaded dispatch not compiled in "
                 "(portable build); falling back to switch");
#endif
    if (trace::enabled(trace::Flag::Host)) {
        trace::setCycle(0);
        AXM_TRACE(Host, "host",
                  "dispatch=", threaded ? "threaded" : "switch",
                  " batch=", batched_ ? "on" : "off",
                  " crc=", memoUnit_.engine().bulkPathName(),
                  " cpu=", cpuSimdSummary());
    }

    const Cycle endCycle = threaded ? runThreaded() : runSwitch();

    stats_.cycles = std::max(endCycle, frontCycle_);
    ev_.mergeInto(stats_.events);
    if (config_.memoEnabled) {
        stats_.memo = memoUnit_.stats();
        stats_.memo.monitorTripped = !memoUnit_.enabled();
        memoUnit_.events().mergeInto(stats_.events);
        // Distribution views: flush the open hit streak, then snapshot.
        memoUnit_.finalizeDists();
        stats_.dists.memoHitStreak = memoUnit_.hitStreaks();
        stats_.dists.memoLookupLatency = memoUnit_.lookupLatencies();
    }
    hierarchy_.events().mergeInto(stats_.events);
    stats_.dists.l2SetOccupancy = hierarchy_.l2().occupancy();
    for (const auto &kv : regionCounts_)
        stats_.dists.regionInvocations.sample(kv.second);
    stats_.events.add("cycles", stats_.cycles);
    return stats_;
}

} // namespace axmemo
