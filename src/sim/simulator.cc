#include "sim/simulator.hh"

#include <cmath>

#include "common/bits.hh"
#include "common/expected.hh"
#include "common/log.hh"
#include "isa/disasm.hh"
#include "obs/trace.hh"

namespace axmemo {

namespace {

/** EnergyClass -> µop event id (NumEvents = "charge nothing"). */
constexpr Ev kUopEvent[] = {
    Ev::UopIntAlu,    // EnergyClass::IntAlu
    Ev::UopIntMul,    // EnergyClass::IntMul
    Ev::UopIntDiv,    // EnergyClass::IntDiv
    Ev::UopFpSimple,  // EnergyClass::FpSimple
    Ev::UopFpMul,     // EnergyClass::FpMul
    Ev::UopFpDiv,     // EnergyClass::FpDiv
    Ev::UopFpLong,    // EnergyClass::FpLong
    Ev::UopMem,       // EnergyClass::Mem
    Ev::UopBranch,    // EnergyClass::Branch
    Ev::UopMemo,      // EnergyClass::Memo
    Ev::NumEvents,    // EnergyClass::None
};

} // namespace

Simulator::Simulator(const Program &prog, SimMemory &mem,
                     const SimConfig &config)
    : prog_(prog), mem_(mem), config_(config),
      hierarchy_(config.hierarchy), memoUnit_(config.memo),
      predictor_(config.cpu.predictorEntries),
      intRegs_(prog.numIntRegs(), 0),
      floatRegs_(prog.numFloatRegs(), 0.0f),
      intRegReady_(prog.numIntRegs(), 0),
      floatRegReady_(prog.numFloatRegs(), 0)
{
    if (config_.cpu.numIntAlus == 0 ||
        config_.cpu.numIntAlus > kMaxIntAlus)
        axm_fatal("numIntAlus must be in [1, ", kMaxIntAlus, "]");
    numAlus_ = config_.cpu.numIntAlus;
    slotsLeft_ = config_.cpu.issueWidth;

    // Predecode: resolve everything about a static instruction that the
    // cycle loop would otherwise recompute per dynamic instance.
    decoded_.resize(prog.size());
    for (InstIndex i = 0; i < prog.size(); ++i) {
        const Inst &inst = prog.at(i);
        const OpTraits &traits = opTraits(inst.op);
        Decoded &d = decoded_[i];
        d.ops = operandsOf(inst);
        d.latency = traits.latency;
        d.uops = std::max(1u, traits.uops);
        d.fu = traits.fu;
        d.issueFu =
            traits.fu == FuClass::None ? FuClass::IntAlu : traits.fu;
        d.pipelined = traits.pipelined;
        d.memoCounted = inst.isMemoOp() && inst.op != Op::LdCrc;
        d.uopEv = kUopEvent[static_cast<std::size_t>(traits.energy)];
    }
    if (config_.cpu.outOfOrder) {
        if (config_.cpu.robSize == 0)
            axm_fatal("out-of-order mode needs a nonzero ROB");
        retireRing_.assign(config_.cpu.robSize, 0);
    }
    // When the memoization unit's L2 LUT lives in LLC ways, carve those
    // ways out of the L2 cache (Section 3.3).
    if (config_.memoEnabled && config_.memo.l2LutBytes > 0) {
        const auto &l2cfg = config_.hierarchy.l2;
        const std::uint64_t wayBytes = l2cfg.sizeBytes / l2cfg.assoc;
        const unsigned ways = static_cast<unsigned>(
            (config_.memo.l2LutBytes + wayBytes - 1) / wayBytes);
        hierarchy_.reserveL2Ways(ways);
    }
}

std::uint64_t
Simulator::readInt(RegId reg) const
{
    if (reg == invalidReg || isFloatReg(reg))
        axm_panic("readInt of bad register");
    return intRegs_[regIndex(reg)];
}

float
Simulator::readFloat(RegId reg) const
{
    if (reg == invalidReg || !isFloatReg(reg))
        axm_panic("readFloat of bad register");
    return floatRegs_[regIndex(reg)];
}

void
Simulator::writeInt(RegId reg, std::uint64_t value)
{
    intRegs_[regIndex(reg)] = value;
}

void
Simulator::writeFloat(RegId reg, float value)
{
    floatRegs_[regIndex(reg)] = value;
}

std::uint64_t
Simulator::intReg(IReg reg) const
{
    return readInt(reg.id);
}

float
Simulator::floatReg(FReg reg) const
{
    return readFloat(reg.id);
}

Cycle
Simulator::issueUops(Cycle earliest, unsigned uops)
{
    if (frontCycle_ < earliest) {
        frontCycle_ = earliest;
        slotsLeft_ = config_.cpu.issueWidth;
    }
    const Cycle issued = frontCycle_;
    // Closed form of draining uops through issueWidth slots per cycle
    // (replaces the per-chunk loop the libm intrinsics used to spin in).
    if (uops >= slotsLeft_) {
        const unsigned width = config_.cpu.issueWidth;
        const unsigned rem = uops - slotsLeft_;
        frontCycle_ += 1 + rem / width;
        slotsLeft_ = width - rem % width;
    } else {
        slotsLeft_ -= uops;
    }
    return issued;
}

Cycle *
Simulator::fuSlot(FuClass fu)
{
    if (fu == FuClass::IntAlu) {
        // Pick the ALU instance that frees up first (lowest index wins
        // ties, matching the original scoreboard scan).
        std::size_t best = 0;
        for (std::size_t i = 1; i < numAlus_; ++i) {
            if (aluReady_[i] < aluReady_[best])
                best = i;
        }
        return &aluReady_[best];
    }
    return &unitReady_[static_cast<std::size_t>(fu)];
}

const SimStats &
Simulator::run()
{
    if (ran_)
        axm_panic("Simulator::run called twice");
    ran_ = true;
    if (config_.memoEnabled)
        memoUnit_.reset();

    Cycle endCycle = 0;
    InstIndex pc = 0;
    const ThreadId tid = 0;

    // Hoisted trace guards: one relaxed atomic load each, here, instead
    // of per instruction; both fold to constant false (and the trace
    // blocks below to nothing) under AXMEMO_NO_TRACE.
    const bool traceExec = trace::enabled(trace::Flag::Exec);
    const bool traceAny = trace::anyEnabled();

    while (pc < prog_.size()) {
        const Inst &inst = prog_.at(pc);
        const Decoded &dec = decoded_[pc];

        if (inst.op == Op::RegionBegin || inst.op == Op::RegionEnd) {
            if (inst.op == Op::RegionBegin) {
                ++stats_.regionEntries;
                ++regionCounts_[inst.imm];
            }
            if (traceExec) {
                trace::setCycle(frontCycle_);
                AXM_TRACE(Exec, "exec", pc, ": ", disassemble(inst));
            }
            if (traceBuf_)
                traceBuf_->append(pc, inst.op);
            else if (traceHook_)
                traceHook_(pc, inst);
            ++pc;
            continue;
        }

        if (++stats_.macroInsts > config_.maxMacroInsts)
            raiseError(ErrorCode::Simulation, "simulator",
                       prog_.name() +
                           ": exceeded max macro instructions (" +
                           std::to_string(config_.maxMacroInsts) +
                           ") — runaway loop?");
        // Watchdog/interrupt poll: cheap enough to keep in the hot
        // loop at 1/64K granularity, frequent enough that a timed-out
        // job stops within milliseconds.
        if (config_.control && (stats_.macroInsts & 0xFFFF) == 0)
            config_.control->check("simulator");

        // ---- timing: earliest execution start ----
        const OperandInfo &ops = dec.ops;
        Cycle srcReady = 0;
        for (unsigned k = 0; k < ops.numSources; ++k) {
            const RegId src = ops.sources[k];
            const Cycle ready = isFloatReg(src)
                                    ? floatRegReady_[regIndex(src)]
                                    : intRegReady_[regIndex(src)];
            srcReady = std::max(srcReady, ready);
        }
        if (inst.op == Op::BrHit || inst.op == Op::BrMiss)
            srcReady = std::max(srcReady, hitFlagReady_);

        Cycle *const unit = fuSlot(dec.issueFu);

        Cycle t;
        if (config_.cpu.outOfOrder) {
            // Dispatch in order, stalling only when the instruction
            // robSize back has not retired; execute as soon as operands
            // and a unit are free.
            const Cycle robReady = retireRing_[retireHead_];
            const Cycle dispatch = issueUops(robReady, dec.uops);
            t = std::max({dispatch, srcReady, *unit});
        } else {
            // In-order issue: the front end stalls on operand and
            // structural hazards.
            t = issueUops(std::max(srcReady, *unit), dec.uops);
        }
        Cycle latency = dec.latency;

        // Stamp this thread's trace-cycle context so clock-less
        // components (hierarchy, memo unit, DRAM) emit the issue cycle.
        if (traceAny)
            trace::setCycle(t);

        stats_.uops += dec.uops;
        ev_.add(Ev::FrontendUops, dec.uops);
        if (dec.uopEv != Ev::NumEvents)
            ev_.add(dec.uopEv, dec.uops);
        if (dec.memoCounted)
            stats_.memoUops += dec.uops;

        // ---- functional execution (+ op-specific timing) ----
        InstIndex nextPc = pc + 1;
        bool taken = false;
        bool isCondBranch = false;

        switch (inst.op) {
          case Op::Movi:
            writeInt(inst.dst, static_cast<std::uint64_t>(inst.imm));
            break;
          case Op::Mov:
            writeInt(inst.dst, readInt(inst.src1));
            break;
          case Op::Add:
          case Op::Sub:
          case Op::Mul:
          case Op::Div:
          case Op::Rem:
          case Op::And:
          case Op::Or:
          case Op::Xor:
          case Op::Shl:
          case Op::Shr:
          case Op::Sra:
          case Op::Slt:
          case Op::Sle:
          case Op::Seq:
          case Op::Sne:
          case Op::MinI:
          case Op::MaxI: {
            const std::uint64_t a = readInt(inst.src1);
            const std::uint64_t b =
                inst.src2 != invalidReg
                    ? readInt(inst.src2)
                    : static_cast<std::uint64_t>(inst.imm);
            const auto sa = static_cast<std::int64_t>(a);
            const auto sb = static_cast<std::int64_t>(b);
            std::uint64_t r = 0;
            switch (inst.op) {
              case Op::Add: r = a + b; break;
              case Op::Sub: r = a - b; break;
              case Op::Mul: r = a * b; break;
              case Op::Div: r = sb == 0 ? 0 : static_cast<std::uint64_t>(
                                                  sa / sb); break;
              case Op::Rem: r = sb == 0 ? a : static_cast<std::uint64_t>(
                                                  sa % sb); break;
              case Op::And: r = a & b; break;
              case Op::Or: r = a | b; break;
              case Op::Xor: r = a ^ b; break;
              case Op::Shl: r = a << (b & 63); break;
              case Op::Shr: r = a >> (b & 63); break;
              case Op::Sra: r = static_cast<std::uint64_t>(sa >> (b & 63));
                            break;
              case Op::Slt: r = sa < sb; break;
              case Op::Sle: r = sa <= sb; break;
              case Op::Seq: r = a == b; break;
              case Op::Sne: r = a != b; break;
              case Op::MinI: r = static_cast<std::uint64_t>(
                                 std::min(sa, sb)); break;
              case Op::MaxI: r = static_cast<std::uint64_t>(
                                 std::max(sa, sb)); break;
              default: break;
            }
            writeInt(inst.dst, r);
            break;
          }

          case Op::Fmovi:
            writeFloat(inst.dst, bitsToFloat(
                                     static_cast<std::uint32_t>(inst.imm)));
            break;
          case Op::Fmov:
            writeFloat(inst.dst, readFloat(inst.src1));
            break;
          case Op::Fadd:
            writeFloat(inst.dst,
                       readFloat(inst.src1) + readFloat(inst.src2));
            break;
          case Op::Fsub:
            writeFloat(inst.dst,
                       readFloat(inst.src1) - readFloat(inst.src2));
            break;
          case Op::Fmul:
            writeFloat(inst.dst,
                       readFloat(inst.src1) * readFloat(inst.src2));
            break;
          case Op::Fdiv:
            writeFloat(inst.dst,
                       readFloat(inst.src1) / readFloat(inst.src2));
            break;
          case Op::Fsqrt:
            writeFloat(inst.dst, std::sqrt(readFloat(inst.src1)));
            break;
          case Op::Fneg:
            writeFloat(inst.dst, -readFloat(inst.src1));
            break;
          case Op::Fabs:
            writeFloat(inst.dst, std::fabs(readFloat(inst.src1)));
            break;
          case Op::Fmin:
            writeFloat(inst.dst, std::fmin(readFloat(inst.src1),
                                           readFloat(inst.src2)));
            break;
          case Op::Fmax:
            writeFloat(inst.dst, std::fmax(readFloat(inst.src1),
                                           readFloat(inst.src2)));
            break;
          case Op::Flt:
            writeInt(inst.dst,
                     readFloat(inst.src1) < readFloat(inst.src2));
            break;
          case Op::Fle:
            writeInt(inst.dst,
                     readFloat(inst.src1) <= readFloat(inst.src2));
            break;
          case Op::Feq:
            writeInt(inst.dst,
                     readFloat(inst.src1) == readFloat(inst.src2));
            break;

          case Op::CvtIF:
            writeFloat(inst.dst,
                       static_cast<float>(
                           static_cast<std::int64_t>(readInt(inst.src1))));
            break;
          case Op::CvtFI:
            writeInt(inst.dst,
                     static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(readFloat(inst.src1))));
            break;
          case Op::FBits:
            writeInt(inst.dst, floatBits(readFloat(inst.src1)));
            break;
          case Op::BitsF:
            writeFloat(inst.dst,
                       bitsToFloat(static_cast<std::uint32_t>(
                           readInt(inst.src1))));
            break;

          case Op::Fexp:
            writeFloat(inst.dst, std::exp(readFloat(inst.src1)));
            break;
          case Op::Flog:
            writeFloat(inst.dst, std::log(readFloat(inst.src1)));
            break;
          case Op::Fsin:
            writeFloat(inst.dst, std::sin(readFloat(inst.src1)));
            break;
          case Op::Fcos:
            writeFloat(inst.dst, std::cos(readFloat(inst.src1)));
            break;
          case Op::Fatan2:
            writeFloat(inst.dst, std::atan2(readFloat(inst.src1),
                                            readFloat(inst.src2)));
            break;
          case Op::Facos:
            writeFloat(inst.dst, std::acos(readFloat(inst.src1)));
            break;
          case Op::Fasin:
            writeFloat(inst.dst, std::asin(readFloat(inst.src1)));
            break;

          case Op::Ld: {
            const Addr addr = readInt(inst.src1) +
                              static_cast<Addr>(inst.imm);
            latency = hierarchy_.access(addr, false);
            writeInt(inst.dst, mem_.read(addr, inst.size));
            ++stats_.loads;
            break;
          }
          case Op::Ldf: {
            const Addr addr = readInt(inst.src1) +
                              static_cast<Addr>(inst.imm);
            latency = hierarchy_.access(addr, false);
            writeFloat(inst.dst, mem_.readFloat(addr));
            ++stats_.loads;
            break;
          }
          case Op::St: {
            const Addr addr = readInt(inst.src1) +
                              static_cast<Addr>(inst.imm);
            hierarchy_.access(addr, true);
            latency = 1; // store buffer hides the hierarchy latency
            mem_.write(addr, readInt(inst.src2), inst.size);
            ++stats_.stores;
            break;
          }
          case Op::Stf: {
            const Addr addr = readInt(inst.src1) +
                              static_cast<Addr>(inst.imm);
            hierarchy_.access(addr, true);
            latency = 1;
            mem_.writeFloat(addr, readFloat(inst.src2));
            ++stats_.stores;
            break;
          }

          case Op::Br:
            nextPc = inst.imm;
            break;
          case Op::Bt:
          case Op::Bf: {
            isCondBranch = true;
            const bool cond = readInt(inst.src1) != 0;
            taken = (inst.op == Op::Bt) ? cond : !cond;
            if (taken)
                nextPc = inst.imm;
            break;
          }

          case Op::Halt:
            endCycle = std::max(endCycle, t + latency);
            if (traceExec)
                AXM_TRACE(Exec, "exec", pc, ": ", disassemble(inst));
            if (traceBuf_)
                traceBuf_->append(pc, inst.op);
            else if (traceHook_)
                traceHook_(pc, inst);
            pc = prog_.size();
            continue;

          // ---- AxMemo extension ----
          case Op::LdCrc: {
            if (!config_.memoEnabled)
                axm_panic(prog_.name(), ": ld_crc without memo unit");
            const Addr addr = readInt(inst.src1) +
                              static_cast<Addr>(inst.imm);
            latency = hierarchy_.access(addr, false);
            const std::uint64_t raw = mem_.read(addr, inst.size);
            if (isFloatReg(inst.dst))
                writeFloat(inst.dst, bitsToFloat(
                                         static_cast<std::uint32_t>(raw)));
            else
                writeInt(inst.dst, raw);
            ++stats_.loads;
            const Cycle stall = memoUnit_.feed(inst.lut, tid, raw,
                                               inst.size, inst.truncBits,
                                               t);
            if (stall > 0) {
                stats_.memoQueueStalls += stall;
                issueUops(t + stall, 0); // push the front end forward
            }
            break;
          }
          case Op::RegCrc: {
            if (!config_.memoEnabled)
                axm_panic(prog_.name(), ": reg_crc without memo unit");
            std::uint64_t raw;
            unsigned nbytes = inst.size;
            if (isFloatReg(inst.src1)) {
                raw = floatBits(readFloat(inst.src1));
                nbytes = 4;
            } else {
                raw = readInt(inst.src1);
            }
            const Cycle stall = memoUnit_.feed(inst.lut, tid, raw, nbytes,
                                               inst.truncBits, t);
            if (stall > 0) {
                stats_.memoQueueStalls += stall;
                issueUops(t + stall, 0);
            }
            break;
          }
          case Op::Lookup: {
            if (!config_.memoEnabled)
                axm_panic(prog_.name(), ": lookup without memo unit");
            const MemoLookupResult res = memoUnit_.lookup(inst.lut, tid,
                                                          t);
            latency = res.latency;
            writeInt(inst.dst, res.data);
            hitFlag_ = res.hit;
            hitFlagReady_ = t + latency;
            break;
          }
          case Op::Update: {
            if (!config_.memoEnabled)
                axm_panic(prog_.name(), ": update without memo unit");
            std::uint64_t data;
            if (isFloatReg(inst.src1))
                data = floatBits(readFloat(inst.src1));
            else
                data = readInt(inst.src1);
            latency = memoUnit_.update(inst.lut, tid, data);
            break;
          }
          case Op::Invalidate:
            if (!config_.memoEnabled)
                axm_panic(prog_.name(), ": invalidate without memo unit");
            latency = memoUnit_.invalidate(inst.lut, tid);
            break;
          case Op::BrHit:
          case Op::BrMiss:
            isCondBranch = true;
            taken = (inst.op == Op::BrHit) ? hitFlag_ : !hitFlag_;
            if (taken)
                nextPc = inst.imm;
            break;

          case Op::RegionBegin:
          case Op::RegionEnd:
          case Op::NumOps:
            break;
        }

        // ---- branch prediction / result timing ----
        if (isCondBranch) {
            ++stats_.branches;
            const bool correct =
                predictor_.predict(static_cast<std::uint64_t>(pc), taken);
            if (!correct) {
                ++stats_.mispredicts;
                issueUops(t + 1 + config_.cpu.mispredictPenalty, 0);
            }
        }

        const Cycle resultReady = t + latency;
        if (ops.dest != invalidReg) {
            if (isFloatReg(ops.dest))
                floatRegReady_[regIndex(ops.dest)] = resultReady;
            else
                intRegReady_[regIndex(ops.dest)] = resultReady;
        }

        // Functional-unit occupancy (the same unit instance consulted at
        // issue; pipelined units free after one cycle).
        if (dec.fu != FuClass::None) {
            const Cycle busyUntil = dec.pipelined ? t + 1 : resultReady;
            if (*unit < busyUntil)
                *unit = busyUntil;
        }

        // In-order retirement bounds the OoO window.
        if (config_.cpu.outOfOrder) {
            lastRetire_ = std::max(lastRetire_, resultReady);
            retireRing_[retireHead_] = lastRetire_;
            retireHead_ = (retireHead_ + 1) % retireRing_.size();
        }

        endCycle = std::max(endCycle, resultReady);

        if (traceExec)
            AXM_TRACE(Exec, "exec", pc, ": ", disassemble(inst));
        if (traceBuf_)
            traceBuf_->append(pc, inst.op);
        else if (traceHook_)
            traceHook_(pc, inst);

        pc = nextPc;
    }

    stats_.cycles = std::max(endCycle, frontCycle_);
    ev_.mergeInto(stats_.events);
    if (config_.memoEnabled) {
        stats_.memo = memoUnit_.stats();
        stats_.memo.monitorTripped = !memoUnit_.enabled();
        memoUnit_.events().mergeInto(stats_.events);
        // Distribution views: flush the open hit streak, then snapshot.
        memoUnit_.finalizeDists();
        stats_.dists.memoHitStreak = memoUnit_.hitStreaks();
        stats_.dists.memoLookupLatency = memoUnit_.lookupLatencies();
    }
    hierarchy_.events().mergeInto(stats_.events);
    stats_.dists.l2SetOccupancy = hierarchy_.l2().occupancy();
    for (const auto &kv : regionCounts_)
        stats_.dists.regionInvocations.sample(kv.second);
    stats_.events.add("cycles", stats_.cycles);
    return stats_;
}

} // namespace axmemo
