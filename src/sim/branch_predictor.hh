/**
 * @file
 * Bimodal branch predictor for the HPI-like in-order core.
 *
 * A table of 2-bit saturating counters indexed by static instruction index.
 * The HPI model in gem5 uses a more elaborate predictor; for the tight
 * kernel loops of these workloads a bimodal table captures the relevant
 * behaviour (loop branches predict well, data-dependent hit/miss branches
 * do not).
 */

#ifndef AXMEMO_SIM_BRANCH_PREDICTOR_HH
#define AXMEMO_SIM_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace axmemo {

/** 2-bit bimodal predictor. */
class BranchPredictor
{
  public:
    /** @param entries table size (power of two). */
    explicit BranchPredictor(unsigned entries = 4096);

    /**
     * Predict and train on the branch at static index @p pc with actual
     * direction @p taken. @return true if the prediction was correct.
     */
    bool predict(std::uint64_t pc, bool taken);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Reset counters to weakly-taken and zero the statistics. */
    void reset();

  private:
    std::vector<std::uint8_t> table_;
    std::uint64_t mask_;
    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace axmemo

#endif // AXMEMO_SIM_BRANCH_PREDICTOR_HH
