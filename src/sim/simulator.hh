/**
 * @file
 * The AxIR core model: functional execution plus an approximate in-order
 * two-issue timing model of the ARM HPI configuration of Table 3.
 *
 * Timing methodology. Rather than a cycle-by-cycle event loop, the model
 * tracks, per program-order instruction, the earliest cycle it can issue
 * (front-end slot availability x source-operand readiness x functional-unit
 * availability) and when its result becomes ready. This reproduces the
 * stall behaviour of an in-order scoreboarded pipeline at a fraction of the
 * simulation cost and is the standard "interval" style of timing model.
 * Instruction supply is ideal (the kernels are loop-resident in a 32 KB
 * L1I); fetch/decode energy is still charged per µop.
 *
 * The memoization unit hangs off the core exactly as in Fig. 2: ld_crc /
 * reg_crc stream inputs into it (stalling only on a full input queue),
 * lookup waits for the pending CRC then probes the LUTs with Table 4
 * latencies, and br_hit/br_miss consume the condition flag it sets.
 *
 * Interpreter dispatch (DESIGN.md §10). The per-instruction handlers
 * live once in sim/interp_body.inc and are instantiated twice: as a
 * plain switch (the portable fallback) and as computed-goto threaded
 * dispatch where labels-as-values is available (GCC/Clang, unless
 * -DAXMEMO_FORCE_PORTABLE). AXMEMO_DISPATCH / --dispatch selects the
 * mode at run time; both produce bit-identical simulated state, stats,
 * and traces. Independently, macro-op batching (AXMEMO_NO_BATCH /
 * --no-batch to disable) folds the purely static per-instruction
 * counters — macro-instruction, µop, and per-class µop-event totals —
 * into per-basic-block sums (isa/blocks.hh) added once per block
 * entry, with the runaway guard and watchdog poll moving to block
 * granularity. Dynamic stats and all timing stay per-instruction.
 */

#ifndef AXMEMO_SIM_SIMULATOR_HH
#define AXMEMO_SIM_SIMULATOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/events.hh"
#include "common/run_control.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/stats.hh"
#include "isa/blocks.hh"
#include "isa/dyn_trace.hh"
#include "isa/op_traits.hh"
#include "isa/program.hh"
#include "memo/memo_unit.hh"
#include "memsys/hierarchy.hh"
#include "memsys/sim_memory.hh"
#include "sim/branch_predictor.hh"

namespace axmemo {

/** Core pipeline parameters (Table 3). */
struct CpuConfig
{
    unsigned issueWidth = 2;
    Cycle mispredictPenalty = 5;
    double freqGhz = 2.0;
    unsigned numIntAlus = 2;
    unsigned predictorEntries = 4096;

    /**
     * Out-of-order mode (Section 6.1 notes AxMemo also fits OoO cores;
     * the hash-value registers are renamed like architectural
     * registers). The front end dispatches in order at issueWidth per
     * cycle, bounded by the reorder buffer; execution starts as soon as
     * operands and a unit are ready; retirement is in order. The same
     * memoization-unit protocol applies unchanged.
     */
    bool outOfOrder = false;
    unsigned robSize = 64;
};

/** Whole-system configuration for one simulation. */
struct SimConfig
{
    CpuConfig cpu{};
    HierarchyConfig hierarchy{};
    /** Attach a memoization unit (memo ops panic without one). */
    bool memoEnabled = false;
    MemoUnitConfig memo{};
    /** Abort if the program executes more macro-instructions than this. */
    std::uint64_t maxMacroInsts = 4ull << 30;
    /** Cooperative watchdog/interrupt control, polled every 64K macro
     * instructions; null disables polling (common/run_control.hh). */
    const RunControl *control = nullptr;
};

/** Aggregated results of one simulation run. */
struct SimStats
{
    Cycle cycles = 0;
    /** Macro AxIR instructions retired (markers excluded). */
    std::uint64_t macroInsts = 0;
    /** µops retired (intrinsics expanded; the paper-comparable count). */
    std::uint64_t uops = 0;
    /** µops belonging to memoization instructions + memo branches
     * (ld_crc counts as a normal load, Section 6.2). */
    std::uint64_t memoUops = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    /** Extra cycles the CPU stalled on a full memo-unit input queue. */
    Cycle memoQueueStalls = 0;
    /** Dynamic RegionBegin markers executed (the scalar twin of
     * dists.regionInvocations: the distribution sums to this). */
    std::uint64_t regionEntries = 0;

    MemoUnitStats memo{};

    /**
     * Distribution views of the run (obs layer), all collected off the
     * per-instruction path: memo-side samples accumulate per lookup in
     * the memoization unit, the rest are snapshots taken at halt. Each
     * distribution has a scalar twin it must sum (or count) to —
     * stats.txt consumers cross-check them.
     */
    struct Dists
    {
        /** Consecutive reported memo hits between misses; the sample
         * sum equals memo.hits(). */
        Histogram memoHitStreak{};
        /** Lookup-instruction latency in cycles; the sample count
         * equals memo.lookups. */
        Distribution memoLookupLatency{};
        /** Dynamic entries per static region id; sums to
         * regionEntries. */
        Histogram regionInvocations{};
        /** Valid data lines per L2 set at halt (LUT-reserved ways
         * excluded). */
        Distribution l2SetOccupancy{};
    };
    Dists dists{};

    /** All energy-relevant events (uop classes, cache, dram, memo). */
    CounterSet events{};

    /** Wall-clock seconds at the configured frequency. */
    double
    seconds(double freqGhz) const
    {
        return static_cast<double>(cycles) / (freqGhz * 1e9);
    }
};

/** Functional + timing execution of one AxIR program. */
class Simulator
{
  public:
    /**
     * @param prog verified program to run (must outlive the simulator).
     * @param mem simulated memory holding the workload's data.
     */
    Simulator(const Program &prog, SimMemory &mem,
              const SimConfig &config = {});

    /** Execute from instruction 0 until Halt. @return final stats. */
    const SimStats &run();

    const SimStats &stats() const { return stats_; }
    MemoizationUnit &memoUnit() { return memoUnit_; }
    MemHierarchy &hierarchy() { return hierarchy_; }

    /** Register state readout for tests and output extraction. */
    std::uint64_t intReg(IReg reg) const;
    float floatReg(FReg reg) const;

    /**
     * Optional per-retired-instruction observer (static index). Used for
     * ad-hoc observers; adds no timing cost but pays a std::function
     * call per retired instruction — prefer setTraceBuffer for capture.
     */
    void setTraceHook(std::function<void(InstIndex, const Inst &)> hook)
    {
        traceHook_ = std::move(hook);
    }

    /**
     * Reusable-buffer trace capture: retired instructions are appended
     * straight into @p buffer (no indirect call, no allocation once the
     * buffer's capacity is warm). Takes precedence over the hook.
     * @p buffer must outlive the simulator.
     */
    void setTraceBuffer(TraceBuffer *buffer) { traceBuf_ = buffer; }

  private:
    /**
     * Per-static-instruction facts the cycle loop would otherwise
     * recompute on every dynamic instance (operand shapes, µop counts,
     * unit routing, energy event id). Built once at construction.
     * Operands are pre-resolved to indices into the unified regReady_
     * scoreboard (int regs, then float regs, then one write-only dummy
     * slot for "no destination"), so the hot loop indexes one array
     * with no float/int/validity branching.
     */
    struct Decoded
    {
        /** regReady_ indices; unused slots point at the read-only
         * always-zero entry so readiness is an unconditional 3-way
         * max with no per-operand count branching. */
        std::uint32_t src[3] = {0, 0, 0};
        std::uint32_t nsrc = 0;
        std::uint32_t dst = 0; ///< regReady_ index (dummy if none)
        Cycle latency = 1;
        unsigned uops = 1; ///< max(1, traits.uops)
        FuClass fu = FuClass::IntAlu;      ///< raw unit (None = marker)
        FuClass issueFu = FuClass::IntAlu; ///< unit gating issue
        bool pipelined = true;
        bool memoCounted = false; ///< contributes to stats_.memoUops
        /** Straight-line successor starts a new basic block (it is a
         * branch target): batched mode must enterBlock() on
         * fallthrough, not only at control transfers. */
        bool enterNext = false;
        Ev uopEv = Ev::NumEvents; ///< NumEvents when EnergyClass::None
        /** Handler address for threaded dispatch, resolved by the
         * runThreaded() prelude (labels are function-local); unused by
         * runSwitch(). Lives here so dispatch reads it from the same
         * cache line as the rest of the decode. */
        const void *label = nullptr;
    };

    // --- timing helpers ---
    Cycle issueUops(Cycle earliest, unsigned uops);
    Cycle *fuSlot(FuClass fu);

    // --- interpreter cores (sim/interp_body.inc, see file comment) ---
    Cycle runSwitch();
    Cycle runThreaded();
    /** Fold a block's static aggregates into the stats at block entry;
     * runs the runaway guard and watchdog poll at block granularity.
     * Inline: it fires once per basic block, and hot blocks are short. */
    void
    enterBlock(InstIndex leader)
    {
        const BasicBlock &bb = blocks_.at(leader);
        stats_.macroInsts += bb.macroInsts;
        stats_.uops += bb.uops;
        stats_.memoUops += bb.memoUops;
        ev_.addRange(bb.uopEvents.data(), numUopEvents);
        // Guards move to block granularity: the runaway trip and the
        // watchdog poll may overshoot by at most one block length.
        if (stats_.macroInsts > config_.maxMacroInsts)
            raiseRunaway();
        if (config_.control && stats_.macroInsts >= nextPoll_) {
            config_.control->check("simulator");
            nextPoll_ = (stats_.macroInsts | 0xFFFF) + 1;
        }
    }
    [[noreturn]] void raiseRunaway();

    // --- functional helpers ---
    std::uint64_t readInt(RegId reg) const;
    float readFloat(RegId reg) const;
    void writeInt(RegId reg, std::uint64_t value);
    void writeFloat(RegId reg, float value);
    /** Unchecked operand reads for the interpreter hot path; operand
     * shapes are guaranteed by Program::verify(). */
    std::uint64_t srcInt(RegId reg) const
    {
        return intRegs_[regIndex(reg)];
    }
    float srcFloat(RegId reg) const
    {
        return floatRegs_[regIndex(reg)];
    }

    const Program &prog_;
    SimMemory &mem_;
    SimConfig config_;
    MemHierarchy hierarchy_;
    MemoizationUnit memoUnit_;
    BranchPredictor predictor_;

    std::vector<Decoded> decoded_;
    /** Basic-block decomposition with static aggregates (batching). */
    BlockMap blocks_;

    std::vector<std::uint64_t> intRegs_;
    std::vector<float> floatRegs_;
    /** Unified readiness scoreboard: [int regs | float regs |
     * write-only dummy | read-only zero]. */
    std::vector<Cycle> regReady_;
    std::uint32_t dummyReadyIdx_ = 0;
    std::uint32_t zeroReadyIdx_ = 0;

    // Run-time interpreter mode (resolved from RuntimeOptions by run()).
    bool batched_ = true;
    /** Next stats_.macroInsts threshold for the batched watchdog poll. */
    std::uint64_t nextPoll_ = 0;

    // Front-end slot accounting.
    Cycle frontCycle_ = 0;
    unsigned slotsLeft_ = 0;

    // Functional-unit availability (IntAlu has numIntAlus instances,
    // inline to keep the per-instruction min-scan off the heap).
    static constexpr unsigned kMaxIntAlus = 16;
    std::array<Cycle, kMaxIntAlus> aluReady_{};
    unsigned numAlus_ = 2;
    std::array<Cycle, 8> unitReady_{};

    // Memoization condition flag (set by lookup).
    bool hitFlag_ = false;
    Cycle hitFlagReady_ = 0;

    // Out-of-order retirement ring: retire time of the last robSize
    // instructions (dispatch stalls when the ROB would overflow).
    std::vector<Cycle> retireRing_;
    std::size_t retireHead_ = 0;
    Cycle lastRetire_ = 0;

    SimStats stats_;
    /** Hot-path event accumulator, folded into stats_.events at halt. */
    EventCounters ev_;
    /** Dynamic entries per region id (RegionBegin hint, Section 5). */
    std::unordered_map<std::int64_t, std::uint64_t> regionCounts_;
    std::function<void(InstIndex, const Inst &)> traceHook_;
    TraceBuffer *traceBuf_ = nullptr;
    bool ran_ = false;
};

} // namespace axmemo

#endif // AXMEMO_SIM_SIMULATOR_HH
