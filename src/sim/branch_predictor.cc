#include "sim/branch_predictor.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace axmemo {

BranchPredictor::BranchPredictor(unsigned entries)
    : table_(entries, 2), mask_(entries - 1)
{
    if (!isPowerOfTwo(entries))
        axm_fatal("branch predictor entries must be a power of two");
}

bool
BranchPredictor::predict(std::uint64_t pc, bool taken)
{
    ++lookups_;
    std::uint8_t &counter = table_[pc & mask_];
    const bool predicted = counter >= 2;
    if (taken && counter < 3)
        ++counter;
    else if (!taken && counter > 0)
        --counter;
    if (predicted != taken) {
        ++mispredicts_;
        return false;
    }
    return true;
}

void
BranchPredictor::reset()
{
    for (auto &c : table_)
        c = 2;
    lookups_ = 0;
    mispredicts_ = 0;
}

} // namespace axmemo
