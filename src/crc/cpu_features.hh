/**
 * @file
 * Runtime host-CPU feature detection for the accelerated CRC data paths.
 *
 * The simulator's *model* of the CRC unit (crc/hw_model.hh) is
 * paper-facing; this header is host-facing: it answers "may this process
 * execute SSE4.2 CRC32 / PCLMULQDQ instructions right now?". Detection
 * is runtime (cpuid), so one binary runs correctly on hosts with and
 * without the extensions — the engine falls back to the portable
 * slice-by-8/table paths when a feature is missing, when the build was
 * configured with -DAXMEMO_FORCE_PORTABLE=ON, or when the user disables
 * SIMD with AXMEMO_NO_SIMD/--no-simd.
 */

#ifndef AXMEMO_CRC_CPU_FEATURES_HH
#define AXMEMO_CRC_CPU_FEATURES_HH

namespace axmemo {

/** True when the host CPU executes SSE4.2 (the CRC32 instruction). */
bool cpuHasSse42();

/** True when the host CPU executes PCLMULQDQ (carry-less multiply). */
bool cpuHasPclmul();

/** Static summary for traces and perf entries: "sse4.2+pclmul",
 * "sse4.2", "pclmul", or "none". Reflects detection only, not the
 * runtime/compile-time disable knobs. */
const char *cpuSimdSummary();

} // namespace axmemo

#endif // AXMEMO_CRC_CPU_FEATURES_HH
