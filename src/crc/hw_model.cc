#include "crc/hw_model.hh"

#include <cmath>

#include "common/log.hh"

namespace axmemo {

namespace {

// Calibration point: the paper's synthesized CRC32 unit (Table 5),
// 8-bit-parallel, unrolled x4, pipelined, at 32 nm.
constexpr double refAreaMm2 = 0.0146;
constexpr double refEnergyPj = 2.9143;
constexpr double refLatencyNs = 0.4133;
constexpr unsigned refWidth = 32;
constexpr unsigned refUnroll = 4;
constexpr unsigned refBitsPerStage = 8;

} // namespace

CrcHwModel::CrcHwModel(const CrcHwConfig &config) : config_(config)
{
    if (config_.width == 0 || config_.width > 64)
        axm_fatal("CRC hw model: unsupported width ", config_.width);
    if (config_.bitsPerStage == 0 || config_.bitsPerStage > 16)
        axm_fatal("CRC hw model: unsupported bitsPerStage ",
                  config_.bitsPerStage);
    if (config_.unroll == 0 || config_.unroll > 16)
        axm_fatal("CRC hw model: unsupported unroll ", config_.unroll);
    if ((config_.bitsPerStage * config_.unroll) % 8 != 0)
        axm_fatal("CRC hw model: stage bits x unroll must be byte-sized");
}

std::uint64_t
CrcHwModel::constantRamBits() const
{
    return (1ull << config_.bitsPerStage) *
           static_cast<std::uint64_t>(config_.width) * config_.unroll;
}

double
CrcHwModel::areaMm2() const
{
    // Dominated by the constant RAM plus per-stage XOR trees; both scale
    // ~linearly in width and unroll relative to the calibration point.
    const double widthScale =
        static_cast<double>(config_.width) / refWidth;
    const double unrollScale =
        static_cast<double>(config_.unroll) / refUnroll;
    const double ramScale =
        static_cast<double>(1u << config_.bitsPerStage) /
        static_cast<double>(1u << refBitsPerStage);
    return refAreaMm2 * widthScale * unrollScale *
           (0.7 * ramScale + 0.3);
}

double
CrcHwModel::energyPerOpPj() const
{
    const double widthScale =
        static_cast<double>(config_.width) / refWidth;
    const double unrollScale =
        static_cast<double>(config_.unroll) / refUnroll;
    return refEnergyPj * widthScale * unrollScale;
}

double
CrcHwModel::latencyNs() const
{
    // The critical path is one stage's RAM read + XOR tree; widening the
    // register grows the XOR tree logarithmically.
    const double widthFactor =
        std::log2(static_cast<double>(config_.width)) /
        std::log2(static_cast<double>(refWidth));
    return refLatencyNs * (0.6 + 0.4 * widthFactor);
}

Cycle
CrcHwModel::cyclesForBytes(std::uint64_t bytes) const
{
    const unsigned bpc = config_.bytesPerCycle();
    return (bytes + bpc - 1) / bpc;
}

} // namespace axmemo
