#include "crc/cpu_features.hh"

namespace axmemo {

namespace {

struct Features
{
    bool sse42 = false;
    bool pclmul = false;
};

Features
detect()
{
    Features f;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(AXMEMO_FORCE_PORTABLE)
    f.sse42 = __builtin_cpu_supports("sse4.2") != 0;
    f.pclmul = __builtin_cpu_supports("pclmul") != 0;
#endif
    return f;
}

const Features &
features()
{
    static const Features f = detect();
    return f;
}

} // namespace

bool
cpuHasSse42()
{
    return features().sse42;
}

bool
cpuHasPclmul()
{
    return features().pclmul;
}

const char *
cpuSimdSummary()
{
    const Features &f = features();
    if (f.sse42 && f.pclmul)
        return "sse4.2+pclmul";
    if (f.sse42)
        return "sse4.2";
    if (f.pclmul)
        return "pclmul";
    return "none";
}

} // namespace axmemo
