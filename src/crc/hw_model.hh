/**
 * @file
 * Hardware cost/timing model of the CRC unit (Table 5 and Section 3.1).
 *
 * The synthesized unit in the paper is an 8-bit-parallel CRC32 stage,
 * unrolled four times and pipelined, so it consumes 4 bytes per cycle at a
 * 0.41 ns critical path, occupies 0.0146 mm^2 at 32 nm, and spends 2.91 pJ
 * per (4-byte) operation. This model reproduces those calibration points
 * exactly and extrapolates to other widths/unroll factors for ablations.
 */

#ifndef AXMEMO_CRC_HW_MODEL_HH
#define AXMEMO_CRC_HW_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace axmemo {

/** Static configuration of the hardware CRC unit. */
struct CrcHwConfig
{
    /** Checksum width in bits. */
    unsigned width = 32;
    /** Input bits consumed per pipeline stage per cycle. */
    unsigned bitsPerStage = 8;
    /** Number of unrolled (pipelined) stages. */
    unsigned unroll = 4;

    /** Input bytes consumed per cycle when the pipeline is full. */
    unsigned
    bytesPerCycle() const
    {
        return bitsPerStage * unroll / 8;
    }
};

/** Area / energy / latency estimates for a CRC unit configuration. */
class CrcHwModel
{
  public:
    explicit CrcHwModel(const CrcHwConfig &config = {});

    const CrcHwConfig &config() const { return config_; }

    /** Silicon area in mm^2 at 32 nm. */
    double areaMm2() const;

    /** Energy of one full-throughput accumulate step, pJ. */
    double energyPerOpPj() const;

    /** Critical-path latency in ns. */
    double latencyNs() const;

    /** Bits of constant RAM required (2^bitsPerStage x width per stage). */
    std::uint64_t constantRamBits() const;

    /**
     * Cycles for the unit to absorb @p bytes input bytes (streaming;
     * pipeline fill is hidden behind the producing instructions).
     */
    Cycle cyclesForBytes(std::uint64_t bytes) const;

  private:
    CrcHwConfig config_;
};

} // namespace axmemo

#endif // AXMEMO_CRC_HW_MODEL_HH
