/**
 * @file
 * SIMD CRC kernels (internal to the crc library).
 *
 * These are raw state-update kernels; CrcEngine owns all policy (spec
 * matching, CPU detection, thresholds, the AXMEMO_NO_SIMD knob) and only
 * calls in here once it has decided a kernel is both compiled in and
 * legal for the active CrcSpec. Two kernels exist:
 *
 *  - crc32cUpdate()/crc32cUpdateWord(): SSE4.2 `crc32` instructions.
 *    The instruction hard-wires one algorithm — reflected CRC-32C
 *    (Castagnoli, poly 0x1edc6b41) — so these apply to exactly that
 *    spec and to nothing else.
 *
 *  - clmulFold(): PCLMULQDQ carry-less-multiply folding for *any*
 *    non-reflected byte-multiple width up to 64. Instead of a
 *    width-specific Barrett reduction, the kernel returns a 16-byte
 *    residue with the invariant that feeding it through the portable
 *    byte path from a zero register yields the true CRC state; the
 *    caller performs that final reduction with code that is already
 *    proven bit-identical to the serial LFSR (DESIGN.md §10).
 *
 * On non-x86 hosts, or when built with -DAXMEMO_FORCE_PORTABLE=ON, the
 * stubs report compiledIn() == false and the kernels panic if reached.
 */

#ifndef AXMEMO_CRC_CRC_ACCEL_HH
#define AXMEMO_CRC_CRC_ACCEL_HH

#include <cstddef>
#include <cstdint>

namespace axmemo {
namespace accel {

/** True when this translation unit was built with SSE4.2+PCLMUL code.
 * False on non-x86 targets and under AXMEMO_FORCE_PORTABLE. */
bool compiledIn();

/** Advance a reflected CRC-32C @p state over @p len bytes. */
std::uint64_t crc32cUpdate(std::uint64_t state, const std::uint8_t *data,
                           std::size_t len);

/** Advance a reflected CRC-32C @p state over the low @p nbytes bytes of
 * @p word (little-endian order, matching CrcEngine::updateWord). */
std::uint64_t crc32cUpdateWord(std::uint64_t state, std::uint64_t word,
                               unsigned nbytes);

/** Folding constants for one non-reflected spec: x^n mod P for the
 * 16-byte (k128/k192) and 64-byte (k512/k576) fold distances. The
 * engine derives them by clocking its own bit-serial LFSR. */
struct FoldConsts
{
    std::uint64_t k128 = 0;
    std::uint64_t k192 = 0;
    std::uint64_t k512 = 0;
    std::uint64_t k576 = 0;
};

/**
 * Fold an integral number of leading 16-byte blocks of @p data (at
 * least one; caller guarantees @p len >= 16) into @p residue, starting
 * from register @p state of the given @p width. Returns the number of
 * bytes consumed (a multiple of 16). Postcondition: running the 16
 * residue bytes through the portable update from a zero register, then
 * the remaining len-consumed bytes, equals the portable update of the
 * whole buffer from @p state.
 */
std::size_t clmulFold(const FoldConsts &k, unsigned width,
                      std::uint64_t state, const std::uint8_t *data,
                      std::size_t len, std::uint8_t residue[16]);

} // namespace accel
} // namespace axmemo

#endif // AXMEMO_CRC_CRC_ACCEL_HH
