/**
 * @file
 * SIMD CRC kernel implementations. This file is compiled with
 * -msse4.2 -mpclmul on x86-64 (see src/crc/CMakeLists.txt); every
 * other build configuration compiles the panicking stubs at the
 * bottom, and CrcEngine never dispatches here because compiledIn()
 * reports false.
 *
 * PCLMUL folding math (non-reflected convention, input bytes MSB
 * first). Write the register state after consuming a byte prefix V as
 * S = (V * x^w) mod P. The kernel keeps a 128-bit accumulator A with
 * the invariant S = (A * x^w) mod P, seeded from the first 16-byte
 * block D0 as A = D0 xor (S * x^(128-w)). Consuming the next block D:
 *
 *     A' = Ahi * (x^192 mod P)  xor  Alo * (x^128 mod P)  xor  D
 *
 * Both products have degree <= 63 + (w-1) <= 126, so A' fits 128 bits
 * and the invariant is preserved (A' == A * x^128 xor D, mod P). For
 * throughput, four accumulators run 64 bytes apart using x^512/x^576
 * constants, then merge with three 16-byte fold steps. The final
 * reduction (A * x^w) mod P is NOT done here: the accumulator is
 * returned as 16 bytes whose portable-path CRC from a zero register is
 * exactly that value, so the caller reuses code already proven
 * bit-identical to the serial LFSR.
 */

#include "crc/crc_accel.hh"

#include "common/log.hh"

#if defined(__x86_64__) && defined(__SSE4_2__) && defined(__PCLMUL__) && \
    !defined(AXMEMO_FORCE_PORTABLE)
#define AXMEMO_CRC_ACCEL_IMPL 1
#include <immintrin.h>
#endif

namespace axmemo {
namespace accel {

#ifdef AXMEMO_CRC_ACCEL_IMPL

bool
compiledIn()
{
    return true;
}

std::uint64_t
crc32cUpdate(std::uint64_t state, const std::uint8_t *data,
             std::size_t len)
{
    auto c = static_cast<std::uint32_t>(state);
    for (; len >= 8; data += 8, len -= 8) {
        std::uint64_t w;
        __builtin_memcpy(&w, data, 8);
        c = static_cast<std::uint32_t>(_mm_crc32_u64(c, w));
    }
    if (len >= 4) {
        std::uint32_t w;
        __builtin_memcpy(&w, data, 4);
        c = _mm_crc32_u32(c, w);
        data += 4;
        len -= 4;
    }
    for (; len; ++data, --len)
        c = _mm_crc32_u8(c, *data);
    return c;
}

std::uint64_t
crc32cUpdateWord(std::uint64_t state, std::uint64_t word, unsigned nbytes)
{
    auto c = static_cast<std::uint32_t>(state);
    if (nbytes == 8)
        return static_cast<std::uint32_t>(_mm_crc32_u64(c, word));
    // Low bytes first, matching CrcEngine::updateWord's LE order.
    if (nbytes & 4) {
        c = _mm_crc32_u32(c, static_cast<std::uint32_t>(word));
        word >>= 32;
    }
    if (nbytes & 2) {
        c = _mm_crc32_u16(c, static_cast<std::uint16_t>(word));
        word >>= 16;
    }
    if (nbytes & 1)
        c = _mm_crc32_u8(c, static_cast<std::uint8_t>(word));
    return c;
}

namespace {

/** Reverse the 16 bytes of @p v: polynomial convention wants the first
 * message byte in the most-significant lane. */
inline __m128i
byteRev(__m128i v)
{
    const __m128i rev =
        _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
    return _mm_shuffle_epi8(v, rev);
}

inline __m128i
loadRev(const std::uint8_t *p)
{
    return byteRev(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)));
}

/** One fold step: A -> Ahi*Khi xor Alo*Klo (both carry-less). */
inline __m128i
fold16(__m128i a, __m128i k)
{
    return _mm_xor_si128(_mm_clmulepi64_si128(a, k, 0x11),
                         _mm_clmulepi64_si128(a, k, 0x00));
}

} // namespace

std::size_t
clmulFold(const FoldConsts &k, unsigned width, std::uint64_t state,
          const std::uint8_t *data, std::size_t len,
          std::uint8_t residue[16])
{
    const __m128i k1 = _mm_set_epi64x(static_cast<long long>(k.k192),
                                      static_cast<long long>(k.k128));
    // state * x^(128-w): the register enters the top w bits of the
    // first block, i.e. the high 64-bit lane (128-w >= 64 for w <= 64).
    const __m128i top = _mm_set_epi64x(
        static_cast<long long>(width < 64 ? state << (64 - width)
                                          : state),
        0);
    std::size_t pos = 0;
    __m128i b;
    if (len >= 128) {
        const __m128i k4 =
            _mm_set_epi64x(static_cast<long long>(k.k576),
                           static_cast<long long>(k.k512));
        __m128i b0 = _mm_xor_si128(loadRev(data), top);
        __m128i b1 = loadRev(data + 16);
        __m128i b2 = loadRev(data + 32);
        __m128i b3 = loadRev(data + 48);
        for (pos = 64; len - pos >= 64; pos += 64) {
            b0 = _mm_xor_si128(fold16(b0, k4), loadRev(data + pos));
            b1 = _mm_xor_si128(fold16(b1, k4), loadRev(data + pos + 16));
            b2 = _mm_xor_si128(fold16(b2, k4), loadRev(data + pos + 32));
            b3 = _mm_xor_si128(fold16(b3, k4), loadRev(data + pos + 48));
        }
        b = _mm_xor_si128(fold16(b0, k1), b1);
        b = _mm_xor_si128(fold16(b, k1), b2);
        b = _mm_xor_si128(fold16(b, k1), b3);
    } else {
        b = _mm_xor_si128(loadRev(data), top);
        pos = 16;
    }
    for (; len - pos >= 16; pos += 16)
        b = _mm_xor_si128(fold16(b, k1), loadRev(data + pos));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(residue), byteRev(b));
    return pos;
}

#else // !AXMEMO_CRC_ACCEL_IMPL

bool
compiledIn()
{
    return false;
}

std::uint64_t
crc32cUpdate(std::uint64_t, const std::uint8_t *, std::size_t)
{
    axm_panic("crc32cUpdate called in a portable build");
}

std::uint64_t
crc32cUpdateWord(std::uint64_t, std::uint64_t, unsigned)
{
    axm_panic("crc32cUpdateWord called in a portable build");
}

std::size_t
clmulFold(const FoldConsts &, unsigned, std::uint64_t,
          const std::uint8_t *, std::size_t, std::uint8_t[16])
{
    axm_panic("clmulFold called in a portable build");
}

#endif // AXMEMO_CRC_ACCEL_IMPL

} // namespace accel
} // namespace axmemo
