/**
 * @file
 * Generic cyclic-redundancy-check engine (Section 3.1).
 *
 * AxMemo hashes the (possibly truncated) memoization inputs with a CRC and
 * uses the checksum as the fixed-size LUT tag. The engine below supports any
 * width up to 64 bits, any generator polynomial, and both the normal
 * (MSB-first) and reflected (LSB-first) bit orders, with functionally
 * identical implementations at every speed tier:
 *
 *  - updateBitSerial(): one input bit per step, the direct software model of
 *    the hardware LFSR-with-input-XOR of Fig. 3;
 *  - updateByte(): 8-bit-parallel table-driven step, the software analogue
 *    of the paper's 8-bit parallel hardware unit (the 256-entry table is the
 *    2^n x m-bit constant RAM of Fig. 3).
 *
 * For byte-multiple widths the engine additionally builds slice-by-8
 * tables (slice k = the byte table advanced by k zero bytes), and the
 * bulk entry points update()/updateWord() consume up to 8 bytes per
 * step as independent table lookups instead of 8 dependent register
 * steps. CRC is GF(2)-linear, so the sliced step is bit-identical to
 * the serial evolution by construction; narrow or odd widths simply
 * fall back to the serial paths (DESIGN.md §7).
 *
 * On x86-64 hosts two hardware tiers sit above slice-by-8, selected at
 * run time by CPU detection (crc/cpu_features.hh) and disabled by
 * AXMEMO_NO_SIMD / --no-simd or a -DAXMEMO_FORCE_PORTABLE=ON build:
 * the SSE4.2 crc32 instruction for the one spec it implements
 * (reflected CRC-32C), and PCLMUL carry-less-multiply folding for any
 * non-reflected byte-multiple width (DESIGN.md §10). Both reduce
 * through the portable path, so bit-identity follows from the same
 * linearity argument; updatePortable() stays available as the
 * reference implementation for tests.
 *
 * Streaming matters: the memoization unit accumulates inputs as they arrive
 * (property 1 in Section 3.1), so the engine exposes explicit state that the
 * hash-value registers can hold between ld_crc/reg_crc instructions.
 */

#ifndef AXMEMO_CRC_CRC_HH
#define AXMEMO_CRC_CRC_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace axmemo {

/** Parameters of a CRC algorithm (Rocksoft model). */
struct CrcSpec
{
    /** Checksum width in bits (1..64). */
    unsigned width = 32;
    /** Generator polynomial in normal (MSB-first) form, without the
     * implicit x^width term — also for reflected specs, where the
     * engine bit-reverses it internally. */
    std::uint64_t poly = 0x04c11db7ull;
    /** Initial shift-register contents. */
    std::uint64_t init = 0xffffffffull;
    /** Value XORed into the register on finalize. */
    std::uint64_t xorOut = 0xffffffffull;
    /** LSB-first (reflected) processing: input bytes enter low bit
     * first and the register shifts right. */
    bool reflected = false;

    /** CRC-8 (poly 0x07, as in SMBus). */
    static CrcSpec crc8();
    /** CRC-16/CCITT-FALSE. */
    static CrcSpec crc16();
    /** CRC-24 (OpenPGP polynomial). */
    static CrcSpec crc24();
    /** CRC-32 (IEEE 802.3 polynomial, non-reflected form). */
    static CrcSpec crc32();
    /** CRC-32C (Castagnoli, poly 0x1edc6f41, reflected) — what the
     * SSE4.2 crc32 instruction computes. */
    static CrcSpec crc32c();
    /** CRC-32/ISO-HDLC (the zlib/PNG CRC): IEEE polynomial, reflected. */
    static CrcSpec crc32Reflected();
    /** CRC-64/ECMA-182. */
    static CrcSpec crc64();

    /** Spec for an arbitrary width, derived from CRC-64's polynomial. */
    static CrcSpec ofWidth(unsigned width);
};

/** Stateful CRC computation over a byte stream. */
class CrcEngine
{
  public:
    /**
     * Build the 8-bit-parallel constant table for @p spec. When
     * @p allowAccel (and the CPU supports it, and AXMEMO_NO_SIMD is not
     * set), bulk updates may use the SSE4.2/PCLMUL kernels; pass false
     * to force the portable paths regardless of host support.
     */
    explicit CrcEngine(const CrcSpec &spec = CrcSpec::crc32(),
                       bool allowAccel = true);

    /** The algorithm parameters in use. */
    const CrcSpec &spec() const { return spec_; }

    /** @return the initial register state. */
    std::uint64_t initial() const { return spec_.init & mask_; }

    /**
     * Advance @p state by one input bit through the LFSR model of Fig. 3:
     * the XOR of the input bit and the feedback bit drives the register.
     */
    std::uint64_t updateBit(std::uint64_t state, bool bit) const;

    /** Advance @p state by one byte using the bit-serial model (8 steps,
     * LSB first when the spec is reflected). */
    std::uint64_t updateByteSerial(std::uint64_t state,
                                   std::uint8_t byte) const;

    /** Advance @p state by one byte using the table (8-bit parallel). */
    std::uint64_t updateByte(std::uint64_t state, std::uint8_t byte) const;

    /** Advance @p state over @p len bytes at @p data through the fastest
     * path active for this spec/host (see bulkPathName()). */
    std::uint64_t update(std::uint64_t state, const void *data,
                         std::size_t len) const;

    /** Advance @p state over @p len bytes using only the portable
     * table/slice paths — the reference the SIMD kernels are verified
     * against, and the reduction step of the PCLMUL path. */
    std::uint64_t updatePortable(std::uint64_t state, const void *data,
                                 std::size_t len) const;

    /** Advance @p state over the low @p nbytes bytes of @p word (LE). */
    std::uint64_t updateWord(std::uint64_t state, std::uint64_t word,
                             unsigned nbytes) const;

    /** Apply the final XOR. */
    std::uint64_t finalize(std::uint64_t state) const
    {
        return (state ^ spec_.xorOut) & mask_;
    }

    /** One-shot checksum of a byte buffer. */
    std::uint64_t compute(const void *data, std::size_t len) const;

    /** The 256-entry constant table (exposed for the hardware RAM model). */
    const std::vector<std::uint64_t> &table() const { return table_; }

    /** True when the slice-by-8 bulk path is active for this width. */
    bool sliced() const { return stateBytes_ != 0; }

    /** True when update()/updateWord() may use a SIMD kernel. */
    bool hwAccelerated() const { return hwCrc32c_ || clmul_; }

    /** Name of the bulk data path update() uses for large buffers:
     * "sse4.2-crc32c", "pclmul", "slice8", "table" or "bit-serial". */
    const char *bulkPathName() const;

  private:
    /** Advance @p state over @p n bytes (stateBytes_ <= n <= 8) as one
     * XOR of n slice-table lookups. Only valid when sliced(). */
    std::uint64_t updateBlock(std::uint64_t state,
                              const std::uint8_t *data,
                              unsigned n) const;

    std::uint64_t sliceAt(unsigned zeros, std::uint8_t byte) const
    {
        return slice_[zeros * 256u + byte];
    }

    /** x^n mod P, by clocking the bit-serial LFSR n times from state 1
     * (PCLMUL folding constants). */
    std::uint64_t xPowModPoly(unsigned n) const;

    CrcSpec spec_;
    std::uint64_t mask_;
    std::uint64_t topBit_;
    /** spec_.poly bit-reversed into the low width bits (reflected). */
    std::uint64_t rpoly_ = 0;
    std::vector<std::uint64_t> table_;
    /** 8 x 256 slice tables; empty unless width is a byte multiple. */
    std::vector<std::uint64_t> slice_;
    /** width/8 when the slice path is active, else 0. */
    unsigned stateBytes_ = 0;
    /** SSE4.2 path: spec is exactly reflected CRC-32C and the host has
     * the crc32 instruction. */
    bool hwCrc32c_ = false;
    /** PCLMUL folding path for non-reflected byte-multiple widths. */
    bool clmul_ = false;
    /** x^{128,192,512,576} mod P when clmul_ is set. */
    std::uint64_t foldK_[4] = {0, 0, 0, 0};
};

} // namespace axmemo

#endif // AXMEMO_CRC_CRC_HH
