#include "crc/crc.hh"

#include "common/bits.hh"
#include "common/log.hh"
#include "common/runtime_options.hh"
#include "crc/cpu_features.hh"
#include "crc/crc_accel.hh"

namespace axmemo {

namespace {

/** Buffers below this keep the slice path; the PCLMUL kernel's final
 * reduction (16 portable byte steps) only amortizes on larger blocks. */
constexpr std::size_t kClmulMinLen = 256;

} // namespace

CrcSpec
CrcSpec::crc8()
{
    return {8, 0x07, 0x00, 0x00};
}

CrcSpec
CrcSpec::crc16()
{
    return {16, 0x1021, 0xffff, 0x0000};
}

CrcSpec
CrcSpec::crc24()
{
    return {24, 0x864cfb, 0xb704ce, 0x000000};
}

CrcSpec
CrcSpec::crc32()
{
    return {32, 0x04c11db7ull, 0xffffffffull, 0xffffffffull};
}

CrcSpec
CrcSpec::crc32c()
{
    return {32, 0x1edc6f41ull, 0xffffffffull, 0xffffffffull, true};
}

CrcSpec
CrcSpec::crc32Reflected()
{
    return {32, 0x04c11db7ull, 0xffffffffull, 0xffffffffull, true};
}

CrcSpec
CrcSpec::crc64()
{
    return {64, 0x42f0e1eba9ea3693ull, 0ull, 0ull};
}

CrcSpec
CrcSpec::ofWidth(unsigned width)
{
    switch (width) {
      case 8:
        return crc8();
      case 16:
        return crc16();
      case 24:
        return crc24();
      case 32:
        return crc32();
      case 64:
        return crc64();
      default:
        break;
    }
    if (width == 0 || width > 64)
        axm_fatal("unsupported CRC width ", width);
    // Derive a polynomial for odd widths by folding CRC-64's polynomial
    // down and forcing the low bit (so the polynomial is never trivial).
    CrcSpec spec;
    spec.width = width;
    spec.poly = (crc64().poly & maskLow(width)) | 1ull;
    spec.init = maskLow(width);
    spec.xorOut = maskLow(width);
    return spec;
}

CrcEngine::CrcEngine(const CrcSpec &spec, bool allowAccel)
    : spec_(spec), mask_(maskLow(spec.width)),
      topBit_(1ull << (spec.width - 1)), table_(256, 0)
{
    if (spec.width == 0 || spec.width > 64)
        axm_fatal("unsupported CRC width ", spec.width);
    rpoly_ = bitReverse(spec_.poly & mask_, spec_.width);

    // The table entry for byte b is the register evolution of feeding b
    // from a zero register; identical to running 8 bit-serial steps
    // (MSB first, or LSB first for reflected specs). For widths < 8 the
    // construction still works in both orders.
    for (unsigned b = 0; b < 256; ++b)
        table_[b] = updateByteSerial(0, static_cast<std::uint8_t>(b));

    // Slice-by-8 tables for byte-multiple widths: slice k holds the
    // register evolution of byte b followed by k zero bytes, so a block
    // of up to 8 input bytes folds into independent lookups (the serial
    // dependency chain of updateByte disappears). Non-byte widths keep
    // the serial paths; results are identical either way by linearity.
    if (spec_.width % 8 == 0) {
        stateBytes_ = spec_.width / 8;
        slice_.resize(8 * 256);
        for (unsigned b = 0; b < 256; ++b)
            slice_[b] = table_[b];
        for (unsigned k = 1; k < 8; ++k) {
            for (unsigned b = 0; b < 256; ++b) {
                const std::uint64_t prev = slice_[(k - 1) * 256 + b];
                slice_[k * 256 + b] =
                    spec_.reflected
                        ? (prev >> 8) ^
                              table_[static_cast<std::uint8_t>(prev)]
                        : ((prev << 8) ^
                           table_[static_cast<std::uint8_t>(
                               prev >> (spec_.width - 8))]) &
                              mask_;
            }
        }
    }

    // Hardware tiers: an engine only arms a SIMD kernel when the caller
    // allows it, the kernel is compiled in, the AXMEMO_NO_SIMD knob is
    // off, the host CPU has the instructions, and the spec is one the
    // kernel is exact for. Everything else stays on the slice/table
    // paths above.
    if (allowAccel && accel::compiledIn() && RuntimeOptions::global().simd) {
        if (spec_.reflected && spec_.width == 32 &&
            (spec_.poly & mask_) == 0x1edc6f41ull && cpuHasSse42()) {
            // The SSE4.2 crc32 instruction is reflected CRC-32C.
            hwCrc32c_ = true;
        } else if (!spec_.reflected && stateBytes_ != 0 &&
                   cpuHasPclmul()) {
            clmul_ = true;
            foldK_[0] = xPowModPoly(128);
            foldK_[1] = xPowModPoly(192);
            foldK_[2] = xPowModPoly(512);
            foldK_[3] = xPowModPoly(576);
        }
    }
}

std::uint64_t
CrcEngine::xPowModPoly(unsigned n) const
{
    // Clock the (non-reflected) LFSR n times from polynomial 1: each
    // step multiplies by x and reduces mod P.
    std::uint64_t state = 1;
    for (unsigned i = 0; i < n; ++i) {
        const bool feedback = (state & topBit_) != 0;
        state = (state << 1) & mask_;
        if (feedback)
            state ^= spec_.poly & mask_;
    }
    return state;
}

std::uint64_t
CrcEngine::updateBlock(std::uint64_t state, const std::uint8_t *data,
                       unsigned n) const
{
    // Feeding n >= stateBytes_ bytes shifts the whole register out, so
    // the new state is a pure XOR of per-byte contributions: state byte
    // j exits after j+1 steps and then sees n-1-j zero bytes (slice
    // n-1-j), merged with input byte j by linearity; the remaining
    // input bytes contribute their own slices. Reflected specs exit the
    // register low byte first, everything else is the mirror image.
    std::uint64_t acc = 0;
    unsigned i = 0;
    if (spec_.reflected) {
        for (; i < stateBytes_; ++i) {
            const auto s = static_cast<std::uint8_t>(state >> (8 * i));
            acc ^= sliceAt(n - 1 - i, s ^ data[i]);
        }
    } else {
        for (; i < stateBytes_; ++i) {
            const auto s = static_cast<std::uint8_t>(
                state >> (spec_.width - 8 * (i + 1)));
            acc ^= sliceAt(n - 1 - i, s ^ data[i]);
        }
    }
    for (; i < n; ++i)
        acc ^= sliceAt(n - 1 - i, data[i]);
    return acc;
}

std::uint64_t
CrcEngine::updateBit(std::uint64_t state, bool bit) const
{
    if (spec_.reflected) {
        const bool feedback = (state & 1) != 0;
        state >>= 1;
        if (bit ^ feedback)
            state ^= rpoly_;
        return state;
    }
    const bool feedback = (state & topBit_) != 0;
    state = (state << 1) & mask_;
    if (bit ^ feedback)
        state ^= spec_.poly & mask_;
    return state;
}

std::uint64_t
CrcEngine::updateByteSerial(std::uint64_t state, std::uint8_t byte) const
{
    if (spec_.reflected) {
        for (int i = 0; i < 8; ++i)
            state = updateBit(state, (byte >> i) & 1);
        return state;
    }
    for (int i = 7; i >= 0; --i)
        state = updateBit(state, (byte >> i) & 1);
    return state;
}

std::uint64_t
CrcEngine::updateByte(std::uint64_t state, std::uint8_t byte) const
{
    if (spec_.reflected) {
        // Works for every width: for w < 8 the whole register exits
        // during the 8 steps and combines with the low input bits, so
        // the index (state ^ byte) & 0xff is exact by linearity.
        const auto idx = static_cast<std::uint8_t>(state ^ byte);
        return ((state >> 8) ^ table_[idx]) & mask_;
    }
    if (spec_.width >= 8) {
        const auto idx = static_cast<std::uint8_t>(
            (state >> (spec_.width - 8)) ^ byte);
        return ((state << 8) ^ table_[idx]) & mask_;
    }
    // Narrow non-reflected CRCs cannot index the table with register
    // bits alone; fall back to the (identical) serial evolution.
    return updateByteSerial(state, byte);
}

std::uint64_t
CrcEngine::updatePortable(std::uint64_t state, const void *data,
                          std::size_t len) const
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    if (stateBytes_ == 4 && !spec_.reflected) {
        // Unrolled 32-bit hot case (the LUT-tag hash): constant slice
        // indices let the compiler hoist the eight table bases.
        for (; len >= 8; bytes += 8, len -= 8) {
            const auto s = static_cast<std::uint32_t>(state);
            state = sliceAt(7, static_cast<std::uint8_t>(s >> 24) ^
                                   bytes[0]) ^
                    sliceAt(6, static_cast<std::uint8_t>(s >> 16) ^
                                   bytes[1]) ^
                    sliceAt(5, static_cast<std::uint8_t>(s >> 8) ^
                                   bytes[2]) ^
                    sliceAt(4, static_cast<std::uint8_t>(s) ^
                                   bytes[3]) ^
                    sliceAt(3, bytes[4]) ^ sliceAt(2, bytes[5]) ^
                    sliceAt(1, bytes[6]) ^ sliceAt(0, bytes[7]);
        }
        if (len >= 4)
            return updateBlock(state, bytes,
                               static_cast<unsigned>(len));
    } else if (stateBytes_ != 0) {
        for (; len >= 8; bytes += 8, len -= 8)
            state = updateBlock(state, bytes, 8);
        if (len >= stateBytes_)
            return updateBlock(state, bytes,
                               static_cast<unsigned>(len));
    }
    for (std::size_t i = 0; i < len; ++i)
        state = updateByte(state, bytes[i]);
    return state;
}

std::uint64_t
CrcEngine::update(std::uint64_t state, const void *data,
                  std::size_t len) const
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    if (hwCrc32c_)
        return accel::crc32cUpdate(state, bytes, len);
    if (clmul_ && len >= kClmulMinLen) {
        const accel::FoldConsts k{foldK_[0], foldK_[1], foldK_[2],
                                  foldK_[3]};
        std::uint8_t residue[16];
        const std::size_t consumed = accel::clmulFold(
            k, spec_.width, state, bytes, len, residue);
        // The residue's portable CRC from a zero register IS the folded
        // state; reducing through the verified slice path keeps the
        // whole pipeline bit-identical to the serial LFSR.
        state = updatePortable(0, residue, 16);
        bytes += consumed;
        len -= consumed;
    }
    return updatePortable(state, bytes, len);
}

std::uint64_t
CrcEngine::updateWord(std::uint64_t state, std::uint64_t word,
                      unsigned nbytes) const
{
    if (nbytes > 8)
        axm_panic("CrcEngine::updateWord of ", nbytes, " bytes");
    if (hwCrc32c_)
        return accel::crc32cUpdateWord(state, word, nbytes);
    if (stateBytes_ != 0 && nbytes >= stateBytes_) {
        std::uint8_t bytes[8];
        for (unsigned i = 0; i < nbytes; ++i)
            bytes[i] = static_cast<std::uint8_t>(word >> (8 * i));
        return updateBlock(state, bytes, nbytes);
    }
    for (unsigned i = 0; i < nbytes; ++i)
        state = updateByte(state, static_cast<std::uint8_t>(word >> (8 * i)));
    return state;
}

std::uint64_t
CrcEngine::compute(const void *data, std::size_t len) const
{
    return finalize(update(initial(), data, len));
}

const char *
CrcEngine::bulkPathName() const
{
    if (hwCrc32c_)
        return "sse4.2-crc32c";
    if (clmul_)
        return "pclmul";
    if (sliced())
        return "slice8";
    if (spec_.width >= 8 || spec_.reflected)
        return "table";
    return "bit-serial";
}

} // namespace axmemo
