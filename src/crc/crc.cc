#include "crc/crc.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace axmemo {

CrcSpec
CrcSpec::crc8()
{
    return {8, 0x07, 0x00, 0x00};
}

CrcSpec
CrcSpec::crc16()
{
    return {16, 0x1021, 0xffff, 0x0000};
}

CrcSpec
CrcSpec::crc24()
{
    return {24, 0x864cfb, 0xb704ce, 0x000000};
}

CrcSpec
CrcSpec::crc32()
{
    return {32, 0x04c11db7ull, 0xffffffffull, 0xffffffffull};
}

CrcSpec
CrcSpec::crc64()
{
    return {64, 0x42f0e1eba9ea3693ull, 0ull, 0ull};
}

CrcSpec
CrcSpec::ofWidth(unsigned width)
{
    switch (width) {
      case 8:
        return crc8();
      case 16:
        return crc16();
      case 24:
        return crc24();
      case 32:
        return crc32();
      case 64:
        return crc64();
      default:
        break;
    }
    if (width == 0 || width > 64)
        axm_fatal("unsupported CRC width ", width);
    // Derive a polynomial for odd widths by folding CRC-64's polynomial
    // down and forcing the low bit (so the polynomial is never trivial).
    CrcSpec spec;
    spec.width = width;
    spec.poly = (crc64().poly & maskLow(width)) | 1ull;
    spec.init = maskLow(width);
    spec.xorOut = maskLow(width);
    return spec;
}

CrcEngine::CrcEngine(const CrcSpec &spec)
    : spec_(spec), mask_(maskLow(spec.width)),
      topBit_(1ull << (spec.width - 1)), table_(256, 0)
{
    if (spec.width == 0 || spec.width > 64)
        axm_fatal("unsupported CRC width ", spec.width);
    // The table entry for byte b is the register evolution of b << (w-8);
    // identical to running 8 bit-serial steps. For widths < 8 the standard
    // construction still works by processing bits MSB-first.
    for (unsigned b = 0; b < 256; ++b) {
        std::uint64_t state = 0;
        std::uint8_t byte = static_cast<std::uint8_t>(b);
        for (int i = 7; i >= 0; --i) {
            const bool inBit = (byte >> i) & 1;
            const bool fbBit = (state & topBit_) != 0;
            state = (state << 1) & mask_;
            if (inBit ^ fbBit)
                state ^= spec_.poly & mask_;
        }
        table_[b] = state;
    }

    // Slice-by-8 tables for byte-multiple widths: slice k holds the
    // register evolution of byte b followed by k zero bytes, so a block
    // of up to 8 input bytes folds into independent lookups (the serial
    // dependency chain of updateByte disappears). Non-byte widths keep
    // the serial paths; results are identical either way by linearity.
    if (spec_.width % 8 == 0) {
        stateBytes_ = spec_.width / 8;
        slice_.resize(8 * 256);
        for (unsigned b = 0; b < 256; ++b)
            slice_[b] = table_[b];
        for (unsigned k = 1; k < 8; ++k) {
            for (unsigned b = 0; b < 256; ++b) {
                const std::uint64_t prev = slice_[(k - 1) * 256 + b];
                slice_[k * 256 + b] =
                    ((prev << 8) ^
                     table_[static_cast<std::uint8_t>(
                         prev >> (spec_.width - 8))]) &
                    mask_;
            }
        }
    }
}

std::uint64_t
CrcEngine::updateBlock(std::uint64_t state, const std::uint8_t *data,
                       unsigned n) const
{
    // Feeding n >= stateBytes_ bytes shifts the whole register out, so
    // the new state is a pure XOR of per-byte contributions: state byte
    // j exits after j+1 steps and then sees n-1-j zero bytes (slice
    // n-1-j), merged with input byte j by linearity; the remaining
    // input bytes contribute their own slices.
    std::uint64_t acc = 0;
    unsigned i = 0;
    for (; i < stateBytes_; ++i) {
        const auto s = static_cast<std::uint8_t>(
            state >> (spec_.width - 8 * (i + 1)));
        acc ^= sliceAt(n - 1 - i, s ^ data[i]);
    }
    for (; i < n; ++i)
        acc ^= sliceAt(n - 1 - i, data[i]);
    return acc;
}

std::uint64_t
CrcEngine::updateBit(std::uint64_t state, bool bit) const
{
    const bool feedback = (state & topBit_) != 0;
    state = (state << 1) & mask_;
    if (bit ^ feedback)
        state ^= spec_.poly & mask_;
    return state;
}

std::uint64_t
CrcEngine::updateByteSerial(std::uint64_t state, std::uint8_t byte) const
{
    for (int i = 7; i >= 0; --i)
        state = updateBit(state, (byte >> i) & 1);
    return state;
}

std::uint64_t
CrcEngine::updateByte(std::uint64_t state, std::uint8_t byte) const
{
    if (spec_.width >= 8) {
        const auto idx = static_cast<std::uint8_t>(
            (state >> (spec_.width - 8)) ^ byte);
        return ((state << 8) ^ table_[idx]) & mask_;
    }
    // Narrow CRCs cannot index the table with register bits alone; fall
    // back to the (identical) serial evolution.
    return updateByteSerial(state, byte);
}

std::uint64_t
CrcEngine::update(std::uint64_t state, const void *data,
                  std::size_t len) const
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    if (stateBytes_ == 4) {
        // Unrolled 32-bit hot case (the LUT-tag hash): constant slice
        // indices let the compiler hoist the eight table bases.
        for (; len >= 8; bytes += 8, len -= 8) {
            const auto s = static_cast<std::uint32_t>(state);
            state = sliceAt(7, static_cast<std::uint8_t>(s >> 24) ^
                                   bytes[0]) ^
                    sliceAt(6, static_cast<std::uint8_t>(s >> 16) ^
                                   bytes[1]) ^
                    sliceAt(5, static_cast<std::uint8_t>(s >> 8) ^
                                   bytes[2]) ^
                    sliceAt(4, static_cast<std::uint8_t>(s) ^
                                   bytes[3]) ^
                    sliceAt(3, bytes[4]) ^ sliceAt(2, bytes[5]) ^
                    sliceAt(1, bytes[6]) ^ sliceAt(0, bytes[7]);
        }
        if (len >= 4)
            return updateBlock(state, bytes,
                               static_cast<unsigned>(len));
    } else if (stateBytes_ != 0) {
        for (; len >= 8; bytes += 8, len -= 8)
            state = updateBlock(state, bytes, 8);
        if (len >= stateBytes_)
            return updateBlock(state, bytes,
                               static_cast<unsigned>(len));
    }
    for (std::size_t i = 0; i < len; ++i)
        state = updateByte(state, bytes[i]);
    return state;
}

std::uint64_t
CrcEngine::updateWord(std::uint64_t state, std::uint64_t word,
                      unsigned nbytes) const
{
    if (nbytes > 8)
        axm_panic("CrcEngine::updateWord of ", nbytes, " bytes");
    if (stateBytes_ != 0 && nbytes >= stateBytes_) {
        std::uint8_t bytes[8];
        for (unsigned i = 0; i < nbytes; ++i)
            bytes[i] = static_cast<std::uint8_t>(word >> (8 * i));
        return updateBlock(state, bytes, nbytes);
    }
    for (unsigned i = 0; i < nbytes; ++i)
        state = updateByte(state, static_cast<std::uint8_t>(word >> (8 * i)));
    return state;
}

std::uint64_t
CrcEngine::compute(const void *data, std::size_t len) const
{
    return finalize(update(initial(), data, len));
}

} // namespace axmemo
