#include "crc/crc.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace axmemo {

CrcSpec
CrcSpec::crc8()
{
    return {8, 0x07, 0x00, 0x00};
}

CrcSpec
CrcSpec::crc16()
{
    return {16, 0x1021, 0xffff, 0x0000};
}

CrcSpec
CrcSpec::crc24()
{
    return {24, 0x864cfb, 0xb704ce, 0x000000};
}

CrcSpec
CrcSpec::crc32()
{
    return {32, 0x04c11db7ull, 0xffffffffull, 0xffffffffull};
}

CrcSpec
CrcSpec::crc64()
{
    return {64, 0x42f0e1eba9ea3693ull, 0ull, 0ull};
}

CrcSpec
CrcSpec::ofWidth(unsigned width)
{
    switch (width) {
      case 8:
        return crc8();
      case 16:
        return crc16();
      case 24:
        return crc24();
      case 32:
        return crc32();
      case 64:
        return crc64();
      default:
        break;
    }
    if (width == 0 || width > 64)
        axm_fatal("unsupported CRC width ", width);
    // Derive a polynomial for odd widths by folding CRC-64's polynomial
    // down and forcing the low bit (so the polynomial is never trivial).
    CrcSpec spec;
    spec.width = width;
    spec.poly = (crc64().poly & maskLow(width)) | 1ull;
    spec.init = maskLow(width);
    spec.xorOut = maskLow(width);
    return spec;
}

CrcEngine::CrcEngine(const CrcSpec &spec)
    : spec_(spec), mask_(maskLow(spec.width)),
      topBit_(1ull << (spec.width - 1)), table_(256, 0)
{
    if (spec.width == 0 || spec.width > 64)
        axm_fatal("unsupported CRC width ", spec.width);
    // The table entry for byte b is the register evolution of b << (w-8);
    // identical to running 8 bit-serial steps. For widths < 8 the standard
    // construction still works by processing bits MSB-first.
    for (unsigned b = 0; b < 256; ++b) {
        std::uint64_t state = 0;
        std::uint8_t byte = static_cast<std::uint8_t>(b);
        for (int i = 7; i >= 0; --i) {
            const bool inBit = (byte >> i) & 1;
            const bool fbBit = (state & topBit_) != 0;
            state = (state << 1) & mask_;
            if (inBit ^ fbBit)
                state ^= spec_.poly & mask_;
        }
        table_[b] = state;
    }
}

std::uint64_t
CrcEngine::updateBit(std::uint64_t state, bool bit) const
{
    const bool feedback = (state & topBit_) != 0;
    state = (state << 1) & mask_;
    if (bit ^ feedback)
        state ^= spec_.poly & mask_;
    return state;
}

std::uint64_t
CrcEngine::updateByteSerial(std::uint64_t state, std::uint8_t byte) const
{
    for (int i = 7; i >= 0; --i)
        state = updateBit(state, (byte >> i) & 1);
    return state;
}

std::uint64_t
CrcEngine::updateByte(std::uint64_t state, std::uint8_t byte) const
{
    if (spec_.width >= 8) {
        const auto idx = static_cast<std::uint8_t>(
            (state >> (spec_.width - 8)) ^ byte);
        return ((state << 8) ^ table_[idx]) & mask_;
    }
    // Narrow CRCs cannot index the table with register bits alone; fall
    // back to the (identical) serial evolution.
    return updateByteSerial(state, byte);
}

std::uint64_t
CrcEngine::update(std::uint64_t state, const void *data,
                  std::size_t len) const
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i)
        state = updateByte(state, bytes[i]);
    return state;
}

std::uint64_t
CrcEngine::updateWord(std::uint64_t state, std::uint64_t word,
                      unsigned nbytes) const
{
    for (unsigned i = 0; i < nbytes; ++i)
        state = updateByte(state, static_cast<std::uint8_t>(word >> (8 * i)));
    return state;
}

std::uint64_t
CrcEngine::compute(const void *data, std::size_t len) const
{
    return finalize(update(initial(), data, len));
}

} // namespace axmemo
