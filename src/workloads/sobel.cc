/**
 * @file
 * Sobel (AxBench): 3x3 edge-detection filter over a grayscale image. The
 * memoized region takes the nine neighborhood pixels (36 B, Table 2 — the
 * example Section 2 uses to motivate hashing over concatenated tags),
 * truncated by 16 bits, and produces the clamped gradient magnitude.
 * Mosaic-structured images make truncated neighborhoods repeat heavily in
 * flat areas.
 */

#include <algorithm>
#include <cmath>

#include "isa/builder.hh"
#include "workloads/datasets.hh"
#include "workloads/workload.hh"

namespace axmemo {

namespace {

class SobelWorkload final : public Workload
{
  public:
    std::string name() const override { return "sobel"; }
    std::string domain() const override { return "Image Processing"; }
    std::string
    description() const override
    {
        return "Applies the Sobel filter to an image";
    }
    std::string
    datasetDescription() const override
    {
        return "512x512 pixel images";
    }

    void
    prepare(SimMemory &mem, const WorkloadParams &params) override
    {
        unsigned side = static_cast<unsigned>(
            512.0 * std::sqrt(std::max(0.001, params.scale)));
        side = std::max(32u, side);
        w_ = side;
        h_ = side;

        Rng rng(params.seed ^ (params.sampleSet ? 0x50b1ull : 0));
        const std::vector<float> img = synthImageGray(w_, h_, rng);

        imgBase_ = mem.allocate(static_cast<std::size_t>(w_) * h_ * 4);
        outBase_ = mem.allocate(static_cast<std::size_t>(w_) * h_ * 4);
        // Mild continuous sensor noise around a mid-bucket offset:
        // +0.1 keeps the quantized mosaic values off truncation-bucket
        // boundaries so 16-bit-truncated 9-tuples still match in flat
        // areas, while the continuous jitter makes exact float matches
        // rare — the contrast Fig. 11 measures.
        for (std::size_t i = 0; i < img.size(); ++i) {
            const float jitter =
                static_cast<float>(rng.uniform(-0.01, 0.01));
            mem.writeFloat(imgBase_ + 4 * i, img[i] + 0.1f + jitter);
        }
    }

    Program
    build() const override
    {
        KernelBuilder b("sobel");
        const IReg img = b.imm(static_cast<std::int64_t>(imgBase_));
        const IReg out = b.imm(static_cast<std::int64_t>(outBase_));
        const std::int64_t w = w_;

        b.forRange(1, static_cast<std::int64_t>(h_) - 1, 1, [&](IReg y) {
            b.forRange(
                1, static_cast<std::int64_t>(w_) - 1, 1, [&](IReg x) {
                    // Address of the top-left neighbor.
                    const IReg idx =
                        b.add(b.mul(b.sub(y, 1), w), b.sub(x, 1));
                    const IReg a0 = b.add(img, b.shl(idx, 2));
                    const IReg a1 = b.add(a0, 4 * w);
                    const IReg a2 = b.add(a1, 4 * w);

                    const FReg p00 = b.ldf(a0, 0);
                    const FReg p01 = b.ldf(a0, 4);
                    const FReg p02 = b.ldf(a0, 8);
                    const FReg p10 = b.ldf(a1, 0);
                    const FReg p11 = b.ldf(a1, 4);
                    const FReg p12 = b.ldf(a1, 8);
                    const FReg p20 = b.ldf(a2, 0);
                    const FReg p21 = b.ldf(a2, 4);
                    const FReg p22 = b.ldf(a2, 8);

                    b.regionBegin(kRegion);
                    const FReg two = b.fimm(2.0f);
                    // gx = (p02 + 2 p12 + p22) - (p00 + 2 p10 + p20)
                    const FReg gx = b.fsub(
                        b.fadd(p02, b.fadd(b.fmul(two, p12), p22)),
                        b.fadd(p00, b.fadd(b.fmul(two, p10), p20)));
                    // gy = (p20 + 2 p21 + p22) - (p00 + 2 p01 + p02)
                    const FReg gy = b.fsub(
                        b.fadd(p20, b.fadd(b.fmul(two, p21), p22)),
                        b.fadd(p00, b.fadd(b.fmul(two, p01), p02)));
                    const FReg mag = b.fsqrt(
                        b.fadd(b.fmul(gx, gx), b.fmul(gy, gy)));
                    const FReg clamped =
                        b.fmin(mag, b.fimm(255.0f));
                    // p11 participates so the region covers the full
                    // window (the filter's center tap has zero weight;
                    // including it keeps Table 2's nine inputs).
                    const FReg result =
                        b.fadd(clamped, b.fmul(b.fimm(0.0f), p11));
                    b.regionEnd(kRegion);

                    const IReg oidx = b.add(b.mul(y, w), x);
                    b.stf(b.add(out, b.shl(oidx, 2)), 0, result);
                });
        });
        return b.finish();
    }

    MemoSpec
    memoSpec() const override
    {
        MemoSpec spec;
        RegionMemoSpec region;
        region.regionId = kRegion;
        region.lut = 0;
        region.truncBits = 16; // Table 2
        spec.regions.push_back(region);
        return spec;
    }

    bool imageOutput() const override { return true; }

    std::vector<double>
    readOutputs(const SimMemory &mem) const override
    {
        std::vector<double> out;
        out.reserve(static_cast<std::size_t>(w_) * h_);
        for (std::size_t i = 0; i < static_cast<std::size_t>(w_) * h_;
             ++i)
            out.push_back(mem.readFloat(outBase_ + 4 * i));
        return out;
    }

  private:
    static constexpr int kRegion = 1;

    unsigned w_ = 0;
    unsigned h_ = 0;
    Addr imgBase_ = 0;
    Addr outBase_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeSobel()
{
    return std::make_unique<SobelWorkload>();
}

} // namespace axmemo
