/**
 * @file
 * LavaMD (Rodinia): particle interactions within a cut-off radius across
 * neighboring boxes. The memoized region is the pair potential: three
 * float inputs (the displacement vector dx,dy,dz; 12 B, Table 2) with no
 * truncation, one float output (exp(-a2*r^2)); the charge factor is
 * applied outside the region. Particle positions sit on a lattice (grid-
 * initialized molecular systems), so displacement vectors repeat exactly —
 * the redundancy that makes zero-truncation memoization pay off. The box
 * neighborhood is 1-D (box i interacts with i-1, i, i+1), a documented
 * simplification of Rodinia's 3-D 27-neighbor stencil that preserves the
 * kernel and its reuse structure.
 */

#include <algorithm>
#include <cmath>

#include "isa/builder.hh"
#include "workloads/datasets.hh"
#include "workloads/workload.hh"

namespace axmemo {

namespace {

constexpr float kA2 = 2.0f;

class LavamdWorkload final : public Workload
{
  public:
    std::string name() const override { return "lavamd"; }
    std::string domain() const override { return "Molecular Dynamics"; }
    std::string
    description() const override
    {
        return "Simulates particle interactions with charge";
    }
    std::string
    datasetDescription() const override
    {
        return "16x100 particles of lattice initial position";
    }

    void
    prepare(SimMemory &mem, const WorkloadParams &params) override
    {
        boxes_ = std::max<unsigned>(
            4, static_cast<unsigned>(16 * params.scale));
        particles_ = std::max<unsigned>(
            48, static_cast<unsigned>(
                    100 * std::sqrt(std::max(0.01, params.scale))));
        const std::size_t total =
            static_cast<std::size_t>(boxes_) * particles_;

        Rng rng(params.seed ^ (params.sampleSet ? 0x1a7aull : 0));
        posBase_ = mem.allocate(total * 12);
        chargeBase_ = mem.allocate(total * 4);
        outBase_ = mem.allocate(total * 16);

        // Lattice-quantized positions: box-local coordinates on a 1/8
        // grid (crystal-like initialization), boxes spaced 1.0 apart
        // along x; y/z confined to a slab so displacement vectors
        // repeat across particle pairs.
        const float grid = 1.0f / 8.0f;
        for (unsigned bx = 0; bx < boxes_; ++bx) {
            for (unsigned p = 0; p < particles_; ++p) {
                const std::size_t i =
                    static_cast<std::size_t>(bx) * particles_ + p;
                const float lx = quantize(
                    static_cast<float>(rng.uniform(0.0, 1.0)), grid);
                const float ly = quantize(
                    static_cast<float>(rng.uniform(0.0, 0.5)), grid);
                const float lz = quantize(
                    static_cast<float>(rng.uniform(0.0, 0.5)), grid);
                mem.writeFloat(posBase_ + 12 * i + 0,
                               static_cast<float>(bx) + lx);
                mem.writeFloat(posBase_ + 12 * i + 4, ly);
                mem.writeFloat(posBase_ + 12 * i + 8, lz);
                mem.writeFloat(chargeBase_ + 4 * i,
                               quantize(static_cast<float>(
                                            rng.uniform(0.5, 1.5)),
                                        0.125f));
            }
        }
    }

    Program
    build() const override
    {
        KernelBuilder b("lavamd");
        const IReg pos = b.imm(static_cast<std::int64_t>(posBase_));
        const IReg charge =
            b.imm(static_cast<std::int64_t>(chargeBase_));
        const IReg out = b.imm(static_cast<std::int64_t>(outBase_));
        const std::int64_t numBoxes = boxes_;
        const std::int64_t perBox = particles_;

        b.forRange(0, numBoxes, 1, [&](IReg bx) {
            b.forRange(0, perBox, 1, [&](IReg pi) {
                const IReg i =
                    b.add(b.mul(bx, perBox), pi);
                const IReg ia = b.add(pos, b.mul(i, 12));
                const FReg xi = b.ldf(ia, 0);
                const FReg yi = b.ldf(ia, 4);
                const FReg zi = b.ldf(ia, 8);

                // Per-particle accumulators.
                const FReg potE = b.newFReg();
                const FReg fx = b.newFReg();
                const FReg fy = b.newFReg();
                const FReg fz = b.newFReg();
                b.assign(potE, 0.0f);
                b.assign(fx, 0.0f);
                b.assign(fy, 0.0f);
                b.assign(fz, 0.0f);

                b.forRange(-1, 2, 1, [&](IReg d) {
                    const IReg nb = b.add(bx, d);
                    const IReg inRange =
                        b.band(b.sle(b.imm(0), nb),
                               b.slt(nb, b.imm(numBoxes)));
                    b.ifThen(inRange, [&] {
                        b.forRange(0, perBox, 1, [&](IReg pj) {
                            const IReg j =
                                b.add(b.mul(nb, perBox), pj);
                            const IReg ja =
                                b.add(pos, b.mul(j, 12));
                            const FReg dx =
                                b.fsub(xi, b.ldf(ja, 0));
                            const FReg dy =
                                b.fsub(yi, b.ldf(ja, 4));
                            const FReg dz =
                                b.fsub(zi, b.ldf(ja, 8));

                            b.regionBegin(kRegion);
                            const FReg r2 = b.fadd(
                                b.fmul(dx, dx),
                                b.fadd(b.fmul(dy, dy),
                                       b.fmul(dz, dz)));
                            const FReg u2 =
                                b.fmul(b.fimm(kA2), r2);
                            const FReg vij =
                                b.fexp(b.fneg(u2));
                            b.regionEnd(kRegion);

                            // Charge factor applied outside the
                            // memoized function.
                            const FReg qj = b.ldf(
                                b.add(charge, b.shl(j, 2)), 0);
                            const FReg e = b.fmul(qj, vij);
                            b.faddTo(potE, potE, e);
                            const FReg fs = b.fmul(
                                b.fimm(2.0f), e);
                            b.faddTo(fx, fx, b.fmul(fs, dx));
                            b.faddTo(fy, fy, b.fmul(fs, dy));
                            b.faddTo(fz, fz, b.fmul(fs, dz));
                        });
                    });
                });

                const IReg oa = b.add(out, b.shl(i, 4));
                b.stf(oa, 0, potE);
                b.stf(oa, 4, fx);
                b.stf(oa, 8, fy);
                b.stf(oa, 12, fz);
            });
        });
        return b.finish();
    }

    MemoSpec
    memoSpec() const override
    {
        MemoSpec spec;
        RegionMemoSpec region;
        region.regionId = kRegion;
        region.lut = 0;
        region.truncBits = 0; // Table 2
        spec.regions.push_back(region);
        return spec;
    }

    std::vector<double>
    readOutputs(const SimMemory &mem) const override
    {
        const std::size_t total =
            static_cast<std::size_t>(boxes_) * particles_;
        std::vector<double> out;
        out.reserve(4 * total);
        for (std::size_t i = 0; i < 4 * total; ++i)
            out.push_back(mem.readFloat(outBase_ + 4 * i));
        return out;
    }

  private:
    static constexpr int kRegion = 1;

    unsigned boxes_ = 0;
    unsigned particles_ = 0;
    Addr posBase_ = 0;
    Addr chargeBase_ = 0;
    Addr outBase_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeLavamd()
{
    return std::make_unique<LavamdWorkload>();
}

} // namespace axmemo
