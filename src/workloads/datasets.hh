/**
 * @file
 * Synthetic dataset generators shaped like the benchmark suites' default
 * inputs. The generators reproduce each input class's *redundancy
 * structure* — the property AxMemo exploits — not the exact files:
 * images are mosaics of flat regions, gradients and textured patches;
 * option streams repeat templates the way market snapshots do; sensor
 * angles are quantized to encoder resolution; particle lattices have
 * crystal-like regular spacing.
 */

#ifndef AXMEMO_WORKLOADS_DATASETS_HH
#define AXMEMO_WORKLOADS_DATASETS_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace axmemo {

/**
 * Grayscale image in [0, 255]: a mosaic of flat rectangles (majority),
 * linear gradients, and a lightly textured band — the flat/smooth content
 * that makes neighborhoods repeat after truncation. @p noise adds
 * continuous (non-quantized) per-pixel jitter of the given amplitude:
 * with it, exact repeats become rare but truncated repeats stay common,
 * which is precisely the redundancy input approximation recovers
 * (Fig. 11's contrast).
 */
std::vector<float> synthImageGray(unsigned width, unsigned height,
                                  Rng &rng, float noise = 0.0f);

/** RGB image as three planes concatenated (R plane, G plane, B plane). */
std::vector<float> synthImageRgb(unsigned width, unsigned height,
                                 Rng &rng, float noise = 0.0f);

/**
 * Image whose colors come from a small palette plus noise — clusterable
 * content for K-means. Returns interleaved r,g,b triples in [0, 255].
 */
std::vector<float> synthPaletteImage(unsigned width, unsigned height,
                                     unsigned paletteSize, Rng &rng);

/** Round @p x down to a multiple of @p step (sensor quantization). */
float quantize(float x, float step);

} // namespace axmemo

#endif // AXMEMO_WORKLOADS_DATASETS_HH
