/**
 * @file
 * Synthetic multi-tenant request traces (the serving-side workload
 * class the ROADMAP's "millions of users" scenario asks for).
 *
 * A trace is a deterministic function of its spec: same seed, same
 * spec, byte-identical request stream on every platform (all sampling
 * goes through common/rng.hh). Three knobs shape realistic traffic:
 *
 *  - **Zipfian key popularity** per tenant: rank-r keys are requested
 *    with probability proportional to 1/r^alpha, and ranks are mapped
 *    onto keys by a seeded Fisher-Yates permutation so "hot" keys are
 *    not numerically adjacent (a true bijection: rank-r mass lands on
 *    exactly one key and every key is reachable).
 *  - **Diurnal load curve**: the arrival rate is modulated by
 *    1 + amplitude * sin(2*pi*t/period), the squashed day/night cycle
 *    of production request logs.
 *  - **Bursty arrivals**: a two-state Markov-modulated Poisson process
 *    (quiet/burst) multiplies the rate by burstFactor during burst
 *    episodes; arrivals are drawn by Lewis-Shedler thinning against
 *    the rate envelope, so the stream is an exact nonhomogeneous
 *    Poisson sample, not a binned approximation.
 *
 * Each request names a tenant (weighted choice), one of the tenant's
 * kernels (the ten Table 2 workloads are the kernel universe), and a
 * key. The serve layer (src/serve) hashes (kernel, key) into the memo
 * LUT; the replay client turns misses into update requests, mirroring
 * the lookup -> update protocol of the ISA extension.
 */

#ifndef AXMEMO_WORKLOADS_REQUEST_TRACE_HH
#define AXMEMO_WORKLOADS_REQUEST_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace axmemo {

/** One tenant's traffic profile within a trace. */
struct TenantTrafficSpec
{
    std::string name = "tenant";
    /** Relative share of the request stream (normalized over tenants). */
    double weight = 1.0;
    /** Kernel mix: indices into the ten registered workloads
     * (workloadNames() order). Empty = all ten, uniformly. */
    std::vector<std::uint8_t> kernels;
    /** Zipf exponent of the key popularity (0 = uniform). */
    double zipfAlpha = 0.99;
    /** Distinct keys this tenant ever requests. */
    std::uint64_t keySpace = 4096;
};

/** Full specification of one synthetic request trace. */
struct RequestTraceSpec
{
    std::uint64_t seed = 42;
    /** Total requests to generate. */
    std::uint64_t requests = 10000;
    /** Mean arrival rate in requests/second of simulated trace time
     * (the replay client may replay faster than real time). */
    double ratePerSecond = 2000.0;
    /** Diurnal modulation amplitude in [0, 1) and period in seconds. */
    double diurnalAmplitude = 0.4;
    double diurnalPeriodSeconds = 60.0;
    /** Burst episodes: rate multiplier while bursting, mean seconds
     * between episode starts, mean episode length in seconds.
     * burstFactor <= 1 disables bursts. */
    double burstFactor = 4.0;
    double burstEverySeconds = 10.0;
    double burstLengthSeconds = 0.5;
    std::vector<TenantTrafficSpec> tenants;

    /** Two-tenant default mix over all ten kernels (smoke/CI sizing). */
    static RequestTraceSpec smoke(std::uint64_t seed = 42);
};

/** One generated request. */
struct TraceRequest
{
    /** Arrival time in seconds since trace start. */
    double timeSeconds = 0.0;
    std::uint16_t tenant = 0;
    /** Kernel index (workloadNames() order). */
    std::uint8_t kernel = 0;
    std::uint64_t key = 0;
};

/**
 * Generate the trace described by @p spec. Deterministic: equal specs
 * (including seed) produce element-wise identical vectors. Requests
 * are emitted in nondecreasing time order.
 */
std::vector<TraceRequest> generateRequestTrace(const RequestTraceSpec &spec);

/**
 * The instantaneous arrival-rate envelope at @p t (diurnal curve times
 * burst ceiling, in requests/second) — the thinning bound used by the
 * generator, exposed so tests can assert per-bucket arrival counts
 * stay under it.
 */
double traceRateCeiling(const RequestTraceSpec &spec, double t);

/**
 * Deterministic "computed result" for a missed key: what the replay
 * client sends back in the update request (a stand-in for re-running
 * the kernel region). Pure function of (kernel, key).
 */
std::uint64_t traceResultFor(std::uint8_t kernel, std::uint64_t key);

} // namespace axmemo

#endif // AXMEMO_WORKLOADS_REQUEST_TRACE_HH
