/**
 * @file
 * Jmeint (AxBench): Moller-style triangle-triangle intersection from a 3D
 * game engine. The memoized region is the interval-overlap decision stage:
 * eight float inputs (three signed distances and three line projections of
 * one triangle, plus the other triangle's precomputed interval; 32 B — the
 * paper's decomposition reaches 36 B, noted in EXPERIMENTS.md), truncation
 * 6 bits, one boolean output. Fully random triangle pairs give the region
 * essentially unique inputs every invocation — reproducing the paper's
 * <0.1% hit rate and ~1x speedup, the designed failure case.
 */

#include <algorithm>

#include "common/rng.hh"
#include "isa/builder.hh"
#include "workloads/workload.hh"

namespace axmemo {

namespace {

struct Vec3Regs
{
    FReg x, y, z;
};

/** dot(a, b) */
FReg
emitDot(KernelBuilder &b, const Vec3Regs &a, const Vec3Regs &c)
{
    return b.fadd(b.fmul(a.x, c.x),
                  b.fadd(b.fmul(a.y, c.y), b.fmul(a.z, c.z)));
}

/** cross(a, b) */
Vec3Regs
emitCross(KernelBuilder &b, const Vec3Regs &a, const Vec3Regs &c)
{
    return {b.fsub(b.fmul(a.y, c.z), b.fmul(a.z, c.y)),
            b.fsub(b.fmul(a.z, c.x), b.fmul(a.x, c.z)),
            b.fsub(b.fmul(a.x, c.y), b.fmul(a.y, c.x))};
}

/**
 * Interval of a triangle along the intersection line: given the signed
 * distances d0..d2 to the other plane and projections p0..p2, interpolate
 * where the two plane-crossing edges intersect. The vertex on its own
 * side is selected with the standard sign case analysis.
 */
void
emitInterval(KernelBuilder &b, FReg d0, FReg d1, FReg d2, FReg p0,
             FReg p1, FReg p2, FReg tmin, FReg tmax)
{
    const FReg zero = b.fimm(0.0f);
    const FReg t1 = b.newFReg();
    const FReg t2 = b.newFReg();

    auto edgeT = [&](FReg pa, FReg pb, FReg da, FReg db) {
        // pa + (pb - pa) * da / (da - db)
        return b.fadd(pa, b.fmul(b.fsub(pb, pa),
                                 b.fdiv(da, b.fsub(da, db))));
    };

    const IReg same01 = b.flt(zero, b.fmul(d0, d1));
    b.ifThenElse(
        same01,
        [&] {
            // v2 is alone: edges 0-2 and 1-2 cross the plane.
            b.assign(t1, edgeT(p0, p2, d0, d2));
            b.assign(t2, edgeT(p1, p2, d1, d2));
        },
        [&] {
            const IReg same02 = b.flt(zero, b.fmul(d0, d2));
            b.ifThenElse(
                same02,
                [&] {
                    // v1 is alone.
                    b.assign(t1, edgeT(p0, p1, d0, d1));
                    b.assign(t2, edgeT(p2, p1, d2, d1));
                },
                [&] {
                    // v0 is alone.
                    b.assign(t1, edgeT(p1, p0, d1, d0));
                    b.assign(t2, edgeT(p2, p0, d2, d0));
                });
        });
    b.assign(tmin, b.fmin(t1, t2));
    b.assign(tmax, b.fmax(t1, t2));
}

class JmeintWorkload final : public Workload
{
  public:
    std::string name() const override { return "jmeint"; }
    std::string domain() const override { return "3D Gaming"; }
    std::string
    description() const override
    {
        return "Detects the intersection of two 3D triangles";
    }
    std::string
    datasetDescription() const override
    {
        return "Coordinates of 145K pairs of triangles";
    }

    void
    prepare(SimMemory &mem, const WorkloadParams &params) override
    {
        n_ = std::max<std::uint64_t>(
            512, static_cast<std::uint64_t>(145000 * params.scale));
        Rng rng(params.seed ^ (params.sampleSet ? 0x3e31ull : 0));

        inBase_ = mem.allocate(n_ * 72);
        outBase_ = mem.allocate(n_ * 4);
        // Fully random triangle pairs inside overlapping unit boxes —
        // continuous coordinates with no repetition structure.
        for (std::uint64_t i = 0; i < n_; ++i) {
            const Addr a = inBase_ + i * 72;
            for (unsigned f = 0; f < 18; ++f)
                mem.writeFloat(a + 4 * f,
                               static_cast<float>(
                                   rng.uniform(0.0, 1.0)));
        }
    }

    Program
    build() const override
    {
        KernelBuilder b("jmeint");
        const IReg in = b.imm(static_cast<std::int64_t>(inBase_));
        const IReg out = b.imm(static_cast<std::int64_t>(outBase_));

        b.forRange(0, static_cast<std::int64_t>(n_), 1, [&](IReg i) {
            const IReg addr = b.add(in, b.mul(i, 72));
            auto loadVec = [&](std::int64_t off) -> Vec3Regs {
                return {b.ldf(addr, off), b.ldf(addr, off + 4),
                        b.ldf(addr, off + 8)};
            };
            const Vec3Regs v0 = loadVec(0);
            const Vec3Regs v1 = loadVec(12);
            const Vec3Regs v2 = loadVec(24);
            const Vec3Regs u0 = loadVec(36);
            const Vec3Regs u1 = loadVec(48);
            const Vec3Regs u2 = loadVec(60);

            const IReg result = b.newIReg();
            b.assign(result, 0);

            // Plane of U: n2 . x + d2 = 0.
            const Vec3Regs e1 = {b.fsub(u1.x, u0.x), b.fsub(u1.y, u0.y),
                                 b.fsub(u1.z, u0.z)};
            const Vec3Regs e2 = {b.fsub(u2.x, u0.x), b.fsub(u2.y, u0.y),
                                 b.fsub(u2.z, u0.z)};
            const Vec3Regs n2 = emitCross(b, e1, e2);
            const FReg d2 = b.fneg(emitDot(b, n2, u0));

            const FReg dv0 = b.fadd(emitDot(b, n2, v0), d2);
            const FReg dv1 = b.fadd(emitDot(b, n2, v1), d2);
            const FReg dv2 = b.fadd(emitDot(b, n2, v2), d2);

            const FReg zero = b.fimm(0.0f);
            const IReg allPos = b.band(
                b.flt(zero, dv0),
                b.band(b.flt(zero, dv1), b.flt(zero, dv2)));
            const IReg allNeg = b.band(
                b.flt(dv0, zero),
                b.band(b.flt(dv1, zero), b.flt(dv2, zero)));
            const IReg rejectV = b.bor(allPos, allNeg);

            b.ifThen(b.seq(rejectV, 0), [&] {
                // Plane of V.
                const Vec3Regs f1 = {b.fsub(v1.x, v0.x),
                                     b.fsub(v1.y, v0.y),
                                     b.fsub(v1.z, v0.z)};
                const Vec3Regs f2 = {b.fsub(v2.x, v0.x),
                                     b.fsub(v2.y, v0.y),
                                     b.fsub(v2.z, v0.z)};
                const Vec3Regs n1 = emitCross(b, f1, f2);
                const FReg d1 = b.fneg(emitDot(b, n1, v0));

                const FReg du0 = b.fadd(emitDot(b, n1, u0), d1);
                const FReg du1 = b.fadd(emitDot(b, n1, u1), d1);
                const FReg du2 = b.fadd(emitDot(b, n1, u2), d1);

                const IReg uPos = b.band(
                    b.flt(zero, du0),
                    b.band(b.flt(zero, du1), b.flt(zero, du2)));
                const IReg uNeg = b.band(
                    b.flt(du0, zero),
                    b.band(b.flt(du1, zero), b.flt(du2, zero)));
                const IReg rejectU = b.bor(uPos, uNeg);

                b.ifThen(b.seq(rejectU, 0), [&] {
                    // Intersection line direction and projections.
                    const Vec3Regs dir = emitCross(b, n1, n2);
                    const FReg pv0 = emitDot(b, dir, v0);
                    const FReg pv1 = emitDot(b, dir, v1);
                    const FReg pv2 = emitDot(b, dir, v2);
                    const FReg pu0 = emitDot(b, dir, u0);
                    const FReg pu1 = emitDot(b, dir, u1);
                    const FReg pu2 = emitDot(b, dir, u2);

                    // U's interval, outside the memoized region.
                    const FReg bmin = b.newFReg();
                    const FReg bmax = b.newFReg();
                    emitInterval(b, du0, du1, du2, pu0, pu1, pu2, bmin,
                                 bmax);

                    b.regionBegin(kRegion);
                    const FReg amin = b.newFReg();
                    const FReg amax = b.newFReg();
                    emitInterval(b, dv0, dv1, dv2, pv0, pv1, pv2, amin,
                                 amax);
                    const IReg overlap =
                        b.band(b.fle(amin, bmax), b.fle(bmin, amax));
                    b.assign(result, overlap);
                    b.regionEnd(kRegion);
                });
            });

            b.st(b.add(out, b.shl(i, 2)), 0, result, 4);
        });
        return b.finish();
    }

    MemoSpec
    memoSpec() const override
    {
        MemoSpec spec;
        RegionMemoSpec region;
        region.regionId = kRegion;
        region.lut = 0;
        region.truncBits = 6; // Table 2
        spec.regions.push_back(region);
        return spec;
    }

    QualityMetric
    qualityMetric() const override
    {
        return QualityMetric::Misclassification;
    }
    bool integerOutputs() const override { return true; }

    std::vector<double>
    readOutputs(const SimMemory &mem) const override
    {
        std::vector<double> out;
        out.reserve(n_);
        for (std::uint64_t i = 0; i < n_; ++i)
            out.push_back(static_cast<double>(
                mem.read32(outBase_ + 4 * i)));
        return out;
    }

  private:
    static constexpr int kRegion = 1;

    std::uint64_t n_ = 0;
    Addr inBase_ = 0;
    Addr outBase_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeJmeint()
{
    return std::make_unique<JmeintWorkload>();
}

} // namespace axmemo
