#include "workloads/datasets.hh"

#include <algorithm>
#include <array>
#include <cmath>

namespace axmemo {

float
quantize(float x, float step)
{
    return std::floor(x / step) * step;
}

std::vector<float>
synthImageGray(unsigned width, unsigned height, Rng &rng, float noise)
{
    std::vector<float> img(static_cast<std::size_t>(width) * height,
                           128.0f);

    // Background: a gentle vertical gradient.
    for (unsigned y = 0; y < height; ++y) {
        const float g =
            64.0f + 96.0f * static_cast<float>(y) / height;
        for (unsigned x = 0; x < width; ++x)
            img[static_cast<std::size_t>(y) * width + x] =
                quantize(g, 4.0f);
    }

    // Flat rectangles (the dominant content).
    const unsigned numRects = 24;
    for (unsigned r = 0; r < numRects; ++r) {
        const unsigned rw = 8 + static_cast<unsigned>(
                                    rng.below(width / 3 + 1));
        const unsigned rh = 8 + static_cast<unsigned>(
                                    rng.below(height / 3 + 1));
        const unsigned rx = static_cast<unsigned>(rng.below(width));
        const unsigned ry = static_cast<unsigned>(rng.below(height));
        const float value = quantize(
            static_cast<float>(rng.below(256)), 8.0f);
        for (unsigned y = ry; y < std::min(ry + rh, height); ++y) {
            for (unsigned x = rx; x < std::min(rx + rw, width); ++x)
                img[static_cast<std::size_t>(y) * width + x] = value;
        }
    }

    // A textured band (~10% of rows) with quantized noise.
    const unsigned bandTop = height / 2;
    const unsigned bandBot = std::min(height, bandTop + height / 10);
    for (unsigned y = bandTop; y < bandBot; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            const float noisy =
                img[static_cast<std::size_t>(y) * width + x] +
                static_cast<float>(rng.below(33)) - 16.0f;
            img[static_cast<std::size_t>(y) * width + x] =
                std::clamp(quantize(noisy, 2.0f), 0.0f, 255.0f);
        }
    }

    // Continuous sensor jitter everywhere (see header comment).
    if (noise > 0.0f) {
        for (auto &p : img) {
            p = std::clamp(
                p + static_cast<float>(rng.uniform(-noise, noise)),
                0.0f, 255.0f);
        }
    }
    return img;
}

std::vector<float>
synthImageRgb(unsigned width, unsigned height, Rng &rng, float noise)
{
    const std::size_t plane =
        static_cast<std::size_t>(width) * height;
    std::vector<float> img(3 * plane);
    // Correlated channels: the gray structure shifted per channel.
    const std::vector<float> gray =
        synthImageGray(width, height, rng, noise);
    for (std::size_t i = 0; i < plane; ++i) {
        img[i] = gray[i];
        img[plane + i] = std::clamp(gray[i] * 0.9f + 8.0f, 0.0f, 255.0f);
        img[2 * plane + i] =
            std::clamp(gray[i] * 1.1f - 8.0f, 0.0f, 255.0f);
    }
    return img;
}

std::vector<float>
synthPaletteImage(unsigned width, unsigned height, unsigned paletteSize,
                  Rng &rng)
{
    // Palette colors spread over the RGB cube.
    std::vector<std::array<float, 3>> palette;
    for (unsigned p = 0; p < paletteSize; ++p) {
        palette.push_back({static_cast<float>(rng.below(256)),
                           static_cast<float>(rng.below(256)),
                           static_cast<float>(rng.below(256))});
    }

    std::vector<float> img(static_cast<std::size_t>(width) * height * 3);
    // Blobby assignment: each 16x16 tile picks a palette color; pixels
    // add small quantized noise around it.
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            const unsigned tile =
                (y / 16) * ((width + 15) / 16) + (x / 16);
            const auto &c = palette[(tile * 2654435761u) % paletteSize];
            const std::size_t idx =
                (static_cast<std::size_t>(y) * width + x) * 3;
            for (unsigned ch = 0; ch < 3; ++ch) {
                // Continuous noise around the palette color: exact
                // repeats are rare, truncated repeats common.
                const float noisy =
                    c[ch] +
                    static_cast<float>(rng.uniform(-2.0, 2.0));
                img[idx + ch] = std::clamp(noisy, 1.0f, 255.0f);
            }
        }
    }
    return img;
}

} // namespace axmemo
