/**
 * @file
 * Blackscholes (PARSEC / AxBench): prices European-style options with the
 * Black-Scholes closed form. The memoized region is the entire pricing
 * kernel — six 4-byte inputs (spot, strike, rate, volatility, expiry,
 * option type; 24 B total, Table 2) and one float output. No truncation:
 * market snapshots repeat option parameter tuples exactly, which is the
 * redundancy the paper's 20x speedup rides on.
 */

#include <algorithm>

#include "isa/builder.hh"
#include "workloads/datasets.hh"
#include "workloads/workload.hh"

namespace axmemo {

namespace {

/** Cumulative normal distribution via the Abramowitz-Stegun polynomial. */
FReg
emitCndf(KernelBuilder &b, FReg x)
{
    const FReg zero = b.fimm(0.0f);
    const IReg negative = b.flt(x, zero);
    const FReg ax = b.fabs(x);

    const FReg one = b.fimm(1.0f);
    const FReg k = b.fdiv(
        one, b.fadd(one, b.fmul(b.fimm(0.2316419f), ax)));

    // Horner evaluation of the 5-term polynomial in k.
    FReg poly = b.fimm(1.330274429f);
    poly = b.fadd(b.fimm(-1.821255978f), b.fmul(k, poly));
    poly = b.fadd(b.fimm(1.781477937f), b.fmul(k, poly));
    poly = b.fadd(b.fimm(-0.356563782f), b.fmul(k, poly));
    poly = b.fadd(b.fimm(0.31938153f), b.fmul(k, poly));
    poly = b.fmul(k, poly);

    const FReg gauss = b.fexp(
        b.fmul(b.fimm(-0.5f), b.fmul(ax, ax)));
    const FReg n =
        b.fsub(one, b.fmul(b.fimm(0.3989422804f),
                           b.fmul(gauss, poly)));

    const FReg result = b.newFReg();
    b.ifThenElse(
        negative, [&] { b.assign(result, b.fsub(b.fimm(1.0f), n)); },
        [&] { b.assign(result, n); });
    return result;
}

class BlackscholesWorkload final : public Workload
{
  public:
    std::string name() const override { return "blackscholes"; }
    std::string domain() const override { return "Financial Analysis"; }
    std::string
    description() const override
    {
        return "Calculates the price of European-style options";
    }
    std::string
    datasetDescription() const override
    {
        return "200K options";
    }

    void
    prepare(SimMemory &mem, const WorkloadParams &params) override
    {
        n_ = std::max<std::uint64_t>(
            512, static_cast<std::uint64_t>(200000 * params.scale));
        Rng rng(params.seed ^ (params.sampleSet ? 0x5a5a5a5aull : 0));

        // Market snapshots quote a bounded book of instruments: options
        // are drawn from a pool of distinct parameter tuples, so exact
        // 24-byte repeats dominate (the paper's "repetitive input
        // patterns needed for quantitative financial analysis").
        const unsigned pool = params.sampleSet ? 800 : 1500;
        struct Option
        {
            float s, k, r, v, t, type;
        };
        std::vector<Option> templates;
        templates.reserve(pool);
        for (unsigned p = 0; p < pool; ++p) {
            Option o;
            o.s = quantize(
                static_cast<float>(rng.uniform(20.0, 120.0)), 0.25f);
            o.k = quantize(
                o.s * static_cast<float>(rng.uniform(0.8, 1.2)), 0.25f);
            o.r = quantize(
                static_cast<float>(rng.uniform(0.01, 0.06)), 0.0025f);
            o.v = quantize(
                static_cast<float>(rng.uniform(0.10, 0.60)), 0.005f);
            o.t = quantize(
                static_cast<float>(rng.uniform(0.2, 2.0)), 0.05f);
            o.type = static_cast<float>(rng.below(2));
            templates.push_back(o);
        }

        inBase_ = mem.allocate(n_ * 24);
        outBase_ = mem.allocate(n_ * 4);
        for (std::uint64_t i = 0; i < n_; ++i) {
            const Option &o = templates[rng.below(pool)];
            const Addr a = inBase_ + i * 24;
            mem.writeFloat(a + 0, o.s);
            mem.writeFloat(a + 4, o.k);
            mem.writeFloat(a + 8, o.r);
            mem.writeFloat(a + 12, o.v);
            mem.writeFloat(a + 16, o.t);
            mem.writeFloat(a + 20, o.type);
        }
    }

    Program
    build() const override
    {
        KernelBuilder b("blackscholes");
        const IReg in = b.imm(static_cast<std::int64_t>(inBase_));
        const IReg out = b.imm(static_cast<std::int64_t>(outBase_));

        b.forRange(0, static_cast<std::int64_t>(n_), 1, [&](IReg i) {
            const IReg addr = b.add(in, b.mul(i, 24));
            const FReg s = b.ldf(addr, 0);
            const FReg k = b.ldf(addr, 4);
            const FReg r = b.ldf(addr, 8);
            const FReg v = b.ldf(addr, 12);
            const FReg t = b.ldf(addr, 16);
            const FReg type = b.ldf(addr, 20);

            b.regionBegin(kRegion);
            const FReg sqrtT = b.fsqrt(t);
            const FReg vSqrtT = b.fmul(v, sqrtT);
            const FReg logSk = b.flog(b.fdiv(s, k));
            const FReg halfV2 =
                b.fmul(b.fimm(0.5f), b.fmul(v, v));
            const FReg d1 = b.fdiv(
                b.fadd(logSk, b.fmul(b.fadd(r, halfV2), t)), vSqrtT);
            const FReg d2 = b.fsub(d1, vSqrtT);
            const FReg n1 = emitCndf(b, d1);
            const FReg n2 = emitCndf(b, d2);
            const FReg discount =
                b.fexp(b.fneg(b.fmul(r, t)));
            const FReg kDisc = b.fmul(k, discount);

            const FReg price = b.newFReg();
            const IReg isPut = b.flt(b.fimm(0.5f), type);
            b.ifThenElse(
                isPut,
                [&] {
                    // put = K e^{-rt} (1 - N(d2)) - S (1 - N(d1))
                    const FReg one = b.fimm(1.0f);
                    b.assign(price,
                             b.fsub(b.fmul(kDisc, b.fsub(one, n2)),
                                    b.fmul(s, b.fsub(one, n1))));
                },
                [&] {
                    // call = S N(d1) - K e^{-rt} N(d2)
                    b.assign(price, b.fsub(b.fmul(s, n1),
                                           b.fmul(kDisc, n2)));
                });
            b.regionEnd(kRegion);

            const IReg oaddr = b.add(out, b.shl(i, 2));
            b.stf(oaddr, 0, price);
        });
        return b.finish();
    }

    MemoSpec
    memoSpec() const override
    {
        MemoSpec spec;
        RegionMemoSpec region;
        region.regionId = kRegion;
        region.lut = 0;
        region.truncBits = 0; // Table 2
        spec.regions.push_back(region);
        return spec;
    }

    std::vector<double>
    readOutputs(const SimMemory &mem) const override
    {
        std::vector<double> out;
        out.reserve(n_);
        for (std::uint64_t i = 0; i < n_; ++i)
            out.push_back(mem.readFloat(outBase_ + 4 * i));
        return out;
    }

  private:
    static constexpr int kRegion = 1;

    std::uint64_t n_ = 0;
    Addr inBase_ = 0;
    Addr outBase_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeBlackscholes()
{
    return std::make_unique<BlackscholesWorkload>();
}

} // namespace axmemo
