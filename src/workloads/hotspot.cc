/**
 * @file
 * Hotspot (Rodinia): transient thermal simulation of a chip die. Each time
 * step updates every cell from its own temperature, its combined
 * north+south and east+west neighbor temperatures, and its power draw —
 * four float inputs (16 B, Table 2; the neighbor sums are pre-combined
 * outside the region and streamed with reg_crc), 8 truncated bits, one
 * float output (the new temperature). Time steps are unrolled at build
 * time with ping-pong buffers; every step's region site shares one LUT.
 */

#include <algorithm>
#include <cmath>

#include "isa/builder.hh"
#include "workloads/datasets.hh"
#include "workloads/workload.hh"

namespace axmemo {

namespace {

constexpr unsigned kSteps = 4;

// Simplified Hotspot coefficients (per-step update weights).
constexpr float kStepCoeff = 0.1f;
constexpr float kNeighborW = 0.4f;
constexpr float kPowerW = 12.0f;

class HotspotWorkload final : public Workload
{
  public:
    std::string name() const override { return "hotspot"; }
    std::string domain() const override { return "Physics Simulation"; }
    std::string
    description() const override
    {
        return "Simulates the temperature map of an IC chip";
    }
    std::string
    datasetDescription() const override
    {
        return "512x512 maps of power and temperature";
    }

    void
    prepare(SimMemory &mem, const WorkloadParams &params) override
    {
        unsigned side = static_cast<unsigned>(
            512.0 * std::sqrt(std::max(0.001, params.scale)));
        side = std::max(32u, side);
        w_ = side;
        h_ = side;
        const std::size_t cells =
            static_cast<std::size_t>(w_) * h_;

        Rng rng(params.seed ^ (params.sampleSet ? 0x4057ull : 0));

        tempBase_[0] = mem.allocate(cells * 4);
        tempBase_[1] = mem.allocate(cells * 4);
        powerBase_ = mem.allocate(cells * 4);

        // Initial temperature: ambient + hotspots blocks; power map:
        // blocky functional units with distinct (quantized) activity.
        const std::vector<float> blocks = synthImageGray(w_, h_, rng);
        for (std::size_t i = 0; i < cells; ++i) {
            const float t0 =
                quantize(45.0f + blocks[i] / 16.0f, 0.25f);
            mem.writeFloat(tempBase_[0] + 4 * i, t0);
            mem.writeFloat(tempBase_[1] + 4 * i, t0);
            mem.writeFloat(powerBase_ + 4 * i,
                           quantize(blocks[i] / 512.0f, 1.0f / 64));
        }
    }

    Program
    build() const override
    {
        KernelBuilder b("hotspot");
        const IReg power = b.imm(static_cast<std::int64_t>(powerBase_));
        const std::int64_t w = w_;

        for (unsigned step = 0; step < kSteps; ++step) {
            const IReg src = b.imm(
                static_cast<std::int64_t>(tempBase_[step % 2]));
            const IReg dst = b.imm(
                static_cast<std::int64_t>(tempBase_[(step + 1) % 2]));
            const int regionId = kFirstRegion + static_cast<int>(step);

            b.forRange(
                1, static_cast<std::int64_t>(h_) - 1, 1, [&](IReg y) {
                    b.forRange(
                        1, static_cast<std::int64_t>(w_) - 1, 1,
                        [&](IReg x) {
                            const IReg idx = b.add(b.mul(y, w), x);
                            const IReg off = b.shl(idx, 2);
                            const IReg ta = b.add(src, off);
                            const FReg c = b.ldf(ta, 0);
                            const FReg p =
                                b.ldf(b.add(power, off), 0);
                            const FReg north = b.ldf(ta, -4 * w);
                            const FReg south = b.ldf(ta, 4 * w);
                            const FReg west = b.ldf(ta, -4);
                            const FReg east = b.ldf(ta, 4);
                            const FReg ns = b.fadd(north, south);
                            const FReg ew = b.fadd(east, west);

                            b.regionBegin(regionId);
                            const FReg twoC =
                                b.fmul(b.fimm(2.0f), c);
                            const FReg lap = b.fadd(
                                b.fsub(ns, twoC), b.fsub(ew, twoC));
                            const FReg delta = b.fmul(
                                b.fimm(kStepCoeff),
                                b.fadd(b.fmul(b.fimm(kNeighborW),
                                              lap),
                                       b.fmul(b.fimm(kPowerW), p)));
                            const FReg fresh = b.fadd(c, delta);
                            b.regionEnd(regionId);

                            b.stf(b.add(dst, off), 0, fresh);
                        });
                });
        }
        return b.finish();
    }

    MemoSpec
    memoSpec() const override
    {
        MemoSpec spec;
        for (unsigned step = 0; step < kSteps; ++step) {
            RegionMemoSpec region;
            region.regionId = kFirstRegion + static_cast<int>(step);
            region.lut = 0; // all steps share the LUT
            region.truncBits = 8; // Table 2
            spec.regions.push_back(region);
        }
        return spec;
    }

    std::vector<double>
    readOutputs(const SimMemory &mem) const override
    {
        // After kSteps ping-pongs the final grid is in buffer
        // kSteps % 2.
        const Addr final = tempBase_[kSteps % 2];
        std::vector<double> out;
        const std::size_t cells =
            static_cast<std::size_t>(w_) * h_;
        out.reserve(cells);
        for (std::size_t i = 0; i < cells; ++i)
            out.push_back(mem.readFloat(final + 4 * i));
        return out;
    }

  private:
    static constexpr int kFirstRegion = 1;

    unsigned w_ = 0;
    unsigned h_ = 0;
    Addr tempBase_[2] = {0, 0};
    Addr powerBase_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeHotspot()
{
    return std::make_unique<HotspotWorkload>();
}

} // namespace axmemo
