#include "workloads/request_trace.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/rng.hh"

namespace axmemo {

namespace {

/** splitmix64 finalizer: shuffle seeding and the miss-result
 * function both need a cheap deterministic mixer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Per-tenant sampling state: Zipf CDF over key ranks. */
struct TenantSampler
{
    std::vector<double> cdf; ///< cumulative popularity by rank
    std::vector<std::uint64_t> perm; ///< rank -> key bijection
    std::uint64_t keySpace = 1;

    void
    init(const TenantTrafficSpec &spec, std::uint64_t tenantSeed)
    {
        keySpace = std::max<std::uint64_t>(1, spec.keySpace);
        // The CDF and permutation tables are O(keySpace); key spaces
        // are serving working sets (10^3..10^6), not address spaces.
        cdf.resize(static_cast<std::size_t>(keySpace));
        double total = 0.0;
        for (std::size_t r = 0; r < cdf.size(); ++r) {
            total += 1.0 /
                     std::pow(static_cast<double>(r + 1), spec.zipfAlpha);
            cdf[r] = total;
        }
        for (double &c : cdf)
            c /= total;

        // Seeded Fisher-Yates: a true bijection, so rank-r mass lands
        // on exactly one key and every key is reachable (a hash-mod
        // scatter would collide ranks and starve ~1/e of the keys).
        perm.resize(static_cast<std::size_t>(keySpace));
        for (std::size_t i = 0; i < perm.size(); ++i)
            perm[i] = i;
        Rng shuffle(mix64(tenantSeed));
        for (std::size_t i = perm.size(); i > 1; --i)
            std::swap(perm[i - 1], perm[shuffle.below(i)]);
    }

    /** Sample a key: Zipf rank via CDF binary search, then permute the
     * rank over the key space so hot keys are scattered. */
    std::uint64_t
    sampleKey(Rng &rng) const
    {
        const double u = rng.uniform();
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        const auto rank = static_cast<std::size_t>(
            it == cdf.end() ? cdf.size() - 1 : it - cdf.begin());
        return perm[rank];
    }
};

double
diurnal(const RequestTraceSpec &spec, double t)
{
    if (spec.diurnalAmplitude <= 0.0 || spec.diurnalPeriodSeconds <= 0.0)
        return 1.0;
    return 1.0 + spec.diurnalAmplitude *
                     std::sin(2.0 * M_PI * t / spec.diurnalPeriodSeconds);
}

} // namespace

RequestTraceSpec
RequestTraceSpec::smoke(std::uint64_t seed)
{
    RequestTraceSpec spec;
    spec.seed = seed;
    spec.requests = 4000;
    spec.ratePerSecond = 2000.0;
    TenantTrafficSpec a;
    a.name = "tenant-a";
    a.weight = 2.0;
    a.zipfAlpha = 0.99;
    a.keySpace = 2048;
    TenantTrafficSpec b;
    b.name = "tenant-b";
    b.weight = 1.0;
    b.zipfAlpha = 0.7;
    b.keySpace = 8192;
    spec.tenants = {a, b};
    return spec;
}

double
traceRateCeiling(const RequestTraceSpec &spec, double t)
{
    const double burst =
        spec.burstFactor > 1.0 ? spec.burstFactor : 1.0;
    // The envelope uses the diurnal peak, not the instantaneous value:
    // it must dominate the rate everywhere for thinning to be exact.
    (void)t;
    return spec.ratePerSecond * (1.0 + std::max(0.0, spec.diurnalAmplitude)) *
           burst;
}

std::vector<TraceRequest>
generateRequestTrace(const RequestTraceSpec &spec)
{
    if (spec.tenants.empty())
        axm_fatal("request trace needs at least one tenant");
    if (spec.ratePerSecond <= 0.0)
        axm_fatal("request trace needs a positive rate");

    // Independent streams per concern so adding tenants or toggling
    // bursts never perturbs the arrival-time sequence.
    Rng arrivalRng(spec.seed);
    Rng burstRng(mix64(spec.seed ^ 0xb1c2d3e4f5a6ull));
    Rng pickRng(mix64(spec.seed ^ 0x5eed5eed5eedull));

    std::vector<TenantSampler> samplers(spec.tenants.size());
    std::vector<double> tenantCdf(spec.tenants.size());
    double weightTotal = 0.0;
    for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
        samplers[i].init(spec.tenants[i], spec.seed ^ (i + 1));
        weightTotal += std::max(0.0, spec.tenants[i].weight);
        tenantCdf[i] = weightTotal;
    }
    if (weightTotal <= 0.0)
        axm_fatal("request trace tenant weights sum to zero");
    for (double &c : tenantCdf)
        c /= weightTotal;

    // Pre-sample the burst episode schedule (two-state MMPP): episode
    // k starts after an Exp(burstEverySeconds) quiet gap and lasts
    // Exp(burstLengthSeconds).
    const bool bursty = spec.burstFactor > 1.0 &&
                        spec.burstEverySeconds > 0.0 &&
                        spec.burstLengthSeconds > 0.0;
    double burstStart = 0.0, burstEnd = -1.0;
    const auto nextEpisode = [&](double from) {
        const double gap =
            -std::log(1.0 - burstRng.uniform()) * spec.burstEverySeconds;
        const double len =
            -std::log(1.0 - burstRng.uniform()) * spec.burstLengthSeconds;
        burstStart = from + gap;
        burstEnd = burstStart + len;
    };
    if (bursty)
        nextEpisode(0.0);

    const double ceiling = traceRateCeiling(spec, 0.0);

    std::vector<TraceRequest> trace;
    trace.reserve(static_cast<std::size_t>(spec.requests));
    double t = 0.0;
    while (trace.size() < spec.requests) {
        // Candidate arrival from the homogeneous envelope process.
        t += -std::log(1.0 - arrivalRng.uniform()) / ceiling;
        if (bursty && t > burstEnd)
            nextEpisode(burstEnd < 0.0 ? t : burstEnd);
        const bool inBurst = bursty && t >= burstStart && t < burstEnd;
        double rate = spec.ratePerSecond * diurnal(spec, t);
        if (inBurst)
            rate *= spec.burstFactor;
        // Thin: accept with probability rate(t) / ceiling.
        if (arrivalRng.uniform() >= rate / ceiling)
            continue;

        TraceRequest request;
        request.timeSeconds = t;
        const double u = pickRng.uniform();
        const auto it =
            std::lower_bound(tenantCdf.begin(), tenantCdf.end(), u);
        const auto tenant = static_cast<std::size_t>(
            it == tenantCdf.end() ? tenantCdf.size() - 1
                                  : it - tenantCdf.begin());
        request.tenant = static_cast<std::uint16_t>(tenant);
        const TenantTrafficSpec &profile = spec.tenants[tenant];
        if (profile.kernels.empty()) {
            request.kernel =
                static_cast<std::uint8_t>(pickRng.below(10));
        } else {
            request.kernel = profile.kernels[static_cast<std::size_t>(
                pickRng.below(profile.kernels.size()))];
        }
        request.key = samplers[tenant].sampleKey(pickRng);
        trace.push_back(request);
    }
    return trace;
}

std::uint64_t
traceResultFor(std::uint8_t kernel, std::uint64_t key)
{
    return mix64((static_cast<std::uint64_t>(kernel) << 56) ^ key);
}

} // namespace axmemo
