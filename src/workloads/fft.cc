/**
 * @file
 * FFT (AxBench): radix-2 decimation-in-frequency Cooley-Tukey transform.
 * The memoized region is the twiddle-factor computation — one 4-byte input
 * (the angle, streamed with reg_crc since it is computed, not loaded;
 * Section 4 motivates reg_crc with exactly this benchmark) and two float
 * outputs (cos, sin) packed into an 8-byte LUT entry. Twiddle angles
 * repeat heavily across butterfly groups and stages, giving the >90% hit
 * rate the paper reports. Outputs are produced in bit-reversed order (no
 * final permutation), identically in baseline and memoized runs.
 */

#include <algorithm>
#include <cmath>

#include "common/bits.hh"
#include "isa/builder.hh"
#include "workloads/datasets.hh"
#include "workloads/workload.hh"

namespace axmemo {

namespace {

class FftWorkload final : public Workload
{
  public:
    std::string name() const override { return "fft"; }
    std::string domain() const override { return "Signal Processing"; }
    std::string
    description() const override
    {
        return "Radix-2 Cooley-Tukey FFT";
    }
    std::string
    datasetDescription() const override
    {
        return "4,096 floating-point data points";
    }

    void
    prepare(SimMemory &mem, const WorkloadParams &params) override
    {
        // Power-of-two size nearest the scaled target, at least 256.
        std::uint64_t target = std::max<std::uint64_t>(
            256, static_cast<std::uint64_t>(4096 * params.scale));
        n_ = 1;
        while (n_ * 2 <= target)
            n_ *= 2;

        Rng rng(params.seed ^ (params.sampleSet ? 0xf1f1ull : 0));
        reBase_ = mem.allocate(n_ * 4);
        imBase_ = mem.allocate(n_ * 4);

        // A handful of tones plus quantized noise: a typical sampled
        // signal.
        const double f1 = 3.0 + static_cast<double>(rng.below(5));
        const double f2 = 17.0 + static_cast<double>(rng.below(9));
        for (std::uint64_t i = 0; i < n_; ++i) {
            const double phase =
                2.0 * M_PI * static_cast<double>(i) /
                static_cast<double>(n_);
            const double v = std::sin(f1 * phase) +
                             0.5 * std::sin(f2 * phase) +
                             0.1 * rng.uniform(-1.0, 1.0);
            mem.writeFloat(reBase_ + 4 * i,
                           quantize(static_cast<float>(v), 1.0f / 256));
            mem.writeFloat(imBase_ + 4 * i, 0.0f);
        }
    }

    Program
    build() const override
    {
        KernelBuilder b("fft");
        const IReg re = b.imm(static_cast<std::int64_t>(reBase_));
        const IReg im = b.imm(static_cast<std::int64_t>(imBase_));
        const IReg n = b.imm(static_cast<std::int64_t>(n_));
        const FReg minusTwoPi =
            b.fimm(static_cast<float>(-2.0 * M_PI));

        // Stage loop: len = n, n/2, ..., 2.
        const IReg len = b.newIReg();
        b.assign(len, static_cast<std::int64_t>(n_));
        const Label stageHead = b.newLabel();
        const Label stageExit = b.newLabel();
        b.bind(stageHead);
        {
            const IReg stageDone = b.slt(len, 2);
            b.brTrue(stageDone, stageExit);

            const IReg half = b.shr(len, 1);
            const FReg angStep = b.fdiv(minusTwoPi, b.itof(len));

            // Group loop: base = 0, len, 2*len, ...
            const IReg base = b.newIReg();
            b.assign(base, 0);
            const Label groupHead = b.newLabel();
            const Label groupExit = b.newLabel();
            b.bind(groupHead);
            {
                const IReg groupCont = b.slt(base, n);
                b.brFalse(groupCont, groupExit);

                b.forRange(0, half, 1, [&](IReg j) {
                    const FReg angle = b.fmul(b.itof(j), angStep);

                    b.regionBegin(kRegion);
                    const FReg c = b.fcos(angle);
                    const FReg s = b.fsin(angle);
                    b.regionEnd(kRegion);

                    const IReg i1 = b.add(base, j);
                    const IReg i2 = b.add(i1, half);
                    const IReg a1 = b.add(re, b.shl(i1, 2));
                    const IReg a2 = b.add(re, b.shl(i2, 2));
                    const IReg b1 = b.add(im, b.shl(i1, 2));
                    const IReg b2 = b.add(im, b.shl(i2, 2));
                    const FReg re1 = b.ldf(a1, 0);
                    const FReg re2 = b.ldf(a2, 0);
                    const FReg im1 = b.ldf(b1, 0);
                    const FReg im2 = b.ldf(b2, 0);

                    const FReg tre = b.fsub(re1, re2);
                    const FReg tim = b.fsub(im1, im2);
                    b.stf(a1, 0, b.fadd(re1, re2));
                    b.stf(b1, 0, b.fadd(im1, im2));
                    b.stf(a2, 0,
                          b.fsub(b.fmul(tre, c), b.fmul(tim, s)));
                    b.stf(b2, 0,
                          b.fadd(b.fmul(tre, s), b.fmul(tim, c)));
                });

                b.addTo(base, base, len);
                b.br(groupHead);
            }
            b.bind(groupExit);

            b.assign(len, half);
            b.br(stageHead);
        }
        b.bind(stageExit);
        return b.finish();
    }

    MemoSpec
    memoSpec() const override
    {
        MemoSpec spec;
        RegionMemoSpec region;
        region.regionId = kRegion;
        region.lut = 0;
        region.truncBits = 0; // Table 2
        spec.regions.push_back(region);
        return spec;
    }

    unsigned monitorLanes() const override { return 2; }

    std::vector<double>
    readOutputs(const SimMemory &mem) const override
    {
        std::vector<double> out;
        out.reserve(2 * n_);
        for (std::uint64_t i = 0; i < n_; ++i)
            out.push_back(mem.readFloat(reBase_ + 4 * i));
        for (std::uint64_t i = 0; i < n_; ++i)
            out.push_back(mem.readFloat(imBase_ + 4 * i));
        return out;
    }

  private:
    static constexpr int kRegion = 1;

    std::uint64_t n_ = 0;
    Addr reBase_ = 0;
    Addr imBase_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeFft()
{
    return std::make_unique<FftWorkload>();
}

} // namespace axmemo
