#include "workloads/workload.hh"

#include "common/log.hh"

namespace axmemo {

namespace {

struct Factory
{
    const char *name;
    std::unique_ptr<Workload> (*make)();
};

const Factory factories[] = {
    {"blackscholes", makeBlackscholes},
    {"fft", makeFft},
    {"inversek2j", makeInversek2j},
    {"jmeint", makeJmeint},
    {"jpeg", makeJpeg},
    {"kmeans", makeKmeans},
    {"sobel", makeSobel},
    {"hotspot", makeHotspot},
    {"lavamd", makeLavamd},
    {"srad", makeSrad},
};

} // namespace

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const Factory &f : factories)
        names.emplace_back(f.name);
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    for (const Factory &f : factories) {
        if (name == f.name)
            return f.make();
    }
    axm_fatal("unknown workload '", name, "'");
}

} // namespace axmemo
