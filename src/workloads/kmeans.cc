/**
 * @file
 * K-means (AxBench): clusters the pixels of an RGB image into k=6 colors.
 * The memoized region is the nearest-centroid search: three float inputs
 * (r, g, b; 12 B, Table 2) truncated by 16 bits, one integer output (the
 * cluster index). The centroid table is read *inside* the region — it is
 * slowly-varying state, so the compiler excludes its (loop-invariant) base
 * address from the hash and instead plants an `invalidate` at the top of
 * every outer iteration, where the centroids move. This benchmark is the
 * reason the invalidate instruction exists.
 */

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "isa/builder.hh"
#include "workloads/datasets.hh"
#include "workloads/workload.hh"

namespace axmemo {

namespace {

constexpr unsigned kClusters = 6;
constexpr unsigned kIterations = 6;

class KmeansWorkload final : public Workload
{
  public:
    std::string name() const override { return "kmeans"; }
    std::string domain() const override { return "Machine Learning"; }
    std::string
    description() const override
    {
        return "K-means clustering of an RGB image";
    }
    std::string
    datasetDescription() const override
    {
        return "512x512 pixel images";
    }

    void
    prepare(SimMemory &mem, const WorkloadParams &params) override
    {
        unsigned side = static_cast<unsigned>(
            512.0 * std::sqrt(std::max(0.001, params.scale)));
        side = std::max(32u, side);
        w_ = side;
        h_ = side;
        n_ = static_cast<std::uint64_t>(w_) * h_;

        Rng rng(params.seed ^ (params.sampleSet ? 0x6b6dull : 0));
        const std::vector<float> img =
            synthPaletteImage(w_, h_, 12, rng);

        imgBase_ = mem.allocate(n_ * 12);
        centBase_ = mem.allocate(kClusters * 12);
        sumBase_ = mem.allocate(kClusters * 16);
        outBase_ = mem.allocate(n_ * 12);

        for (std::size_t i = 0; i < img.size(); ++i)
            mem.writeFloat(imgBase_ + 4 * i, img[i]);

        // Initial centroids: spread along the gray diagonal.
        for (unsigned c = 0; c < kClusters; ++c) {
            const float v = 255.0f * (c + 0.5f) / kClusters;
            mem.writeFloat(centBase_ + 12 * c + 0, v);
            mem.writeFloat(centBase_ + 12 * c + 4, v);
            mem.writeFloat(centBase_ + 12 * c + 8, v);
        }
    }

    Program
    build() const override
    {
        KernelBuilder b("kmeans");
        const IReg img = b.imm(static_cast<std::int64_t>(imgBase_));
        const IReg cent = b.imm(static_cast<std::int64_t>(centBase_));
        const IReg sums = b.imm(static_cast<std::int64_t>(sumBase_));
        const IReg out = b.imm(static_cast<std::int64_t>(outBase_));
        centBaseReg_ = cent.id;

        b.forRange(0, kIterations, 1, [&](IReg iter) {
            // The centroids changed at the end of the previous
            // iteration: flash-invalidate the distance LUT here.
            b.regionBegin(kInvalidatePoint);
            b.regionEnd(kInvalidatePoint);

            const IReg isLast =
                b.seq(iter, static_cast<std::int64_t>(kIterations - 1));

            // --- assignment ---
            b.forRange(0, static_cast<std::int64_t>(n_), 1, [&](IReg i) {
                const IReg paddr = b.add(img, b.mul(i, 12));
                const FReg r = b.ldf(paddr, 0);
                const FReg g = b.ldf(paddr, 4);
                const FReg bl = b.ldf(paddr, 8);

                b.regionBegin(kRegion);
                const IReg best = b.newIReg();
                const FReg bestD = b.newFReg();
                for (unsigned c = 0; c < kClusters; ++c) {
                    const FReg cr = b.ldf(cent, 12 * c + 0);
                    const FReg cg = b.ldf(cent, 12 * c + 4);
                    const FReg cb = b.ldf(cent, 12 * c + 8);
                    const FReg dr = b.fsub(r, cr);
                    const FReg dg = b.fsub(g, cg);
                    const FReg db = b.fsub(bl, cb);
                    const FReg d = b.fadd(
                        b.fmul(dr, dr),
                        b.fadd(b.fmul(dg, dg), b.fmul(db, db)));
                    if (c == 0) {
                        b.assign(best, 0);
                        b.assign(bestD, d);
                    } else {
                        const IReg closer = b.flt(d, bestD);
                        b.ifThen(closer, [&] {
                            b.assign(best,
                                     static_cast<std::int64_t>(c));
                            b.assign(bestD, d);
                        });
                    }
                }
                b.regionEnd(kRegion);

                // Accumulate the cluster sums (memory accumulators).
                const IReg saddr = b.add(sums, b.shl(best, 4));
                b.stf(saddr, 0, b.fadd(b.ldf(saddr, 0), r));
                b.stf(saddr, 4, b.fadd(b.ldf(saddr, 4), g));
                b.stf(saddr, 8, b.fadd(b.ldf(saddr, 8), bl));
                b.stf(saddr, 12,
                      b.fadd(b.ldf(saddr, 12), b.fimm(1.0f)));

                // Final iteration: emit the quantized image.
                b.ifThen(isLast, [&] {
                    const IReg caddr = b.add(cent, b.mul(best, 12));
                    const IReg oaddr = b.add(out, b.mul(i, 12));
                    b.stf(oaddr, 0, b.ldf(caddr, 0));
                    b.stf(oaddr, 4, b.ldf(caddr, 4));
                    b.stf(oaddr, 8, b.ldf(caddr, 8));
                });
            });

            // --- centroid update ---
            for (unsigned c = 0; c < kClusters; ++c) {
                const FReg count = b.ldf(sums, 16 * c + 12);
                const IReg nonEmpty = b.flt(b.fimm(0.5f), count);
                b.ifThen(nonEmpty, [&] {
                    b.stf(cent, 12 * c + 0,
                          b.fdiv(b.ldf(sums, 16 * c + 0), count));
                    b.stf(cent, 12 * c + 4,
                          b.fdiv(b.ldf(sums, 16 * c + 4), count));
                    b.stf(cent, 12 * c + 8,
                          b.fdiv(b.ldf(sums, 16 * c + 8), count));
                });
                const FReg zero = b.fimm(0.0f);
                b.stf(sums, 16 * c + 0, zero);
                b.stf(sums, 16 * c + 4, zero);
                b.stf(sums, 16 * c + 8, zero);
                b.stf(sums, 16 * c + 12, zero);
            }
        });
        return b.finish();
    }

    MemoSpec
    memoSpec() const override
    {
        if (centBaseReg_ == invalidReg)
            axm_fatal("kmeans: memoSpec() requires build() first (the "
                      "spec excludes the centroid base register)");
        MemoSpec spec;
        RegionMemoSpec region;
        region.regionId = kRegion;
        region.lut = 0;
        region.truncBits = 16; // Table 2
        // The centroid base address is loop-invariant state, not a
        // memoization input; the invalidate below covers its contents.
        region.excludeInputs.insert(centBaseReg_);
        spec.regions.push_back(region);
        spec.invalidateAt[kInvalidatePoint] = {0};
        return spec;
    }

    bool integerOutputs() const override { return true; }
    bool imageOutput() const override { return true; }

    std::vector<double>
    readOutputs(const SimMemory &mem) const override
    {
        std::vector<double> out;
        out.reserve(3 * n_);
        for (std::uint64_t i = 0; i < 3 * n_; ++i)
            out.push_back(mem.readFloat(outBase_ + 4 * i));
        return out;
    }

  private:
    static constexpr int kRegion = 1;
    static constexpr int kInvalidatePoint = 99;

    unsigned w_ = 0;
    unsigned h_ = 0;
    std::uint64_t n_ = 0;
    Addr imgBase_ = 0;
    Addr centBase_ = 0;
    Addr sumBase_ = 0;
    Addr outBase_ = 0;
    mutable RegId centBaseReg_ = invalidReg;
};

} // namespace

std::unique_ptr<Workload>
makeKmeans()
{
    return std::make_unique<KmeansWorkload>();
}

} // namespace axmemo
