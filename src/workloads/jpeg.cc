/**
 * @file
 * JPEG (AxBench): forward DCT + quantization of a grayscale image, the
 * compute kernel of baseline JPEG compression. Each 8x8 block runs eight
 * row and eight column 8-point 1-D DCTs; every 1-D DCT is split into two
 * memoized blocks sharing the same eight level-shifted int16 samples
 * (16 bytes each, Table 2's "(16, 16)"):
 *
 *   LUT 0 — even coefficients c0,c2,c4,c6 (low frequencies), 2 truncated
 *           bits per sample;
 *   LUT 1 — odd coefficients c1,c3,c5,c7 (high frequencies), 7 truncated
 *           bits (coarser: they quantize away anyway; the paper profiled
 *           7 on its data representation, our profiler picks 6 under the
 *           same 1% image-error rule of Section 5).
 *
 * Each region packs its four int16 coefficients into two 32-bit outputs
 * (one 8-byte LUT entry). LUT 0's loads fuse into ld_crc; LUT 1 re-streams
 * the same registers via reg_crc. Row and column passes share the LUTs —
 * the function (8 signed samples -> 4 coefficients) is identical.
 */

#include <algorithm>
#include <array>
#include <cmath>

#include "isa/builder.hh"
#include "workloads/datasets.hh"
#include "workloads/workload.hh"

namespace axmemo {

namespace {

/** Standard JPEG luminance quantization table. */
constexpr std::array<int, 64> kQuantTable = {
    16, 11, 10, 16, 24,  40,  51,  61,  //
    12, 12, 14, 19, 26,  58,  60,  55,  //
    14, 13, 16, 24, 40,  57,  69,  56,  //
    14, 17, 22, 29, 51,  87,  80,  62,  //
    18, 22, 37, 56, 68,  109, 103, 77,  //
    24, 35, 55, 64, 81,  104, 113, 92,  //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
};

class JpegWorkload final : public Workload
{
  public:
    std::string name() const override { return "jpeg"; }
    std::string domain() const override { return "Compression"; }
    std::string
    description() const override
    {
        return "Forward DCT + quantization of JPEG compression";
    }
    std::string
    datasetDescription() const override
    {
        return "512x512 pixel images";
    }

    void
    prepare(SimMemory &mem, const WorkloadParams &params) override
    {
        unsigned side = static_cast<unsigned>(
            512.0 * std::sqrt(std::max(0.001, params.scale)));
        side = std::max(32u, side & ~7u); // multiple of 8
        w_ = side;
        h_ = side;

        Rng rng(params.seed ^ (params.sampleSet ? 0x19e6ull : 0));
        const std::vector<float> img =
            synthImageGray(w_, h_, rng, 0.6f);

        imgBase_ = mem.allocate(static_cast<std::size_t>(w_) * h_ * 2);
        interBase_ = mem.allocate(static_cast<std::size_t>(w_) * h_ * 2);
        outBase_ = mem.allocate(static_cast<std::size_t>(w_) * h_ * 2);
        qtabBase_ = mem.allocate(64 * 4);

        // Pixels stored pre-level-shifted (-128..127) as int16 so the row
        // and column DCT regions compute the identical function.
        for (std::size_t i = 0; i < img.size(); ++i) {
            const auto shifted = static_cast<std::int16_t>(
                static_cast<int>(img[i]) - 128);
            mem.write(imgBase_ + 2 * i,
                      static_cast<std::uint16_t>(shifted), 2);
        }
        for (unsigned i = 0; i < 64; ++i)
            mem.writeFloat(qtabBase_ + 4 * i,
                           static_cast<float>(kQuantTable[i]));
    }

    Program
    build() const override
    {
        KernelBuilder b("jpeg");
        const IReg img = b.imm(static_cast<std::int64_t>(imgBase_));
        const IReg inter = b.imm(static_cast<std::int64_t>(interBase_));
        const IReg out = b.imm(static_cast<std::int64_t>(outBase_));
        const IReg qtab = b.imm(static_cast<std::int64_t>(qtabBase_));
        const std::int64_t w = w_;

        // Emits both memoized DCT halves over eight loaded samples and
        // returns the eight coefficient registers (as sign-extendable
        // 16-bit lanes packed two per output).
        struct DctOut
        {
            std::array<IReg, 4> packed; // {c0c2, c4c6, c1c3, c5c7}
        };
        // Row and column passes are distinct static sites, so they carry
        // distinct region ids — but map onto the same two logical LUTs
        // (the memoized function is identical).
        auto emitDct = [&](const std::array<IReg, 8> &x, int evenId,
                           int oddId) -> DctOut {
            // f_i = (float)sext16(x_i)
            auto toF = [&](IReg v) { return b.itof(b.sext(v, 16)); };

            auto packPair = [&](FReg a, FReg c) {
                const IReg ia = b.band(b.ftoi(a), 0xffff);
                const IReg ic = b.band(b.ftoi(c), 0xffff);
                return b.bor(ia, b.shl(ic, 16));
            };

            DctOut dct;
            // --- LUT 0: even coefficients ---
            b.regionBegin(evenId);
            {
                std::array<FReg, 8> f;
                for (unsigned i = 0; i < 8; ++i)
                    f[i] = toF(x[i]);
                const FReg s0 = b.fadd(f[0], f[7]);
                const FReg s1 = b.fadd(f[1], f[6]);
                const FReg s2 = b.fadd(f[2], f[5]);
                const FReg s3 = b.fadd(f[3], f[4]);
                const FReg c0 = b.fmul(
                    b.fimm(0.35355339f),
                    b.fadd(b.fadd(s0, s1), b.fadd(s2, s3)));
                const FReg c4 = b.fmul(
                    b.fimm(0.35355339f),
                    b.fadd(b.fsub(s0, s1), b.fsub(s3, s2)));
                const FReg c2 = b.fadd(
                    b.fmul(b.fimm(0.46193977f), b.fsub(s0, s3)),
                    b.fmul(b.fimm(0.19134172f), b.fsub(s1, s2)));
                const FReg c6 = b.fsub(
                    b.fmul(b.fimm(0.19134172f), b.fsub(s0, s3)),
                    b.fmul(b.fimm(0.46193977f), b.fsub(s1, s2)));
                dct.packed[0] = packPair(c0, c2);
                dct.packed[1] = packPair(c4, c6);
            }
            b.regionEnd(evenId);

            // --- LUT 1: odd coefficients ---
            b.regionBegin(oddId);
            {
                std::array<FReg, 8> f;
                for (unsigned i = 0; i < 8; ++i)
                    f[i] = toF(x[i]);
                const FReg t0 = b.fsub(f[0], f[7]);
                const FReg t1 = b.fsub(f[1], f[6]);
                const FReg t2 = b.fsub(f[2], f[5]);
                const FReg t3 = b.fsub(f[3], f[4]);
                auto comb = [&](float w0, float w1, float w2, float w3) {
                    return b.fadd(
                        b.fadd(b.fmul(b.fimm(w0), t0),
                               b.fmul(b.fimm(w1), t1)),
                        b.fadd(b.fmul(b.fimm(w2), t2),
                               b.fmul(b.fimm(w3), t3)));
                };
                const FReg c1 =
                    comb(0.49039264f, 0.41573481f, 0.27778512f,
                         0.09754516f);
                const FReg c3 =
                    comb(0.41573481f, -0.09754516f, -0.49039264f,
                         -0.27778512f);
                const FReg c5 =
                    comb(0.27778512f, -0.49039264f, 0.09754516f,
                         0.41573481f);
                const FReg c7 =
                    comb(0.09754516f, -0.27778512f, 0.41573481f,
                         -0.09754516f);
                dct.packed[2] = packPair(c1, c3);
                dct.packed[3] = packPair(c5, c7);
            }
            b.regionEnd(oddId);
            return dct;
        };

        // Coefficient lane extraction: k-th frequency from the packed
        // outputs (natural order c0..c7).
        auto lane = [&](const DctOut &dct, unsigned k) -> IReg {
            static constexpr unsigned packIdx[8] = {0, 2, 0, 2,
                                                    1, 3, 1, 3};
            static constexpr unsigned shift[8] = {0, 0, 16, 16,
                                                  0, 0, 16, 16};
            const IReg p = dct.packed[packIdx[k]];
            return shift[k] ? b.shr(p, shift[k]) : p;
        };

        const std::int64_t blocksY = h_ / 8;
        const std::int64_t blocksX = w_ / 8;

        b.forRange(0, blocksY, 1, [&](IReg by) {
            b.forRange(0, blocksX, 1, [&](IReg bx) {
                const IReg colBase = b.shl(bx, 3);

                // --- row pass: img rows -> intermediate rows ---
                b.forRange(0, 8, 1, [&](IReg r) {
                    const IReg row = b.add(b.shl(by, 3), r);
                    const IReg idx =
                        b.add(b.mul(row, w), colBase);
                    const IReg addr = b.add(img, b.shl(idx, 1));
                    std::array<IReg, 8> x;
                    for (unsigned k = 0; k < 8; ++k)
                        x[k] = b.ld(addr, 2 * k, 2);
                    const DctOut dct =
                        emitDct(x, kRowEven, kRowOdd);
                    const IReg iaddr = b.add(inter, b.shl(idx, 1));
                    for (unsigned k = 0; k < 8; ++k)
                        b.st(iaddr, 2 * k, lane(dct, k), 2);
                });

                // --- column pass + quantization ---
                b.forRange(0, 8, 1, [&](IReg c) {
                    const IReg col = b.add(colBase, c);
                    const IReg top =
                        b.add(b.mul(b.shl(by, 3), w), col);
                    const IReg addr = b.add(inter, b.shl(top, 1));
                    std::array<IReg, 8> x;
                    for (unsigned k = 0; k < 8; ++k)
                        x[k] = b.ld(addr, 2 * w * k, 2);
                    const DctOut dct =
                        emitDct(x, kColEven, kColOdd);

                    // q = round(c_k / Q[k][c]); stored as int16.
                    const IReg qcol = b.add(qtab, b.shl(c, 2));
                    for (unsigned k = 0; k < 8; ++k) {
                        const FReg coeff =
                            b.itof(b.sext(lane(dct, k), 16));
                        const FReg q = b.ldf(qcol, 32 * k);
                        const IReg quant = b.ftoi(b.fdiv(coeff, q));
                        const IReg oaddr = b.add(out, b.shl(top, 1));
                        b.st(oaddr, 2 * w * k, quant, 2);
                    }
                });
            });
        });
        return b.finish();
    }

    MemoSpec
    memoSpec() const override
    {
        MemoSpec spec;
        for (const auto &[regionId, lut, trunc] :
             {std::tuple{kRowEven, 0, 2}, {kRowOdd, 1, 6},
              {kColEven, 0, 2}, {kColOdd, 1, 6}}) {
            RegionMemoSpec region;
            region.regionId = regionId;
            region.lut = static_cast<LutId>(lut);
            region.truncBits = static_cast<unsigned>(trunc); // Table 2
            region.intInputBytes = 2; // int16 samples
            spec.regions.push_back(region);
        }
        return spec;
    }

    unsigned monitorLanes() const override { return 2; }
    bool integerOutputs() const override { return true; }
    bool imageOutput() const override { return true; }

    std::vector<double>
    readOutputs(const SimMemory &mem) const override
    {
        // Dequantized coefficients: the image-domain-equivalent signal
        // (quality on raw quantized integers would be dominated by the
        // heavily-quantized, near-zero high frequencies).
        std::vector<double> out;
        out.reserve(static_cast<std::size_t>(w_) * h_);
        for (unsigned y = 0; y < h_; ++y) {
            for (unsigned x = 0; x < w_; ++x) {
                const std::size_t i =
                    static_cast<std::size_t>(y) * w_ + x;
                const auto raw = static_cast<std::uint16_t>(
                    mem.read(outBase_ + 2 * i, 2));
                const int q = kQuantTable[(y % 8) * 8 + (x % 8)];
                out.push_back(static_cast<double>(
                                  static_cast<std::int16_t>(raw)) *
                              q);
            }
        }
        return out;
    }

  private:
    static constexpr int kRowEven = 1;
    static constexpr int kRowOdd = 2;
    static constexpr int kColEven = 3;
    static constexpr int kColOdd = 4;

    unsigned w_ = 0;
    unsigned h_ = 0;
    Addr imgBase_ = 0;
    Addr interBase_ = 0;
    Addr outBase_ = 0;
    Addr qtabBase_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeJpeg()
{
    return std::make_unique<JpegWorkload>();
}

} // namespace axmemo
