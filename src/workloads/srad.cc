/**
 * @file
 * SRAD (Rodinia): speckle-reducing anisotropic diffusion for ultrasound /
 * medical-image denoising. Each iteration computes a global speckle
 * statistic q0^2, then a per-pixel diffusion coefficient from the pixel,
 * its four directional derivatives, and q0^2 — six float inputs (24 B,
 * Table 2) truncated by 18 bits (the coefficient saturates quickly, so
 * very coarse inputs suffice), one float output. q0^2 changes per
 * iteration but is hashed directly, so no invalidation is needed.
 */

#include <algorithm>
#include <cmath>

#include "isa/builder.hh"
#include "workloads/datasets.hh"
#include "workloads/workload.hh"

namespace axmemo {

namespace {

constexpr unsigned kIterations = 2;
constexpr float kLambda = 0.5f;

class SradWorkload final : public Workload
{
  public:
    std::string name() const override { return "srad"; }
    std::string domain() const override { return "Medical Imaging"; }
    std::string
    description() const override
    {
        return "Speckle-reducing anisotropic diffusion denoising";
    }
    std::string
    datasetDescription() const override
    {
        return "458x502 pixel medical images";
    }

    void
    prepare(SimMemory &mem, const WorkloadParams &params) override
    {
        const double s = std::sqrt(std::max(0.001, params.scale));
        w_ = std::max(32u, static_cast<unsigned>(458 * s));
        h_ = std::max(32u, static_cast<unsigned>(502 * s));
        const std::size_t cells =
            static_cast<std::size_t>(w_) * h_;

        Rng rng(params.seed ^ (params.sampleSet ? 0x5badull : 0));
        const std::vector<float> img = synthImageGray(w_, h_, rng);

        jBase_ = mem.allocate(cells * 4);
        cBase_ = mem.allocate(cells * 4);
        // Intensities in (0, 1]: exp(img/255) / e, speckled.
        // Ultrasound frames are integer-valued: quantize intensities so
        // flat-area derivatives are exactly zero and repeat.
        for (std::size_t i = 0; i < cells; ++i) {
            const float v = std::exp(img[i] / 255.0f - 1.0f);
            mem.writeFloat(jBase_ + 4 * i, quantize(v, 1.0f / 2048));
        }
    }

    Program
    build() const override
    {
        KernelBuilder b("srad");
        const IReg jArr = b.imm(static_cast<std::int64_t>(jBase_));
        const IReg cArr = b.imm(static_cast<std::int64_t>(cBase_));
        const std::int64_t w = w_;
        const std::int64_t cells =
            static_cast<std::int64_t>(w_) * h_;

        b.forRange(0, kIterations, 1, [&](IReg) {
            // --- global speckle statistic q0^2 = var / mean^2 ---
            const FReg sum = b.newFReg();
            const FReg sum2 = b.newFReg();
            b.assign(sum, 0.0f);
            b.assign(sum2, 0.0f);
            b.forRange(0, cells, 1, [&](IReg i) {
                const FReg v = b.ldf(b.add(jArr, b.shl(i, 2)), 0);
                b.faddTo(sum, sum, v);
                b.faddTo(sum2, sum2, b.fmul(v, v));
            });
            const FReg invN =
                b.fdiv(b.fimm(1.0f),
                       b.fimm(static_cast<float>(cells)));
            const FReg mean = b.fmul(sum, invN);
            const FReg var = b.fsub(b.fmul(sum2, invN),
                                    b.fmul(mean, mean));
            const FReg q0sqr =
                b.fdiv(var, b.fmul(mean, mean));

            // --- diffusion coefficient pass ---
            b.forRange(
                1, static_cast<std::int64_t>(h_) - 1, 1, [&](IReg y) {
                    b.forRange(
                        1, static_cast<std::int64_t>(w_) - 1, 1,
                        [&](IReg x) {
                            const IReg idx = b.add(b.mul(y, w), x);
                            const IReg off = b.shl(idx, 2);
                            const IReg ja = b.add(jArr, off);
                            const FReg jc = b.ldf(ja, 0);
                            const FReg dN =
                                b.fsub(b.ldf(ja, -4 * w), jc);
                            const FReg dS =
                                b.fsub(b.ldf(ja, 4 * w), jc);
                            const FReg dW =
                                b.fsub(b.ldf(ja, -4), jc);
                            const FReg dE =
                                b.fsub(b.ldf(ja, 4), jc);

                            b.regionBegin(kRegion);
                            const FReg jc2 = b.fmul(jc, jc);
                            const FReg g2 = b.fdiv(
                                b.fadd(b.fadd(b.fmul(dN, dN),
                                              b.fmul(dS, dS)),
                                       b.fadd(b.fmul(dW, dW),
                                              b.fmul(dE, dE))),
                                jc2);
                            const FReg l = b.fdiv(
                                b.fadd(b.fadd(dN, dS),
                                       b.fadd(dW, dE)),
                                jc);
                            const FReg num = b.fsub(
                                b.fmul(b.fimm(0.5f), g2),
                                b.fmul(b.fimm(1.0f / 16.0f),
                                       b.fmul(l, l)));
                            const FReg denBase = b.fadd(
                                b.fimm(1.0f),
                                b.fmul(b.fimm(0.25f), l));
                            const FReg den =
                                b.fmul(denBase, denBase);
                            const FReg qsqr = b.fdiv(num, den);
                            const FReg diff = b.fdiv(
                                b.fsub(qsqr, q0sqr),
                                b.fmul(q0sqr,
                                       b.fadd(b.fimm(1.0f),
                                              q0sqr)));
                            const FReg cRaw = b.fdiv(
                                b.fimm(1.0f),
                                b.fadd(b.fimm(1.0f), diff));
                            const FReg coeff = b.fmax(
                                b.fimm(0.0f),
                                b.fmin(b.fimm(1.0f), cRaw));
                            b.regionEnd(kRegion);

                            b.stf(b.add(cArr, off), 0, coeff);
                        });
                });

            // --- divergence / update pass (in place) ---
            b.forRange(
                1, static_cast<std::int64_t>(h_) - 1, 1, [&](IReg y) {
                    b.forRange(
                        1, static_cast<std::int64_t>(w_) - 1, 1,
                        [&](IReg x) {
                            const IReg idx = b.add(b.mul(y, w), x);
                            const IReg off = b.shl(idx, 2);
                            const IReg ja = b.add(jArr, off);
                            const IReg ca = b.add(cArr, off);
                            const FReg jc = b.ldf(ja, 0);
                            const FReg dN =
                                b.fsub(b.ldf(ja, -4 * w), jc);
                            const FReg dS =
                                b.fsub(b.ldf(ja, 4 * w), jc);
                            const FReg dW =
                                b.fsub(b.ldf(ja, -4), jc);
                            const FReg dE =
                                b.fsub(b.ldf(ja, 4), jc);
                            const FReg cC = b.ldf(ca, 0);
                            const FReg cS = b.ldf(ca, 4 * w);
                            const FReg cE = b.ldf(ca, 4);

                            const FReg div = b.fadd(
                                b.fadd(b.fmul(cC, dN),
                                       b.fmul(cC, dW)),
                                b.fadd(b.fmul(cS, dS),
                                       b.fmul(cE, dE)));
                            const FReg fresh = b.fadd(
                                jc,
                                b.fmul(b.fimm(0.25f * kLambda),
                                       div));
                            b.stf(ja, 0, fresh);
                        });
                });
        });
        return b.finish();
    }

    MemoSpec
    memoSpec() const override
    {
        MemoSpec spec;
        RegionMemoSpec region;
        region.regionId = kRegion;
        region.lut = 0;
        region.truncBits = 18; // Table 2
        spec.regions.push_back(region);
        return spec;
    }

    bool imageOutput() const override { return true; }

    std::vector<double>
    readOutputs(const SimMemory &mem) const override
    {
        const std::size_t cells =
            static_cast<std::size_t>(w_) * h_;
        std::vector<double> out;
        out.reserve(cells);
        for (std::size_t i = 0; i < cells; ++i)
            out.push_back(mem.readFloat(jBase_ + 4 * i));
        return out;
    }

  private:
    static constexpr int kRegion = 1;

    unsigned w_ = 0;
    unsigned h_ = 0;
    Addr jBase_ = 0;
    Addr cBase_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeSrad()
{
    return std::make_unique<SradWorkload>();
}

} // namespace axmemo
