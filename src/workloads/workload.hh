/**
 * @file
 * The benchmark interface: every evaluated application (Table 2) is a
 * Workload that synthesizes its dataset into simulated memory, builds its
 * full AxIR program (with hinted regions), declares its memoization plan,
 * and knows how to read back and score its outputs.
 */

#ifndef AXMEMO_WORKLOADS_WORKLOAD_HH
#define AXMEMO_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "compiler/memo_spec.hh"
#include "isa/program.hh"
#include "memsys/sim_memory.hh"

namespace axmemo {

/** Dataset selection and sizing. */
struct WorkloadParams
{
    /**
     * Linear dataset scale: 1.0 reproduces the paper's input sizes
     * (Table 2); benches default to 1/8 for runtime and accept
     * AXMEMO_FULL=1 to restore full size.
     */
    double scale = 1.0;
    /** RNG seed for dataset synthesis. */
    std::uint64_t seed = 42;
    /**
     * Generate the *sample* input set (profiling) instead of the
     * evaluation set — disjoint data from a different seed, as Section 5
     * requires.
     */
    bool sampleSet = false;
};

/** Output scoring rule (Section 6). */
enum class QualityMetric
{
    NormalizedSquaredError, ///< Equation 2
    Misclassification       ///< Jmeint's boolean output
};

/** One benchmark; see file comment. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;
    virtual std::string domain() const = 0;
    virtual std::string description() const = 0;
    /** Table 2's dataset column (at scale 1.0). */
    virtual std::string datasetDescription() const = 0;

    /**
     * Synthesize the dataset into @p mem. Must be called before build();
     * call again (on a fresh SimMemory) before every run.
     */
    virtual void prepare(SimMemory &mem, const WorkloadParams &params) = 0;

    /** Build the baseline program (requires prepare() first). */
    virtual Program build() const = 0;

    /** The memoization plan with Table 2's truncation levels. */
    virtual MemoSpec memoSpec() const = 0;

    virtual QualityMetric qualityMetric() const
    {
        return QualityMetric::NormalizedSquaredError;
    }

    /** Float lanes in a LUT entry (for the quality monitor). */
    virtual unsigned monitorLanes() const { return 1; }

    /** True when LUT outputs are integers, not IEEE floats. */
    virtual bool integerOutputs() const { return false; }

    /** True when the output is an image (1% error bound, Section 5). */
    virtual bool imageOutput() const { return false; }

    /** Read the program's outputs back for scoring (after a run). */
    virtual std::vector<double> readOutputs(const SimMemory &mem) const
        = 0;
};

/** Names of all registered workloads, in Table 2 order. */
std::vector<std::string> workloadNames();

/** Instantiate a workload by name (fatal on unknown names). */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

// Per-benchmark factories.
std::unique_ptr<Workload> makeBlackscholes();
std::unique_ptr<Workload> makeFft();
std::unique_ptr<Workload> makeInversek2j();
std::unique_ptr<Workload> makeJmeint();
std::unique_ptr<Workload> makeJpeg();
std::unique_ptr<Workload> makeKmeans();
std::unique_ptr<Workload> makeSobel();
std::unique_ptr<Workload> makeHotspot();
std::unique_ptr<Workload> makeLavamd();
std::unique_ptr<Workload> makeSrad();

} // namespace axmemo

#endif // AXMEMO_WORKLOADS_WORKLOAD_HH
