#include "common/runtime_options.hh"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/log.hh"

namespace axmemo {

namespace {

/** The frozen driver copy; null until setGlobal(). */
RuntimeOptions *frozen = nullptr;

const char *
envOrNull(const char *name)
{
    const char *value = std::getenv(name);
    return value && *value ? value : nullptr;
}

/** Parse a positive double; warn and return false on malformed text. */
bool
parsePositiveDouble(const char *name, const char *text, double &out)
{
    char *end = nullptr;
    const double parsed = std::strtod(text, &end);
    if (end != text && *end == '\0' && parsed > 0.0 &&
        std::isfinite(parsed)) {
        out = parsed;
        return true;
    }
    axm_warn("ignoring malformed ", name, "='", text,
             "' (want a positive number)");
    return false;
}

/** Parse an unsigned integer in [0, max]; warn on malformed text. */
bool
parseUnsigned(const char *name, const char *text, unsigned long max,
              unsigned &out)
{
    char *end = nullptr;
    const unsigned long parsed = std::strtoul(text, &end, 10);
    if (end != text && *end == '\0' && parsed <= max) {
        out = static_cast<unsigned>(parsed);
        return true;
    }
    axm_warn("ignoring malformed ", name, "='", text,
             "' (want an integer in [0, ", max, "])");
    return false;
}

/** Parse an unsigned 64-bit integer; warn on malformed text. */
bool
parseU64(const char *name, const char *text, std::uint64_t &out)
{
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(text, &end, 10);
    if (end != text && *end == '\0' && text[0] != '-') {
        out = parsed;
        return true;
    }
    axm_warn("ignoring malformed ", name, "='", text,
             "' (want a non-negative integer)");
    return false;
}

} // namespace

RuntimeOptions
RuntimeOptions::fromEnv()
{
    RuntimeOptions options;

    if (const char *env = envOrNull("AXMEMO_JOBS"))
        parseUnsigned("AXMEMO_JOBS", env, 1024, options.jobs);

    // AXMEMO_FULL must be exactly "1" ("10", "1x", ... are mistakes,
    // not requests for full scale) and anything but "", "0", "1" is
    // warned about instead of silently ignored.
    if (const char *env = envOrNull("AXMEMO_FULL")) {
        if (std::strcmp(env, "1") == 0)
            options.full = true;
        else if (std::strcmp(env, "0") != 0)
            axm_warn("ignoring malformed AXMEMO_FULL='", env,
                     "' (want 0 or 1)");
    }
    if (const char *env = envOrNull("AXMEMO_SCALE"))
        options.scaleSet =
            parsePositiveDouble("AXMEMO_SCALE", env, options.scale);

    if (const char *env = envOrNull("AXMEMO_DEBUG"))
        options.debugFlags = env;
    if (const char *env = envOrNull("AXMEMO_SWEEP_DIR"))
        options.outDir = env;

    if (const char *env = envOrNull("AXMEMO_RETRIES"))
        parseUnsigned("AXMEMO_RETRIES", env, 64, options.retries);
    if (const char *env = envOrNull("AXMEMO_JOB_TIMEOUT"))
        parsePositiveDouble("AXMEMO_JOB_TIMEOUT", env,
                            options.jobTimeoutSeconds);

    if (const char *env = std::getenv("AXMEMO_TIMING");
        env && std::strcmp(env, "0") == 0)
        options.reportTiming = false;
    if (const char *env = envOrNull("AXMEMO_FAULT_INJECT"))
        options.faultInject = env;

    if (const char *env = envOrNull("AXMEMO_DISPATCH")) {
        if (std::strcmp(env, "auto") == 0 ||
            std::strcmp(env, "threaded") == 0 ||
            std::strcmp(env, "switch") == 0)
            options.dispatch = env;
        else
            axm_warn("ignoring malformed AXMEMO_DISPATCH='", env,
                     "' (want auto, threaded or switch)");
    }
    if (const char *env = envOrNull("AXMEMO_NO_BATCH")) {
        if (std::strcmp(env, "1") == 0)
            options.blockBatch = false;
        else if (std::strcmp(env, "0") != 0)
            axm_warn("ignoring malformed AXMEMO_NO_BATCH='", env,
                     "' (want 0 or 1)");
    }
    if (const char *env = envOrNull("AXMEMO_NO_SIMD")) {
        if (std::strcmp(env, "1") == 0)
            options.simd = false;
        else if (std::strcmp(env, "0") != 0)
            axm_warn("ignoring malformed AXMEMO_NO_SIMD='", env,
                     "' (want 0 or 1)");
    }

    if (const char *env = envOrNull("AXMEMO_SHARD_DIR"))
        options.shardDir = env;
    if (const char *env = envOrNull("AXMEMO_WORKER_ID"))
        options.workerId = env;
    if (const char *env = envOrNull("AXMEMO_LEASE"))
        parsePositiveDouble("AXMEMO_LEASE", env, options.leaseSeconds);
    if (const char *env = envOrNull("AXMEMO_ISOLATE")) {
        if (std::strcmp(env, "1") == 0)
            options.isolate = true;
        else if (std::strcmp(env, "0") != 0)
            axm_warn("ignoring malformed AXMEMO_ISOLATE='", env,
                     "' (want 0 or 1)");
    }
    if (const char *env = envOrNull("AXMEMO_TIMELINE"))
        options.timeline = env;

    if (const char *env = envOrNull("AXMEMO_SERVE_SOCKET"))
        options.serveSocket = env;
    if (const char *env = envOrNull("AXMEMO_SERVE_POLICY")) {
        if (std::strcmp(env, "shared") == 0 ||
            std::strcmp(env, "partitioned") == 0)
            options.servePolicy = env;
        else
            axm_warn("ignoring malformed AXMEMO_SERVE_POLICY='", env,
                     "' (want shared or partitioned)");
    }
    if (const char *env = envOrNull("AXMEMO_SERVE_TENANTS")) {
        unsigned tenants = 0;
        if (parseUnsigned("AXMEMO_SERVE_TENANTS", env, 4096, tenants) &&
            tenants > 0)
            options.serveTenants = tenants;
    }
    if (const char *env = envOrNull("AXMEMO_SERVE_QUOTA"))
        parseU64("AXMEMO_SERVE_QUOTA", env, options.serveQuota);
    if (const char *env = envOrNull("AXMEMO_SERVE_LUT")) {
        std::uint64_t bytes = 0;
        if (parseU64("AXMEMO_SERVE_LUT", env, bytes) && bytes > 0)
            options.serveLutBytes = bytes;
    }
    if (const char *env = envOrNull("AXMEMO_SERVE_QUEUE")) {
        unsigned depth = 0;
        if (parseUnsigned("AXMEMO_SERVE_QUEUE", env, 1 << 20, depth) &&
            depth > 0)
            options.serveQueue = depth;
    }
    if (const char *env = envOrNull("AXMEMO_TRACE_SEED"))
        parseU64("AXMEMO_TRACE_SEED", env, options.traceSeed);
    if (const char *env = envOrNull("AXMEMO_TRACE_REQUESTS"))
        parseU64("AXMEMO_TRACE_REQUESTS", env, options.traceRequests);

    return options;
}

RuntimeOptions
RuntimeOptions::global()
{
    if (frozen)
        return *frozen;
    return fromEnv();
}

void
RuntimeOptions::setGlobal(const RuntimeOptions &options)
{
    if (!frozen)
        frozen = new RuntimeOptions;
    *frozen = options;
}

bool
RuntimeOptions::globalFrozen()
{
    return frozen != nullptr;
}

unsigned
RuntimeOptions::workerCount() const
{
    if (jobs > 0)
        return jobs;
    return std::max(1u, std::thread::hardware_concurrency());
}

double
RuntimeOptions::benchScale(double fallback) const
{
    if (full)
        return 1.0;
    if (scaleSet)
        return scale;
    return fallback;
}

std::string
RuntimeOptions::faultWorkload() const
{
    const std::size_t colon = faultInject.find(':');
    return faultInject.substr(0, colon);
}

unsigned
RuntimeOptions::faultAttempts() const
{
    const std::size_t colon = faultInject.find(':');
    if (colon == std::string::npos)
        return ~0u;
    const std::string count = faultInject.substr(colon + 1);
    char *end = nullptr;
    const unsigned long parsed = std::strtoul(count.c_str(), &end, 10);
    if (end == count.c_str() || *end != '\0')
        return ~0u;
    return static_cast<unsigned>(parsed);
}

std::string
RuntimeOptions::describeKnobs()
{
    return "runtime knobs (environment variable / driver flag / "
           "default):\n"
           "  AXMEMO_JOBS         --jobs <n>         hardware threads  "
           "sweep worker count (0 = hardware threads)\n"
           "  AXMEMO_SCALE        --scale <f>        0.125             "
           "dataset scale factor\n"
           "  AXMEMO_FULL         --full             0                 "
           "paper-size inputs (forces scale 1.0)\n"
           "  AXMEMO_SWEEP_DIR    --out <dir>        .                 "
           "output directory for reports and manifest\n"
           "  AXMEMO_DEBUG        --debug-flags <s>  (off)             "
           "trace flags: Exec,Memo,Cache,Dram,Lut,Sweep,Prof,Host|All\n"
           "  AXMEMO_RETRIES      --retries <n>      1                 "
           "per-job retries after a failure (not timeouts)\n"
           "  AXMEMO_JOB_TIMEOUT  --job-timeout <s>  0 (off)           "
           "per-job watchdog; expired jobs are marked timed-out\n"
           "  AXMEMO_TIMING       --no-timing        1                 "
           "0 zeroes host-timing fields in every report\n"
           "  AXMEMO_FAULT_INJECT --fault-inject <s> (off)             "
           "test hook: fail jobs matching <workload>[:<attempts>]\n"
           "  AXMEMO_DISPATCH     --dispatch <m>     auto              "
           "interpreter loop: auto | threaded | switch (bit-identical)\n"
           "  AXMEMO_NO_BATCH     --no-batch         0                 "
           "1 disables basic-block macro-op batching\n"
           "  AXMEMO_NO_SIMD      --no-simd          0                 "
           "1 disables the SSE4.2/PCLMUL CRC kernels\n"
           "  AXMEMO_SHARD_DIR    --shard-dir <d>    (off)             "
           "shared work-queue directory: cooperate with other workers\n"
           "  AXMEMO_WORKER_ID    --worker-id <s>    w<pid>            "
           "this worker's identity inside the shard directory\n"
           "  AXMEMO_LEASE        --lease <s>        30                "
           "claim lease window; stale claims are stolen after this\n"
           "  AXMEMO_ISOLATE      --isolate          0                 "
           "1 forks every simulated job into a watchdogged child\n"
           "  AXMEMO_TIMELINE     --trace-timeline <f> (off)           "
           "write a Chrome-trace/Perfetto span timeline to <f>\n"
           "  AXMEMO_SERVE_SOCKET --socket <path>    <out>/axmemo.sock "
           "AF_UNIX socket the memo server binds / clients dial\n"
           "  AXMEMO_SERVE_POLICY --policy <p>       partitioned       "
           "tenant->LUT_ID mapping: partitioned | shared\n"
           "  AXMEMO_SERVE_TENANTS --tenants <n>     2                 "
           "tenants the server provisions (max 8 partitioned)\n"
           "  AXMEMO_SERVE_QUOTA  --quota <n>        0 (unlimited)     "
           "per-tenant LUT entry quota; excess updates are refused\n"
           "  AXMEMO_SERVE_LUT    --lut-bytes <n>    65536             "
           "physical serve LUT size in bytes\n"
           "  AXMEMO_SERVE_QUEUE  --queue <n>        1024              "
           "bounded request-queue depth; full queue sheds\n"
           "  AXMEMO_TRACE_SEED   --seed <n>         42                "
           "request-trace generator seed (replay / serve_traffic)\n"
           "  AXMEMO_TRACE_REQUESTS --requests <n>   4000              "
           "requests to replay (0 = the smoke trace default)\n";
}

} // namespace axmemo
