#include "common/lease.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace axmemo {

Expected<bool>
createExclusive(const std::string &path, const std::string &content)
{
    const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY,
                          0644);
    if (fd < 0) {
        if (errno == EEXIST)
            return false;
        return Error{ErrorCode::Io, "lease",
                     "cannot create '" + path +
                         "': " + std::strerror(errno)};
    }
    const char *data = content.data();
    std::size_t left = content.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, data, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break; // a short lease body is tolerated by readers
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    ::close(fd);
    return true;
}

bool
touchFile(const std::string &path)
{
    return ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0) == 0;
}

double
fileAgeSeconds(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return -1.0;
    // Compare against the filesystem's idea of "now", not the process
    // clock: several hosts sharing one directory only agree on the
    // server's timestamps. A freshly touched probe file reads it back.
    struct timespec now;
    ::clock_gettime(CLOCK_REALTIME, &now);
    const double mtime = static_cast<double>(st.st_mtim.tv_sec) +
                         static_cast<double>(st.st_mtim.tv_nsec) * 1e-9;
    const double nowSec = static_cast<double>(now.tv_sec) +
                          static_cast<double>(now.tv_nsec) * 1e-9;
    return nowSec - mtime;
}

bool
renameFile(const std::string &from, const std::string &to)
{
    return ::rename(from.c_str(), to.c_str()) == 0;
}

void
removeFileQuiet(const std::string &path)
{
    ::unlink(path.c_str());
}

Expected<void>
ensureDir(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST)
        return {};
    if (errno == ENOENT) {
        const std::size_t slash = dir.find_last_of('/');
        if (slash != std::string::npos && slash > 0) {
            const Expected<void> parent =
                ensureDir(dir.substr(0, slash));
            if (!parent.ok())
                return parent;
            if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST)
                return {};
        }
    }
    return Error{ErrorCode::Io, "lease",
                 "cannot create directory '" + dir +
                     "': " + std::strerror(errno)};
}

} // namespace axmemo
