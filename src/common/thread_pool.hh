/**
 * @file
 * Fixed-size worker pool for the sweep engine.
 *
 * The simulator is deterministic and shares no mutable state between
 * instances, so whole simulations are embarrassingly parallel. This pool
 * runs enqueued tasks on a fixed set of worker threads; parallelFor()
 * layers a deterministic ordered map on top: task i writes only slot i,
 * so results are in submission order regardless of completion order.
 *
 * A pool of size 1 executes every task inline on the submitting thread
 * (no worker threads at all), which makes AXMEMO_JOBS=1 byte-for-byte the
 * old serial behaviour including execution order.
 */

#ifndef AXMEMO_COMMON_THREAD_POOL_HH
#define AXMEMO_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace axmemo {

/** Fixed-size worker pool; see file comment. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 1 = inline serial execution. Values
     * above 1 spawn that many workers even on single-core hosts (useful
     * for determinism tests).
     */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. Inline-executes immediately when size() == 1. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    unsigned size() const { return threads_; }

    /**
     * Worker count from AXMEMO_JOBS: a positive integer, or unset/0 for
     * the hardware thread count. Malformed values warn and fall back.
     */
    static unsigned jobsFromEnv();

  private:
    void workerLoop();

    const unsigned threads_;
    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    std::size_t inFlight_ = 0; ///< queued + currently executing
    bool stopping_ = false;
};

/**
 * Run fn(0..n-1) across @p threads workers and return when all are done.
 * Results must be written into per-index slots by @p fn; with threads==1
 * indices execute in order on the calling thread.
 */
void parallelFor(unsigned threads, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

} // namespace axmemo

#endif // AXMEMO_COMMON_THREAD_POOL_HH
