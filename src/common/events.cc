#include "common/events.hh"

#include <cstring>

namespace axmemo {

const char *
eventName(Ev ev)
{
    switch (ev) {
      case Ev::FrontendUops: return "frontend_uops";
      case Ev::UopIntAlu: return "uop_int_alu";
      case Ev::UopIntMul: return "uop_int_mul";
      case Ev::UopIntDiv: return "uop_int_div";
      case Ev::UopFpSimple: return "uop_fp_simple";
      case Ev::UopFpMul: return "uop_fp_mul";
      case Ev::UopFpDiv: return "uop_fp_div";
      case Ev::UopFpLong: return "uop_fp_long";
      case Ev::UopMem: return "uop_mem";
      case Ev::UopBranch: return "uop_branch";
      case Ev::UopMemo: return "uop_memo";
      case Ev::L1dHit: return "l1d_hit";
      case Ev::L1dMiss: return "l1d_miss";
      case Ev::L2Hit: return "l2_hit";
      case Ev::L2Miss: return "l2_miss";
      case Ev::L2WbAccess: return "l2_wb_access";
      case Ev::DramRead: return "dram_read";
      case Ev::DramWrite: return "dram_write";
      case Ev::MemoCrcBytes: return "memo_crc_bytes";
      case Ev::MemoHvrAccess: return "memo_hvr_access";
      case Ev::MemoLutL1Access: return "memo_lut_l1_access";
      case Ev::MemoLutL2Access: return "memo_lut_l2_access";
      case Ev::NumEvents: break;
    }
    return "???";
}

std::uint64_t
EventCounters::get(const char *name) const
{
    for (std::size_t i = 0; i < numEvents; ++i) {
        if (std::strcmp(name, eventName(static_cast<Ev>(i))) == 0)
            return counts_[i];
    }
    return 0;
}

void
EventCounters::mergeInto(CounterSet &out) const
{
    for (std::size_t i = 0; i < numEvents; ++i) {
        if (counts_[i])
            out.add(eventName(static_cast<Ev>(i)), counts_[i]);
    }
}

} // namespace axmemo
