/**
 * @file
 * Fundamental type aliases shared by every AxMemo library.
 */

#ifndef AXMEMO_COMMON_TYPES_HH
#define AXMEMO_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace axmemo {

/** Simulated byte address in the workload's flat address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Simulation tick (same granularity as Cycle for this model). */
using Tick = std::uint64_t;

/** Architectural register index inside a register class. */
using RegId = std::uint16_t;

/** Logical lookup-table identifier carried by memoization instructions. */
using LutId = std::uint8_t;

/** Hardware (SMT) thread identifier. */
using ThreadId = std::uint8_t;

/** Sentinel for "no register". */
inline constexpr RegId invalidReg = std::numeric_limits<RegId>::max();

/** Sentinel for "no address". */
inline constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Maximum number of logical LUTs per thread (3-bit LUT_ID, Section 3.3). */
inline constexpr unsigned maxLutsPerThread = 8;

/** Maximum SMT threads supported by the hash-value register file. */
inline constexpr unsigned maxSmtThreads = 2;

} // namespace axmemo

#endif // AXMEMO_COMMON_TYPES_HH
