/**
 * @file
 * Output-quality metrics from Section 6 of the paper.
 *
 * The whole-application metric is the normalized squared error of Equation 2
 * (E_r = sum((xhat-x)^2) / sum(x^2)); Jmeint uses misclassification rate;
 * Fig. 10b additionally reports the CDF of element-wise relative error.
 */

#ifndef AXMEMO_COMMON_ERROR_METRICS_HH
#define AXMEMO_COMMON_ERROR_METRICS_HH

#include <vector>

#include "common/stats.hh"

namespace axmemo {

/**
 * Equation 2 of the paper: sum of squared deviations over sum of squared
 * reference values. @p exact and @p approx must be the same length.
 */
double normalizedSquaredError(const std::vector<double> &exact,
                              const std::vector<double> &approx);

/**
 * Fraction of positions where the (boolean-interpreted) outputs differ;
 * the quality metric used for Jmeint's intersect/no-intersect output.
 */
double misclassificationRate(const std::vector<double> &exact,
                             const std::vector<double> &approx);

/**
 * Element-wise relative errors |xhat - x| / max(|x|, eps), collected into an
 * EmpiricalCdf for Fig. 10b. @p eps guards division for near-zero exact
 * values (relative error is reported against eps in that case).
 */
EmpiricalCdf elementwiseRelativeErrorCdf(const std::vector<double> &exact,
                                         const std::vector<double> &approx,
                                         double eps = 1e-6);

/** Relative error of one pair, with the same eps guard. */
double relativeError(double exact, double approx, double eps = 1e-6);

} // namespace axmemo

#endif // AXMEMO_COMMON_ERROR_METRICS_HH
