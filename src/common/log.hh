/**
 * @file
 * gem5-flavored status and error reporting helpers.
 *
 * panic() flags an internal simulator bug and aborts; fatal() flags a user
 * configuration error and exits cleanly; warn()/inform() report status.
 */

#ifndef AXMEMO_COMMON_LOG_HH
#define AXMEMO_COMMON_LOG_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace axmemo {

namespace detail {

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Globally silence warn()/inform() (used by benches for clean tables). */
void setQuiet(bool quiet);

/** @return true if warn()/inform() output is suppressed. */
bool quiet();

} // namespace axmemo

/** Abort on an internal invariant violation (simulator bug). */
#define axm_panic(...)                                                       \
    ::axmemo::detail::panicImpl(__FILE__, __LINE__,                          \
                                ::axmemo::detail::concat(__VA_ARGS__))

/** Exit on a user-caused error (bad configuration or arguments). */
#define axm_fatal(...)                                                       \
    ::axmemo::detail::fatalImpl(__FILE__, __LINE__,                          \
                                ::axmemo::detail::concat(__VA_ARGS__))

/** Report suspicious but survivable conditions. */
#define axm_warn(...)                                                        \
    ::axmemo::detail::warnImpl(::axmemo::detail::concat(__VA_ARGS__))

/** Report normal operating status. */
#define axm_inform(...)                                                      \
    ::axmemo::detail::informImpl(::axmemo::detail::concat(__VA_ARGS__))

#endif // AXMEMO_COMMON_LOG_HH
