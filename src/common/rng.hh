/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the reproduction (dataset synthesis, ATM index
 * shuffles, fuzz tests) draws from this xoshiro256** generator so results are
 * bit-identical across platforms and runs. std::mt19937 is avoided because
 * the distributions layered on top of it are not standardized.
 */

#ifndef AXMEMO_COMMON_RNG_HH
#define AXMEMO_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace axmemo {

/** xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 seeding decorrelates nearby seeds.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** @return the next 64 uniformly distributed bits. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return uniform integer in [0, bound) (bound > 0). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free mapping is fine here; a
        // tiny modulo bias is irrelevant for workload synthesis, but we use
        // 128-bit multiply to keep it uniform anyway.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** @return standard normal deviate (Marsaglia polar method). */
    double
    gaussian()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        double u, v, s;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double m = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * m;
        haveSpare_ = true;
        return u * m;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
    double spare_ = 0.0;
    bool haveSpare_ = false;
};

} // namespace axmemo

#endif // AXMEMO_COMMON_RNG_HH
