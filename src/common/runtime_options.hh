/**
 * @file
 * One struct for every host-side runtime knob.
 *
 * The environment variables that steer a run (worker count, dataset
 * scale, output directory, retry/timeout policy, debug flags) used to
 * be parsed ad hoc at each point of use — thread_pool read AXMEMO_JOBS,
 * experiment read AXMEMO_SCALE/AXMEMO_FULL, output_paths read
 * AXMEMO_SWEEP_DIR, and a new knob meant a new getenv scattered
 * somewhere. RuntimeOptions consolidates them: fromEnv() parses every
 * knob exactly once (with the same defensive warnings the scattered
 * parsers used), the axmemo driver layers its command-line flags on top
 * and freezes the result with setGlobal(), and the sweep/artifact APIs
 * take the struct explicitly. Code that still needs ambient access
 * (legacy bench helpers) goes through global(), which re-reads the
 * environment until a driver freezes it — so tests that setenv() at
 * runtime keep working.
 *
 * Knob inventory (flag equivalents are `axmemo` driver options; the
 * driver's --help prints this table):
 *
 *   AXMEMO_JOBS         --jobs <n>        sweep workers; 0/unset = hw threads
 *   AXMEMO_SCALE        --scale <f>       dataset scale (default 0.125)
 *   AXMEMO_FULL         --full            paper-size inputs (scale 1.0)
 *   AXMEMO_SWEEP_DIR    --out <dir>       output directory (default ".")
 *   AXMEMO_DEBUG        --debug-flags     trace flags (obs/trace.hh)
 *   AXMEMO_RETRIES      --retries <n>     per-job retries on failure (1)
 *   AXMEMO_JOB_TIMEOUT  --job-timeout <s> per-job watchdog seconds (0 = off)
 *   AXMEMO_TIMING       --no-timing       0 zeroes host-timing report fields
 *   AXMEMO_FAULT_INJECT --fault-inject    test hook: fail matching jobs
 *   AXMEMO_DISPATCH     --dispatch <m>    interpreter loop: auto|threaded|switch
 *   AXMEMO_NO_BATCH     --no-batch        1 disables basic-block batching
 *   AXMEMO_NO_SIMD      --no-simd         1 disables the SIMD CRC kernels
 *   AXMEMO_SHARD_DIR    --shard-dir <d>   shared work-queue directory
 *   AXMEMO_WORKER_ID    --worker-id <s>   shard worker identity
 *   AXMEMO_LEASE        --lease <s>       claim lease window seconds (30)
 *   AXMEMO_ISOLATE      --isolate         1 forks each job into a child
 *   AXMEMO_TIMELINE     --trace-timeline  span timeline output file
 *
 * The dispatch/batch/simd knobs select between bit-identical host data
 * paths (DESIGN.md §10): they change simulation speed, never simulated
 * results, so they are host-side options rather than ExperimentConfig
 * fields and stay out of the canonical manifest serialization.
 */

#ifndef AXMEMO_COMMON_RUNTIME_OPTIONS_HH
#define AXMEMO_COMMON_RUNTIME_OPTIONS_HH

#include <cstdint>
#include <string>

namespace axmemo {

/** Every host-side runtime knob; see file comment. */
struct RuntimeOptions
{
    /** Sweep worker count; 0 = hardware thread count. */
    unsigned jobs = 0;
    /** Dataset scale when scaleSet (AXMEMO_FULL forces 1.0). */
    double scale = 0.0;
    bool scaleSet = false;
    bool full = false;
    /** Trace-flag spec (comma-separated names, or "All"); empty = off. */
    std::string debugFlags;
    /** Output directory for reports/manifest; empty = current dir. */
    std::string outDir;
    /** Per-job retry budget for Failed jobs (not Timeout/Cancelled). */
    unsigned retries = 1;
    /** Per-job watchdog in host seconds; 0 disables the deadline. */
    double jobTimeoutSeconds = 0.0;
    /** When false, host-timing fields in every emitted report are
     * zeroed so two runs of the same sweep are byte-comparable. */
    bool reportTiming = true;
    /** Fault-injection hook "<workload-substring>[:<attempts>]": jobs
     * whose workload matches fail their first <attempts> attempts
     * (default: all attempts). Test/CI use only; empty = off. */
    std::string faultInject;
    /** Interpreter dispatch mode: "auto" (threaded when compiled in),
     * "threaded" (computed goto; warns and falls back if the build
     * lacks it) or "switch" (portable fallback loop). */
    std::string dispatch = "auto";
    /** Basic-block macro-op batching in the simulator inner loop;
     * AXMEMO_NO_BATCH=1 / --no-batch turns it off. */
    bool blockBatch = true;
    /** SIMD CRC kernels (SSE4.2/PCLMUL) when the host supports them;
     * AXMEMO_NO_SIMD=1 / --no-simd forces the portable slice paths. */
    bool simd = true;
    /** Shared work-queue directory (core/shard_queue.hh); empty = the
     * sweep runs single-process with the plain resume journal. */
    std::string shardDir;
    /** Worker identity inside shardDir; empty = "w<pid>" at attach. */
    std::string workerId;
    /** Claim lease window in seconds: a claim whose heartbeat is older
     * than this belongs to a dead worker and may be stolen. */
    double leaseSeconds = 30.0;
    /** Fork each simulated job into a child process so a crash or
     * runaway loop is contained at the process boundary. */
    bool isolate = false;
    /** Chrome-trace/Perfetto timeline output file (obs/telemetry.hh);
     * non-empty arms span recording. Shard workers write per-worker
     * timeline segments instead and `axmemo merge` stitches them into
     * this file. */
    std::string timeline;

    // `axmemo serve` / `axmemo replay` knobs (src/serve). Parsed here
    // so the generated --help knob table stays complete and the shared
    // CLI flag parser has one struct to fill.
    /** AF_UNIX socket path; empty = "<outDir>/axmemo.sock". */
    std::string serveSocket;
    /** Tenant -> LUT_ID mapping: "partitioned" (isolated logical LUT
     * per tenant) or "shared" (one LUT_ID, entries shared). */
    std::string servePolicy = "partitioned";
    /** Tenants the server provisions (max 8 under partitioned). */
    unsigned serveTenants = 2;
    /** Per-tenant LUT entry quota; 0 = unlimited. */
    std::uint64_t serveQuota = 0;
    /** Physical serve LUT size in bytes. */
    std::uint64_t serveLutBytes = 64 * 1024;
    /** Bounded request-queue depth; a full queue sheds (never blocks
     * the accept loop). */
    unsigned serveQueue = 1024;
    /** Request-trace seed (replay / serve_traffic artifact). */
    std::uint64_t traceSeed = 42;
    /** Requests to replay; 0 = the smoke spec's default. */
    std::uint64_t traceRequests = 0;

    /** Parse every knob from the environment (defensive: malformed
     * values warn and keep the default, same as the old parsers). */
    static RuntimeOptions fromEnv();

    /**
     * The ambient options: the frozen driver copy when setGlobal() has
     * been called, else a fresh fromEnv() parse. Returned by value so
     * un-frozen callers always see the current environment.
     */
    static RuntimeOptions global();

    /** Freeze @p options as the process-wide instance (driver startup;
     * call again to update, e.g. after a scale change in perf mode). */
    static void setGlobal(const RuntimeOptions &options);

    /** True once setGlobal() has been called. */
    static bool globalFrozen();

    /** Resolved worker count (jobs, or the hardware thread count). */
    unsigned workerCount() const;

    /** Resolved dataset scale: full -> 1.0, else scale, else fallback. */
    double benchScale(double fallback = 0.125) const;

    /** Fault-injection target split out of faultInject ("" = off). */
    std::string faultWorkload() const;
    /** Number of attempts the injected fault survives (default: all). */
    unsigned faultAttempts() const;

    /** The --help knob table (env var, flag, default, description). */
    static std::string describeKnobs();
};

} // namespace axmemo

#endif // AXMEMO_COMMON_RUNTIME_OPTIONS_HH
