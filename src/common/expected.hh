/**
 * @file
 * Structured errors and the Expected<T> return channel.
 *
 * Library code used to report failure either with warn()+bool or by
 * calling fatal(), which decides process policy (die) at the point of
 * detection. Both lose information the caller needs: what kind of error
 * it was, which component raised it, and whether it is worth retrying.
 * This header replaces them with a small value-based error API:
 *
 *  - Error: (code, component, message). Codes classify the failure for
 *    policy decisions (a Timeout is never retried, an Io error may be);
 *    component names the subsystem for reports and traces.
 *  - Expected<T>: either a T or an Error. Library functions return it;
 *    the caller — ultimately the driver — decides what is fatal.
 *  - AxException: an Error in flight. Code that cannot return (deep in a
 *    simulation, inside a constructor) throws it via raiseError(); the
 *    sweep engine catches it at the worker boundary and records the
 *    structured Error in the job's outcome instead of killing the sweep.
 *    It derives from std::runtime_error, so existing EXPECT_THROW
 *    assertions and catch-sites keep working.
 *
 * Library code under src/core and src/memo must not call axm_fatal()
 * for recoverable conditions (a bad per-job configuration, an
 * unwritable output file): return an Expected or throw an AxException
 * and let the process boundary pick the exit code.
 */

#ifndef AXMEMO_COMMON_EXPECTED_HH
#define AXMEMO_COMMON_EXPECTED_HH

#include <stdexcept>
#include <string>
#include <utility>

#include "common/log.hh"

namespace axmemo {

/** Failure classification; drives retry/exit policy, not text. */
enum class ErrorCode
{
    None,       ///< no error (the Error default state)
    Config,     ///< invalid configuration or arguments
    Parse,      ///< malformed serialized input (JSON, journal lines)
    Io,         ///< host I/O failure (open/write/rename)
    Workload,   ///< dataset synthesis or program construction failed
    Simulation, ///< the simulation itself failed
    Timeout,    ///< job exceeded its watchdog deadline (never retried)
    Cancelled,  ///< interrupted by the user (SIGINT/SIGTERM)
    Internal,   ///< unclassified exception escaping a job
};

/** @return the stable lower-case name of @p code ("config", ...). */
const char *errorCodeName(ErrorCode code);

/** One structured error: classification, origin, human text. */
struct Error
{
    ErrorCode code = ErrorCode::None;
    std::string component; ///< subsystem that raised it ("lut", "sweep")
    std::string message;

    bool ok() const { return code == ErrorCode::None; }

    /** "config error in lut: size must be ..." (empty when ok()). */
    std::string describe() const;
};

/** An Error travelling as an exception; see file comment. */
class AxException : public std::runtime_error
{
  public:
    explicit AxException(Error error)
        : std::runtime_error(error.describe()), error_(std::move(error))
    {
    }

    const Error &error() const { return error_; }

  private:
    Error error_;
};

/** Throw @p code/@p component/@p message as an AxException. */
[[noreturn]] void raiseError(ErrorCode code, std::string component,
                             std::string message);

/**
 * A value or an Error. Deliberately minimal: no exceptions on access
 * misuse beyond axm_panic (a caller reading the wrong arm is a bug, not
 * a runtime condition), implicit construction from both arms so
 * `return Error{...}` and `return value` both read naturally.
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : value_(std::move(value)), hasValue_(true) {}
    Expected(Error error) : error_(std::move(error))
    {
        if (error_.ok())
            axm_panic("Expected constructed from an ok() Error");
    }

    bool ok() const { return hasValue_; }
    explicit operator bool() const { return hasValue_; }

    const T &
    value() const &
    {
        if (!hasValue_)
            axm_panic("Expected::value() on error: ",
                      error_.describe());
        return value_;
    }
    T &
    value() &
    {
        if (!hasValue_)
            axm_panic("Expected::value() on error: ",
                      error_.describe());
        return value_;
    }
    T &&
    value() &&
    {
        if (!hasValue_)
            axm_panic("Expected::value() on error: ",
                      error_.describe());
        return std::move(value_);
    }

    T
    valueOr(T fallback) const
    {
        return hasValue_ ? value_ : std::move(fallback);
    }

    const Error &
    error() const
    {
        if (hasValue_)
            axm_panic("Expected::error() on a value");
        return error_;
    }

  private:
    T value_{};
    Error error_{};
    bool hasValue_ = false;
};

/** The no-payload arm: success, or an Error. */
template <>
class Expected<void>
{
  public:
    Expected() = default;
    Expected(Error error) : error_(std::move(error))
    {
        if (error_.ok())
            axm_panic("Expected constructed from an ok() Error");
    }

    bool ok() const { return error_.ok(); }
    explicit operator bool() const { return ok(); }

    const Error &
    error() const
    {
        if (ok())
            axm_panic("Expected::error() on a value");
        return error_;
    }

  private:
    Error error_{};
};

} // namespace axmemo

#endif // AXMEMO_COMMON_EXPECTED_HH
