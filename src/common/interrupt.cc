#include "common/interrupt.hh"

#include <atomic>
#include <csignal>
#include <cstdlib>

namespace axmemo {

namespace {

std::atomic<int> receivedSignal{0};

extern "C" void
handleStopSignal(int signo)
{
    // Second signal: the user insists. _exit is async-signal-safe;
    // skip destructors and leave with the conventional code.
    if (receivedSignal.exchange(signo) != 0)
        std::_Exit(128 + signo);
}

} // namespace

void
installSignalHandlers()
{
    struct sigaction action = {};
    action.sa_handler = handleStopSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

bool
interruptRequested()
{
    return receivedSignal.load(std::memory_order_relaxed) != 0;
}

int
interruptSignal()
{
    return receivedSignal.load(std::memory_order_relaxed);
}

void
setInterruptForTest(int signal)
{
    receivedSignal.store(signal);
}

} // namespace axmemo
