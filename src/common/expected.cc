#include "common/expected.hh"

namespace axmemo {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::None: return "none";
      case ErrorCode::Config: return "config";
      case ErrorCode::Parse: return "parse";
      case ErrorCode::Io: return "io";
      case ErrorCode::Workload: return "workload";
      case ErrorCode::Simulation: return "simulation";
      case ErrorCode::Timeout: return "timeout";
      case ErrorCode::Cancelled: return "cancelled";
      case ErrorCode::Internal: return "internal";
    }
    return "???";
}

std::string
Error::describe() const
{
    if (ok())
        return {};
    std::string text = errorCodeName(code);
    text += " error";
    if (!component.empty()) {
        text += " in ";
        text += component;
    }
    if (!message.empty()) {
        text += ": ";
        text += message;
    }
    return text;
}

void
raiseError(ErrorCode code, std::string component, std::string message)
{
    throw AxException(
        {code, std::move(component), std::move(message)});
}

} // namespace axmemo
