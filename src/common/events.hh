/**
 * @file
 * Fixed-enum event counters for simulation hot paths.
 *
 * CounterSet (string-keyed, map-backed) is convenient for reports and the
 * energy model but far too slow for code that fires on every simulated
 * instruction or cache access: each add() costs a string construction and
 * an O(log n) tree walk. Every event the timing model can emit is known at
 * compile time, so the hot paths count into a flat array indexed by this
 * enum and convert to a CounterSet exactly once, at end of run.
 */

#ifndef AXMEMO_COMMON_EVENTS_HH
#define AXMEMO_COMMON_EVENTS_HH

#include <array>
#include <cstdint>

#include "common/stats.hh"

namespace axmemo {

/** Every counter the simulator, hierarchy, and memo unit can emit. */
enum class Ev : std::uint8_t
{
    // Core front end + per-class µop execution (energy model keys).
    FrontendUops,
    UopIntAlu,
    UopIntMul,
    UopIntDiv,
    UopFpSimple,
    UopFpMul,
    UopFpDiv,
    UopFpLong,
    UopMem,
    UopBranch,
    UopMemo,

    // Memory hierarchy.
    L1dHit,
    L1dMiss,
    L2Hit,
    L2Miss,
    L2WbAccess,
    DramRead,
    DramWrite,

    // Memoization-unit datapath.
    MemoCrcBytes,
    MemoHvrAccess,
    MemoLutL1Access,
    MemoLutL2Access,

    NumEvents
};

constexpr std::size_t numEvents = static_cast<std::size_t>(Ev::NumEvents);

/** Length of the front-end/µop-class prefix of Ev (FrontendUops through
 * UopMemo) — the counters the simulator charges on every instruction
 * and can therefore batch per basic block. */
constexpr std::size_t numUopEvents =
    static_cast<std::size_t>(Ev::UopMemo) + 1;

/** @return the stable CounterSet/report name of @p ev. */
const char *eventName(Ev ev);

/** Flat-array event counters; the hot-path replacement for CounterSet. */
class EventCounters
{
  public:
    /** Add @p delta to @p ev. O(1), no allocation. */
    void
    add(Ev ev, std::uint64_t delta = 1)
    {
        counts_[static_cast<std::size_t>(ev)] += delta;
    }

    std::uint64_t
    get(Ev ev) const
    {
        return counts_[static_cast<std::size_t>(ev)];
    }

    /**
     * Element-wise add of the first @p n counters from @p deltas (the
     * structure-of-arrays form a block predecode produces): one tight
     * loop per basic block instead of branchy per-instruction add()
     * calls. @p n must not exceed numEvents.
     */
    void
    addRange(const std::uint64_t *deltas, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            counts_[i] += deltas[i];
    }

    /** Name-based lookup for tests/reports (slow path; 0 if unknown). */
    std::uint64_t get(const char *name) const;

    /** Accumulate every nonzero counter into @p out under its name. */
    void mergeInto(CounterSet &out) const;

    /** Zero all counters. */
    void reset() { counts_.fill(0); }

  private:
    std::array<std::uint64_t, numEvents> counts_{};
};

} // namespace axmemo

#endif // AXMEMO_COMMON_EVENTS_HH
