#include "common/proc.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/trace.hh"

namespace axmemo {

namespace {

using Clock = std::chrono::steady_clock;

/** Write all of @p data to @p fd, retrying on EINTR/short writes. */
bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

void
appendJsonEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/**
 * Pull the string member @p key out of the flat error object. A
 * hand-rolled scanner keeps common/ free of the core/ JSON parser; the
 * payload is produced by errorToJson only, so the shape is fixed.
 */
bool
scanStringMember(const std::string &json, const char *key,
                 std::string &out)
{
    const std::string needle = std::string("\"") + key + "\":\"";
    const std::size_t start = json.find(needle);
    if (start == std::string::npos)
        return false;
    out.clear();
    for (std::size_t i = start + needle.size(); i < json.size(); ++i) {
        const char c = json[i];
        if (c == '"')
            return true;
        if (c != '\\') {
            out += c;
            continue;
        }
        if (++i >= json.size())
            return false;
        switch (json[i]) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (i + 4 < json.size()) {
                out += static_cast<char>(
                    std::strtoul(json.substr(i + 1, 4).c_str(),
                                 nullptr, 16));
                i += 4;
            }
            break;
          default: out += json[i]; break;
        }
    }
    return false;
}

ErrorCode
errorCodeFromName(const std::string &name)
{
    static const std::pair<const char *, ErrorCode> table[] = {
        {"none", ErrorCode::None},
        {"config", ErrorCode::Config},
        {"parse", ErrorCode::Parse},
        {"io", ErrorCode::Io},
        {"workload", ErrorCode::Workload},
        {"simulation", ErrorCode::Simulation},
        {"timeout", ErrorCode::Timeout},
        {"cancelled", ErrorCode::Cancelled},
        {"internal", ErrorCode::Internal},
    };
    for (const auto &[text, code] : table)
        if (name == text)
            return code;
    return ErrorCode::Internal;
}

/** Reap @p pid and classify its exit as an Error (Ok = no error). */
Error
reapChild(pid_t pid)
{
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR)
            return Error{ErrorCode::Internal, "proc",
                         std::string("waitpid failed: ") +
                             std::strerror(errno)};
    }
    if (WIFSIGNALED(status))
        return Error{ErrorCode::Simulation, "proc",
                     std::string("isolated job killed by signal ") +
                         std::to_string(WTERMSIG(status))};
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0)
        return Error{ErrorCode::Simulation, "proc",
                     std::string("isolated job exited with status ") +
                         std::to_string(WEXITSTATUS(status))};
    return Error{};
}

} // namespace

std::string
errorToJson(const Error &error)
{
    std::string out = "{\"code\":\"";
    out += errorCodeName(error.code);
    out += "\",\"component\":";
    appendJsonEscaped(out, error.component);
    out += ",\"message\":";
    appendJsonEscaped(out, error.message);
    out += '}';
    return out;
}

Error
errorFromJson(const std::string &json)
{
    Error error;
    std::string code;
    if (!scanStringMember(json, "code", code) ||
        !scanStringMember(json, "component", error.component) ||
        !scanStringMember(json, "message", error.message))
        return Error{ErrorCode::Internal, "proc",
                     "unparseable child error: " + json};
    error.code = errorCodeFromName(code);
    if (error.code == ErrorCode::None)
        error.code = ErrorCode::Internal;
    return error;
}

Expected<std::string>
runInForkedChild(const std::function<std::string()> &fn,
                 double timeoutSeconds)
{
    int fds[2];
    if (::pipe(fds) != 0)
        return Error{ErrorCode::Io, "proc",
                     std::string("pipe failed: ") +
                         std::strerror(errno)};
    // Second pipe: the child's stderr. Warn/inform lines the child
    // prints while simulating are relayed through the parent's obs sink
    // one whole line at a time, so concurrent isolated children never
    // tear each other's lines mid-write. The child's lines already
    // carry the worker label (tlsLabel survives the fork), so the relay
    // adds nothing.
    int errFds[2];
    if (::pipe(errFds) != 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return Error{ErrorCode::Io, "proc",
                     std::string("pipe failed: ") +
                         std::strerror(errno)};
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        ::close(errFds[0]);
        ::close(errFds[1]);
        return Error{ErrorCode::Io, "proc",
                     std::string("fork failed: ") +
                         std::strerror(errno)};
    }

    if (pid == 0) {
        // Child: run the job, ship one framed payload, and _exit —
        // never unwind back into the (forked copy of the) pool thread.
        ::close(fds[0]);
        ::close(errFds[0]);
        ::dup2(errFds[1], STDERR_FILENO);
        ::close(errFds[1]);
        std::string frame;
        try {
            frame = "OK\n" + fn();
        } catch (const AxException &e) {
            frame = "ERR\n" + errorToJson(e.error());
        } catch (const std::exception &e) {
            frame = "ERR\n" + errorToJson(Error{ErrorCode::Internal,
                                                "proc", e.what()});
        } catch (...) {
            frame = "ERR\n" + errorToJson(
                                  Error{ErrorCode::Internal, "proc",
                                        "non-exception throw in "
                                        "isolated job"});
        }
        const bool wrote = writeAll(fds[1], frame.data(), frame.size());
        ::close(fds[1]);
        ::_exit(wrote ? 0 : 3);
    }

    // Parent: drain both pipes under the deadline. EOF on both (the
    // child closed its ends by exiting) terminates the read loop; the
    // exit status then decides. Stderr bytes are buffered and relayed
    // through the obs sink one complete line at a time.
    ::close(fds[1]);
    ::close(errFds[1]);
    std::string frame;
    std::string errPending;
    bool timedOut = false;
    int resultFd = fds[0];
    int errFd = errFds[0];
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               timeoutSeconds > 0 ? timeoutSeconds
                                                  : 0.0));
    char buf[1 << 16];
    const auto relayErrLines = [&] {
        std::size_t eol;
        while ((eol = errPending.find('\n')) != std::string::npos) {
            obs::forwardLine(stderr, errPending.substr(0, eol));
            errPending.erase(0, eol + 1);
        }
    };
    while (resultFd >= 0 || errFd >= 0) {
        int waitMs = -1;
        if (timeoutSeconds > 0) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
            if (left <= 0) {
                timedOut = true;
                break;
            }
            waitMs = static_cast<int>(
                std::min<long long>(left, 60 * 1000));
        }
        struct pollfd pfds[2];
        nfds_t nfds = 0;
        if (resultFd >= 0)
            pfds[nfds++] = {resultFd, POLLIN, 0};
        if (errFd >= 0)
            pfds[nfds++] = {errFd, POLLIN, 0};
        const int ready = ::poll(pfds, nfds, waitMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0)
            continue; // poll slice elapsed; re-check the deadline
        for (nfds_t p = 0; p < nfds; ++p) {
            if (!(pfds[p].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            const bool isErr = pfds[p].fd == errFd;
            const ssize_t n = ::read(pfds[p].fd, buf, sizeof(buf));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0) {
                ::close(pfds[p].fd);
                (isErr ? errFd : resultFd) = -1;
                continue;
            }
            if (isErr) {
                errPending.append(buf, static_cast<std::size_t>(n));
                relayErrLines();
            } else {
                frame.append(buf, static_cast<std::size_t>(n));
            }
        }
    }
    if (resultFd >= 0)
        ::close(resultFd);
    if (errFd >= 0)
        ::close(errFd);
    // A final partial line (the child died mid-write) still surfaces.
    relayErrLines();
    if (!errPending.empty()) {
        obs::forwardLine(stderr, errPending);
        errPending.clear();
    }

    if (timedOut) {
        ::kill(pid, SIGKILL);
        reapChild(pid); // ignore status: the kill is the verdict
        return Error{ErrorCode::Timeout, "proc",
                     "isolated job exceeded " +
                         std::to_string(timeoutSeconds) +
                         "s deadline (child killed)"};
    }

    const Error exit = reapChild(pid);
    if (frame.rfind("OK\n", 0) == 0 && exit.ok())
        return frame.substr(3);
    if (frame.rfind("ERR\n", 0) == 0)
        return errorFromJson(frame.substr(4));
    if (!exit.ok())
        return exit;
    return Error{ErrorCode::Internal, "proc",
                 "isolated job produced no result frame"};
}

} // namespace axmemo
