#include "common/proc.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace axmemo {

namespace {

using Clock = std::chrono::steady_clock;

/** Write all of @p data to @p fd, retrying on EINTR/short writes. */
bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

void
appendJsonEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/**
 * Pull the string member @p key out of the flat error object. A
 * hand-rolled scanner keeps common/ free of the core/ JSON parser; the
 * payload is produced by errorToJson only, so the shape is fixed.
 */
bool
scanStringMember(const std::string &json, const char *key,
                 std::string &out)
{
    const std::string needle = std::string("\"") + key + "\":\"";
    const std::size_t start = json.find(needle);
    if (start == std::string::npos)
        return false;
    out.clear();
    for (std::size_t i = start + needle.size(); i < json.size(); ++i) {
        const char c = json[i];
        if (c == '"')
            return true;
        if (c != '\\') {
            out += c;
            continue;
        }
        if (++i >= json.size())
            return false;
        switch (json[i]) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (i + 4 < json.size()) {
                out += static_cast<char>(
                    std::strtoul(json.substr(i + 1, 4).c_str(),
                                 nullptr, 16));
                i += 4;
            }
            break;
          default: out += json[i]; break;
        }
    }
    return false;
}

ErrorCode
errorCodeFromName(const std::string &name)
{
    static const std::pair<const char *, ErrorCode> table[] = {
        {"none", ErrorCode::None},
        {"config", ErrorCode::Config},
        {"parse", ErrorCode::Parse},
        {"io", ErrorCode::Io},
        {"workload", ErrorCode::Workload},
        {"simulation", ErrorCode::Simulation},
        {"timeout", ErrorCode::Timeout},
        {"cancelled", ErrorCode::Cancelled},
        {"internal", ErrorCode::Internal},
    };
    for (const auto &[text, code] : table)
        if (name == text)
            return code;
    return ErrorCode::Internal;
}

/** Reap @p pid and classify its exit as an Error (Ok = no error). */
Error
reapChild(pid_t pid)
{
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR)
            return Error{ErrorCode::Internal, "proc",
                         std::string("waitpid failed: ") +
                             std::strerror(errno)};
    }
    if (WIFSIGNALED(status))
        return Error{ErrorCode::Simulation, "proc",
                     std::string("isolated job killed by signal ") +
                         std::to_string(WTERMSIG(status))};
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0)
        return Error{ErrorCode::Simulation, "proc",
                     std::string("isolated job exited with status ") +
                         std::to_string(WEXITSTATUS(status))};
    return Error{};
}

} // namespace

std::string
errorToJson(const Error &error)
{
    std::string out = "{\"code\":\"";
    out += errorCodeName(error.code);
    out += "\",\"component\":";
    appendJsonEscaped(out, error.component);
    out += ",\"message\":";
    appendJsonEscaped(out, error.message);
    out += '}';
    return out;
}

Error
errorFromJson(const std::string &json)
{
    Error error;
    std::string code;
    if (!scanStringMember(json, "code", code) ||
        !scanStringMember(json, "component", error.component) ||
        !scanStringMember(json, "message", error.message))
        return Error{ErrorCode::Internal, "proc",
                     "unparseable child error: " + json};
    error.code = errorCodeFromName(code);
    if (error.code == ErrorCode::None)
        error.code = ErrorCode::Internal;
    return error;
}

Expected<std::string>
runInForkedChild(const std::function<std::string()> &fn,
                 double timeoutSeconds)
{
    int fds[2];
    if (::pipe(fds) != 0)
        return Error{ErrorCode::Io, "proc",
                     std::string("pipe failed: ") +
                         std::strerror(errno)};

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return Error{ErrorCode::Io, "proc",
                     std::string("fork failed: ") +
                         std::strerror(errno)};
    }

    if (pid == 0) {
        // Child: run the job, ship one framed payload, and _exit —
        // never unwind back into the (forked copy of the) pool thread.
        ::close(fds[0]);
        std::string frame;
        try {
            frame = "OK\n" + fn();
        } catch (const AxException &e) {
            frame = "ERR\n" + errorToJson(e.error());
        } catch (const std::exception &e) {
            frame = "ERR\n" + errorToJson(Error{ErrorCode::Internal,
                                                "proc", e.what()});
        } catch (...) {
            frame = "ERR\n" + errorToJson(
                                  Error{ErrorCode::Internal, "proc",
                                        "non-exception throw in "
                                        "isolated job"});
        }
        const bool wrote = writeAll(fds[1], frame.data(), frame.size());
        ::close(fds[1]);
        ::_exit(wrote ? 0 : 3);
    }

    // Parent: drain the pipe under the deadline. EOF (child closed its
    // end) terminates the read loop; the exit status then decides.
    ::close(fds[1]);
    std::string frame;
    bool timedOut = false;
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               timeoutSeconds > 0 ? timeoutSeconds
                                                  : 0.0));
    char buf[1 << 16];
    for (;;) {
        int waitMs = -1;
        if (timeoutSeconds > 0) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
            if (left <= 0) {
                timedOut = true;
                break;
            }
            waitMs = static_cast<int>(
                std::min<long long>(left, 60 * 1000));
        }
        struct pollfd pfd = {fds[0], POLLIN, 0};
        const int ready = ::poll(&pfd, 1, waitMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0)
            continue; // poll slice elapsed; re-check the deadline
        const ssize_t n = ::read(fds[0], buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break; // EOF: the child is done writing
        frame.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fds[0]);

    if (timedOut) {
        ::kill(pid, SIGKILL);
        reapChild(pid); // ignore status: the kill is the verdict
        return Error{ErrorCode::Timeout, "proc",
                     "isolated job exceeded " +
                         std::to_string(timeoutSeconds) +
                         "s deadline (child killed)"};
    }

    const Error exit = reapChild(pid);
    if (frame.rfind("OK\n", 0) == 0 && exit.ok())
        return frame.substr(3);
    if (frame.rfind("ERR\n", 0) == 0)
        return errorFromJson(frame.substr(4));
    if (!exit.ok())
        return exit;
    return Error{ErrorCode::Internal, "proc",
                 "isolated job produced no result frame"};
}

} // namespace axmemo
