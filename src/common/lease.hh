/**
 * @file
 * Filesystem lease primitives for the shared work-queue.
 *
 * Multiple independent processes (possibly on different hosts sharing
 * one directory) coordinate through lease files: O_CREAT|O_EXCL makes
 * claim creation atomic — exactly one creator wins — and the file's
 * mtime doubles as a heartbeat. A holder touches its leases while it
 * works; a lease whose mtime is older than the expiry window belongs to
 * a dead holder and may be stolen. Stealing is itself made single-winner
 * by rename(2): the stealer first renames the stale lease to a unique
 * tombstone (only one rename of the same source succeeds), then
 * recreates the lease under its own identity.
 *
 * These helpers are policy-free: core/shard_queue.hh builds the actual
 * claim/done/steal protocol on top.
 */

#ifndef AXMEMO_COMMON_LEASE_HH
#define AXMEMO_COMMON_LEASE_HH

#include <string>

#include "common/expected.hh"

namespace axmemo {

/**
 * Atomically create @p path with @p content (O_CREAT|O_EXCL, then a
 * single write + close). @return true when this call created the file,
 * false when it already existed; Error for any other failure.
 */
Expected<bool> createExclusive(const std::string &path,
                               const std::string &content);

/** Bump @p path's mtime to now (the heartbeat). @return false when the
 * file is gone — the lease was stolen or released under us. */
bool touchFile(const std::string &path);

/** Seconds since @p path's last mtime, or a negative value when the
 * file does not exist (already released/stolen). */
double fileAgeSeconds(const std::string &path);

/** Atomically rename @p from to @p to. @return false on any failure
 * (most importantly ENOENT: someone else renamed it first). */
bool renameFile(const std::string &from, const std::string &to);

/** Unlink @p path; missing files are not an error. */
void removeFileQuiet(const std::string &path);

/** Create @p dir (and one parent level) if missing. */
Expected<void> ensureDir(const std::string &dir);

} // namespace axmemo

#endif // AXMEMO_COMMON_LEASE_HH
