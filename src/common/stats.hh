/**
 * @file
 * Lightweight statistics containers used by the simulator and benches:
 * running scalar statistics, named counters, and an empirical CDF builder.
 */

#ifndef AXMEMO_COMMON_STATS_HH
#define AXMEMO_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace axmemo {

/** Single-pass mean/min/max/variance accumulator (Welford). */
class RunningStat
{
  public:
    /** Fold one sample into the statistic. */
    void add(double x);

    /** Number of samples observed. */
    std::uint64_t count() const { return n_; }
    /** Arithmetic mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Population variance (0 when fewer than 2 samples). */
    double variance() const;
    /** Standard deviation. */
    double stddev() const;
    /** Smallest sample (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }
    /** Largest sample (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }
    /** Sum of samples. */
    double sum() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Geometric mean over a sequence of strictly positive values. */
double geometricMean(const std::vector<double> &values);

/**
 * Arithmetic mean, summed in element order (0 when empty). The bench
 * artifacts' average rows all share this accumulator so their summary
 * lines stay bit-identical across refactors.
 */
double arithmeticMean(const std::vector<double> &values);

/**
 * Empirical cumulative distribution function over collected samples.
 *
 * Used to regenerate the element-wise relative-error CDFs of Fig. 10b.
 */
class EmpiricalCdf
{
  public:
    /** Record one sample. */
    void add(double x) { samples_.push_back(x); }

    /** Number of samples. */
    std::size_t size() const { return samples_.size(); }

    /** Fraction of samples <= @p x. */
    double fractionAtOrBelow(double x) const;

    /** @p q-quantile (q in [0,1]); 0 when empty. */
    double quantile(double q) const;

    /**
     * Evaluate the CDF at @p points x-values.
     * @return vector of P(sample <= x) matching @p points.
     */
    std::vector<double> evaluate(const std::vector<double> &points) const;

    /** Raw samples (journal serialization); order is unspecified once
     * any query has sorted them, which does not affect the CDF. */
    const std::vector<double> &samples() const { return samples_; }

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

/** String-keyed event counters, mergeable; backs the energy model. */
class CounterSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void add(const std::string &name, std::uint64_t delta = 1);

    /** @return counter value, 0 if never touched. */
    std::uint64_t get(const std::string &name) const;

    /** Merge all counters of @p other into this set. */
    void merge(const CounterSet &other);

    /** All counters in name order. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace axmemo

#endif // AXMEMO_COMMON_STATS_HH
