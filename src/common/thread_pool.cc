#include "common/thread_pool.hh"

#include <cstdlib>
#include <cstring>

#include "common/log.hh"
#include "common/runtime_options.hh"
#include "obs/trace.hh"

namespace axmemo {

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads == 0 ? 1 : threads)
{
    if (threads_ == 1)
        return; // inline mode: no workers
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i) {
        workers_.emplace_back([this, i] {
            obs::setThreadLabel(i);
            workerLoop();
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (threads_ == 1) {
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push(std::move(task));
        ++inFlight_;
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    if (threads_ == 1)
        return;
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--inFlight_ == 0)
                idle_.notify_all();
        }
    }
}

unsigned
ThreadPool::jobsFromEnv()
{
    // RuntimeOptions owns AXMEMO_JOBS parsing (with the same defensive
    // warning); workerCount() resolves 0/unset to hardware threads.
    return RuntimeOptions::global().workerCount();
}

void
parallelFor(unsigned threads, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (threads <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(std::min<std::size_t>(threads, n));
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace axmemo
