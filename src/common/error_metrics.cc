#include "common/error_metrics.hh"

#include <cmath>
#include <cstdlib>

#include "common/log.hh"

namespace axmemo {

double
normalizedSquaredError(const std::vector<double> &exact,
                       const std::vector<double> &approx)
{
    if (exact.size() != approx.size())
        axm_panic("quality metric: size mismatch ", exact.size(), " vs ",
                  approx.size());
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
        const double d = approx[i] - exact[i];
        num += d * d;
        den += exact[i] * exact[i];
    }
    if (den == 0.0)
        return num == 0.0 ? 0.0 : 1.0;
    return num / den;
}

double
misclassificationRate(const std::vector<double> &exact,
                      const std::vector<double> &approx)
{
    if (exact.size() != approx.size())
        axm_panic("quality metric: size mismatch ", exact.size(), " vs ",
                  approx.size());
    if (exact.empty())
        return 0.0;
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
        if ((exact[i] != 0.0) != (approx[i] != 0.0))
            ++wrong;
    }
    return static_cast<double>(wrong) / static_cast<double>(exact.size());
}

double
relativeError(double exact, double approx, double eps)
{
    const double denom = std::max(std::abs(exact), eps);
    return std::abs(approx - exact) / denom;
}

EmpiricalCdf
elementwiseRelativeErrorCdf(const std::vector<double> &exact,
                            const std::vector<double> &approx, double eps)
{
    if (exact.size() != approx.size())
        axm_panic("quality metric: size mismatch ", exact.size(), " vs ",
                  approx.size());
    EmpiricalCdf cdf;
    for (std::size_t i = 0; i < exact.size(); ++i)
        cdf.add(relativeError(exact[i], approx[i], eps));
    return cdf;
}

} // namespace axmemo
