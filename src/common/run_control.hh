/**
 * @file
 * Cooperative cancellation and deadline for one simulation.
 *
 * A simulation is a tight single-threaded loop that cannot be killed
 * from outside without losing the whole process's state, so the
 * watchdog is cooperative: the sweep engine hands the simulator a
 * RunControl carrying the job's host-time deadline and a cancellation
 * predicate, and the simulator polls it every few tens of thousands of
 * macro-instructions (one branch on a counter in the common case). On
 * expiry/cancellation the simulator raises a structured AxException
 * (Timeout / Cancelled) that the worker boundary converts into the
 * job's SweepOutcome status — the sweep survives, the job is recorded.
 */

#ifndef AXMEMO_COMMON_RUN_CONTROL_HH
#define AXMEMO_COMMON_RUN_CONTROL_HH

#include <chrono>

#include "common/expected.hh"

namespace axmemo {

/** Deadline + cancellation context of one simulation; see file
 * comment. Default-constructed = unbounded, uncancellable. */
struct RunControl
{
    std::chrono::steady_clock::time_point deadline{};
    bool hasDeadline = false;
    /** Polled predicate (e.g. interruptRequested); null = never. */
    bool (*cancelled)() = nullptr;

    /** Throws AxException(Timeout/Cancelled) when expired/cancelled. */
    void
    check(const char *what) const
    {
        if (cancelled && cancelled())
            raiseError(ErrorCode::Cancelled, what,
                       "interrupted by signal");
        if (hasDeadline &&
            std::chrono::steady_clock::now() >= deadline)
            raiseError(ErrorCode::Timeout, what,
                       "job watchdog deadline expired");
    }

    bool
    active() const
    {
        return hasDeadline || cancelled != nullptr;
    }
};

} // namespace axmemo

#endif // AXMEMO_COMMON_RUN_CONTROL_HH
