/**
 * @file
 * Process-level job isolation: run a closure in a forked child and read
 * back one result payload over a pipe.
 *
 * The sweep engine's worker boundary (core/sweep) contains exceptions,
 * but a job that scribbles over the heap or dies on a signal takes the
 * whole process — and every in-flight sibling job — with it. Under
 * `--isolate` each simulation runs in its own forked child: the child
 * inherits the prepared program and memory image copy-on-write, runs
 * the job, serializes its outcome, and writes it through a pipe; the
 * parent turns a crashed, killed or wedged child into a structured
 * Error at the same retry/watchdog seam an in-process exception uses.
 *
 * Protocol on the pipe: the child writes either `OK\n<payload>` or
 * `ERR\n<error JSON: {code, component, message}>` and exits 0. Any
 * other ending — nonzero exit, death by signal, deadline expiry (the
 * parent SIGKILLs the child) — becomes an Error without a payload.
 * Timeout maps to ErrorCode::Timeout so the engine's no-retry rule for
 * wedged jobs applies at the process boundary too.
 *
 * The child's stderr is a second pipe: warn/inform lines it prints are
 * relayed through the parent's obs sink one complete line at a time
 * (obs::forwardLine), so concurrent isolated children never interleave
 * mid-line. The child's lines already carry its worker label — tlsLabel
 * survives the fork — so the relay forwards them verbatim.
 *
 * Forking from pool threads is deliberate and Linux/glibc-specific:
 * only the calling thread exists in the child, and glibc's atfork
 * handlers reset the allocator locks, so the child can run the full
 * simulation (which allocates) before _exit(). The child never returns
 * into the pool.
 */

#ifndef AXMEMO_COMMON_PROC_HH
#define AXMEMO_COMMON_PROC_HH

#include <functional>
#include <string>

#include "common/expected.hh"

namespace axmemo {

/**
 * Run @p fn in a forked child and return the payload string it
 * produced. @p fn executes only in the child; exceptions it throws are
 * serialized and re-surface here as the returned Error. A @p
 * timeoutSeconds > 0 arms a parent-side watchdog that SIGKILLs the
 * child and returns ErrorCode::Timeout when it expires.
 */
Expected<std::string>
runInForkedChild(const std::function<std::string()> &fn,
                 double timeoutSeconds);

/** Serialize @p error as the compact JSON the ERR protocol carries. */
std::string errorToJson(const Error &error);

/** Inverse of errorToJson; malformed text yields an Internal error
 * that carries the raw text, never a parse failure. */
Error errorFromJson(const std::string &json);

} // namespace axmemo

#endif // AXMEMO_COMMON_PROC_HH
