#include "common/log.hh"

#include "obs/trace.hh"

#include <cstdio>
#include <stdexcept>

namespace axmemo {

namespace {
bool quietFlag = false;

/** Format "prefix: msg" and hand it to the shared obs sink, which takes
 * the same mutex as the trace writer: warn/inform/trace lines from
 * concurrent sweep workers never tear, and labelled worker threads get
 * a "[w<n>] " prefix while main-thread output is byte-identical to the
 * old fprintf path. */
void
emit(const char *prefix, const std::string &msg)
{
    obs::logLine(stderr, std::string(prefix) + ": " + msg);
}

} // namespace

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    char where[64];
    std::snprintf(where, sizeof(where), ":%d)", line);
    emit("panic", msg + " (" + file + where);
    // Throwing (rather than abort()) lets tests assert on panics; the
    // exception type is std::logic_error because a panic is always a bug.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    char where[64];
    std::snprintf(where, sizeof(where), ":%d)", line);
    emit("fatal", msg + " (" + file + where);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (!quietFlag)
        emit("warn", msg);
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag)
        emit("info", msg);
}

} // namespace detail

} // namespace axmemo
