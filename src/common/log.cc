#include "common/log.hh"

#include <cstdio>
#include <stdexcept>

namespace axmemo {

namespace {
bool quietFlag = false;
} // namespace

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throwing (rather than abort()) lets tests assert on panics; the
    // exception type is std::logic_error because a panic is always a bug.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace axmemo
