#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace axmemo {

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            axm_panic("geometricMean requires positive values, got ", v);
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

void
EmpiricalCdf::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
EmpiricalCdf::fractionAtOrBelow(double x) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
}

double
EmpiricalCdf::quantile(double q) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    q = std::clamp(q, 0.0, 1.0);
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[idx];
}

std::vector<double>
EmpiricalCdf::evaluate(const std::vector<double> &points) const
{
    std::vector<double> out;
    out.reserve(points.size());
    for (double p : points)
        out.push_back(fractionAtOrBelow(p));
    return out;
}

void
CounterSet::add(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

std::uint64_t
CounterSet::get(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
CounterSet::merge(const CounterSet &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
}

} // namespace axmemo
