/**
 * @file
 * Graceful-stop plumbing for SIGINT/SIGTERM.
 *
 * The driver installs the handlers once at startup; the sweep engine
 * polls interruptRequested() before starting each job (marking the
 * remainder Skipped) and threads it into the simulator's run control so
 * in-flight simulations abort at the next check interval. The handler
 * itself only records the signal — journal lines are already flushed as
 * each job completes, so there is nothing unsafe to do in signal
 * context. A second signal exits immediately (128 + signo), the
 * traditional escalation for an unresponsive process.
 */

#ifndef AXMEMO_COMMON_INTERRUPT_HH
#define AXMEMO_COMMON_INTERRUPT_HH

namespace axmemo {

/** Install SIGINT/SIGTERM handlers that request a graceful stop. */
void installSignalHandlers();

/** True once SIGINT or SIGTERM has been received. */
bool interruptRequested();

/** The received signal number (0 when none). */
int interruptSignal();

/** Test hook: simulate or clear an interrupt without raising a
 * signal. */
void setInterruptForTest(int signal);

} // namespace axmemo

#endif // AXMEMO_COMMON_INTERRUPT_HH
