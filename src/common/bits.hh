/**
 * @file
 * Bit-manipulation helpers: field extraction, masks, and the LSB-truncation
 * operator used by AxMemo's input approximation (Section 3.1).
 */

#ifndef AXMEMO_COMMON_BITS_HH
#define AXMEMO_COMMON_BITS_HH

#include <bit>
#include <cstdint>
#include <cstring>

namespace axmemo {

/** @return a mask with the low @p n bits set (n in [0, 64]). */
constexpr std::uint64_t
maskLow(unsigned n)
{
    return n >= 64 ? ~0ull : ((1ull << n) - 1);
}

/** @return bits [lo, hi] (inclusive) of @p value, shifted down to bit 0. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned hi, unsigned lo)
{
    return (value >> lo) & maskLow(hi - lo + 1);
}

/** @return @p value with bits [lo, hi] replaced by @p field. */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned hi, unsigned lo,
           std::uint64_t field)
{
    const std::uint64_t m = maskLow(hi - lo + 1) << lo;
    return (value & ~m) | ((field << lo) & m);
}

/** @return true if @p value is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** @return floor(log2(value)); value must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    return 63u - static_cast<unsigned>(std::countl_zero(value));
}

/** @return ceil(log2(value)); value must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t value)
{
    return isPowerOfTwo(value) ? floorLog2(value) : floorLog2(value) + 1;
}

/** @return the low @p width bits of @p v in reverse order (bit 0 of
 * the result is bit width-1 of the input); upper bits are dropped.
 * Used to derive reflected CRC polynomials from their normal form. */
constexpr std::uint64_t
bitReverse(std::uint64_t v, unsigned width)
{
    std::uint64_t r = 0;
    for (unsigned i = 0; i < width; ++i)
        r = (r << 1) | ((v >> i) & 1);
    return r;
}

/**
 * Truncate the low @p n bits of a raw word before hashing.
 *
 * This is the approximation operator of ld_crc/reg_crc: clearing the n
 * least-significant bits of the IEEE-754 (or integer) representation rounds
 * the value toward zero by a relative (float) or absolute (integer)
 * precision, so nearby inputs hash identically and hit the LUT.
 */
constexpr std::uint64_t
truncateLsbs(std::uint64_t raw, unsigned n)
{
    return n == 0 ? raw : (raw & ~maskLow(n));
}

/** Bit-cast a float to its 32-bit pattern. */
inline std::uint32_t
floatBits(float f)
{
    return std::bit_cast<std::uint32_t>(f);
}

/** Bit-cast a 32-bit pattern to float. */
inline float
bitsToFloat(std::uint32_t u)
{
    return std::bit_cast<float>(u);
}

/** Bit-cast a double to its 64-bit pattern. */
inline std::uint64_t
doubleBits(double d)
{
    return std::bit_cast<std::uint64_t>(d);
}

/** Bit-cast a 64-bit pattern to double. */
inline double
bitsToDouble(std::uint64_t u)
{
    return std::bit_cast<double>(u);
}

/** Apply LSB truncation to a float value through its bit pattern. */
inline float
truncateFloat(float f, unsigned n)
{
    return bitsToFloat(
        static_cast<std::uint32_t>(truncateLsbs(floatBits(f), n)));
}

} // namespace axmemo

#endif // AXMEMO_COMMON_BITS_HH
