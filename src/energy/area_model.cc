#include "energy/area_model.hh"

#include <cmath>

#include "common/log.hh"
#include "crc/hw_model.hh"

namespace axmemo {

namespace {

struct LutPoint
{
    double kb;
    double areaMm2;
    double energyPj;
    double latencyNs;
};

// Table 5 calibration points (8-way, 4-byte data LUTs).
constexpr LutPoint lutPoints[] = {
    {4.0, 0.0217, 3.2556, 0.1768},
    {8.0, 0.0364, 4.4221, 0.2175},
    {16.0, 0.0666, 7.2340, 0.2658},
};

/** Piecewise-linear in log2(capacity), extrapolating the edge slopes. */
double
interpLog(double kb, double LutPoint::*field)
{
    const double x = std::log2(kb);
    const auto &p = lutPoints;
    const double x0 = std::log2(p[0].kb);
    const double x1 = std::log2(p[1].kb);
    const double x2 = std::log2(p[2].kb);
    if (x <= x1) {
        const double t = (x - x0) / (x1 - x0);
        return p[0].*field + t * (p[1].*field - p[0].*field);
    }
    const double t = (x - x1) / (x2 - x1);
    return p[1].*field + t * (p[2].*field - p[1].*field);
}

} // namespace

double
AreaModel::lutAreaMm2(std::uint64_t sizeBytes)
{
    if (sizeBytes == 0)
        return 0.0;
    // Area is close to linear in capacity: fitting Table 5 gives
    // ~0.00702 mm^2 of periphery plus ~0.003673 mm^2 per KB.
    const double kb = static_cast<double>(sizeBytes) / 1024.0;
    return 0.00702 + 0.003673 * kb;
}

double
AreaModel::lutEnergyPj(std::uint64_t sizeBytes)
{
    if (sizeBytes == 0)
        return 0.0;
    const double kb = static_cast<double>(sizeBytes) / 1024.0;
    return interpLog(kb, &LutPoint::energyPj);
}

double
AreaModel::lutLatencyNs(std::uint64_t sizeBytes)
{
    if (sizeBytes == 0)
        return 0.0;
    const double kb = static_cast<double>(sizeBytes) / 1024.0;
    return interpLog(kb, &LutPoint::latencyNs);
}

double
AreaModel::memoUnitAreaMm2(const MemoUnitConfig &config)
{
    const CrcHwModel crc(config.crcHw);
    return crc.areaMm2() + hvrAreaMm2() +
           lutAreaMm2(config.l1Lut.sizeBytes) + qualityMonitorAreaMm2();
}

double
AreaModel::overheadFraction(const MemoUnitConfig &config,
                            unsigned numCores)
{
    return numCores * memoUnitAreaMm2(config) / processorAreaMm2();
}

} // namespace axmemo
