/**
 * @file
 * McPAT-style event-based energy accounting.
 *
 * The simulator counts events (µops by class, cache/DRAM accesses, memo-
 * unit operations); this model multiplies them by per-event energies and
 * adds leakage over the run's cycles, mirroring the paper's methodology of
 * feeding gem5 statistics into McPAT 1.3 + CACTI 6.5 (Section 6.1).
 *
 * Per-event energies are 32 nm estimates. The dominant effect the paper
 * reports — energy tracking the eliminated instruction work, because
 * fetch/decode/issue dwarfs execution energy [Keckler et al.] — is carried
 * by the per-µop front-end charge.
 */

#ifndef AXMEMO_ENERGY_ENERGY_MODEL_HH
#define AXMEMO_ENERGY_ENERGY_MODEL_HH

#include <map>
#include <string>

#include "memo/memo_unit.hh"
#include "sim/simulator.hh"

namespace axmemo {

/** Per-event energies in pJ and leakage in pJ/cycle (32 nm estimates). */
struct EnergyParams
{
    /** Fetch + decode + rename/issue per µop (the von Neumann tax). */
    double frontendPerUop = 4.5;

    // Execution energy by µop class.
    double intAlu = 0.8;
    double intMul = 2.5;
    double intDiv = 8.0;
    double fpSimple = 1.5;
    double fpMul = 2.8;
    double fpDiv = 10.0;
    double fpLongPerUop = 1.8;
    double memAgen = 0.9;
    double branch = 0.6;
    /** Issue cost of a memo-unit request (datapath is counted apart). */
    double memoIssue = 0.4;

    // Memory system per access (64 B line granularity for L2/DRAM).
    double l1dAccess = 4.6;
    double l2Access = 24.0;
    double dramAccess = 2000.0;

    // Memoization unit (Table 5): CRC energy is per 4-byte step.
    double crcPer4Bytes = 2.9143;
    double hvrAccess = 0.2634;

    /** Whole-core + caches static power, expressed per cycle at 2 GHz. */
    double leakagePerCycle = 30.0;
    /** Extra leakage per cycle when a memoization unit is present. */
    double memoLeakagePerCycle = 0.6;
};

/** Energy totals in pJ, by subsystem. */
struct EnergyBreakdown
{
    double corePj = 0.0;    ///< front end + execution units
    double cachePj = 0.0;   ///< L1D + L2
    double dramPj = 0.0;
    double memoPj = 0.0;    ///< CRC + HVR + LUT arrays
    double leakagePj = 0.0;

    double
    totalPj() const
    {
        return corePj + cachePj + dramPj + memoPj + leakagePj;
    }
};

/** Event-based energy model; see file comment. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = {});

    const EnergyParams &params() const { return params_; }

    /**
     * Energy of one finished run. @p memoConfig selects the L1 LUT access
     * energy; pass nullptr for runs without a memoization unit.
     */
    EnergyBreakdown compute(const SimStats &stats,
                            const MemoUnitConfig *memoConfig) const;

  private:
    EnergyParams params_;
};

} // namespace axmemo

#endif // AXMEMO_ENERGY_ENERGY_MODEL_HH
