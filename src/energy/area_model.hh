/**
 * @file
 * CACTI/McPAT-like area, energy, and latency estimates at 32 nm,
 * calibrated to the paper's synthesis results (Table 5):
 *
 *   CRC32 unit        0.0146 mm^2   2.9143 pJ/op   0.4133 ns
 *   Hash registers    0.0018 mm^2   0.2634 pJ      0.1121 ns
 *   LUT 4 KB          0.0217 mm^2   3.2556 pJ      0.1768 ns
 *   LUT 8 KB          0.0364 mm^2   4.4221 pJ      0.2175 ns
 *   LUT 16 KB         0.0666 mm^2   7.2340 pJ      0.2658 ns
 *
 * LUT figures interpolate/extrapolate these points (linear in capacity for
 * area, log-capacity linear for energy/latency). The host processor is the
 * dual-core HPI estimated at 7.97 mm^2 by McPAT 1.3 (Section 6.1), giving
 * the paper's 2.08% overhead for the 16 KB configuration.
 */

#ifndef AXMEMO_ENERGY_AREA_MODEL_HH
#define AXMEMO_ENERGY_AREA_MODEL_HH

#include <cstdint>

#include "memo/memo_unit.hh"

namespace axmemo {

/** Area/energy/latency estimator; see file comment. */
class AreaModel
{
  public:
    /** Dedicated-SRAM LUT area in mm^2. */
    static double lutAreaMm2(std::uint64_t sizeBytes);

    /** LUT access energy in pJ. */
    static double lutEnergyPj(std::uint64_t sizeBytes);

    /** LUT access latency in ns. */
    static double lutLatencyNs(std::uint64_t sizeBytes);

    /** Hash-value register file (16 x 32-bit). */
    static double hvrAreaMm2() { return 0.0018; }
    static double hvrEnergyPj() { return 0.2634; }
    static double hvrLatencyNs() { return 0.1121; }

    /** Quality-monitor comparator (Section 6.1). */
    static double qualityMonitorAreaMm2() { return 16.8e-6; }
    static double qualityMonitorPowerW() { return 7.47e-6; }

    /** McPAT estimate for the dual-core HPI processor. */
    static double processorAreaMm2() { return 7.97; }

    /**
     * Area of one memoization unit (CRC + HVR + L1 LUT + monitor); the L2
     * LUT is partitioned from the existing LLC and adds no area.
     */
    static double memoUnitAreaMm2(const MemoUnitConfig &config);

    /** Fractional processor area overhead for @p numCores units. */
    static double overheadFraction(const MemoUnitConfig &config,
                                   unsigned numCores = 2);
};

} // namespace axmemo

#endif // AXMEMO_ENERGY_AREA_MODEL_HH
