#include "energy/energy_model.hh"

#include "energy/area_model.hh"

namespace axmemo {

EnergyModel::EnergyModel(const EnergyParams &params) : params_(params) {}

EnergyBreakdown
EnergyModel::compute(const SimStats &stats,
                     const MemoUnitConfig *memoConfig) const
{
    const CounterSet &ev = stats.events;
    EnergyBreakdown out;

    const auto count = [&ev](const char *name) {
        return static_cast<double>(ev.get(name));
    };

    // Core: per-µop front end plus per-class execution energy.
    out.corePj += count("frontend_uops") * params_.frontendPerUop;
    out.corePj += count("uop_int_alu") * params_.intAlu;
    out.corePj += count("uop_int_mul") * params_.intMul;
    out.corePj += count("uop_int_div") * params_.intDiv;
    out.corePj += count("uop_fp_simple") * params_.fpSimple;
    out.corePj += count("uop_fp_mul") * params_.fpMul;
    out.corePj += count("uop_fp_div") * params_.fpDiv;
    out.corePj += count("uop_fp_long") * params_.fpLongPerUop;
    out.corePj += count("uop_mem") * params_.memAgen;
    out.corePj += count("uop_branch") * params_.branch;
    out.corePj += count("uop_memo") * params_.memoIssue;

    // Memory system. Every L1 access (hit or miss) cycles the L1 arrays;
    // L2 is touched on L1 misses and L1 writebacks; DRAM per line
    // transfer.
    out.cachePj += (count("l1d_hit") + count("l1d_miss")) *
                   params_.l1dAccess;
    out.cachePj += (count("l2_hit") + count("l2_miss") +
                    count("l2_wb_access")) *
                   params_.l2Access;
    out.dramPj += (count("dram_read") + count("dram_write")) *
                  params_.dramAccess;

    // Memoization unit datapath.
    if (memoConfig) {
        out.memoPj += count("memo_crc_bytes") / 4.0 *
                      params_.crcPer4Bytes;
        out.memoPj += count("memo_hvr_access") * params_.hvrAccess;
        out.memoPj += count("memo_lut_l1_access") *
                      AreaModel::lutEnergyPj(memoConfig->l1Lut.sizeBytes);
        // The L2 LUT is LLC ways: charge LLC access energy.
        out.memoPj += count("memo_lut_l2_access") * params_.l2Access;
    }

    // Leakage over the run.
    const double cycles = static_cast<double>(stats.cycles);
    out.leakagePj += cycles * params_.leakagePerCycle;
    if (memoConfig)
        out.leakagePj += cycles * params_.memoLeakagePerCycle;

    return out;
}

} // namespace axmemo
