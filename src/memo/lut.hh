/**
 * @file
 * The memoization lookup table (Section 3.3, Fig. 4).
 *
 * The LUT is organized like a set-associative cache whose "address" is the
 * CRC hash of the memoization inputs. One set occupies exactly one 64-byte
 * last-level-cache line: either 8 entries of {4 B tag, 4 B data} or 4
 * entries of {4 B tag, 8 B data} (half the tag slots unused). Low CRC bits
 * index the set; the tag stores the upper CRC bits, a valid bit, and the
 * 3-bit LUT_ID so multiple logical LUTs share one physical array.
 */

#ifndef AXMEMO_MEMO_LUT_HH
#define AXMEMO_MEMO_LUT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace axmemo {

/** Geometry of one LUT level. */
struct LutConfig
{
    std::string name = "lut";
    /** Total array capacity in bytes (tags + data). */
    std::uint64_t sizeBytes = 8 * 1024;
    /** 4 or 8; selects 8-way or 4-way set layout (Fig. 4). */
    unsigned dataBytes = 4;

    /** Bytes per set: one LLC line. */
    static constexpr unsigned setBytes = 64;

    /** Entries per set for this data width. */
    unsigned
    ways() const
    {
        return dataBytes == 8 ? 4 : 8;
    }
};

/**
 * One level of memoization lookup table. The constructor validates
 * against @p config and keeps only the scalar geometry — the config (and
 * its name string) is not copied into every constructed level. A per-set
 * MRU way hint accelerates the common repeated hit without changing
 * hit/miss, LRU order, or victim choice (DESIGN.md §7).
 */
class LookupTable
{
  public:
    explicit LookupTable(const LutConfig &config);

    unsigned numSets() const { return numSets_; }
    unsigned ways() const { return ways_; }

    /**
     * Find the entry tagged {lutId, hash}; refreshes LRU on hit.
     * @return the stored data on hit.
     */
    std::optional<std::uint64_t> lookup(LutId lutId, std::uint64_t hash);

    /** Probe without LRU side effects. */
    bool contains(LutId lutId, std::uint64_t hash) const;

    /**
     * Insert (or overwrite) the entry for {lutId, hash}.
     * @return the evicted valid victim, if any (for L1 -> L2 spill).
     */
    struct Victim
    {
        LutId lutId;
        std::uint64_t hash;
        std::uint64_t data;
    };
    std::optional<Victim> insert(LutId lutId, std::uint64_t hash,
                                 std::uint64_t data);

    /** Drop the entry for {lutId, hash} if present (back-invalidation). */
    void erase(LutId lutId, std::uint64_t hash);

    /** Drop every entry of one logical LUT (the invalidate instruction). */
    void invalidateLut(LutId lutId);

    /** Drop everything. */
    void invalidateAll();

    /** Number of currently valid entries. */
    std::uint64_t validCount() const;

    /** Disable/enable the MRU way hint (equivalence tests and the perf
     * harness; lookup/insert sequences are identical either way). */
    void setMruHintEnabled(bool enabled) { mruEnabled_ = enabled; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Entry
    {
        bool valid = false;
        LutId lutId = 0;
        /** Full hash retained; hardware stores only the upper bits, and
         * the set index supplies the rest — equivalent information. */
        std::uint64_t hash = 0;
        std::uint64_t data = 0;
        std::uint64_t lruStamp = 0;
    };

    unsigned setOf(std::uint64_t hash) const
    {
        return static_cast<unsigned>(hash & (numSets_ - 1));
    }
    Entry *entryAt(unsigned set, unsigned way)
    {
        return &entries_[static_cast<std::size_t>(set) * ways_ + way];
    }
    const Entry *entryAt(unsigned set, unsigned way) const
    {
        return &entries_[static_cast<std::size_t>(set) * ways_ + way];
    }

    unsigned numSets_;
    unsigned ways_;
    bool mruEnabled_ = true;
    std::uint64_t stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::vector<Entry> entries_;
    /** Most-recently-hit way per set (a hint, never authoritative). */
    std::vector<std::uint8_t> mruWay_;
};

} // namespace axmemo

#endif // AXMEMO_MEMO_LUT_HH
