#include "memo/hash_value_registers.hh"

#include "common/expected.hh"
#include "common/log.hh"

namespace axmemo {

HashValueRegisters::HashValueRegisters(const CrcEngine &engine,
                                       unsigned numLuts,
                                       unsigned numThreads)
    : engine_(engine), numLuts_(numLuts), numThreads_(numThreads),
      regs_(static_cast<std::size_t>(numLuts) * numThreads)
{
    if (numLuts == 0 || numThreads == 0)
        raiseError(ErrorCode::Config, "hvr",
                   "HVR file needs at least one LUT and one thread");
    resetAll();
}

void
HashValueRegisters::badIndex(LutId lut, ThreadId tid) const
{
    axm_panic("HVR index {lut=", static_cast<int>(lut), ", tid=",
              static_cast<int>(tid), "} out of range");
}

std::uint64_t
HashValueRegisters::pendingBytes(LutId lut, ThreadId tid) const
{
    return regs_[indexOf(lut, tid)].bytes;
}

std::uint64_t
HashValueRegisters::readAndReset(LutId lut, ThreadId tid)
{
    Reg &reg = regs_[indexOf(lut, tid)];
    const std::uint64_t hash = engine_.finalize(reg.state);
    reg.state = engine_.initial();
    reg.bytes = 0;
    return hash;
}

std::uint64_t
HashValueRegisters::peek(LutId lut, ThreadId tid) const
{
    return engine_.finalize(regs_[indexOf(lut, tid)].state);
}

void
HashValueRegisters::resetAll()
{
    for (auto &reg : regs_) {
        reg.state = engine_.initial();
        reg.bytes = 0;
        reg.readyAt = 0;
    }
}

} // namespace axmemo
