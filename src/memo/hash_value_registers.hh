/**
 * @file
 * Hash Value Registers (Section 3.2).
 *
 * The HVR file holds the streaming CRC state of every in-flight memoization
 * context, addressed by {LUT_ID, TID}. It is the hardware context that lets
 * the processor interleave inputs of different logical LUTs: each
 * ld_crc/reg_crc accumulates into its own register, and lookup reads and
 * resets it. The timing side tracks when each register's pending CRC work
 * drains (the memoization unit consumes a fixed number of input bytes per
 * cycle).
 */

#ifndef AXMEMO_MEMO_HASH_VALUE_REGISTERS_HH
#define AXMEMO_MEMO_HASH_VALUE_REGISTERS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "crc/crc.hh"

namespace axmemo {

/** The {LUT_ID, TID}-indexed CRC context file. */
class HashValueRegisters
{
  public:
    /**
     * @param engine CRC algorithm shared with the memoization unit.
     * @param numLuts logical LUTs per thread (8 in the paper).
     * @param numThreads SMT contexts (2 in the paper).
     */
    HashValueRegisters(const CrcEngine &engine, unsigned numLuts,
                       unsigned numThreads);

    /** Number of architectural registers in the file. */
    unsigned count() const { return static_cast<unsigned>(regs_.size()); }

    /** Accumulate @p nbytes of @p word (little-endian) into {lut, tid}.
     * Inline: runs once per ld_crc/reg_crc instruction. */
    void
    feed(LutId lut, ThreadId tid, std::uint64_t word, unsigned nbytes)
    {
        Reg &reg = regs_[indexOf(lut, tid)];
        reg.state = engine_.updateWord(reg.state, word, nbytes);
        reg.bytes += nbytes;
    }

    /** Total bytes accumulated since the last read (for timing/debug). */
    std::uint64_t pendingBytes(LutId lut, ThreadId tid) const;

    /**
     * Read the finalized hash of {lut, tid} and reset the register to the
     * CRC initial state for the next invocation.
     */
    std::uint64_t readAndReset(LutId lut, ThreadId tid);

    /** Peek at the finalized hash without resetting (quality monitor). */
    std::uint64_t peek(LutId lut, ThreadId tid) const;

    /** Reset every register (program start / invalidate-all). */
    void resetAll();

    // --- timing side: when the unit finishes hashing queued bytes ---

    /** Cycle at which {lut, tid}'s last queued input byte is hashed. */
    Cycle
    readyAt(LutId lut, ThreadId tid) const
    {
        return regs_[indexOf(lut, tid)].readyAt;
    }

    /** Record that hashing for {lut, tid} completes at @p cycle. */
    void
    setReadyAt(LutId lut, ThreadId tid, Cycle cycle)
    {
        regs_[indexOf(lut, tid)].readyAt = cycle;
    }

  private:
    struct Reg
    {
        std::uint64_t state = 0;
        std::uint64_t bytes = 0;
        Cycle readyAt = 0;
    };

    std::size_t
    indexOf(LutId lut, ThreadId tid) const
    {
        if (lut >= numLuts_ || tid >= numThreads_)
            badIndex(lut, tid);
        return static_cast<std::size_t>(tid) * numLuts_ + lut;
    }

    [[noreturn]] void badIndex(LutId lut, ThreadId tid) const;

    const CrcEngine &engine_;
    unsigned numLuts_;
    unsigned numThreads_;
    std::vector<Reg> regs_;
};

} // namespace axmemo

#endif // AXMEMO_MEMO_HASH_VALUE_REGISTERS_HH
