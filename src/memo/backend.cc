#include "memo/backend.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/run_control.hh"
#include "obs/span.hh"

namespace axmemo {

/** Plain Levenshtein distance for the did-you-mean suggestions. The
 * candidate sets are a handful of short names, so the quadratic table
 * is nowhere near a hot path. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1);
    std::vector<std::size_t> cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

std::string
suggestClosest(const std::string &name,
               const std::vector<std::string> &candidates)
{
    // Suggest the closest candidate when it is plausibly a typo:
    // within 3 edits, and closer than "replace everything".
    const std::string *best = nullptr;
    std::size_t bestDist = 4;
    for (const std::string &candidate : candidates) {
        const std::size_t dist = editDistance(name, candidate);
        if (dist < bestDist && dist < candidate.size()) {
            bestDist = dist;
            best = &candidate;
        }
    }
    return best ? *best : std::string();
}

void
MemoBackend::run(const BackendRunContext &ctx, RunResult &result) const
{
    const std::unique_ptr<BackendSession> session = prepare(ctx);
    bool more = true;
    while (more) {
        if (ctx.session.control)
            ctx.session.control->check("backend");
        if (ctx.session.spanCategory) {
            AXM_SPAN(ctx.session.spanCategory, session->phase());
            more = session->step();
        } else {
            more = session->step();
        }
    }
    session->finish(result);
}

MemoBackendRegistry &
MemoBackendRegistry::instance()
{
    static MemoBackendRegistry registry;
    return registry;
}

void
MemoBackendRegistry::add(int order, std::unique_ptr<MemoBackend> backend)
{
    const std::string name = backend->name();
    for (const Entry &existing : entries_)
        if (existing.backend->name() == name)
            axm_panic("duplicate memo backend registration '", name,
                      "'");
    entries_.push_back({order, std::move(backend)});
}

const MemoBackend *
MemoBackendRegistry::find(const std::string &name) const
{
    for (const Entry &entry : entries_)
        if (entry.backend->name() == name)
            return entry.backend.get();
    return nullptr;
}

Expected<const MemoBackend *>
MemoBackendRegistry::resolve(const std::string &name) const
{
    if (const MemoBackend *backend = find(name))
        return backend;

    std::string message = "unknown memo backend '" + name + "'";
    const std::vector<const MemoBackend *> all = list();

    std::vector<std::string> names;
    names.reserve(all.size());
    for (const MemoBackend *backend : all)
        names.push_back(backend->name());
    const std::string best = suggestClosest(name, names);
    if (!best.empty())
        message += " (did you mean '" + best + "'?)";

    message += "; registered backends:";
    for (std::size_t i = 0; i < names.size(); ++i)
        message += (i ? ", " : " ") + names[i];
    return Error{ErrorCode::Config, "backend", message};
}

std::vector<const MemoBackend *>
MemoBackendRegistry::list() const
{
    std::vector<const Entry *> sorted;
    sorted.reserve(entries_.size());
    for (const Entry &entry : entries_)
        sorted.push_back(&entry);
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry *a, const Entry *b) {
                  return a->order != b->order
                             ? a->order < b->order
                             : a->backend->name() < b->backend->name();
              });
    std::vector<const MemoBackend *> out;
    out.reserve(sorted.size());
    for (const Entry *entry : sorted)
        out.push_back(entry->backend.get());
    return out;
}

MemoBackendRegistrar::MemoBackendRegistrar(
    int order, std::unique_ptr<MemoBackend> backend)
{
    MemoBackendRegistry::instance().add(order, std::move(backend));
}

} // namespace axmemo
