#include "memo/memo_unit.hh"

#include "common/bits.hh"
#include "common/expected.hh"
#include "common/log.hh"
#include "obs/trace.hh"

namespace axmemo {

MemoizationUnit::MemoizationUnit(const MemoUnitConfig &config)
    : config_(config), engine_(config.crc), crcHw_(config.crcHw),
      hvrs_(engine_, config.numLuts, config.numThreads), l1_(config.l1Lut),
      monitor_(config.quality),
      pending_(static_cast<std::size_t>(config.numLuts) *
               config.numThreads),
      adaptive_(config.numLuts),
      lookupLatency_(0, 63, 1)
{
    if (config_.l2LutBytes > 0) {
        LutConfig l2cfg;
        l2cfg.name = "l2lut";
        l2cfg.sizeBytes = config_.l2LutBytes;
        l2cfg.dataBytes = config_.l1Lut.dataBytes;
        l2_ = std::make_unique<LookupTable>(l2cfg);
    }
    if (config_.inputQueueBytes == 0)
        raiseError(ErrorCode::Config, "memo-unit",
                   "memoization unit needs a nonzero input queue");
    for (unsigned n = 0; n < feedCycles_.size(); ++n)
        feedCycles_[n] = crcHw_.cyclesForBytes(n);
    queueCycles_ = crcHw_.cyclesForBytes(config_.inputQueueBytes);
}

MemoizationUnit::PendingUpdate &
MemoizationUnit::pendingFor(LutId lut, ThreadId tid)
{
    return pending_[static_cast<std::size_t>(tid) * config_.numLuts + lut];
}

unsigned
MemoizationUnit::extraTruncBits(LutId lut) const
{
    return adaptive_[lut].extraBits;
}

Cycle
MemoizationUnit::feed(LutId lut, ThreadId tid, std::uint64_t word,
                      unsigned nbytes, unsigned truncBits, Cycle now)
{
    // Approximation operator: clear the low truncBits of the raw pattern
    // before it ever reaches the hashing unit (Section 3.1). The runtime
    // controller may deepen the truncation of inputs the programmer
    // already marked approximable (n > 0); exact inputs stay exact.
    if (config_.adaptive.enabled && truncBits > 0)
        truncBits = std::min(
            63u, truncBits + adaptive_[lut].extraBits);
    const std::uint64_t truncated = truncateLsbs(word, truncBits);
    hvrs_.feed(lut, tid, truncated, nbytes);

    stats_.inputBytesHashed += nbytes;
    events_.add(Ev::MemoCrcBytes, nbytes);
    events_.add(Ev::MemoHvrAccess);

    // Timing: the CRC unit drains the input queue at bytesPerCycle. The
    // producing instruction does not stall unless the backlog exceeds the
    // queue capacity.
    const Cycle start = std::max(hvrs_.readyAt(lut, tid), now);
    const Cycle drain = nbytes < feedCycles_.size()
                            ? feedCycles_[nbytes]
                            : crcHw_.cyclesForBytes(nbytes);
    const Cycle done = start + drain;
    hvrs_.setReadyAt(lut, tid, done);

    const Cycle backlog = done > now ? done - now : 0;
    const Cycle stall =
        backlog > queueCycles_ ? backlog - queueCycles_ : 0;
    AXM_TRACE(Memo, "memo", "feed lut ", static_cast<int>(lut), " tid ",
              static_cast<int>(tid), " bytes=", nbytes,
              " trunc=", truncBits, stall ? " stall=" : "",
              stall ? std::to_string(stall) : std::string());
    return stall;
}

MemoLookupResult
MemoizationUnit::lookup(LutId lut, ThreadId tid, Cycle now)
{
    const MemoLookupResult result = lookupImpl(lut, tid, now);

    // Distribution bookkeeping happens here, outside the many-return
    // probe logic: latency per lookup, and streaks of the hits the CPU
    // actually sees (a sacrificed hit reads as a miss and ends one).
    lookupLatency_.sample(result.latency);
    if (result.hit) {
        ++curStreak_;
    } else if (curStreak_ > 0) {
        hitStreak_.sample(curStreak_);
        curStreak_ = 0;
    }

    AXM_TRACE(Memo, "memo",
              result.hit ? (result.fromL2 ? "hit(l2)" : "hit(l1)")
                         : "miss",
              " lut ", static_cast<int>(lut), " tid ",
              static_cast<int>(tid), " lat=", result.latency);
    return result;
}

MemoLookupResult
MemoizationUnit::lookupImpl(LutId lut, ThreadId tid, Cycle now)
{
    MemoLookupResult result;
    ++stats_.lookups;

    // The lookup must wait for any pending CRC work on this register
    // (program-order dependency of Section 4).
    const Cycle ready = hvrs_.readyAt(lut, tid);
    result.latency = (ready > now ? ready - now : 0);

    const std::uint64_t hash = hvrs_.readAndReset(lut, tid);
    events_.add(Ev::MemoHvrAccess);

    result.latency += config_.l1LutLatency;
    events_.add(Ev::MemoLutL1Access);

    if (!enabled()) {
        // Kill switch tripped: everything is a miss and nothing is
        // allocated; updates become no-ops.
        ++stats_.misses;
        return result;
    }

    std::optional<std::uint64_t> data = l1_.lookup(lut, hash);
    bool fromL2 = false;

    if (!data && l2_) {
        result.latency += config_.l2LutLatency;
        events_.add(Ev::MemoLutL2Access);
        data = l2_->lookup(lut, hash);
        if (data) {
            fromL2 = true;
            // Promote into L1.
            const auto victim = l1_.insert(lut, hash, *data);
            events_.add(Ev::MemoLutL1Access);
            if (config_.l2Policy == L2LutPolicy::Victim) {
                // Exclusive: the entry moves up; the displaced L1
                // entry spills down.
                l2_->erase(lut, hash);
                if (victim)
                    l2_->insert(victim->lutId, victim->hash,
                                victim->data);
                events_.add(Ev::MemoLutL2Access);
            }
            // Inclusive: the L1 victim still lives in L2; drop it.
        }
    }

    // Adaptive-truncation bookkeeping: decide whether this lookup falls
    // into a profiling phase.
    bool adaptiveProfile = false;
    if (config_.adaptive.enabled) {
        AdaptiveState &state = adaptive_[lut];
        ++state.sinceProfile;
        if (!state.profiling &&
            state.sinceProfile >= config_.adaptive.profilePeriod) {
            state.profiling = true;
            state.sinceProfile = 0;
            state.samples = 0;
            state.profileLookups = 0;
            state.errorSum = 0.0;
        }
        ++state.windowLookups;
        if (state.profiling) {
            // A profiling phase can only measure error on hits. If the
            // hit rate is so low that the phase cannot fill its sample
            // quota, there is no reuse at the current precision:
            // deepen the truncation speculatively and immediately
            // re-profile — the next phase measures the consequences
            // and backs off if needed.
            if (++state.profileLookups >=
                    8 * config_.adaptive.profileLength &&
                state.samples < config_.adaptive.profileLength) {
                if (state.extraBits < config_.adaptive.maxExtraBits) {
                    ++state.extraBits;
                    ++stats_.adaptiveRaises;
                }
                state.profiling = false;
                // Ramp quickly while there is nothing to lose.
                state.sinceProfile = config_.adaptive.profilePeriod;
                state.windowLookups = 0;
                state.windowHits = 0;
            }
        }
        adaptiveProfile = state.profiling;
    }

    if (data) {
        if (monitor_.shouldSample()) {
            // Sacrifice this hit: report a miss so the processor
            // recomputes; remember what the LUT would have returned.
            ++stats_.sampledHits;
            PendingUpdate &pend = pendingFor(lut, tid);
            pend = {.active = true, .hash = hash,
                    .verify = VerifyKind::Monitor, .lutData = *data};
            return result;
        }
        if (config_.adaptive.enabled)
            ++adaptive_[lut].windowHits;
        if (adaptiveProfile) {
            // Profiling phase (Section 3.1's dynamic approach): the
            // lookup proceeds normally but the CPU is told "miss" so
            // the recomputed result can be compared.
            ++stats_.profiledHits;
            PendingUpdate &pend = pendingFor(lut, tid);
            pend = {.active = true, .hash = hash,
                    .verify = VerifyKind::Adaptive, .lutData = *data};
            return result;
        }
        result.hit = true;
        result.data = *data;
        result.fromL2 = fromL2;
        if (fromL2)
            ++stats_.l2Hits;
        else
            ++stats_.l1Hits;
        return result;
    }

    ++stats_.misses;
    // Allocate for the update that will follow once the original code
    // computes the result (Section 3.4: allocation overlaps computation).
    PendingUpdate &pend = pendingFor(lut, tid);
    pend = {.active = true, .hash = hash, .verify = VerifyKind::None,
            .lutData = 0};
    return result;
}

void
MemoizationUnit::adaptiveObserve(LutId lut, std::uint64_t lutData,
                                 std::uint64_t exactData)
{
    AdaptiveState &state = adaptive_[lut];
    if (!state.profiling)
        return;

    // Lane-wise worst relative error, like the quality monitor.
    const unsigned lanes = config_.quality.floatLanes;
    double worst = 0.0;
    for (unsigned lane = 0; lane < lanes; ++lane) {
        const unsigned shift = 32 * lane;
        double lutVal, exactVal;
        if (config_.quality.integerData) {
            lutVal = static_cast<double>(static_cast<std::int32_t>(
                static_cast<std::uint32_t>(lutData >> shift)));
            exactVal = static_cast<double>(static_cast<std::int32_t>(
                static_cast<std::uint32_t>(exactData >> shift)));
        } else {
            lutVal = bitsToFloat(
                static_cast<std::uint32_t>(lutData >> shift));
            exactVal = bitsToFloat(
                static_cast<std::uint32_t>(exactData >> shift));
        }
        const double denom = std::max(std::abs(exactVal),
                                      config_.adaptive.absoluteFloor);
        worst = std::max(worst,
                         std::abs(lutVal - exactVal) / denom);
    }

    state.errorSum += worst;
    if (++state.samples < config_.adaptive.profileLength)
        return;

    // Phase complete: steer the truncation level. Raising is gated on
    // a deficient hit rate — every level change re-keys the LUT, so
    // deepening past sufficient reuse only costs cold restarts.
    const double meanError =
        state.errorSum / static_cast<double>(state.samples);
    const double hitRate =
        state.windowLookups
            ? static_cast<double>(state.windowHits) /
                  static_cast<double>(state.windowLookups)
            : 0.0;
    if (meanError > config_.adaptive.targetError) {
        if (state.extraBits > 0) {
            --state.extraBits;
            ++stats_.adaptiveLowers;
        }
        state.raiseBackoff = 1;
        state.holdPeriods = 0;
    } else if (meanError < config_.adaptive.targetError *
                               config_.adaptive.raiseBand &&
               hitRate < config_.adaptive.hitTarget) {
        if (state.holdPeriods > 0) {
            --state.holdPeriods; // still re-warming from the last raise
        } else if (state.extraBits < config_.adaptive.maxExtraBits) {
            ++state.extraBits;
            ++stats_.adaptiveRaises;
            state.holdPeriods = state.raiseBackoff;
            state.raiseBackoff = std::min(state.raiseBackoff * 2, 32u);
        }
    }
    state.profiling = false;
    state.sinceProfile = 0;
    state.windowLookups = 0;
    state.windowHits = 0;
}

void
MemoizationUnit::insertBoth(LutId lut, std::uint64_t hash,
                            std::uint64_t data)
{
    const auto l1Victim = l1_.insert(lut, hash, data);
    events_.add(Ev::MemoLutL1Access);
    if (!l2_)
        return;

    if (config_.l2Policy == L2LutPolicy::Inclusive) {
        // An update fills both levels; the L1 victim is dropped (it
        // remains in L2); an L2 victim is back-invalidated from L1 to
        // preserve inclusion and then dropped (LUT entries are never
        // written back to memory, Section 3.4).
        const auto victim = l2_->insert(lut, hash, data);
        events_.add(Ev::MemoLutL2Access);
        if (victim)
            l1_.erase(victim->lutId, victim->hash);
    } else {
        // Victim policy: only the L1 victim spills into L2; L2 victims
        // are dropped.
        if (l1Victim) {
            l2_->insert(l1Victim->lutId, l1Victim->hash,
                        l1Victim->data);
            events_.add(Ev::MemoLutL2Access);
        }
    }
}

Cycle
MemoizationUnit::update(LutId lut, ThreadId tid, std::uint64_t data)
{
    PendingUpdate &pend = pendingFor(lut, tid);
    if (!pend.active) {
        if (!enabled())
            return config_.l1LutLatency; // ignored after kill switch
        axm_panic("update without a preceding missed lookup (lut ",
                  static_cast<int>(lut), ")");
    }

    // The LUT entry holds dataBytes of payload; high bits do not exist in
    // hardware.
    data &= maskLow(8 * config_.l1Lut.dataBytes);

    ++stats_.updates;
    if (pend.verify == VerifyKind::Monitor)
        monitor_.verify(pend.lutData, data);
    else if (pend.verify == VerifyKind::Adaptive)
        adaptiveObserve(lut, pend.lutData, data);

    insertBoth(lut, pend.hash, data);
    pend.active = false;
    AXM_TRACE(Memo, "memo", "update lut ", static_cast<int>(lut), " tid ",
              static_cast<int>(tid), " hash=", trace::hex(pend.hash));
    return config_.l1LutLatency;
}

Cycle
MemoizationUnit::invalidate(LutId lut, ThreadId tid)
{
    ++stats_.invalidates;
    AXM_TRACE(Memo, "memo", "invalidate lut ", static_cast<int>(lut),
              " tid ", static_cast<int>(tid));
    l1_.invalidateLut(lut);
    if (l2_)
        l2_->invalidateLut(lut);
    // Discard any in-flight context for this LUT on this thread.
    hvrs_.readAndReset(lut, tid);
    pendingFor(lut, tid).active = false;
    events_.add(Ev::MemoLutL1Access);
    if (l2_)
        events_.add(Ev::MemoLutL2Access);
    // Dedicated flash-invalidate logic: one cycle per way in a set.
    return l1_.ways();
}

void
MemoizationUnit::reset()
{
    l1_.invalidateAll();
    if (l2_)
        l2_->invalidateAll();
    hvrs_.resetAll();
    for (auto &p : pending_)
        p.active = false;
    for (auto &state : adaptive_)
        state = AdaptiveState{};
    stats_ = {};
    events_ = {};
    monitor_ = QualityMonitor(config_.quality);
    hitStreak_.reset();
    lookupLatency_.reset();
    curStreak_ = 0;
}

void
MemoizationUnit::finalizeDists()
{
    if (curStreak_ > 0) {
        hitStreak_.sample(curStreak_);
        curStreak_ = 0;
    }
}

} // namespace axmemo
