#include "memo/lut.hh"

#include "common/bits.hh"
#include "common/expected.hh"
#include "common/log.hh"
#include "obs/trace.hh"

namespace axmemo {

LookupTable::LookupTable(const LutConfig &config)
    : ways_(config.ways())
{
    // Configuration errors are recoverable at the sweep boundary:
    // raiseError's AxException marks the one offending job Failed
    // instead of tearing down the whole run.
    if (config.dataBytes != 4 && config.dataBytes != 8)
        raiseError(ErrorCode::Config, "lut",
                   config.name + ": LUT data must be 4 or 8 bytes");
    if (config.sizeBytes == 0 ||
        config.sizeBytes % LutConfig::setBytes != 0)
        raiseError(ErrorCode::Config, "lut",
                   config.name + ": LUT size must be a multiple of " +
                       std::to_string(LutConfig::setBytes) + " bytes");
    const std::uint64_t sets = config.sizeBytes / LutConfig::setBytes;
    if (!isPowerOfTwo(sets))
        raiseError(ErrorCode::Config, "lut",
                   config.name +
                       ": LUT set count must be a power of two");
    numSets_ = static_cast<unsigned>(sets);
    entries_.resize(static_cast<std::size_t>(numSets_) * ways_);
    mruWay_.assign(numSets_, 0);
}

std::optional<std::uint64_t>
LookupTable::lookup(LutId lutId, std::uint64_t hash)
{
    const unsigned set = setOf(hash);

    // MRU fast path: keys are unique within a set, so checking the
    // hinted way first can never disagree with the scan below.
    if (mruEnabled_) {
        Entry *e = entryAt(set, mruWay_[set]);
        if (e->valid && e->lutId == lutId && e->hash == hash) {
            e->lruStamp = ++stamp_;
            ++hits_;
            return e->data;
        }
    }

    for (unsigned w = 0; w < ways_; ++w) {
        Entry *e = entryAt(set, w);
        if (e->valid && e->lutId == lutId && e->hash == hash) {
            e->lruStamp = ++stamp_;
            ++hits_;
            mruWay_[set] = static_cast<std::uint8_t>(w);
            return e->data;
        }
    }
    ++misses_;
    return std::nullopt;
}

bool
LookupTable::contains(LutId lutId, std::uint64_t hash) const
{
    const unsigned set = setOf(hash);
    for (unsigned w = 0; w < ways_; ++w) {
        const Entry *e = entryAt(set, w);
        if (e->valid && e->lutId == lutId && e->hash == hash)
            return true;
    }
    return false;
}

std::optional<LookupTable::Victim>
LookupTable::insert(LutId lutId, std::uint64_t hash, std::uint64_t data)
{
    const unsigned set = setOf(hash);

    // Overwrite an existing entry for the same key (a collision of
    // truncated inputs mapping to the same hash simply refreshes data).
    for (unsigned w = 0; w < ways_; ++w) {
        Entry *e = entryAt(set, w);
        if (e->valid && e->lutId == lutId && e->hash == hash) {
            e->data = data;
            e->lruStamp = ++stamp_;
            mruWay_[set] = static_cast<std::uint8_t>(w);
            return std::nullopt;
        }
    }

    // Pick victim: first invalid way, else LRU.
    unsigned victimWay = 0;
    std::uint64_t oldest = ~0ull;
    for (unsigned w = 0; w < ways_; ++w) {
        Entry *e = entryAt(set, w);
        if (!e->valid) {
            victimWay = w;
            oldest = 0;
            break;
        }
        if (e->lruStamp < oldest) {
            oldest = e->lruStamp;
            victimWay = w;
        }
    }

    Entry *e = entryAt(set, victimWay);
    std::optional<Victim> victim;
    if (e->valid) {
        victim = Victim{e->lutId, e->hash, e->data};
        AXM_TRACE(Lut, "lut", "insert set ", set, " way ", victimWay,
                  " hash=", trace::hex(hash), " evicts hash=",
                  trace::hex(e->hash), " lut ",
                  static_cast<int>(e->lutId));
    } else {
        AXM_TRACE(Lut, "lut", "insert set ", set, " way ", victimWay,
                  " hash=", trace::hex(hash), " fills invalid way");
    }
    e->valid = true;
    e->lutId = lutId;
    e->hash = hash;
    e->data = data;
    e->lruStamp = ++stamp_;
    mruWay_[set] = static_cast<std::uint8_t>(victimWay);
    return victim;
}

void
LookupTable::erase(LutId lutId, std::uint64_t hash)
{
    const unsigned set = setOf(hash);
    for (unsigned w = 0; w < ways_; ++w) {
        Entry *e = entryAt(set, w);
        if (e->valid && e->lutId == lutId && e->hash == hash) {
            e->valid = false;
            AXM_TRACE(Lut, "lut", "erase set ", set, " way ", w,
                      " hash=", trace::hex(hash));
            return;
        }
    }
}

void
LookupTable::invalidateLut(LutId lutId)
{
    std::uint64_t dropped = 0;
    for (auto &e : entries_) {
        if (e.valid && e.lutId == lutId) {
            e.valid = false;
            ++dropped;
        }
    }
    AXM_TRACE(Lut, "lut", "invalidate lut ", static_cast<int>(lutId),
              " dropped ", dropped, " entries");
}

void
LookupTable::invalidateAll()
{
    for (auto &e : entries_)
        e.valid = false;
}

std::uint64_t
LookupTable::validCount() const
{
    std::uint64_t n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace axmemo
