/**
 * @file
 * The per-core memoization unit (Section 3, Fig. 2).
 *
 * Combines the hashing unit (CRC engine + input queue timing), the hash
 * value registers, the L1 LUT (dedicated SRAM), the optional inclusive L2
 * LUT (carved from last-level-cache ways), and the quality monitor.
 *
 * The unit exposes the operations the five ISA-extension instructions
 * perform, each returning both the functional result and its timing so the
 * CPU model can account Table 4's latencies:
 *   feed()       <- ld_crc / reg_crc input streaming
 *   lookup()     <- lookup
 *   update()     <- update
 *   invalidate() <- invalidate
 */

#ifndef AXMEMO_MEMO_MEMO_UNIT_HH
#define AXMEMO_MEMO_MEMO_UNIT_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/events.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "crc/crc.hh"
#include "crc/hw_model.hh"
#include "memo/hash_value_registers.hh"
#include "memo/lut.hh"
#include "memo/quality_monitor.hh"
#include "obs/stats.hh"

namespace axmemo {

/**
 * Runtime approximation control (the "dynamic approach" of Section 3.1):
 * a fraction of execution is periodically spent in a profiling phase
 * where the unit returns miss even on hits, compares the LUT output
 * against the recomputed result, and adjusts the truncation level up or
 * down. Extra truncation is only ever applied to inputs the programmer
 * marked approximable (static n > 0); exact inputs stay exact.
 */
struct AdaptiveTruncationConfig
{
    bool enabled = false;
    /** Lookups between profiling phases (per logical LUT). */
    std::uint32_t profilePeriod = 2000;
    /** Sacrificed-and-verified hits per profiling phase. */
    std::uint32_t profileLength = 40;
    /** Mean relative error the controller steers toward. */
    double targetError = 0.01;
    /** Below target*raiseBand the controller truncates more. */
    double raiseBand = 0.25;
    /**
     * Hit rate at which the controller stops deepening: every level
     * change re-keys the LUT (existing entries become unreachable), so
     * truncating past the point of sufficient reuse only costs cold
     * restarts.
     */
    double hitTarget = 0.85;
    /** Bits the controller may add on top of the static level. */
    unsigned maxExtraBits = 14;
    /** Denominator floor for the relative error (see QualityMonitor). */
    double absoluteFloor = 1.0;
};

/**
 * L2 LUT content policy. The paper describes the L2 LUT as "inclusive"
 * (Section 3) yet also says L1 victims are "evicted to L2 LUT"
 * (Section 3.4) — the two readings differ in capacity utilization, so
 * both are implemented and compared by bench/ablate_lut_geometry:
 *  - Inclusive: updates fill both levels; L1 victims are dropped (their
 *    data persists in L2); L2 victims back-invalidate L1.
 *  - Victim (exclusive): updates fill L1 only; L1 victims spill into
 *    L2; an L2 hit moves the entry back up and out of L2.
 */
enum class L2LutPolicy
{
    Inclusive,
    Victim
};

/** Full configuration of one memoization unit. */
struct MemoUnitConfig
{
    /** CRC algorithm used for hashing (32-bit in the paper). */
    CrcSpec crc = CrcSpec::crc32();
    /** Hardware CRC unit (8-bit parallel, unrolled x4 => 4 B/cycle). */
    CrcHwConfig crcHw{};

    /** L1 LUT geometry (dedicated SRAM, <= 16 KB). */
    LutConfig l1Lut{.name = "l1lut", .sizeBytes = 8 * 1024,
                    .dataBytes = 4};

    /** Optional inclusive L2 LUT (bytes of LLC ways); 0 disables it. */
    std::uint64_t l2LutBytes = 0;
    /** Content policy of the L2 LUT. */
    L2LutPolicy l2Policy = L2LutPolicy::Inclusive;
    /** L2 LUT probe latency = LLC hit latency (Table 4: 13 cycles). */
    Cycle l2LutLatency = 13;

    /** L1 LUT lookup/update latency (Table 4: 2 cycles). */
    Cycle l1LutLatency = 2;

    /** Input queue capacity in bytes; full queue stalls the CPU. */
    unsigned inputQueueBytes = 16;

    unsigned numLuts = maxLutsPerThread;
    unsigned numThreads = maxSmtThreads;

    QualityMonitorConfig quality{};
    AdaptiveTruncationConfig adaptive{};
};

/** Result of a lookup request. */
struct MemoLookupResult
{
    bool hit = false;
    /** Valid iff hit. */
    std::uint64_t data = 0;
    /** Total cycles, including waiting for pending CRC work. */
    Cycle latency = 0;
    /** Hit was served by the L2 LUT. */
    bool fromL2 = false;
};

/** Aggregate statistics of one memoization unit. */
struct MemoUnitStats
{
    std::uint64_t lookups = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t misses = 0;
    /** Hits sacrificed by the quality monitor (reported as misses). */
    std::uint64_t sampledHits = 0;
    /** Hits sacrificed by adaptive-truncation profiling phases. */
    std::uint64_t profiledHits = 0;
    /** Times the adaptive controller raised / lowered truncation. */
    std::uint64_t adaptiveRaises = 0;
    std::uint64_t adaptiveLowers = 0;
    std::uint64_t updates = 0;
    std::uint64_t invalidates = 0;
    std::uint64_t inputBytesHashed = 0;
    /** The quality monitor disabled memoization during the run. */
    bool monitorTripped = false;

    std::uint64_t hits() const { return l1Hits + l2Hits; }
    double
    hitRate() const
    {
        return lookups ? static_cast<double>(hits()) /
                             static_cast<double>(lookups)
                       : 0.0;
    }
};

/** The memoization unit; see file comment. */
class MemoizationUnit
{
  public:
    explicit MemoizationUnit(const MemoUnitConfig &config = {});

    const MemoUnitConfig &config() const { return config_; }

    /** The hashing engine (exposed for host-path introspection: the
     * Host trace flag reports which CRC data path is active). */
    const CrcEngine &engine() const { return engine_; }

    /** True while the quality monitor has not disabled memoization. */
    bool enabled() const { return !monitor_.tripped(); }

    /**
     * Stream @p nbytes of @p word into {lut, tid}'s CRC after truncating
     * the low @p truncBits bits (the ld_crc / reg_crc data path).
     * @return CPU stall cycles caused by a full input queue.
     */
    Cycle feed(LutId lut, ThreadId tid, std::uint64_t word, unsigned nbytes,
               unsigned truncBits, Cycle now);

    /** Perform the lookup instruction at cycle @p now. */
    MemoLookupResult lookup(LutId lut, ThreadId tid, Cycle now);

    /**
     * Perform the update instruction: write @p data into the entry
     * allocated by the preceding missed lookup. @return latency.
     */
    Cycle update(LutId lut, ThreadId tid, std::uint64_t data);

    /** Flash-invalidate one logical LUT. @return latency in cycles. */
    Cycle invalidate(LutId lut, ThreadId tid);

    /** Reset all state between runs (LUT contents, HVRs, stats). */
    void reset();

    const MemoUnitStats &stats() const { return stats_; }
    const QualityMonitor &monitor() const { return monitor_; }
    const LookupTable &l1() const { return l1_; }
    /** Null when the L2 LUT is disabled. */
    const LookupTable *l2() const { return l2_.get(); }

    /** Energy events: crc_bytes, hvr_access, lut_l1, lut_l2, ... */
    const EventCounters &events() const { return events_; }

    /** Extra truncation currently applied to approximable inputs. */
    unsigned extraTruncBits(LutId lut) const;

    /**
     * Close the hit streak still open at end of run so hitStreaks()
     * sums exactly to stats().hits(). Idempotent; the simulator calls
     * it at halt before snapshotting the distributions.
     */
    void finalizeDists();

    /** Lengths of runs of consecutive reported hits (a sacrificed hit
     * reads as a miss to the CPU and therefore ends a streak). */
    const Histogram &hitStreaks() const { return hitStreak_; }

    /** Per-lookup latency in cycles (count == stats().lookups). */
    const Distribution &lookupLatencies() const { return lookupLatency_; }

  private:
    enum class VerifyKind : std::uint8_t
    {
        None,
        Monitor, ///< quality-monitor sample
        Adaptive ///< adaptive-truncation profiling sample
    };

    struct PendingUpdate
    {
        bool active = false;
        std::uint64_t hash = 0;
        /** Why this miss is a sacrificed hit (None for true misses). */
        VerifyKind verify = VerifyKind::None;
        /** The data the LUT would have returned (for verification). */
        std::uint64_t lutData = 0;
    };

    /** Per-LUT state of the adaptive-truncation controller. */
    struct AdaptiveState
    {
        unsigned extraBits = 0;
        std::uint32_t sinceProfile = 0;
        bool profiling = false;
        std::uint32_t samples = 0;
        std::uint32_t profileLookups = 0;
        double errorSum = 0.0;
        /** Hit-rate window since the last adjustment decision. */
        std::uint64_t windowLookups = 0;
        std::uint64_t windowHits = 0;
        /**
         * Periods to wait before the next measured-phase raise. Every
         * level change re-keys the LUT and depresses the hit rate until
         * it re-warms; without backoff the controller would read its
         * own flush as "still deficient" and spiral to max depth.
         */
        std::uint32_t raiseBackoff = 1;
        std::uint32_t holdPeriods = 0;
    };

    void adaptiveObserve(LutId lut, std::uint64_t lutData,
                         std::uint64_t exactData);

    MemoLookupResult lookupImpl(LutId lut, ThreadId tid, Cycle now);

    PendingUpdate &pendingFor(LutId lut, ThreadId tid);
    void insertBoth(LutId lut, std::uint64_t hash, std::uint64_t data);

    MemoUnitConfig config_;
    CrcEngine engine_;
    CrcHwModel crcHw_;
    /** crcHw_.cyclesForBytes(n) for the word-feed sizes (n <= 8) and
     * for the input-queue capacity, precomputed once: feed() runs per
     * ld_crc/reg_crc and must not rediscover these constants. */
    std::array<Cycle, 9> feedCycles_{};
    Cycle queueCycles_ = 0;
    HashValueRegisters hvrs_;
    LookupTable l1_;
    std::unique_ptr<LookupTable> l2_;
    QualityMonitor monitor_;
    std::vector<PendingUpdate> pending_;
    std::vector<AdaptiveState> adaptive_;
    MemoUnitStats stats_;
    EventCounters events_;

    // Distribution stats (obs layer), maintained per lookup.
    Histogram hitStreak_;
    Distribution lookupLatency_;
    std::uint64_t curStreak_ = 0;
};

} // namespace axmemo

#endif // AXMEMO_MEMO_MEMO_UNIT_HH
