/**
 * @file
 * Runtime quality monitoring (Section 6, "Quality metric and monitoring").
 *
 * Every 1-in-N LUT hits is sacrificed: the lookup proceeds normally but the
 * processor is told "miss", so it recomputes the exact result and sends an
 * update. The monitor compares the would-be LUT output against the exact
 * value; if, over a window of comparisons, too many relative errors exceed
 * the error bound, memoization is disabled for the rest of the run.
 */

#ifndef AXMEMO_MEMO_QUALITY_MONITOR_HH
#define AXMEMO_MEMO_QUALITY_MONITOR_HH

#include <cstdint>

#include "common/types.hh"

namespace axmemo {

/** Quality-monitor policy parameters (paper defaults). */
struct QualityMonitorConfig
{
    bool enabled = true;
    /** One out of this many hits is verified. */
    std::uint32_t sampleEvery = 100;
    /** Comparisons per decision window. */
    std::uint32_t windowSize = 100;
    /** A comparison is "bad" if relative error exceeds this. */
    double errorThreshold = 0.10;
    /**
     * Denominator floor of the relative error: deviations on outputs
     * smaller than this are judged relative to the floor, not to the
     * (near-zero) output itself. Keeps the monitor from tripping on
     * benign noise in dark/flat/quiescent outputs.
     */
    double absoluteFloor = 1.0;
    /** Disable memoization if bad fraction exceeds this per window. */
    double badFractionThreshold = 0.10;
    /** Interpret LUT data as this many float lanes (1 or 2) for error. */
    unsigned floatLanes = 1;
    /** Treat LUT data as integer lanes instead of IEEE-754 floats. */
    bool integerData = false;
};

/** Tracks sampled-hit verification and the kill switch. */
class QualityMonitor
{
  public:
    explicit QualityMonitor(const QualityMonitorConfig &config = {});

    const QualityMonitorConfig &config() const { return config_; }

    /**
     * Called on every LUT hit. @return true if this hit must be sacrificed
     * (reported to the CPU as a miss and verified on update).
     */
    bool shouldSample();

    /**
     * Verify a sacrificed hit: @p lutData is what the LUT would have
     * returned, @p exactData is what the processor computed. Updates the
     * window and may trip the kill switch.
     */
    void verify(std::uint64_t lutData, std::uint64_t exactData);

    /** True once the monitor has disabled memoization. */
    bool tripped() const { return tripped_; }

    std::uint64_t comparisons() const { return comparisons_; }
    std::uint64_t badComparisons() const { return totalBad_; }
    /** Mean observed relative error across all comparisons. */
    double meanRelativeError() const;

  private:
    QualityMonitorConfig config_;
    std::uint32_t hitCounter_ = 0;
    std::uint32_t windowCount_ = 0;
    std::uint32_t windowBad_ = 0;
    std::uint64_t comparisons_ = 0;
    std::uint64_t totalBad_ = 0;
    double errorSum_ = 0.0;
    bool tripped_ = false;
};

} // namespace axmemo

#endif // AXMEMO_MEMO_QUALITY_MONITOR_HH
