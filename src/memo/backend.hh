/**
 * @file
 * The MemoBackend seam: pluggable memoization strategies.
 *
 * Every execution flavor of a run — the plain baseline, the paper's
 * hardware memoization unit, the Section 6.2 software contenders, and
 * any future backend (faulty-LUT storage, a served memo table) — is a
 * MemoBackend: a named strategy that takes a prepared workload and
 * produces a RunResult. ExperimentRunner dispatches through the
 * registry by name, config_io serializes backends symbolically, the
 * sweep engine treats the backend name as a first-class sweep axis,
 * and the checkpoint journal keys jobs by it.
 *
 * Adding a backend is one registration: implement the interface,
 * register it (builtins via core/memo_backends.cc, out-of-tree ones
 * via AXMEMO_REGISTER_MEMO_BACKEND), and every driver surface —
 * `axmemo --list`, the cli's --mode flag, sweep journaling, manifest
 * rows — picks it up with no enum sweep through the codebase.
 *
 * This header lives in the memo library (links only common + crc), so
 * the run context uses forward declarations; the concrete builtin
 * backends live in core where the simulator, transforms and energy
 * model are all visible.
 */

#ifndef AXMEMO_MEMO_BACKEND_HH
#define AXMEMO_MEMO_BACKEND_HH

#include <memory>
#include <string>
#include <vector>

#include "common/expected.hh"

namespace axmemo {

class Workload;
class Program;
class SimMemory;
class EnergyModel;
struct ExperimentConfig;
struct SimConfig;
struct RunResult;
struct RunControl;

/**
 * Hooks an incremental driver threads through the run context. The
 * batch path leaves them defaulted; `axmemo serve` sets them so the
 * generic session driver polls for cancellation and labels each
 * phase's timeline span with the server's lane.
 */
struct BackendSessionHooks
{
    /** Polled between session phases (on top of the simulator's own
     * in-run polling via SimConfig::control). */
    const RunControl *control = nullptr;
    /** Span category for per-phase timeline spans; null = no spans. */
    const char *spanCategory = nullptr;
};

/** Everything a backend needs to execute one prepared run. */
struct BackendRunContext
{
    const Workload &workload;
    const ExperimentConfig &config;
    /** The workload's baseline AxIR program (read-only, shared). */
    const Program &baselineProg;
    /** Private copy of the prepared memory image; mutated by the run. */
    SimMemory &mem;
    /** Prefilled with cpu/hierarchy/control; hardware backends attach
     * their memo unit configuration here before simulating. */
    SimConfig &sim;
    const EnergyModel &energy;
    BackendSessionHooks session{};
};

/**
 * One run in flight, split at phase boundaries so a long-lived driver
 * (the serve worker thread) can interleave other work between the
 * expensive pieces. A session borrows its BackendRunContext — the
 * context (and everything it references) must outlive the session.
 *
 * The contract: call step() until it returns false, then finish()
 * exactly once. step() executes one whole phase (e.g. the memoization
 * transform, or the simulation to halt); phase() names the phase the
 * next step() will run. MemoBackend::run() is the canonical driver —
 * the batch path and the server both execute sessions through the same
 * code, which is what keeps their outputs identical.
 */
class BackendSession
{
  public:
    virtual ~BackendSession() = default;

    /** Execute the next phase. @return true while phases remain. */
    virtual bool step() = 0;

    /** Name of the phase the next step() runs ("build", "simulate"),
     * or "done" after the last step. */
    virtual const char *phase() const = 0;

    /** Fold the completed run into @p result (stats, energy,
     * lookups/hits, regions). Panics if phases remain. */
    virtual void finish(RunResult &result) = 0;
};

/** One memoization strategy; see file comment. */
class MemoBackend
{
  public:
    virtual ~MemoBackend() = default;

    /** Stable identifier: the sweep axis value, journal key component,
     * config_io name and report label. Lower-case, no whitespace. */
    virtual std::string name() const = 0;

    /** One-line human description for `axmemo --list`. */
    virtual std::string description() const = 0;

    /** The ExperimentConfig sections this backend reads ("lut,
     * crc_bits", "iact", ...) — its config schema, for --list. */
    virtual std::string configSummary() const = 0;

    /** True when the run attaches the hardware memoization unit (the
     * run report renders the memo-unit section for these). */
    virtual bool hardwareMemo() const { return false; }

    /** Open an incremental session over one prepared run; see
     * BackendSession for the driving contract. */
    virtual std::unique_ptr<BackendSession>
    prepare(const BackendRunContext &ctx) const = 0;

    /**
     * Execute one run to completion: prepare(), step() until done
     * (honoring ctx.session — cancellation poll and per-phase spans),
     * finish() into @p result. The caller owns result.backend and
     * result.outputs. Non-virtual: every backend runs through the
     * session path, so batch and incremental drivers cannot diverge.
     */
    void run(const BackendRunContext &ctx, RunResult &result) const;
};

/** Name-keyed backend catalog; see file comment. */
class MemoBackendRegistry
{
  public:
    static MemoBackendRegistry &instance();

    /** Register @p backend; @p order controls listing position.
     * Duplicate names are a programming error (panics). */
    void add(int order, std::unique_ptr<MemoBackend> backend);

    /** @return the backend named @p name, or nullptr. */
    const MemoBackend *find(const std::string &name) const;

    /**
     * find() with a structured error: unknown names produce an
     * ErrorCode::Config Expected carrying a did-you-mean suggestion
     * and the list of registered backends, for config_io and the
     * driver surfaces to report verbatim.
     */
    Expected<const MemoBackend *> resolve(const std::string &name) const;

    /** Registered backends in (order, name) order. */
    std::vector<const MemoBackend *> list() const;

  private:
    struct Entry
    {
        int order = 0;
        std::unique_ptr<MemoBackend> backend;
    };
    std::vector<Entry> entries_;
};

/** Plain Levenshtein distance (shared by every did-you-mean surface:
 * backend names here, subcommand and flag names in the CLI). */
std::size_t editDistance(const std::string &a, const std::string &b);

/** The closest of @p candidates to @p name when it is plausibly a typo
 * (within 3 edits and closer than "replace everything"); empty string
 * when none qualifies. */
std::string suggestClosest(const std::string &name,
                           const std::vector<std::string> &candidates);

/** Static registrar for out-of-core backends (builtins register
 * explicitly through core/memo_backends.cc instead, so no static-init
 * order or linker dead-stripping issues apply to them). */
struct MemoBackendRegistrar
{
    MemoBackendRegistrar(int order, std::unique_ptr<MemoBackend> backend);
};

#define AXMEMO_REGISTER_MEMO_BACKEND(order, cls)                          \
    static const ::axmemo::MemoBackendRegistrar                           \
        axmemoMemoBackendRegistrar_##cls{order, std::make_unique<cls>()};

} // namespace axmemo

#endif // AXMEMO_MEMO_BACKEND_HH
