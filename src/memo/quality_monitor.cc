#include "memo/quality_monitor.hh"

#include "common/bits.hh"
#include "common/error_metrics.hh"
#include "common/expected.hh"
#include "common/log.hh"

namespace axmemo {

QualityMonitor::QualityMonitor(const QualityMonitorConfig &config)
    : config_(config)
{
    if (config_.floatLanes != 1 && config_.floatLanes != 2)
        raiseError(ErrorCode::Config, "quality-monitor",
                   "floatLanes must be 1 or 2");
    if (config_.sampleEvery == 0 || config_.windowSize == 0)
        raiseError(ErrorCode::Config, "quality-monitor",
                   "sampleEvery/windowSize must be > 0");
}

bool
QualityMonitor::shouldSample()
{
    if (!config_.enabled || tripped_)
        return false;
    if (++hitCounter_ >= config_.sampleEvery) {
        hitCounter_ = 0;
        return true;
    }
    return false;
}

void
QualityMonitor::verify(std::uint64_t lutData, std::uint64_t exactData)
{
    if (!config_.enabled || tripped_)
        return;

    // Compare lane-wise; the comparison's error is the worst lane.
    double worst = 0.0;
    for (unsigned lane = 0; lane < config_.floatLanes; ++lane) {
        const unsigned shift = 32 * lane;
        const auto lutLane =
            static_cast<std::uint32_t>(lutData >> shift);
        const auto exactLane =
            static_cast<std::uint32_t>(exactData >> shift);
        double lut, exact;
        if (config_.integerData) {
            lut = static_cast<double>(
                static_cast<std::int32_t>(lutLane));
            exact = static_cast<double>(
                static_cast<std::int32_t>(exactLane));
        } else {
            lut = static_cast<double>(bitsToFloat(lutLane));
            exact = static_cast<double>(bitsToFloat(exactLane));
        }
        worst = std::max(worst,
                         relativeError(exact, lut,
                                       config_.absoluteFloor));
    }

    ++comparisons_;
    errorSum_ += worst;
    ++windowCount_;
    if (worst > config_.errorThreshold) {
        ++windowBad_;
        ++totalBad_;
    }

    if (windowCount_ >= config_.windowSize) {
        const double badFraction =
            static_cast<double>(windowBad_) / windowCount_;
        if (badFraction > config_.badFractionThreshold) {
            tripped_ = true;
            axm_warn("quality monitor tripped: ", windowBad_, "/",
                     windowCount_, " sampled hits exceeded ",
                     config_.errorThreshold * 100, "% relative error; "
                     "memoization disabled");
        }
        windowCount_ = 0;
        windowBad_ = 0;
    }
}

double
QualityMonitor::meanRelativeError() const
{
    return comparisons_ ? errorSum_ / static_cast<double>(comparisons_)
                        : 0.0;
}

} // namespace axmemo
