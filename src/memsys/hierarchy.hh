/**
 * @file
 * Two-level cache hierarchy + DRAM, matching Table 3 of the paper:
 * 32 KB 4-way L1D (1-cycle), shared L2 (16-way, 13-cycle; 1 MB enabled in
 * the paper's single-core runs), DDR3-1600 main memory.
 *
 * The hierarchy also owns the L2 way partition used by the in-LLC L2 LUT:
 * the memoization unit asks for N ways and the remaining ways keep serving
 * normal data.
 */

#ifndef AXMEMO_MEMSYS_HIERARCHY_HH
#define AXMEMO_MEMSYS_HIERARCHY_HH

#include <cstdint>

#include "common/events.hh"
#include "common/types.hh"
#include "memsys/cache.hh"
#include "memsys/dram.hh"
#include "obs/trace.hh"

namespace axmemo {

/** Configuration of the whole data-side memory hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1d{.name = "l1d",
                    .sizeBytes = 32 * 1024,
                    .assoc = 4,
                    .lineSize = 64,
                    .hitLatency = 1};
    CacheConfig l2{.name = "l2",
                   .sizeBytes = 1024 * 1024,
                   .assoc = 16,
                   .lineSize = 64,
                   .hitLatency = 13};
    DramConfig dram{};
};

/** Data-side memory hierarchy producing per-access latency and events. */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const HierarchyConfig &config = {});

    const HierarchyConfig &config() const { return config_; }

    /**
     * @return total latency in cycles of a demand access at @p addr.
     *
     * The dominant case — an L1 hit in the MRU-hinted way — stays
     * inline so the interpreter's load/store handlers pay no call for
     * it. With the Cache trace flag on, everything takes the full
     * out-of-line walk so hits still emit their trace lines; side
     * effects and latencies are identical on both paths.
     */
    Cycle
    access(Addr addr, bool isWrite)
    {
        if (!trace::enabled(trace::Flag::Cache) &&
            l1d_.tryMruHit(addr, isWrite)) {
            events_.add(Ev::L1dHit);
            return config_.l1d.hitLatency;
        }
        return accessFull(addr, isWrite);
    }

    /**
     * Access that bypasses the L1 and goes straight to the L2 array — used
     * by the memoization unit's L2 LUT traffic, which indexes LLC ways
     * directly. The LUT occupies reserved ways, so this only models the
     * array access latency; the reserved ways are not looked up as cache.
     */
    Cycle l2ArrayLatency() const { return config_.l2.hitLatency; }

    /** Reserve @p ways of every L2 set for the L2 LUT. */
    void reserveL2Ways(unsigned ways);

    /** L2 capacity still available for caching, bytes. */
    std::uint64_t l2UsableBytes() const { return l2_.usableBytes(); }

    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    Dram &dram() { return dram_; }
    const Dram &dram() const { return dram_; }

    /** Event counters: l1d_hit/l1d_miss/l2_hit/l2_miss/dram_read/... */
    const EventCounters &events() const { return events_; }

  private:
    /** Full access walk (L1 scan, L2, DRAM, writebacks, tracing). */
    Cycle accessFull(Addr addr, bool isWrite);

    HierarchyConfig config_;
    Cache l1d_;
    Cache l2_;
    Dram dram_;
    EventCounters events_;
};

} // namespace axmemo

#endif // AXMEMO_MEMSYS_HIERARCHY_HH
