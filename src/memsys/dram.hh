/**
 * @file
 * Open-row DDR3 timing model.
 *
 * Models the paper's 4 GB DDR3-1600 dual-channel main memory (Table 3) at
 * the granularity the simulation needs: per-access latency that depends on
 * whether the access hits the open row of its bank. Bank-level parallelism
 * and scheduling are abstracted away; the in-order HPI core exposes at most
 * one outstanding demand miss anyway.
 */

#ifndef AXMEMO_MEMSYS_DRAM_HH
#define AXMEMO_MEMSYS_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace axmemo {

/** DDR3 channel/bank geometry and timing (in CPU cycles at 2 GHz). */
struct DramConfig
{
    unsigned channels = 2;
    unsigned banksPerChannel = 8;
    /** Bytes covered by one row buffer. */
    std::uint64_t rowBytes = 8 * 1024;
    /** CAS-only access (row already open). */
    Cycle rowHitLatency = 90;
    /** Precharge + activate + CAS. */
    Cycle rowMissLatency = 165;
};

/** Per-bank open-row tracker producing access latencies. */
class Dram
{
  public:
    explicit Dram(const DramConfig &config = {});

    const DramConfig &config() const { return config_; }

    /** @return latency of a line fill / writeback at @p addr. */
    Cycle access(Addr addr);

    std::uint64_t rowHits() const { return rowHits_; }
    std::uint64_t rowMisses() const { return rowMisses_; }
    std::uint64_t accesses() const { return rowHits_ + rowMisses_; }

  private:
    DramConfig config_;
    std::vector<std::int64_t> openRow_;
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowMisses_ = 0;
};

} // namespace axmemo

#endif // AXMEMO_MEMSYS_DRAM_HH
