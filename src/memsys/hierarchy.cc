#include "memsys/hierarchy.hh"

#include "obs/trace.hh"

namespace axmemo {

MemHierarchy::MemHierarchy(const HierarchyConfig &config)
    : config_(config), l1d_(config.l1d), l2_(config.l2), dram_(config.dram)
{
}

Cycle
MemHierarchy::accessFull(Addr addr, bool isWrite)
{
    Cycle latency = config_.l1d.hitLatency;
    const CacheAccessResult l1 = l1d_.access(addr, isWrite);
    events_.add(l1.hit ? Ev::L1dHit : Ev::L1dMiss);
    if (l1.hit) {
        AXM_TRACE(Cache, "mem", isWrite ? "wr " : "rd ",
                  trace::hex(addr), " l1d hit lat=", latency);
        return latency;
    }

    // L1 victim writeback goes to L2 (write-back hierarchy); it is off the
    // critical path of the demand access but still generates L2 traffic.
    if (l1.writeback) {
        const CacheAccessResult wb = l2_.access(l1.writebackAddr, true);
        events_.add(Ev::L2WbAccess);
        if (!wb.hit && wb.writeback) {
            dram_.access(wb.writebackAddr);
            events_.add(Ev::DramWrite);
        }
    }

    latency += config_.l2.hitLatency;
    const CacheAccessResult l2 = l2_.access(addr, isWrite);
    events_.add(l2.hit ? Ev::L2Hit : Ev::L2Miss);
    if (l2.hit) {
        AXM_TRACE(Cache, "mem", isWrite ? "wr " : "rd ",
                  trace::hex(addr), " l1d miss l2 hit lat=", latency);
        return latency;
    }

    if (l2.writeback) {
        dram_.access(l2.writebackAddr);
        events_.add(Ev::DramWrite);
    }

    latency += dram_.access(addr);
    events_.add(Ev::DramRead);
    AXM_TRACE(Cache, "mem", isWrite ? "wr " : "rd ", trace::hex(addr),
              " l1d miss l2 miss dram lat=", latency);
    return latency;
}

void
MemHierarchy::reserveL2Ways(unsigned ways)
{
    l2_.reserveWays(ways);
}

} // namespace axmemo
