/**
 * @file
 * Sparse, paged, flat simulated memory.
 *
 * Workload data (images, option arrays, software LUT arrays, ...) lives in
 * this address space and is accessed by AxIR load/store instructions. Pages
 * are allocated lazily so the 1 GB software-LUT array of Section 6.2 costs
 * only the pages it actually touches. A bump allocator hands out
 * non-overlapping regions to workloads.
 *
 * Two host-side fast paths keep this off the simulator's critical path
 * (DESIGN.md §7):
 *
 *  - A small direct-mapped page-translation cache in front of the page
 *    map turns the common-case access into one compare instead of an
 *    unordered_map probe, and every access translates once instead of
 *    once per byte.
 *  - Pages are copy-on-write: clone() shares pages via shared_ptr and a
 *    write to a shared page copies it first. The sweep engine's per-job
 *    clones of a prepared dataset are O(pages) pointer copies, and only
 *    pages a run actually dirties are ever duplicated.
 *
 * Both are invisible to the simulated program: reads observe exactly the
 * bytes written, clones diverge exactly as deep copies would.
 */

#ifndef AXMEMO_MEMSYS_SIM_MEMORY_HH
#define AXMEMO_MEMSYS_SIM_MEMORY_HH

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/bits.hh"
#include "common/types.hh"

namespace axmemo {

/** Lazily-paged simulated byte-addressable memory. */
class SimMemory
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr std::size_t pageSize = 1ull << pageShift;
    /** Translation-cache entries (direct-mapped, power of two). */
    static constexpr std::size_t xlatEntries = 64;

    SimMemory() = default;
    /** Deep identity is per-object: accidental copies would alias the
     * translation cache, so copying goes through clone() explicitly. */
    SimMemory(const SimMemory &) = delete;
    SimMemory &operator=(const SimMemory &) = delete;
    SimMemory(SimMemory &&other) noexcept;
    SimMemory &operator=(SimMemory &&other) noexcept;

    /**
     * Read @p nbytes (1..8) little-endian starting at @p addr.
     *
     * The in-page translation-cache hit stays inline (the interpreter
     * issues one of these per simulated load); everything else —
     * unmapped pages, cache fills, straddles, bad sizes — drops to the
     * out-of-line slow path with identical semantics.
     */
    std::uint64_t
    read(Addr addr, unsigned nbytes) const
    {
        const std::size_t offset = addr & (pageSize - 1);
        if (xlatEnabled_ && nbytes - 1 < 8u &&
            offset + nbytes <= pageSize) {
            const std::uint64_t pageNum = addr >> pageShift;
            const XlatEntry &entry = slotFor(pageNum);
            if (entry.pageNum == pageNum)
                return loadLe(entry.data + offset, nbytes);
        }
        return readSlow(addr, nbytes);
    }

    /** Write the low @p nbytes (1..8) of @p value at @p addr (LE).
     * Inline on a writable translation-cache hit; see read(). */
    void
    write(Addr addr, std::uint64_t value, unsigned nbytes)
    {
        const std::size_t offset = addr & (pageSize - 1);
        if (xlatEnabled_ && nbytes - 1 < 8u &&
            offset + nbytes <= pageSize) {
            const std::uint64_t pageNum = addr >> pageShift;
            const XlatEntry &entry = slotFor(pageNum);
            if (entry.pageNum == pageNum && entry.writable &&
                entry.writeEpoch ==
                    cowEpoch_.load(std::memory_order_relaxed)) {
                storeLe(entry.data + offset, value, nbytes);
                return;
            }
        }
        writeSlow(addr, value, nbytes);
    }

    /** Typed helpers. */
    std::uint8_t read8(Addr a) const
    {
        return static_cast<std::uint8_t>(read(a, 1));
    }
    std::uint32_t read32(Addr a) const
    {
        return static_cast<std::uint32_t>(read(a, 4));
    }
    std::uint64_t read64(Addr a) const { return read(a, 8); }
    float readFloat(Addr a) const { return bitsToFloat(read32(a)); }
    double readDouble(Addr a) const { return bitsToDouble(read64(a)); }

    void write8(Addr a, std::uint8_t v) { write(a, v, 1); }
    void write32(Addr a, std::uint32_t v) { write(a, v, 4); }
    void write64(Addr a, std::uint64_t v) { write(a, v, 8); }
    void writeFloat(Addr a, float v) { write32(a, floatBits(v)); }
    void writeDouble(Addr a, double v) { write64(a, doubleBits(v)); }

    /** Copy a host buffer into simulated memory. */
    void load(Addr addr, const void *src, std::size_t len);

    /** Copy simulated memory out to a host buffer. */
    void store(Addr addr, void *dst, std::size_t len) const;

    /** Read a vector of 32-bit floats starting at @p addr. */
    std::vector<float> readFloats(Addr addr, std::size_t count) const;

    /** Write a vector of 32-bit floats starting at @p addr. */
    void writeFloats(Addr addr, const std::vector<float> &values);

    /**
     * Reserve @p len bytes and return the base address. Allocations are
     * 64-byte aligned so regions never share a cache line. Fails loudly
     * if the bump allocator would wrap the address space (overlapping
     * regions would silently corrupt workload data).
     */
    Addr allocate(std::size_t len);

    /** Number of physical pages materialized so far. */
    std::size_t pageCount() const { return pages_.size(); }

    /**
     * Logical deep copy: identical contents and allocator state that
     * diverge independently from this point on. Physically the pages are
     * shared copy-on-write, so cloning costs O(pages) pointer copies and
     * only written pages are ever duplicated. Safe to call concurrently
     * on the same source (the sweep engine clones a prepared image from
     * many workers).
     */
    SimMemory clone() const;

    /** Drop all contents and reset the allocator. */
    void clear();

    /**
     * Disable/enable the page-translation cache (perf harness and the
     * equivalence tests; functional behaviour is identical either way).
     */
    void setTranslationCacheEnabled(bool enabled);

    /** Pages physically copied by write faults since construction. */
    std::uint64_t cowFaults() const { return cowFaults_; }

  private:
    using Page = std::array<std::uint8_t, pageSize>;
    using PageRef = std::shared_ptr<Page>;

    struct XlatEntry
    {
        std::uint64_t pageNum = ~0ull;
        std::uint8_t *data = nullptr;
        /** Entry may serve writes iff writeEpoch == cowEpoch_. */
        bool writable = false;
        std::uint64_t writeEpoch = 0;
    };

    XlatEntry &slotFor(std::uint64_t pageNum) const
    {
        return xlat_[pageNum & (xlatEntries - 1)];
    }

    /** Little-endian scatter/gather of an in-page value; the common
     * full-word widths are single loads/stores on LE hosts. */
    static std::uint64_t
    loadLe(const std::uint8_t *p, unsigned nbytes)
    {
        if constexpr (std::endian::native == std::endian::little) {
            if (nbytes == 8) {
                std::uint64_t value;
                std::memcpy(&value, p, 8);
                return value;
            }
            if (nbytes == 4) {
                std::uint32_t value;
                std::memcpy(&value, p, 4);
                return value;
            }
        }
        std::uint64_t value = 0;
        for (unsigned i = 0; i < nbytes; ++i)
            value |= static_cast<std::uint64_t>(p[i]) << (8 * i);
        return value;
    }

    static void
    storeLe(std::uint8_t *p, std::uint64_t value, unsigned nbytes)
    {
        if constexpr (std::endian::native == std::endian::little) {
            if (nbytes == 8) {
                std::memcpy(p, &value, 8);
                return;
            }
            if (nbytes == 4) {
                const auto v32 = static_cast<std::uint32_t>(value);
                std::memcpy(p, &v32, 4);
                return;
            }
        }
        for (unsigned i = 0; i < nbytes; ++i)
            p[i] = static_cast<std::uint8_t>(value >> (8 * i));
    }

    /** Out-of-line remainders of read()/write(). */
    std::uint64_t readSlow(Addr addr, unsigned nbytes) const;
    void writeSlow(Addr addr, std::uint64_t value, unsigned nbytes);

    /** @return the page holding @p pageNum, or nullptr if unmapped. */
    const std::uint8_t *readPage(std::uint64_t pageNum) const;

    /** @return an exclusively-owned page for @p pageNum, creating or
     * copy-on-write-faulting as needed. */
    std::uint8_t *writePage(std::uint64_t pageNum);

    void flushXlat() const;

    mutable std::unordered_map<std::uint64_t, PageRef> pages_;
    mutable std::array<XlatEntry, xlatEntries> xlat_{};
    /** Bumped by clone(): invalidates every cached write translation of
     * the source, whose pages just became shared. Atomic so concurrent
     * clones of one prepared image never race. */
    mutable std::atomic<std::uint64_t> cowEpoch_{0};
    Addr allocNext_ = 0x10000; // keep address 0 unmapped to catch bugs
    std::uint64_t cowFaults_ = 0;
    bool xlatEnabled_ = true;
};

} // namespace axmemo

#endif // AXMEMO_MEMSYS_SIM_MEMORY_HH
