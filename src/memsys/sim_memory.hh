/**
 * @file
 * Sparse, paged, flat simulated memory.
 *
 * Workload data (images, option arrays, software LUT arrays, ...) lives in
 * this address space and is accessed by AxIR load/store instructions. Pages
 * are allocated lazily so the 1 GB software-LUT array of Section 6.2 costs
 * only the pages it actually touches. A bump allocator hands out
 * non-overlapping regions to workloads.
 */

#ifndef AXMEMO_MEMSYS_SIM_MEMORY_HH
#define AXMEMO_MEMSYS_SIM_MEMORY_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/bits.hh"
#include "common/types.hh"

namespace axmemo {

/** Lazily-paged simulated byte-addressable memory. */
class SimMemory
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr std::size_t pageSize = 1ull << pageShift;

    /** Read @p nbytes (1..8) little-endian starting at @p addr. */
    std::uint64_t read(Addr addr, unsigned nbytes) const;

    /** Write the low @p nbytes (1..8) of @p value at @p addr (LE). */
    void write(Addr addr, std::uint64_t value, unsigned nbytes);

    /** Typed helpers. */
    std::uint8_t read8(Addr a) const
    {
        return static_cast<std::uint8_t>(read(a, 1));
    }
    std::uint32_t read32(Addr a) const
    {
        return static_cast<std::uint32_t>(read(a, 4));
    }
    std::uint64_t read64(Addr a) const { return read(a, 8); }
    float readFloat(Addr a) const { return bitsToFloat(read32(a)); }
    double readDouble(Addr a) const { return bitsToDouble(read64(a)); }

    void write8(Addr a, std::uint8_t v) { write(a, v, 1); }
    void write32(Addr a, std::uint32_t v) { write(a, v, 4); }
    void write64(Addr a, std::uint64_t v) { write(a, v, 8); }
    void writeFloat(Addr a, float v) { write32(a, floatBits(v)); }
    void writeDouble(Addr a, double v) { write64(a, doubleBits(v)); }

    /** Copy a host buffer into simulated memory. */
    void load(Addr addr, const void *src, std::size_t len);

    /** Copy simulated memory out to a host buffer. */
    void store(Addr addr, void *dst, std::size_t len) const;

    /** Read a vector of 32-bit floats starting at @p addr. */
    std::vector<float> readFloats(Addr addr, std::size_t count) const;

    /** Write a vector of 32-bit floats starting at @p addr. */
    void writeFloats(Addr addr, const std::vector<float> &values);

    /**
     * Reserve @p len bytes and return the base address. Allocations are
     * 64-byte aligned so regions never share a cache line.
     */
    Addr allocate(std::size_t len);

    /** Number of physical pages materialized so far. */
    std::size_t pageCount() const { return pages_.size(); }

    /**
     * Deep copy: identical contents and allocator state, independent
     * pages. The sweep engine prepares a workload's dataset once and
     * clones it per run instead of re-synthesizing.
     */
    SimMemory clone() const;

    /** Drop all contents and reset the allocator. */
    void clear();

  private:
    using Page = std::array<std::uint8_t, pageSize>;

    std::uint8_t *pageFor(Addr addr, bool createIfMissing) const;

    mutable std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
    Addr allocNext_ = 0x10000; // keep address 0 unmapped to catch bugs
};

} // namespace axmemo

#endif // AXMEMO_MEMSYS_SIM_MEMORY_HH
