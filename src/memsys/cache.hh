/**
 * @file
 * Tag-only set-associative cache model with true-LRU replacement, write-back
 * write-allocate policy, and way partitioning.
 *
 * Data values live in SimMemory; the cache tracks only tags and dirty bits
 * to produce hit/miss timing and energy events — the standard trace-driven
 * arrangement. Way partitioning (reserveWays) models the paper's L2 LUT,
 * which is carved out of a fixed number of last-level-cache ways
 * (Section 3.3): reserved ways are invisible to normal accesses.
 *
 * A per-set MRU way hint short-circuits the common repeated hit to one
 * tag compare before falling back to the full way scan; it is a pure
 * host-side accelerator and never changes hit/miss, LRU order, or victim
 * choice (DESIGN.md §7). Inside access() the hint probe only pays for
 * itself once the way scan it replaces is long enough — below
 * kMruScanMinAssoc ways the dependent mruWay_ load costs more than the
 * handful of well-predicted tag compares it saves, so the probe is
 * auto-disabled there. The hint array itself is always maintained, and
 * the inline tryMruHit() fast path (which replaces an out-of-line call,
 * a different trade-off) stays available at every associativity.
 */

#ifndef AXMEMO_MEMSYS_CACHE_HH
#define AXMEMO_MEMSYS_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/stats.hh"

namespace axmemo {

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    /** Total capacity in bytes (of the full array, before partitioning). */
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 4;
    unsigned lineSize = 64;
    /** Hit latency in cycles. */
    Cycle hitLatency = 1;
};

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** A dirty victim was evicted and must be written downstream. */
    bool writeback = false;
    /** Line address of the written-back victim (valid iff writeback). */
    Addr writebackAddr = invalidAddr;
};

/**
 * One level of tag-only set-associative cache. The constructor validates
 * against @p config and keeps only the scalar geometry — the config (and
 * its name string) is not copied into every constructed level.
 */
class Cache
{
  public:
    /**
     * Associativity at or above which access() probes the MRU hint
     * before scanning. Measured crossover on the perf harness stream:
     * at 8 ways the plain scan wins (~0.92x hinted/scan), at 16 ways
     * the hint starts paying (~1.04x) and the gap widens with ways
     * (~1.3x at 32, ~2x at 64).
     */
    static constexpr unsigned kMruScanMinAssoc = 16;

    explicit Cache(const CacheConfig &config);

    /** Sets in the array. */
    unsigned numSets() const { return numSets_; }

    /** Ways visible to normal accesses (assoc minus reserved). */
    unsigned usableWays() const { return assoc_ - reservedWays_; }

    /** Line size in bytes. */
    unsigned lineSize() const { return 1u << lineShift_; }

    /**
     * Reserve @p ways ways of every set (e.g., for an in-LLC LUT). All
     * lines in reserved ways are invalidated (dirty ones are dropped: the
     * caller is expected to partition before use).
     */
    void reserveWays(unsigned ways);

    /** Currently reserved ways. */
    unsigned reservedWays() const { return reservedWays_; }

    /** Capacity available for caching after partitioning, bytes. */
    std::uint64_t usableBytes() const
    {
        return static_cast<std::uint64_t>(numSets_) * usableWays() *
               lineSize();
    }

    /**
     * Look up @p addr; on miss, allocate (evicting LRU) and mark dirty if
     * @p isWrite. On hit with @p isWrite, mark dirty.
     */
    CacheAccessResult access(Addr addr, bool isWrite);

    /**
     * Inline MRU-hint probe: if @p addr hits in the hinted way, apply
     * the exact hit side effects access() would (LRU stamp, dirty bit,
     * hit counter) and return true; otherwise change nothing and return
     * false. Lets callers keep the dominant repeated-hit case free of
     * any out-of-line call; access() after a false return behaves as if
     * this probe never happened.
     */
    bool
    tryMruHit(Addr addr, bool isWrite)
    {
        if (!mruEnabled_)
            return false;
        const unsigned set = setOf(addr);
        const unsigned hint = mruWay_[set];
        if (hint >= usableWays())
            return false;
        Line *line = lineAt(set, hint);
        if (!line->valid || line->tag != tagOf(addr))
            return false;
        line->lruStamp = ++stamp_;
        line->dirty = line->dirty || isWrite;
        ++hits_;
        return true;
    }

    /** Probe without side effects. */
    bool contains(Addr addr) const;

    /** Invalidate every line (dirty contents are dropped). */
    void invalidateAll();

    /** Disable/enable the MRU way hint (equivalence tests and the perf
     * harness; access sequences are identical either way). */
    void setMruHintEnabled(bool enabled) { mruEnabled_ = enabled; }

    /** Lifetime hit/miss counters. */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

    /** Valid lines currently resident in usable (non-reserved) ways. */
    std::uint64_t validLines() const;

    /** Valid-lines-per-set distribution over usable ways (its sample
     * sum equals validLines()). */
    Distribution occupancy() const;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        /** Higher = more recently used. */
        std::uint64_t lruStamp = 0;
    };

    std::uint64_t tagOf(Addr addr) const { return addr >> tagShift_; }
    unsigned setOf(Addr addr) const
    {
        return static_cast<unsigned>((addr >> lineShift_) & (numSets_ - 1));
    }
    Line *lineAt(unsigned set, unsigned way)
    {
        return &lines_[static_cast<std::size_t>(set) * assoc_ + way];
    }
    const Line *lineAt(unsigned set, unsigned way) const
    {
        return &lines_[static_cast<std::size_t>(set) * assoc_ + way];
    }

    unsigned assoc_;
    unsigned numSets_;
    unsigned lineShift_;
    unsigned tagShift_;
    unsigned reservedWays_ = 0;
    bool mruEnabled_ = true;
    /** Probe the hint inside access()? (assoc_ >= kMruScanMinAssoc) */
    bool mruInScan_ = false;
    std::uint64_t stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
    std::vector<Line> lines_;
    /** Most-recently-hit way per set (a hint, never authoritative). */
    std::vector<std::uint8_t> mruWay_;
};

} // namespace axmemo

#endif // AXMEMO_MEMSYS_CACHE_HH
