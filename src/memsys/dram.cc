#include "memsys/dram.hh"

#include "common/bits.hh"
#include "common/log.hh"
#include "obs/trace.hh"

namespace axmemo {

Dram::Dram(const DramConfig &config) : config_(config)
{
    if (!isPowerOfTwo(config_.rowBytes))
        axm_fatal("DRAM rowBytes must be a power of two");
    openRow_.assign(
        static_cast<std::size_t>(config_.channels) *
            config_.banksPerChannel,
        -1);
}

Cycle
Dram::access(Addr addr)
{
    // Channel/bank interleave on row-sized chunks: consecutive rows map to
    // different banks, spreading streaming accesses.
    const std::uint64_t rowNum = addr / config_.rowBytes;
    const std::size_t bank = rowNum % openRow_.size();
    const auto row = static_cast<std::int64_t>(rowNum / openRow_.size());
    if (openRow_[bank] == row) {
        ++rowHits_;
        AXM_TRACE(Dram, "dram", "row hit bank ", bank, " row ", row,
                  " lat=", config_.rowHitLatency);
        return config_.rowHitLatency;
    }
    openRow_[bank] = row;
    ++rowMisses_;
    AXM_TRACE(Dram, "dram", "row miss bank ", bank, " row ", row,
              " lat=", config_.rowMissLatency);
    return config_.rowMissLatency;
}

} // namespace axmemo
