#include "memsys/cache.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace axmemo {

Cache::Cache(const CacheConfig &config) : assoc_(config.assoc)
{
    if (!isPowerOfTwo(config.lineSize))
        axm_fatal(config.name, ": line size must be a power of two");
    if (config.assoc == 0)
        axm_fatal(config.name, ": associativity must be nonzero");
    const std::uint64_t lines = config.sizeBytes / config.lineSize;
    if (lines == 0 || lines % config.assoc != 0)
        axm_fatal(config.name, ": size/line/assoc mismatch");
    const std::uint64_t sets = lines / config.assoc;
    if (!isPowerOfTwo(sets))
        axm_fatal(config.name, ": number of sets must be a power of two");
    if (config.assoc > 255)
        axm_fatal(config.name, ": associativity above 255 unsupported");
    numSets_ = static_cast<unsigned>(sets);
    lineShift_ = floorLog2(config.lineSize);
    tagShift_ = lineShift_ + floorLog2(sets);
    lines_.resize(lines);
    mruWay_.assign(numSets_, 0);
    mruInScan_ = config.assoc >= kMruScanMinAssoc;
}

void
Cache::reserveWays(unsigned ways)
{
    if (ways >= assoc_)
        axm_fatal("cache: cannot reserve ", ways, " of ", assoc_,
                  " ways");
    // Invalidate everything: the partition boundary moved, so any line
    // could now live in a reserved way.
    invalidateAll();
    reservedWays_ = ways;
}

CacheAccessResult
Cache::access(Addr addr, bool isWrite)
{
    const std::uint64_t tag = tagOf(addr);
    const unsigned set = setOf(addr);
    const unsigned ways = usableWays();

    const auto hitOn = [&](Line *line) {
        line->lruStamp = ++stamp_;
        line->dirty = line->dirty || isWrite;
        ++hits_;
    };

    // MRU fast path: the common repeated hit is one tag compare. Tags
    // are unique within a set, so checking the hinted way first can
    // never report a different hit than the scan below would. Only
    // probed when the scan is wide enough for the extra dependent load
    // to pay off (kMruScanMinAssoc); the hint array is still maintained
    // below either way so tryMruHit() works at every associativity.
    if (mruEnabled_ && mruInScan_) {
        const unsigned hint = mruWay_[set];
        if (hint < ways) {
            Line *line = lineAt(set, hint);
            if (line->valid && line->tag == tag) {
                hitOn(line);
                return {.hit = true};
            }
        }
    }

    for (unsigned w = 0; w < ways; ++w) {
        Line *line = lineAt(set, w);
        if (line->valid && line->tag == tag) {
            hitOn(line);
            mruWay_[set] = static_cast<std::uint8_t>(w);
            return {.hit = true};
        }
    }

    ++misses_;

    // Choose a victim: first invalid way, else true-LRU.
    unsigned victim = 0;
    std::uint64_t oldest = ~0ull;
    for (unsigned w = 0; w < ways; ++w) {
        const Line *line = lineAt(set, w);
        if (!line->valid) {
            victim = w;
            oldest = 0;
            break;
        }
        if (line->lruStamp < oldest) {
            oldest = line->lruStamp;
            victim = w;
        }
    }

    Line *line = lineAt(set, victim);
    CacheAccessResult result;
    if (line->valid && line->dirty) {
        result.writeback = true;
        result.writebackAddr =
            (line->tag << tagShift_) |
            (static_cast<Addr>(set) << lineShift_);
        ++writebacks_;
    }
    line->valid = true;
    line->dirty = isWrite;
    line->tag = tag;
    line->lruStamp = ++stamp_;
    mruWay_[set] = static_cast<std::uint8_t>(victim);
    return result;
}

std::uint64_t
Cache::validLines() const
{
    std::uint64_t valid = 0;
    for (unsigned set = 0; set < numSets_; ++set) {
        for (unsigned w = 0; w < usableWays(); ++w)
            valid += lineAt(set, w)->valid ? 1 : 0;
    }
    return valid;
}

Distribution
Cache::occupancy() const
{
    Distribution dist(0, usableWays(), 1);
    for (unsigned set = 0; set < numSets_; ++set) {
        std::uint64_t valid = 0;
        for (unsigned w = 0; w < usableWays(); ++w)
            valid += lineAt(set, w)->valid ? 1 : 0;
        dist.sample(valid);
    }
    return dist;
}

bool
Cache::contains(Addr addr) const
{
    const std::uint64_t tag = tagOf(addr);
    const unsigned set = setOf(addr);
    for (unsigned w = 0; w < usableWays(); ++w) {
        const Line *line = lineAt(set, w);
        if (line->valid && line->tag == tag)
            return true;
    }
    return false;
}

void
Cache::invalidateAll()
{
    for (auto &line : lines_)
        line = Line{};
    mruWay_.assign(numSets_, 0);
}

} // namespace axmemo
