#include "memsys/cache.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace axmemo {

Cache::Cache(const CacheConfig &config) : config_(config)
{
    if (!isPowerOfTwo(config_.lineSize))
        axm_fatal(config_.name, ": line size must be a power of two");
    if (config_.assoc == 0)
        axm_fatal(config_.name, ": associativity must be nonzero");
    const std::uint64_t lines = config_.sizeBytes / config_.lineSize;
    if (lines == 0 || lines % config_.assoc != 0)
        axm_fatal(config_.name, ": size/line/assoc mismatch");
    const std::uint64_t sets = lines / config_.assoc;
    if (!isPowerOfTwo(sets))
        axm_fatal(config_.name, ": number of sets must be a power of two");
    numSets_ = static_cast<unsigned>(sets);
    lineShift_ = floorLog2(config_.lineSize);
    tagShift_ = lineShift_ + floorLog2(sets);
    lines_.resize(lines);
}

void
Cache::reserveWays(unsigned ways)
{
    if (ways >= config_.assoc)
        axm_fatal(config_.name, ": cannot reserve ", ways, " of ",
                  config_.assoc, " ways");
    // Invalidate everything: the partition boundary moved, so any line
    // could now live in a reserved way.
    invalidateAll();
    reservedWays_ = ways;
}

CacheAccessResult
Cache::access(Addr addr, bool isWrite)
{
    const std::uint64_t tag = tagOf(addr);
    const unsigned set = setOf(addr);
    const unsigned ways = usableWays();

    for (unsigned w = 0; w < ways; ++w) {
        Line *line = lineAt(set, w);
        if (line->valid && line->tag == tag) {
            line->lruStamp = ++stamp_;
            line->dirty = line->dirty || isWrite;
            ++hits_;
            return {.hit = true};
        }
    }

    ++misses_;

    // Choose a victim: first invalid way, else true-LRU.
    unsigned victim = 0;
    std::uint64_t oldest = ~0ull;
    for (unsigned w = 0; w < ways; ++w) {
        const Line *line = lineAt(set, w);
        if (!line->valid) {
            victim = w;
            oldest = 0;
            break;
        }
        if (line->lruStamp < oldest) {
            oldest = line->lruStamp;
            victim = w;
        }
    }

    Line *line = lineAt(set, victim);
    CacheAccessResult result;
    if (line->valid && line->dirty) {
        result.writeback = true;
        result.writebackAddr =
            (line->tag << tagShift_) |
            (static_cast<Addr>(set) << lineShift_);
        ++writebacks_;
    }
    line->valid = true;
    line->dirty = isWrite;
    line->tag = tag;
    line->lruStamp = ++stamp_;
    return result;
}

bool
Cache::contains(Addr addr) const
{
    const std::uint64_t tag = tagOf(addr);
    const unsigned set = setOf(addr);
    for (unsigned w = 0; w < usableWays(); ++w) {
        const Line *line = lineAt(set, w);
        if (line->valid && line->tag == tag)
            return true;
    }
    return false;
}

void
Cache::invalidateAll()
{
    for (auto &line : lines_)
        line = Line{};
}

} // namespace axmemo
