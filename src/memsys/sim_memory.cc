#include "memsys/sim_memory.hh"

#include "common/log.hh"

namespace axmemo {

std::uint8_t *
SimMemory::pageFor(Addr addr, bool createIfMissing) const
{
    const std::uint64_t pageNum = addr >> pageShift;
    auto it = pages_.find(pageNum);
    if (it == pages_.end()) {
        if (!createIfMissing)
            return nullptr;
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = pages_.emplace(pageNum, std::move(page)).first;
    }
    return it->second->data();
}

std::uint64_t
SimMemory::read(Addr addr, unsigned nbytes) const
{
    if (nbytes == 0 || nbytes > 8)
        axm_panic("SimMemory::read of ", nbytes, " bytes");
    std::uint64_t value = 0;
    for (unsigned i = 0; i < nbytes; ++i) {
        const Addr a = addr + i;
        const std::uint8_t *page = pageFor(a, false);
        const std::uint8_t byte =
            page ? page[a & (pageSize - 1)] : 0;
        value |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return value;
}

void
SimMemory::write(Addr addr, std::uint64_t value, unsigned nbytes)
{
    if (nbytes == 0 || nbytes > 8)
        axm_panic("SimMemory::write of ", nbytes, " bytes");
    for (unsigned i = 0; i < nbytes; ++i) {
        const Addr a = addr + i;
        std::uint8_t *page = pageFor(a, true);
        page[a & (pageSize - 1)] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
}

void
SimMemory::load(Addr addr, const void *src, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    for (std::size_t i = 0; i < len; ++i)
        write8(addr + i, bytes[i]);
}

void
SimMemory::store(Addr addr, void *dst, std::size_t len) const
{
    auto *bytes = static_cast<std::uint8_t *>(dst);
    for (std::size_t i = 0; i < len; ++i)
        bytes[i] = read8(addr + i);
}

std::vector<float>
SimMemory::readFloats(Addr addr, std::size_t count) const
{
    std::vector<float> out(count);
    for (std::size_t i = 0; i < count; ++i)
        out[i] = readFloat(addr + 4 * i);
    return out;
}

void
SimMemory::writeFloats(Addr addr, const std::vector<float> &values)
{
    for (std::size_t i = 0; i < values.size(); ++i)
        writeFloat(addr + 4 * i, values[i]);
}

Addr
SimMemory::allocate(std::size_t len)
{
    const Addr base = allocNext_;
    allocNext_ += (len + 63) & ~static_cast<std::size_t>(63);
    return base;
}

SimMemory
SimMemory::clone() const
{
    SimMemory copy;
    copy.allocNext_ = allocNext_;
    copy.pages_.reserve(pages_.size());
    for (const auto &[pageNum, page] : pages_)
        copy.pages_.emplace(pageNum, std::make_unique<Page>(*page));
    return copy;
}

void
SimMemory::clear()
{
    pages_.clear();
    allocNext_ = 0x10000;
}

} // namespace axmemo
