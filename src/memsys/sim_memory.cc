#include "memsys/sim_memory.hh"

#include "common/log.hh"

namespace axmemo {

SimMemory::SimMemory(SimMemory &&other) noexcept
    : pages_(std::move(other.pages_)), xlat_(other.xlat_),
      cowEpoch_(other.cowEpoch_.load(std::memory_order_relaxed)),
      allocNext_(other.allocNext_), cowFaults_(other.cowFaults_),
      xlatEnabled_(other.xlatEnabled_)
{
    // The moved-from map is empty; its cached translations would point
    // at pages it no longer tracks.
    other.flushXlat();
}

SimMemory &
SimMemory::operator=(SimMemory &&other) noexcept
{
    if (this == &other)
        return *this;
    pages_ = std::move(other.pages_);
    xlat_ = other.xlat_;
    cowEpoch_.store(other.cowEpoch_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    allocNext_ = other.allocNext_;
    cowFaults_ = other.cowFaults_;
    xlatEnabled_ = other.xlatEnabled_;
    other.flushXlat();
    return *this;
}

void
SimMemory::flushXlat() const
{
    for (XlatEntry &entry : xlat_)
        entry = XlatEntry{};
}

const std::uint8_t *
SimMemory::readPage(std::uint64_t pageNum) const
{
    if (xlatEnabled_) {
        const XlatEntry &entry = slotFor(pageNum);
        if (entry.pageNum == pageNum)
            return entry.data;
    }
    const auto it = pages_.find(pageNum);
    if (it == pages_.end())
        return nullptr; // unmapped reads are not cached: a later write
                        // materializes the page behind our back
    std::uint8_t *data = it->second->data();
    if (xlatEnabled_)
        slotFor(pageNum) = {pageNum, data, /*writable=*/false, 0};
    return data;
}

std::uint8_t *
SimMemory::writePage(std::uint64_t pageNum)
{
    if (xlatEnabled_) {
        const XlatEntry &entry = slotFor(pageNum);
        if (entry.pageNum == pageNum && entry.writable &&
            entry.writeEpoch ==
                cowEpoch_.load(std::memory_order_relaxed))
            return entry.data;
    }
    auto [it, inserted] = pages_.try_emplace(pageNum);
    if (inserted) {
        it->second = std::make_shared<Page>();
        it->second->fill(0);
    } else if (it->second.use_count() > 1) {
        // Write fault: the page is shared with a clone; copy before the
        // first byte diverges.
        it->second = std::make_shared<Page>(*it->second);
        ++cowFaults_;
    }
    std::uint8_t *data = it->second->data();
    if (xlatEnabled_)
        slotFor(pageNum) = {pageNum, data, /*writable=*/true,
                            cowEpoch_.load(std::memory_order_relaxed)};
    return data;
}

std::uint64_t
SimMemory::readSlow(Addr addr, unsigned nbytes) const
{
    if (nbytes == 0 || nbytes > 8)
        axm_panic("SimMemory::read of ", nbytes, " bytes");
    const std::size_t offset = addr & (pageSize - 1);
    if (offset + nbytes <= pageSize) {
        const std::uint8_t *page = readPage(addr >> pageShift);
        if (!page)
            return 0;
        return loadLe(page + offset, nbytes);
    }
    // Straddles a page boundary: translate per byte.
    std::uint64_t value = 0;
    for (unsigned i = 0; i < nbytes; ++i) {
        const Addr a = addr + i;
        const std::uint8_t *page = readPage(a >> pageShift);
        const std::uint8_t byte = page ? page[a & (pageSize - 1)] : 0;
        value |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return value;
}

void
SimMemory::writeSlow(Addr addr, std::uint64_t value, unsigned nbytes)
{
    if (nbytes == 0 || nbytes > 8)
        axm_panic("SimMemory::write of ", nbytes, " bytes");
    const std::size_t offset = addr & (pageSize - 1);
    if (offset + nbytes <= pageSize) {
        std::uint8_t *page = writePage(addr >> pageShift);
        storeLe(page + offset, value, nbytes);
        return;
    }
    for (unsigned i = 0; i < nbytes; ++i) {
        const Addr a = addr + i;
        std::uint8_t *page = writePage(a >> pageShift);
        page[a & (pageSize - 1)] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
}

void
SimMemory::load(Addr addr, const void *src, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        const std::size_t offset = addr & (pageSize - 1);
        const std::size_t chunk = std::min(len, pageSize - offset);
        std::uint8_t *page = writePage(addr >> pageShift);
        std::memcpy(page + offset, bytes, chunk);
        addr += chunk;
        bytes += chunk;
        len -= chunk;
    }
}

void
SimMemory::store(Addr addr, void *dst, std::size_t len) const
{
    auto *bytes = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        const std::size_t offset = addr & (pageSize - 1);
        const std::size_t chunk = std::min(len, pageSize - offset);
        const std::uint8_t *page = readPage(addr >> pageShift);
        if (page)
            std::memcpy(bytes, page + offset, chunk);
        else
            std::memset(bytes, 0, chunk);
        addr += chunk;
        bytes += chunk;
        len -= chunk;
    }
}

std::vector<float>
SimMemory::readFloats(Addr addr, std::size_t count) const
{
    std::vector<float> out(count);
    for (std::size_t i = 0; i < count; ++i)
        out[i] = readFloat(addr + 4 * i);
    return out;
}

void
SimMemory::writeFloats(Addr addr, const std::vector<float> &values)
{
    for (std::size_t i = 0; i < values.size(); ++i)
        writeFloat(addr + 4 * i, values[i]);
}

Addr
SimMemory::allocate(std::size_t len)
{
    const Addr base = allocNext_;
    const std::size_t rounded =
        (len + 63) & ~static_cast<std::size_t>(63);
    if (rounded < len || base + rounded < base)
        axm_fatal("SimMemory::allocate(", len,
                  ") wraps the address space (allocator at ", base,
                  "); regions would overlap");
    allocNext_ = base + rounded;
    return base;
}

SimMemory
SimMemory::clone() const
{
    // Every page becomes shared: invalidate this object's cached write
    // translations so its next write to each page faults a private copy.
    cowEpoch_.fetch_add(1, std::memory_order_relaxed);
    SimMemory copy;
    copy.allocNext_ = allocNext_;
    copy.xlatEnabled_ = xlatEnabled_;
    copy.pages_ = pages_; // shared_ptr copies: O(pages), no byte copies
    return copy;
}

void
SimMemory::clear()
{
    pages_.clear();
    flushXlat();
    allocNext_ = 0x10000;
}

void
SimMemory::setTranslationCacheEnabled(bool enabled)
{
    xlatEnabled_ = enabled;
    flushXlat();
}

} // namespace axmemo
