/**
 * @file
 * Wire protocol of `axmemo serve` (DESIGN.md §14).
 *
 * Transport is a local byte stream — an AF_UNIX socket or a pipe pair —
 * carrying length-prefixed frames:
 *
 *   frame   := u32le payload-length | payload
 *   request := u8 op | u32le seq | body
 *   reply   := u8 status | u32le seq | u64le data | u32le simCycles
 *              | u32le textLen | text
 *
 * All integers are little-endian; the codec is explicit byte
 * assembly (no struct punning), so the format is identical across
 * hosts. `seq` is an opaque client token echoed verbatim in the reply
 * — the client correlates pipelined requests by it.
 *
 * Requests:
 *   Lookup  (tenant, kernel, key)        -> Hit {data, simCycles}
 *                                           | Miss {simCycles}
 *   Update  (tenant, kernel, key, data)  -> Ok | QuotaExceeded
 *   Stats   ()                           -> Ok {text: stats JSON}
 *   Run     (tenant, text: "backend:workload")
 *                                        -> Ok {text: result JSON}
 *   Drain   ()                           -> Ok; server drains and exits
 *
 * Backpressure is explicit: when the server's bounded request queue is
 * full, the reader thread answers `Shed` immediately — it never blocks
 * the accept loop and never silently drops a frame. During drain new
 * requests get `Draining`. Clients must treat both as retryable.
 */

#ifndef AXMEMO_SERVE_PROTOCOL_HH
#define AXMEMO_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "common/expected.hh"

namespace axmemo {
namespace serve {

/** Request opcodes; see file comment. */
enum class Op : std::uint8_t
{
    Lookup = 1,
    Update = 2,
    Stats = 3,
    Run = 4,
    Drain = 5,
};

/** Reply statuses; see file comment. */
enum class Status : std::uint8_t
{
    Ok = 0,
    Hit = 1,
    Miss = 2,
    /** Bounded request queue full; request not processed (retryable). */
    Shed = 3,
    /** Update refused: the tenant is at its LUT entry quota. */
    QuotaExceeded = 4,
    BadRequest = 5,
    /** Server is draining; request not processed (not retryable). */
    Draining = 6,
    Error = 7,
};

const char *opName(Op op);
const char *statusName(Status status);

/** One decoded request frame. */
struct Request
{
    Op op = Op::Lookup;
    std::uint32_t seq = 0;
    std::uint16_t tenant = 0;
    std::uint8_t kernel = 0;
    std::uint64_t key = 0;
    /** Update only: the computed result to memoize. */
    std::uint64_t data = 0;
    /** Run only: "backend:workload". */
    std::string text;
};

/** One decoded reply frame. */
struct Reply
{
    Status status = Status::Ok;
    std::uint32_t seq = 0;
    /** Lookup hit only: the memoized result. */
    std::uint64_t data = 0;
    /** Simulated memo-path cycles charged to this request (CRC feed +
     * LUT probe latencies; 0 for non-memo requests). */
    std::uint32_t simCycles = 0;
    /** Stats/Run/Error payload (JSON or a message). */
    std::string text;
};

/** Frames larger than this are a protocol violation (codec refuses to
 * encode, reader treats as a damaged stream). */
constexpr std::size_t maxFrameBytes = 1 << 20;

/** Serialize @p request as one payload (no length prefix). */
std::string encodeRequest(const Request &request);

/** Serialize @p reply as one payload (no length prefix). */
std::string encodeReply(const Reply &reply);

/** Parse one request payload. ErrorCode::Config on malformed bytes. */
Expected<Request> decodeRequest(const std::string &payload);

/** Parse one reply payload. ErrorCode::Config on malformed bytes. */
Expected<Reply> decodeReply(const std::string &payload);

/**
 * Write one length-prefixed frame to @p fd (loops over partial
 * writes; EINTR-safe). ErrorCode::Io on a closed or failed stream.
 */
Expected<void> writeFrame(int fd, const std::string &payload);

/**
 * Read one length-prefixed frame from @p fd into @p payload (blocking,
 * EINTR-safe). @return false on clean end-of-stream at a frame
 * boundary; ErrorCode::Io on mid-frame EOF, oversized frames, or read
 * failures.
 */
Expected<bool> readFrame(int fd, std::string *payload);

/**
 * Incremental frame splitter for nonblocking readers: append raw bytes
 * with feed(), then drain complete frames with next(). Oversized
 * length prefixes poison the buffer (damaged() turns true) — the
 * connection should be dropped.
 */
class FrameBuffer
{
  public:
    void feed(const char *bytes, std::size_t n);

    /** Extract the next complete frame payload into @p payload. */
    bool next(std::string *payload);

    bool damaged() const { return damaged_; }
    std::size_t pendingBytes() const { return buffer_.size(); }

  private:
    std::string buffer_;
    bool damaged_ = false;
};

} // namespace serve
} // namespace axmemo

#endif // AXMEMO_SERVE_PROTOCOL_HH
