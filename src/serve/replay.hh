/**
 * @file
 * The `axmemo replay` client: drive a memo server with a synthetic
 * request trace and measure what the paper's serving story needs —
 * per-tenant hit rates, tail latency, shed rate, occupancy.
 *
 * The client is closed-loop per request: send `Lookup`, await the
 * reply, and on a `Miss` immediately send the matching `Update`
 * (workloads/request_trace.hh traceResultFor) — the memoize-on-miss
 * protocol a real runtime would run. Trace timestamps order the
 * requests but are not paced in host time, so replay throughput
 * measures the server, not the generator's clock.
 *
 * After the trace the client issues one `Stats` request and embeds the
 * server's own JSON (occupancy, quota rejects, queue totals) in the
 * report, so a single replay artifact carries both sides' view.
 */

#ifndef AXMEMO_SERVE_REPLAY_HH
#define AXMEMO_SERVE_REPLAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.hh"
#include "serve/protocol.hh"
#include "workloads/request_trace.hh"

namespace axmemo {
namespace serve {

/** Dial the AF_UNIX socket at @p path. ErrorCode::Io on failure. */
Expected<int> connectUnix(const std::string &path);

/** One tenant's view of a finished replay. */
struct ReplayTenantReport
{
    std::string name;
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t updates = 0;
    std::uint64_t quotaRejects = 0;

    double
    hitRate() const
    {
        return lookups ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }
};

/** Results of one replayed trace. */
struct ReplayReport
{
    std::uint64_t requests = 0; ///< trace requests attempted
    std::uint64_t sheds = 0;    ///< replies with Status::Shed
    std::uint64_t drained = 0;  ///< replies with Status::Draining
    std::uint64_t errors = 0;   ///< BadRequest/Error replies
    /** Round-trip latency percentiles over Lookup requests, µs
     * (zeroed when timing is off). */
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    double meanUs = 0.0;
    /** Host seconds spent replaying (zeroed when timing is off). */
    double elapsedSeconds = 0.0;
    std::vector<ReplayTenantReport> tenants;
    /** The server's own Stats JSON, verbatim ("" if unavailable). */
    std::string serverStats;

    double
    shedRate() const
    {
        return requests ? static_cast<double>(sheds) /
                              static_cast<double>(requests)
                        : 0.0;
    }

    /** Render the report as one JSON object. */
    std::string toJson() const;
};

/** Replay knobs beyond the trace itself. */
struct ReplayConfig
{
    /** When false, latency/elapsed fields are zeroed so reports are
     * byte-comparable (the --no-timing contract). */
    bool reportTiming = true;
    /** Send a Drain request after the trace (CI smoke uses this to
     * exercise the graceful-drain path from the client side). */
    bool drainAfter = false;
};

/**
 * Replay @p trace against the server on connected stream @p fd
 * (closed-loop; see file comment). Does not close @p fd.
 * ErrorCode::Io when the stream dies mid-replay.
 */
Expected<ReplayReport> replayTrace(int fd,
                                   const RequestTraceSpec &spec,
                                   const std::vector<TraceRequest> &trace,
                                   const ReplayConfig &config = {});

} // namespace serve
} // namespace axmemo

#endif // AXMEMO_SERVE_REPLAY_HH
