#include "serve/replay.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

namespace axmemo {
namespace serve {

namespace {

/** Nearest-rank percentile over a sorted sample vector. */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t index = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[index];
}

/** Send one request and read its reply (closed-loop). */
Expected<Reply>
roundTrip(int fd, const Request &request)
{
    const Expected<void> sent = writeFrame(fd, encodeRequest(request));
    if (!sent.ok())
        return sent.error();
    std::string payload;
    const Expected<bool> got = readFrame(fd, &payload);
    if (!got.ok())
        return got.error();
    if (!got.value())
        return Error{ErrorCode::Io, "replay",
                     "server closed the stream mid-replay"};
    return decodeReply(payload);
}

} // namespace

Expected<int>
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return Error{ErrorCode::Config, "replay",
                     "socket path too long: " + path};
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return Error{ErrorCode::Io, "replay",
                     std::string("socket: ") + std::strerror(errno)};
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const Error error{ErrorCode::Io, "replay",
                          "connect to '" + path +
                              "': " + std::strerror(errno)};
        ::close(fd);
        return error;
    }
    return fd;
}

Expected<ReplayReport>
replayTrace(int fd, const RequestTraceSpec &spec,
            const std::vector<TraceRequest> &trace,
            const ReplayConfig &config)
{
    ReplayReport report;
    report.tenants.resize(spec.tenants.size());
    for (std::size_t i = 0; i < spec.tenants.size(); ++i)
        report.tenants[i].name = spec.tenants[i].name;

    std::vector<double> latenciesUs;
    latenciesUs.reserve(trace.size());
    const auto start = std::chrono::steady_clock::now();

    std::uint32_t seq = 0;
    for (const TraceRequest &tr : trace) {
        ++report.requests;
        Request lookup;
        lookup.op = Op::Lookup;
        lookup.seq = ++seq;
        lookup.tenant = tr.tenant;
        lookup.kernel = tr.kernel;
        lookup.key = tr.key;

        const auto sentAt = std::chrono::steady_clock::now();
        const Expected<Reply> replied = roundTrip(fd, lookup);
        if (!replied.ok())
            return replied.error();
        const Reply &reply = replied.value();
        latenciesUs.push_back(
            std::chrono::duration_cast<std::chrono::duration<
                double, std::micro>>(std::chrono::steady_clock::now() -
                                     sentAt)
                .count());

        ReplayTenantReport *tenant =
            tr.tenant < report.tenants.size()
                ? &report.tenants[tr.tenant]
                : nullptr;
        switch (reply.status) {
        case Status::Hit:
            if (tenant) {
                ++tenant->lookups;
                ++tenant->hits;
            }
            continue;
        case Status::Miss:
            if (tenant) {
                ++tenant->lookups;
                ++tenant->misses;
            }
            break; // memoize-on-miss below
        case Status::Shed:
            ++report.sheds;
            continue;
        case Status::Draining:
            ++report.drained;
            continue;
        default:
            ++report.errors;
            continue;
        }

        Request update;
        update.op = Op::Update;
        update.seq = ++seq;
        update.tenant = tr.tenant;
        update.kernel = tr.kernel;
        update.key = tr.key;
        update.data = traceResultFor(tr.kernel, tr.key);
        const Expected<Reply> stored = roundTrip(fd, update);
        if (!stored.ok())
            return stored.error();
        switch (stored.value().status) {
        case Status::Ok:
            if (tenant)
                ++tenant->updates;
            break;
        case Status::QuotaExceeded:
            if (tenant)
                ++tenant->quotaRejects;
            break;
        case Status::Shed:
            ++report.sheds;
            break;
        case Status::Draining:
            ++report.drained;
            break;
        default:
            ++report.errors;
            break;
        }
    }

    if (config.reportTiming) {
        report.elapsedSeconds =
            std::chrono::duration_cast<
                std::chrono::duration<double>>(
                std::chrono::steady_clock::now() - start)
                .count();
        std::sort(latenciesUs.begin(), latenciesUs.end());
        report.p50Us = percentile(latenciesUs, 0.50);
        report.p95Us = percentile(latenciesUs, 0.95);
        report.p99Us = percentile(latenciesUs, 0.99);
        if (!latenciesUs.empty()) {
            double sum = 0.0;
            for (double v : latenciesUs)
                sum += v;
            report.meanUs = sum / static_cast<double>(latenciesUs.size());
        }
    }

    Request stats;
    stats.op = Op::Stats;
    stats.seq = ++seq;
    if (const Expected<Reply> replied = roundTrip(fd, stats);
        replied.ok() && replied.value().status == Status::Ok)
        report.serverStats = replied.value().text;

    if (config.drainAfter) {
        Request drain;
        drain.op = Op::Drain;
        drain.seq = ++seq;
        const Expected<Reply> replied = roundTrip(fd, drain);
        if (!replied.ok())
            return replied.error();
    }

    return report;
}

std::string
ReplayReport::toJson() const
{
    std::ostringstream out;
    out << "{\"requests\":" << requests << ",\"sheds\":" << sheds
        << ",\"shed_rate\":" << shedRate()
        << ",\"drain_refusals\":" << drained
        << ",\"errors\":" << errors
        << ",\"latency_us\":{\"mean\":" << meanUs
        << ",\"p50\":" << p50Us << ",\"p95\":" << p95Us
        << ",\"p99\":" << p99Us << "}"
        << ",\"elapsed_s\":" << elapsedSeconds << ",\"tenants\":[";
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const ReplayTenantReport &t = tenants[i];
        if (i)
            out << ",";
        out << "{\"name\":\"" << t.name
            << "\",\"lookups\":" << t.lookups << ",\"hits\":" << t.hits
            << ",\"misses\":" << t.misses
            << ",\"hit_rate\":" << t.hitRate()
            << ",\"updates\":" << t.updates
            << ",\"quota_rejects\":" << t.quotaRejects << "}";
    }
    out << "]";
    if (!serverStats.empty())
        out << ",\"server\":" << serverStats;
    out << "}";
    return out.str();
}

} // namespace serve
} // namespace axmemo
