#include "serve/server.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/interrupt.hh"
#include "common/log.hh"
#include "common/run_control.hh"
#include "core/experiment.hh"
#include "core/output_paths.hh"
#include "obs/span.hh"
#include "workloads/workload.hh"

namespace axmemo {
namespace serve {

namespace {

/** Service-latency distribution geometry: 0..5 ms in 10 µs buckets
 * (overflow bin catches the stragglers; count/sum stay exact). */
constexpr std::uint64_t latencyHiUs = 5000;
constexpr std::uint64_t latencyBucketUs = 10;

/** Approximate quantile from a Distribution's buckets (bucket
 * midpoint of the bucket holding the q-th sample). */
double
distributionPercentile(const Distribution &d, double q)
{
    if (d.count() == 0)
        return 0.0;
    const std::uint64_t target = static_cast<std::uint64_t>(
        q * static_cast<double>(d.count() - 1));
    std::uint64_t seen = d.underflow();
    if (target < seen)
        return static_cast<double>(d.lo());
    for (std::size_t i = 0; i < d.buckets().size(); ++i) {
        seen += d.buckets()[i];
        if (target < seen)
            return static_cast<double>(d.bucketLow(i)) +
                   static_cast<double>(d.bucketSize()) / 2.0;
    }
    return static_cast<double>(d.sampleMax());
}

} // namespace

MemoServer::MemoServer(const ServerConfig &config)
    : config_(config), table_(config.table),
      startTime_(std::chrono::steady_clock::now())
{
    latencyUs_.resize(table_.tenantCount());
    for (Distribution &d : latencyUs_)
        d.init(0, latencyHiUs, latencyBucketUs);
}

MemoServer::~MemoServer()
{
    if (reader_.joinable() || worker_.joinable()) {
        requestDrain();
        serveUntilDrained(false);
    }
    for (const auto &conn : connections_)
        if (conn->fd >= 0)
            ::close(conn->fd);
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        if (!config_.socketPath.empty())
            ::unlink(config_.socketPath.c_str());
    }
    for (int fd : pendingFds_)
        ::close(fd);
    if (wakePipe_[0] >= 0)
        ::close(wakePipe_[0]);
    if (wakePipe_[1] >= 0)
        ::close(wakePipe_[1]);
}

Expected<void>
MemoServer::start()
{
    // A client that disconnects mid-reply must cost us an Io error on
    // the write, not a process-killing SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);

    if (::pipe(wakePipe_) != 0)
        return Error{ErrorCode::Io, "serve",
                     std::string("pipe: ") + std::strerror(errno)};

    if (!config_.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (config_.socketPath.size() >= sizeof(addr.sun_path))
            return Error{ErrorCode::Config, "serve",
                         "socket path too long: " + config_.socketPath};
        std::strncpy(addr.sun_path, config_.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);

        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            return Error{ErrorCode::Io, "serve",
                         std::string("socket: ") + std::strerror(errno)};
        // A stale socket file from a dead server would fail the bind.
        ::unlink(config_.socketPath.c_str());
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(listenFd_, 64) != 0) {
            const Error error{ErrorCode::Io, "serve",
                              "bind/listen on '" + config_.socketPath +
                                  "': " + std::strerror(errno)};
            ::close(listenFd_);
            listenFd_ = -1;
            return error;
        }
    }

    reader_ = std::thread([this] { readerLoop(); });
    worker_ = std::thread([this] { workerLoop(); });
    return {};
}

void
MemoServer::attachClient(int fd)
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        pendingFds_.push_back(fd);
    }
    if (wakePipe_[1] >= 0) {
        const char byte = 'c';
        (void)!::write(wakePipe_[1], &byte, 1);
    }
}

void
MemoServer::requestDrain()
{
    draining_.store(true);
    queueCv_.notify_all();
    if (wakePipe_[1] >= 0) {
        const char byte = 'd';
        (void)!::write(wakePipe_[1], &byte, 1);
    }
}

void
MemoServer::serveUntilDrained(bool pollInterrupt)
{
    // Wait for a drain to be requested (signal, Drain opcode, or an
    // earlier requestDrain()), then let the worker finish the queue.
    while (!draining_.load()) {
        if (pollInterrupt && interruptRequested()) {
            requestDrain();
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (worker_.joinable())
        worker_.join();
    stop_.store(true);
    if (wakePipe_[1] >= 0) {
        const char byte = 's';
        (void)!::write(wakePipe_[1], &byte, 1);
    }
    if (reader_.joinable())
        reader_.join();
    writeSnapshot();
    drainedFlag_.store(true);
}

// ---------------------------------------------------------------------
// Reader thread: owns every fd.

void
MemoServer::acceptPending()
{
    // The listen fd is blocking: accept exactly one (POLLIN guarantees
    // it will not block); poll() fires again while more are pending.
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0)
        return;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    ++totals_.accepted;
    const std::lock_guard<std::mutex> lock(mutex_);
    connections_.push_back(std::move(conn));
}

void
MemoServer::pumpConnection(const std::shared_ptr<Connection> &conn)
{
    // One read per poll round (the fd is blocking; POLLIN guarantees
    // this read returns without blocking, and poll() fires again
    // immediately while more bytes are pending).
    char buffer[64 * 1024];
    ssize_t n;
    do {
        n = ::read(conn->fd, buffer, sizeof(buffer));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
        if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK))
            conn->dead = true;
        if (n < 0)
            return;
    } else {
        conn->frames.feed(buffer, static_cast<std::size_t>(n));
    }

    std::string payload;
    while (conn->frames.next(&payload)) {
        Expected<Request> request = decodeRequest(payload);
        if (!request.ok()) {
            ++totals_.badFrames;
            Reply bad;
            bad.status = Status::BadRequest;
            bad.text = request.error().message;
            reply(conn, bad);
            continue;
        }
        routeRequest(conn, std::move(request).value());
    }
    if (conn->frames.damaged()) {
        ++totals_.badFrames;
        conn->dead = true;
    }
}

void
MemoServer::routeRequest(const std::shared_ptr<Connection> &conn,
                         Request request)
{
    if (draining_.load()) {
        ++totals_.drained;
        Reply refused;
        refused.status = Status::Draining;
        refused.seq = request.seq;
        reply(conn, refused);
        return;
    }

    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (queue_.size() < config_.queueDepth) {
            queue_.push_back({conn, std::move(request),
                              std::chrono::steady_clock::now()});
            telemetry::counter("serve.queue_depth",
                               static_cast<double>(queue_.size()));
            lock.unlock();
            queueCv_.notify_one();
            return;
        }
    }

    // Bounded queue is full: shed with status, never block the
    // accept loop (the backpressure contract).
    ++totals_.sheds;
    Reply shed;
    shed.status = Status::Shed;
    shed.seq = request.seq;
    reply(conn, shed);
}

void
MemoServer::readerLoop()
{
    while (!stop_.load()) {
        std::vector<std::shared_ptr<Connection>> conns;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            for (int fd : pendingFds_) {
                auto conn = std::make_shared<Connection>();
                conn->fd = fd;
                ++totals_.accepted;
                connections_.push_back(std::move(conn));
            }
            pendingFds_.clear();
            conns = connections_;
        }

        std::vector<pollfd> fds;
        fds.push_back({wakePipe_[0], POLLIN, 0});
        if (listenFd_ >= 0)
            fds.push_back({listenFd_, POLLIN, 0});
        for (const auto &conn : conns)
            fds.push_back({conn->fd, POLLIN, 0});

        if (::poll(fds.data(), fds.size(), 100) < 0) {
            if (errno == EINTR)
                continue;
            axm_warn("serve: poll failed: ", std::strerror(errno));
            break;
        }

        std::size_t next = 0;
        if (fds[next].revents & POLLIN) {
            char drainBuf[64];
            (void)!::read(wakePipe_[0], drainBuf, sizeof(drainBuf));
        }
        ++next;
        if (listenFd_ >= 0) {
            if (fds[next].revents & POLLIN)
                acceptPending();
            ++next;
        }
        for (std::size_t i = 0; i < conns.size(); ++i) {
            if (fds[next + i].revents & (POLLIN | POLLHUP | POLLERR))
                pumpConnection(conns[i]);
        }

        // Sweep dead connections.
        const std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = connections_.begin();
             it != connections_.end();) {
            if ((*it)->dead) {
                ::close((*it)->fd);
                (*it)->fd = -1;
                it = connections_.erase(it);
            } else {
                ++it;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Worker thread: executes requests against the tenant table.

bool
MemoServer::popRequest(QueuedRequest &out, int waitMs)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.empty() && waitMs > 0)
        queueCv_.wait_for(lock, std::chrono::milliseconds(waitMs),
                          [this] { return !queue_.empty(); });
    if (queue_.empty())
        return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
}

void
MemoServer::workerLoop()
{
    while (true) {
        QueuedRequest queued;
        if (popRequest(queued, 50)) {
            execute(queued);
            continue;
        }
        if (draining_.load())
            break; // queue empty and no new intake: drained
    }
}

void
MemoServer::reply(const std::shared_ptr<Connection> &conn,
                  const Reply &r)
{
    const std::lock_guard<std::mutex> lock(conn->writeMutex);
    if (conn->fd < 0)
        return;
    const Expected<void> written = writeFrame(conn->fd, encodeReply(r));
    if (!written.ok())
        conn->dead = true;
}

void
MemoServer::execute(QueuedRequest &queued)
{
    AXM_SPAN("serve", opName(queued.request.op));
    ++totals_.requests;
    const Request &request = queued.request;

    if (request.op == Op::Run) {
        executeRun(queued);
        return;
    }

    Reply r;
    r.seq = request.seq;
    switch (request.op) {
    case Op::Lookup:
    case Op::Update: {
        if (!table_.validTenant(request.tenant)) {
            r.status = Status::BadRequest;
            r.text = "unknown tenant " + std::to_string(request.tenant);
            break;
        }
        if (request.op == Op::Lookup) {
            const TenantTable::LookupResult result = table_.lookup(
                request.tenant, request.kernel, request.key);
            r.status = result.hit ? Status::Hit : Status::Miss;
            r.data = result.data;
            r.simCycles = static_cast<std::uint32_t>(result.cycles);
        } else {
            Cycle cycles = 0;
            const TenantTable::UpdateOutcome outcome =
                table_.update(request.tenant, request.kernel,
                              request.key, request.data, &cycles);
            r.status = outcome == TenantTable::UpdateOutcome::Stored
                           ? Status::Ok
                           : Status::QuotaExceeded;
            r.simCycles = static_cast<std::uint32_t>(cycles);
        }
        break;
    }
    case Op::Stats:
        r.status = Status::Ok;
        r.text = statsJson();
        break;
    case Op::Drain:
        r.status = Status::Ok;
        break;
    case Op::Run:
        break; // handled above
    }
    reply(queued.conn, r);

    if ((request.op == Op::Lookup || request.op == Op::Update) &&
        table_.validTenant(request.tenant)) {
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - queued.enqueued)
                .count();
        const std::lock_guard<std::mutex> lock(statsMutex_);
        latencyUs_[request.tenant].sample(
            static_cast<std::uint64_t>(us));
    }

    if (request.op == Op::Drain)
        requestDrain();
}

void
MemoServer::executeRun(QueuedRequest &queued)
{
    Reply r;
    r.seq = queued.request.seq;

    const std::string &spec = queued.request.text;
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos) {
        r.status = Status::BadRequest;
        r.text = "run wants 'backend:workload', got '" + spec + "'";
        reply(queued.conn, r);
        return;
    }
    const std::string backend = spec.substr(0, colon);
    const std::string workloadName = spec.substr(colon + 1);

    bool known = false;
    for (const std::string &name : workloadNames())
        known |= name == workloadName;
    if (!known) {
        r.status = Status::BadRequest;
        r.text = "unknown workload '" + workloadName + "'";
        reply(queued.conn, r);
        return;
    }

    try {
        ExperimentConfig config;
        config.dataset.scale = config_.runScale;
        const std::unique_ptr<Workload> workload =
            makeWorkload(workloadName);
        SimMemory mem;
        workload->prepare(mem, config.dataset);
        const Program baselineProg = workload->build();

        // The session split at work: the run advances phase by phase,
        // and queued memo requests are serviced between phases so one
        // batch run cannot starve lookup traffic. SIGINT/SIGTERM
        // cancels between phases through the RunControl.
        RunControl control;
        control.cancelled = interruptRequested;
        RunSession session(config, *workload, backend, baselineProg,
                           mem, BackendSessionHooks{&control, "serve"});

        std::deque<QueuedRequest> deferredRuns;
        bool more = true;
        while (more) {
            more = session.step();
            QueuedRequest interleaved;
            while (popRequest(interleaved, 0)) {
                if (interleaved.request.op == Op::Run)
                    deferredRuns.push_back(std::move(interleaved));
                else
                    execute(interleaved);
            }
        }
        const RunResult result = session.finish();
        ++totals_.runs;

        std::ostringstream out;
        out << "{\"backend\":\"" << result.backend
            << "\",\"workload\":\"" << workloadName
            << "\",\"cycles\":" << result.stats.cycles
            << ",\"lookups\":" << result.lookups
            << ",\"hits\":" << result.hits
            << ",\"hit_rate\":" << result.hitRate() << "}";
        r.status = Status::Ok;
        r.text = out.str();
        reply(queued.conn, r);

        for (QueuedRequest &deferred : deferredRuns)
            executeRun(deferred);
    } catch (const AxException &e) {
        r.status = Status::Error;
        r.text = e.error().describe();
        reply(queued.conn, r);
    }
}

// ---------------------------------------------------------------------
// Stats and the drain snapshot.

std::string
MemoServer::statsJson() const
{
    std::ostringstream out;
    std::size_t queueDepth = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        queueDepth = queue_.size();
    }
    out << "{\"server\":{\"accepted\":" << totals_.accepted
        << ",\"requests\":" << totals_.requests
        << ",\"sheds\":" << totals_.sheds
        << ",\"drain_refusals\":" << totals_.drained
        << ",\"bad_frames\":" << totals_.badFrames
        << ",\"runs\":" << totals_.runs
        << ",\"queue_depth\":" << queueDepth << "},";

    out << "\"latency_us\":{";
    {
        const std::lock_guard<std::mutex> lock(statsMutex_);
        for (std::size_t i = 0; i < latencyUs_.size(); ++i) {
            const Distribution &d = latencyUs_[i];
            if (i)
                out << ",";
            out << "\"" << table_.spec(static_cast<std::uint16_t>(i)).name
                << "\":{\"samples\":" << d.count();
            if (config_.reportTiming)
                out << ",\"mean\":" << d.mean()
                    << ",\"p50\":" << distributionPercentile(d, 0.50)
                    << ",\"p95\":" << distributionPercentile(d, 0.95)
                    << ",\"p99\":" << distributionPercentile(d, 0.99);
            else
                out << ",\"mean\":0,\"p50\":0,\"p95\":0,\"p99\":0";
            out << "}";
        }
    }
    out << "},";

    out << "\"table\":" << table_.statsJson() << "}";
    return out.str();
}

void
MemoServer::writeSnapshot()
{
    if (config_.snapshotPath.empty())
        return;
    std::ostringstream out;
    out << "{\"drained\":true,";
    if (config_.reportTiming) {
        const double uptime =
            std::chrono::duration_cast<std::chrono::duration<double>>(
                std::chrono::steady_clock::now() - startTime_)
                .count();
        out << "\"uptime_s\":" << uptime << ",";
    } else {
        out << "\"uptime_s\":0,";
    }
    out << "\"stats\":" << statsJson() << "}\n";
    const Expected<void> written =
        atomicWriteFile(config_.snapshotPath, out.str());
    if (!written.ok())
        axm_warn("serve: snapshot write failed: ",
                 written.error().describe());
}

} // namespace serve
} // namespace axmemo
