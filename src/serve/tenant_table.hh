/**
 * @file
 * Multi-tenant memo state of `axmemo serve` (DESIGN.md §14).
 *
 * The server keeps one physical LookupTable and carves it between
 * tenants the way the hardware carves one LUT array between logical
 * LUTs: every entry is tagged with a 3-bit LUT_ID. Two policies map
 * tenants onto that tag:
 *
 *  - **Partitioned**: tenant i owns LUT_ID i. Tenants can never hit
 *    each other's entries — full isolation, at most maxLutsPerThread
 *    tenants, and an `invalidate` of one tenant is the hardware
 *    flash-invalidate of one logical LUT.
 *  - **Shared**: every tenant uses LUT_ID 0, so identical
 *    (kernel, key) requests from different tenants share one entry —
 *    higher effective capacity, no isolation.
 *
 * Orthogonally, each tenant may carry an entry quota. Occupancy is
 * accounted exactly: an ownership map attributes every valid entry to
 * the tenant that inserted it, evictions credit the victim's owner
 * (LookupTable::insert reports the victim), and an update that would
 * push a tenant past its quota is refused with QuotaExceeded — the
 * entry simply is not memoized, which is always safe under
 * approximate-memoization semantics.
 *
 * Requests are hashed exactly like the batch path: the CRC engine over
 * the 9-byte message `kernel ‖ key` (little-endian), and the charged
 * latency uses the MemoUnitConfig cycle model (hardware CRC feed rate +
 * the Table 4 L1 LUT latency).
 */

#ifndef AXMEMO_SERVE_TENANT_TABLE_HH
#define AXMEMO_SERVE_TENANT_TABLE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "crc/crc.hh"
#include "memo/lut.hh"

namespace axmemo {
namespace serve {

/** How tenants map onto LUT_ID tags; see file comment. */
enum class PartitionPolicy
{
    Shared,
    Partitioned,
};

const char *partitionPolicyName(PartitionPolicy policy);

/** One tenant's slice of the table. */
struct TenantSpec
{
    std::string name = "tenant";
    /** Max LUT entries this tenant may own; 0 = unlimited. */
    std::uint64_t quotaEntries = 0;
};

/** Configuration of the shared memo state. */
struct TenantTableConfig
{
    PartitionPolicy policy = PartitionPolicy::Partitioned;
    /** Physical LUT geometry (64-bit data entries: serve results are
     * opaque u64 values, the wide Fig. 4 layout). */
    std::uint64_t lutBytes = 64 * 1024;
    std::vector<TenantSpec> tenants;
};

/** Per-tenant request counters. */
struct TenantStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t updates = 0;
    /** Updates refused because the tenant was at quota. */
    std::uint64_t quotaRejects = 0;
    /** LUT entries currently owned (exact; see file comment). */
    std::uint64_t entries = 0;

    double
    hitRate() const
    {
        return lookups ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }
};

/** The shared memo state; see file comment. Not thread-safe — the
 * server serializes access through its worker thread. */
class TenantTable
{
  public:
    /** Fatal (AxException, ErrorCode::Config) on no tenants or more
     * tenants than LUT_IDs under the Partitioned policy. */
    explicit TenantTable(const TenantTableConfig &config);

    struct LookupResult
    {
        bool hit = false;
        std::uint64_t data = 0;
        /** Simulated memo-path cycles (CRC feed + LUT probe). */
        Cycle cycles = 0;
    };

    /** The lookup instruction for (tenant, kernel, key). */
    LookupResult lookup(std::uint16_t tenant, std::uint8_t kernel,
                        std::uint64_t key);

    enum class UpdateOutcome
    {
        Stored,
        QuotaExceeded,
    };

    /** The update instruction; @p cycles (optional) receives the
     * charged latency. */
    UpdateOutcome update(std::uint16_t tenant, std::uint8_t kernel,
                         std::uint64_t key, std::uint64_t data,
                         Cycle *cycles = nullptr);

    /** Drop every entry owned by @p tenant. */
    void invalidateTenant(std::uint16_t tenant);

    bool validTenant(std::uint16_t tenant) const
    {
        return tenant < tenants_.size();
    }
    std::size_t tenantCount() const { return tenants_.size(); }
    const TenantSpec &spec(std::uint16_t tenant) const
    {
        return tenants_[tenant];
    }
    const TenantStats &stats(std::uint16_t tenant) const
    {
        return stats_[tenant];
    }

    /** Valid entries across all tenants. */
    std::uint64_t occupancy() const { return lut_.validCount(); }
    /** Total entry slots in the physical table. */
    std::uint64_t capacityEntries() const;
    PartitionPolicy policy() const { return config_.policy; }

    /** Per-tenant stats as one JSON object (the Stats reply body). */
    std::string statsJson() const;

  private:
    LutId lutIdFor(std::uint16_t tenant) const;
    std::uint64_t hashFor(std::uint8_t kernel, std::uint64_t key) const;
    /** Exact ownership-map key: LUT_ID above the 32-bit CRC hash. */
    static std::uint64_t ownerKey(LutId lutId, std::uint64_t hash)
    {
        return (static_cast<std::uint64_t>(lutId) << 32) | hash;
    }

    TenantTableConfig config_;
    CrcEngine crc_;
    LookupTable lut_;
    /** Cycles to feed the 9-byte request message into the CRC. */
    Cycle feedCycles_;
    Cycle lutLatency_;
    std::vector<TenantSpec> tenants_;
    std::vector<TenantStats> stats_;
    /** (LUT_ID, hash) -> owning tenant, for exact quota accounting. */
    std::unordered_map<std::uint64_t, std::uint16_t> owners_;
};

} // namespace serve
} // namespace axmemo

#endif // AXMEMO_SERVE_TENANT_TABLE_HH
