#include "serve/tenant_table.hh"

#include <sstream>

#include "common/expected.hh"
#include "crc/hw_model.hh"
#include "memo/memo_unit.hh"

namespace axmemo {
namespace serve {

namespace {

/** The hashed request message: kernel byte then the key, LE. */
constexpr unsigned messageBytes = 9;

} // namespace

const char *
partitionPolicyName(PartitionPolicy policy)
{
    return policy == PartitionPolicy::Shared ? "shared" : "partitioned";
}

TenantTable::TenantTable(const TenantTableConfig &config)
    : config_(config), crc_(MemoUnitConfig{}.crc),
      lut_(LutConfig{.name = "serve-lut",
                     .sizeBytes = config.lutBytes,
                     .dataBytes = 8}),
      tenants_(config.tenants), stats_(config.tenants.size())
{
    if (tenants_.empty())
        raiseError(ErrorCode::Config, "serve",
                   "tenant table needs at least one tenant");
    if (config_.policy == PartitionPolicy::Partitioned &&
        tenants_.size() > maxLutsPerThread)
        raiseError(ErrorCode::Config, "serve",
                   "partitioned policy supports at most " +
                       std::to_string(maxLutsPerThread) +
                       " tenants (3-bit LUT_ID); got " +
                       std::to_string(tenants_.size()));
    const MemoUnitConfig unit{};
    feedCycles_ = CrcHwModel(unit.crcHw).cyclesForBytes(messageBytes);
    lutLatency_ = unit.l1LutLatency;
}

LutId
TenantTable::lutIdFor(std::uint16_t tenant) const
{
    if (config_.policy == PartitionPolicy::Shared)
        return 0;
    return static_cast<LutId>(tenant);
}

std::uint64_t
TenantTable::hashFor(std::uint8_t kernel, std::uint64_t key) const
{
    std::uint8_t message[messageBytes];
    message[0] = kernel;
    for (unsigned i = 0; i < 8; ++i)
        message[1 + i] = static_cast<std::uint8_t>(key >> (8 * i));
    return crc_.finalize(
        crc_.update(crc_.initial(), message, sizeof(message)));
}

TenantTable::LookupResult
TenantTable::lookup(std::uint16_t tenant, std::uint8_t kernel,
                    std::uint64_t key)
{
    TenantStats &stats = stats_[tenant];
    ++stats.lookups;
    LookupResult result;
    result.cycles = feedCycles_ + lutLatency_;
    const auto data = lut_.lookup(lutIdFor(tenant), hashFor(kernel, key));
    if (data) {
        result.hit = true;
        result.data = *data;
        ++stats.hits;
    } else {
        ++stats.misses;
    }
    return result;
}

TenantTable::UpdateOutcome
TenantTable::update(std::uint16_t tenant, std::uint8_t kernel,
                    std::uint64_t key, std::uint64_t data, Cycle *cycles)
{
    TenantStats &stats = stats_[tenant];
    ++stats.updates;
    if (cycles != nullptr)
        *cycles = feedCycles_ + lutLatency_;

    const LutId lutId = lutIdFor(tenant);
    const std::uint64_t hash = hashFor(kernel, key);
    const bool newEntry = !lut_.contains(lutId, hash);
    if (newEntry && tenants_[tenant].quotaEntries > 0 &&
        stats.entries >= tenants_[tenant].quotaEntries) {
        ++stats.quotaRejects;
        return UpdateOutcome::QuotaExceeded;
    }

    const auto victim = lut_.insert(lutId, hash, data);
    if (victim) {
        // Credit the evicted entry back to its owner.
        const auto it = owners_.find(ownerKey(victim->lutId, victim->hash));
        if (it != owners_.end()) {
            --stats_[it->second].entries;
            owners_.erase(it);
        }
    }
    const std::uint64_t slot = ownerKey(lutId, hash);
    if (newEntry) {
        owners_[slot] = tenant;
        ++stats.entries;
    } else {
        // Overwrite of a live entry: ownership follows the writer
        // (only possible under the Shared policy).
        const auto it = owners_.find(slot);
        if (it != owners_.end() && it->second != tenant) {
            --stats_[it->second].entries;
            it->second = tenant;
            ++stats.entries;
        }
    }
    return UpdateOutcome::Stored;
}

void
TenantTable::invalidateTenant(std::uint16_t tenant)
{
    if (config_.policy == PartitionPolicy::Partitioned) {
        lut_.invalidateLut(lutIdFor(tenant));
        for (auto it = owners_.begin(); it != owners_.end();) {
            if (it->second == tenant)
                it = owners_.erase(it);
            else
                ++it;
        }
    } else {
        for (auto it = owners_.begin(); it != owners_.end();) {
            if (it->second == tenant) {
                lut_.erase(static_cast<LutId>(it->first >> 32),
                           it->first & 0xffffffffull);
                it = owners_.erase(it);
            } else {
                ++it;
            }
        }
    }
    stats_[tenant].entries = 0;
}

std::uint64_t
TenantTable::capacityEntries() const
{
    return static_cast<std::uint64_t>(lut_.numSets()) * lut_.ways();
}

std::string
TenantTable::statsJson() const
{
    std::ostringstream out;
    out << "{\"policy\":\"" << partitionPolicyName(config_.policy)
        << "\",\"capacity_entries\":" << capacityEntries()
        << ",\"occupancy\":" << occupancy() << ",\"tenants\":[";
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        const TenantStats &stats = stats_[i];
        if (i)
            out << ",";
        out << "{\"name\":\"" << tenants_[i].name
            << "\",\"quota_entries\":" << tenants_[i].quotaEntries
            << ",\"lookups\":" << stats.lookups
            << ",\"hits\":" << stats.hits
            << ",\"misses\":" << stats.misses
            << ",\"hit_rate\":" << stats.hitRate()
            << ",\"updates\":" << stats.updates
            << ",\"quota_rejects\":" << stats.quotaRejects
            << ",\"entries\":" << stats.entries << "}";
    }
    out << "]}";
    return out.str();
}

} // namespace serve
} // namespace axmemo
