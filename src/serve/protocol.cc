#include "serve/protocol.hh"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace axmemo {
namespace serve {

namespace {

void
putU32(std::string *out, std::uint32_t v)
{
    out->push_back(static_cast<char>(v & 0xff));
    out->push_back(static_cast<char>((v >> 8) & 0xff));
    out->push_back(static_cast<char>((v >> 16) & 0xff));
    out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void
putU64(std::string *out, std::uint64_t v)
{
    putU32(out, static_cast<std::uint32_t>(v & 0xffffffffull));
    putU32(out, static_cast<std::uint32_t>(v >> 32));
}

/** Bounds-checked little-endian reader over a payload string. */
class Cursor
{
  public:
    explicit Cursor(const std::string &payload) : payload_(payload) {}

    bool
    u8(std::uint8_t *v)
    {
        if (pos_ + 1 > payload_.size())
            return false;
        *v = static_cast<std::uint8_t>(payload_[pos_++]);
        return true;
    }

    bool
    u16(std::uint16_t *v)
    {
        std::uint8_t lo, hi;
        if (!u8(&lo) || !u8(&hi))
            return false;
        *v = static_cast<std::uint16_t>(lo | (hi << 8));
        return true;
    }

    bool
    u32(std::uint32_t *v)
    {
        std::uint16_t lo, hi;
        if (!u16(&lo) || !u16(&hi))
            return false;
        *v = static_cast<std::uint32_t>(lo) |
             (static_cast<std::uint32_t>(hi) << 16);
        return true;
    }

    bool
    u64(std::uint64_t *v)
    {
        std::uint32_t lo, hi;
        if (!u32(&lo) || !u32(&hi))
            return false;
        *v = static_cast<std::uint64_t>(lo) |
             (static_cast<std::uint64_t>(hi) << 32);
        return true;
    }

    bool
    str(std::string *v)
    {
        std::uint32_t len = 0;
        if (!u32(&len) || pos_ + len > payload_.size())
            return false;
        v->assign(payload_, pos_, len);
        pos_ += len;
        return true;
    }

    bool done() const { return pos_ == payload_.size(); }

  private:
    const std::string &payload_;
    std::size_t pos_ = 0;
};

Error
malformed(const char *what)
{
    return Error{ErrorCode::Config, "serve",
                 std::string("malformed frame: ") + what};
}

} // namespace

const char *
opName(Op op)
{
    switch (op) {
    case Op::Lookup:
        return "lookup";
    case Op::Update:
        return "update";
    case Op::Stats:
        return "stats";
    case Op::Run:
        return "run";
    case Op::Drain:
        return "drain";
    }
    return "?";
}

const char *
statusName(Status status)
{
    switch (status) {
    case Status::Ok:
        return "ok";
    case Status::Hit:
        return "hit";
    case Status::Miss:
        return "miss";
    case Status::Shed:
        return "shed";
    case Status::QuotaExceeded:
        return "quota-exceeded";
    case Status::BadRequest:
        return "bad-request";
    case Status::Draining:
        return "draining";
    case Status::Error:
        return "error";
    }
    return "?";
}

std::string
encodeRequest(const Request &request)
{
    std::string out;
    out.reserve(32 + request.text.size());
    out.push_back(static_cast<char>(request.op));
    putU32(&out, request.seq);
    out.push_back(static_cast<char>(request.tenant & 0xff));
    out.push_back(static_cast<char>(request.tenant >> 8));
    out.push_back(static_cast<char>(request.kernel));
    putU64(&out, request.key);
    putU64(&out, request.data);
    putU32(&out, static_cast<std::uint32_t>(request.text.size()));
    out += request.text;
    return out;
}

std::string
encodeReply(const Reply &reply)
{
    std::string out;
    out.reserve(32 + reply.text.size());
    out.push_back(static_cast<char>(reply.status));
    putU32(&out, reply.seq);
    putU64(&out, reply.data);
    putU32(&out, reply.simCycles);
    putU32(&out, static_cast<std::uint32_t>(reply.text.size()));
    out += reply.text;
    return out;
}

Expected<Request>
decodeRequest(const std::string &payload)
{
    Cursor c(payload);
    Request request;
    std::uint8_t op = 0;
    if (!c.u8(&op))
        return malformed("truncated op");
    if (op < static_cast<std::uint8_t>(Op::Lookup) ||
        op > static_cast<std::uint8_t>(Op::Drain))
        return malformed("unknown op");
    request.op = static_cast<Op>(op);
    if (!c.u32(&request.seq) || !c.u16(&request.tenant) ||
        !c.u8(&request.kernel) || !c.u64(&request.key) ||
        !c.u64(&request.data) || !c.str(&request.text))
        return malformed("truncated request body");
    if (!c.done())
        return malformed("trailing bytes after request");
    return request;
}

Expected<Reply>
decodeReply(const std::string &payload)
{
    Cursor c(payload);
    Reply reply;
    std::uint8_t status = 0;
    if (!c.u8(&status))
        return malformed("truncated status");
    if (status > static_cast<std::uint8_t>(Status::Error))
        return malformed("unknown status");
    reply.status = static_cast<Status>(status);
    if (!c.u32(&reply.seq) || !c.u64(&reply.data) ||
        !c.u32(&reply.simCycles) || !c.str(&reply.text))
        return malformed("truncated reply body");
    if (!c.done())
        return malformed("trailing bytes after reply");
    return reply;
}

namespace {

Error
ioError(const char *what)
{
    return Error{ErrorCode::Io, "serve",
                 std::string(what) + ": " + std::strerror(errno)};
}

/** Read exactly @p n bytes. 1 = ok, 0 = EOF before the first byte,
 * -1 = failure (errno set or mid-stream EOF as EPIPE). */
int
readAll(int fd, char *buffer, std::size_t n)
{
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, buffer + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (r == 0) {
            if (got == 0)
                return 0;
            errno = EPIPE;
            return -1;
        }
        got += static_cast<std::size_t>(r);
    }
    return 1;
}

} // namespace

Expected<void>
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > maxFrameBytes)
        return Error{ErrorCode::Config, "serve", "frame exceeds size cap"};
    std::string framed;
    framed.reserve(4 + payload.size());
    putU32(&framed, static_cast<std::uint32_t>(payload.size()));
    framed += payload;
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t w = ::write(fd, framed.data() + sent,
                                  framed.size() - sent);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return ioError("write");
        }
        sent += static_cast<std::size_t>(w);
    }
    return {};
}

Expected<bool>
readFrame(int fd, std::string *payload)
{
    char head[4];
    const int r = readAll(fd, head, sizeof(head));
    if (r == 0)
        return false;
    if (r < 0)
        return Error{ioError("read frame header")};
    std::uint32_t length = 0;
    for (int i = 3; i >= 0; --i)
        length = (length << 8) | static_cast<std::uint8_t>(head[i]);
    if (length > maxFrameBytes)
        return Error{ErrorCode::Io, "serve", "oversized frame"};
    payload->resize(length);
    if (length > 0 && readAll(fd, payload->data(), length) != 1)
        return Error{ioError("read frame body")};
    return true;
}

void
FrameBuffer::feed(const char *bytes, std::size_t n)
{
    if (!damaged_)
        buffer_.append(bytes, n);
}

bool
FrameBuffer::next(std::string *payload)
{
    if (damaged_ || buffer_.size() < 4)
        return false;
    std::uint32_t length = 0;
    for (int i = 3; i >= 0; --i)
        length = (length << 8) | static_cast<std::uint8_t>(buffer_[i]);
    if (length > maxFrameBytes) {
        damaged_ = true;
        return false;
    }
    if (buffer_.size() < 4 + static_cast<std::size_t>(length))
        return false;
    payload->assign(buffer_, 4, length);
    buffer_.erase(0, 4 + static_cast<std::size_t>(length));
    return true;
}

} // namespace serve
} // namespace axmemo
