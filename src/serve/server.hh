/**
 * @file
 * The long-lived memo server behind `axmemo serve` (DESIGN.md §14).
 *
 * Two threads split the work so slow requests can never wedge the
 * transport:
 *
 *  - The **reader thread** owns every fd: it poll()s the listening
 *    socket plus all client connections, splits the byte streams into
 *    frames (protocol.hh FrameBuffer), decodes requests, and pushes
 *    them onto a bounded queue. Backpressure is explicit: when the
 *    queue is full the reader replies `Shed` immediately instead of
 *    blocking — the accept loop keeps accepting, clients learn they
 *    are being load-shed, and nothing is silently dropped. While
 *    draining it replies `Draining` to everything new.
 *
 *  - The **worker thread** pops the queue and executes requests
 *    against the TenantTable. A `Run` request opens a core RunSession
 *    (the prepare()/step() backend split) and advances it phase by
 *    phase, servicing queued memo requests between phases — one slow
 *    batch run does not starve lookup traffic, which is exactly what
 *    the session split exists for.
 *
 * Graceful drain: requestDrain() — called by the SIGTERM poll, the
 * `Drain` opcode, or a test — stops the intake, lets the worker finish
 * the queue, stamps a final stats snapshot (core atomicWriteFile, the
 * PR 5 crash-safety contract), and serve() returns. In-flight Run
 * sessions observe the drain through their RunControl between phases.
 *
 * Per-tenant observability: service-latency Distributions (obs/stats)
 * per tenant, span lanes (category "serve") per request and per
 * session phase, and a queue-depth counter track.
 */

#ifndef AXMEMO_SERVE_SERVER_HH
#define AXMEMO_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/expected.hh"
#include "obs/stats.hh"
#include "serve/protocol.hh"
#include "serve/tenant_table.hh"

namespace axmemo {
namespace serve {

/** Configuration of one server instance. */
struct ServerConfig
{
    /** AF_UNIX socket path; empty = no listening socket (clients
     * attach via attachClient(), as the tests and perf harness do). */
    std::string socketPath;
    TenantTableConfig table{};
    /** Bounded request-queue depth; a full queue sheds. */
    std::size_t queueDepth = 1024;
    /** Drain-snapshot file; empty = no snapshot. */
    std::string snapshotPath;
    /** Dataset scale for `Run` sessions. */
    double runScale = 0.01;
    /** When false, host-latency fields in stats/snapshot JSON are
     * zeroed (the --no-timing byte-comparability contract). */
    bool reportTiming = true;
};

/** Whole-process request counters. */
struct ServerTotals
{
    std::uint64_t accepted = 0;  ///< connections accepted
    std::uint64_t requests = 0;  ///< requests executed by the worker
    std::uint64_t sheds = 0;     ///< requests refused with Shed
    std::uint64_t drained = 0;   ///< requests refused with Draining
    std::uint64_t badFrames = 0; ///< malformed frames / damaged streams
    std::uint64_t runs = 0;      ///< Run sessions completed
};

/** The memo server; see file comment. */
class MemoServer
{
  public:
    explicit MemoServer(const ServerConfig &config);
    ~MemoServer();

    MemoServer(const MemoServer &) = delete;
    MemoServer &operator=(const MemoServer &) = delete;

    /** Bind the socket (when configured) and start both threads.
     * ErrorCode::Io when the socket cannot be bound. */
    Expected<void> start();

    /**
     * Adopt an already-connected stream fd (e.g. one end of a
     * socketpair) as a client connection. Usable before or after
     * start(); the server takes ownership of @p fd.
     */
    void attachClient(int fd);

    /** Ask the server to drain: stop intake, finish the queue, write
     * the snapshot. Idempotent, callable from any thread. */
    void requestDrain();

    /**
     * Block until a drain completes. @p pollInterrupt, when true,
     * also watches interruptRequested() (SIGINT/SIGTERM) and converts
     * it into a drain — the `axmemo serve` foreground loop.
     */
    void serveUntilDrained(bool pollInterrupt);

    /** True once the drain finished and both threads exited. */
    bool drained() const { return drainedFlag_.load(); }

    const ServerTotals &totals() const { return totals_; }
    const TenantTable &tenants() const { return table_; }

    /** Stats-reply / snapshot body: tenant table JSON plus server
     * totals, queue depth and per-tenant latency percentiles. */
    std::string statsJson() const;

  private:
    struct Connection
    {
        int fd = -1;
        FrameBuffer frames;
        std::mutex writeMutex;
        bool dead = false;
    };

    struct QueuedRequest
    {
        std::shared_ptr<Connection> conn;
        Request request;
        /** telemetry::detail-free host stamp for service latency. */
        std::chrono::steady_clock::time_point enqueued;
    };

    void readerLoop();
    void workerLoop();
    /** Accept one pending connection on the listen fd (poll() fires
     * again immediately while more are waiting). */
    void acceptPending();
    /** Read one buffer's worth from @p conn; decode and route. */
    void pumpConnection(const std::shared_ptr<Connection> &conn);
    /** Route one decoded request: shed / drain-refuse / enqueue. */
    void routeRequest(const std::shared_ptr<Connection> &conn,
                      Request request);
    /** Execute one queued request on the worker thread. */
    void execute(QueuedRequest &queued);
    /** Execute a Run request, draining memo requests between phases. */
    void executeRun(QueuedRequest &queued);
    void reply(const std::shared_ptr<Connection> &conn,
               const Reply &reply);
    /** Pop one request; false when the queue is empty and intake is
     * closed (or @p waitMs elapsed with nothing to do). */
    bool popRequest(QueuedRequest &out, int waitMs);
    void writeSnapshot();

    ServerConfig config_;
    TenantTable table_;
    ServerTotals totals_;

    int listenFd_ = -1;
    /** Reader-side wakeup pipe: attachClient()/requestDrain() write a
     * byte so the poll() loop notices state changes immediately. */
    int wakePipe_[2] = {-1, -1};

    mutable std::mutex mutex_; ///< guards queue_, connections_, pendingFds_
    std::condition_variable queueCv_;
    std::deque<QueuedRequest> queue_;
    std::vector<std::shared_ptr<Connection>> connections_;
    std::vector<int> pendingFds_; ///< attachClient before reader picks up

    std::atomic<bool> draining_{false};
    std::atomic<bool> stop_{false}; ///< reader exit flag
    std::atomic<bool> drainedFlag_{false};

    /** Per-tenant service latency (enqueue -> reply written), µs. */
    mutable std::mutex statsMutex_;
    std::vector<Distribution> latencyUs_;

    std::thread reader_;
    std::thread worker_;
    std::chrono::steady_clock::time_point startTime_;
};

} // namespace serve
} // namespace axmemo

#endif // AXMEMO_SERVE_SERVER_HH
