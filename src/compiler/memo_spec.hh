/**
 * @file
 * Specification of how a program's hinted regions are memoized — the
 * contract between a workload (or the region finder + truncation tuner)
 * and the code-generation transforms.
 */

#ifndef AXMEMO_COMPILER_MEMO_SPEC_HH
#define AXMEMO_COMPILER_MEMO_SPEC_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/types.hh"

namespace axmemo {

/** How one hinted region becomes one logical LUT. */
struct RegionMemoSpec
{
    /** Region marker id in the program. */
    int regionId = 0;
    /** Logical LUT assigned to this region. */
    LutId lut = 0;
    /** Default LSBs truncated from every input (Table 2 column). */
    unsigned truncBits = 0;
    /** Per-input truncation overrides (keyed by input register). */
    std::map<RegId, unsigned> truncOverride;
    /** CRC stream bytes for integer inputs without an override. */
    unsigned intInputBytes = 4;
    /** Per-input CRC stream bytes for integer inputs. */
    std::map<RegId, unsigned> sizeOverride;
    /**
     * Live-in registers excluded from the hash stream: provably
     * loop-invariant values (base addresses of state read inside the
     * region). Correctness relies on the invalidate discipline when the
     * state they point at changes.
     */
    std::set<RegId> excludeInputs;
};

/** Full memoization plan for one program. */
struct MemoSpec
{
    std::vector<RegionMemoSpec> regions;
    /**
     * Empty-region marker ids at which the listed logical LUTs must be
     * flash-invalidated (e.g., K-means invalidates its distance LUT when
     * the centroids move between iterations).
     */
    std::map<int, std::vector<LutId>> invalidateAt;

    /** Uniform-truncation copy of this spec (Fig. 11's no-approx mode). */
    MemoSpec
    withUniformTruncation(unsigned bits) const
    {
        MemoSpec copy = *this;
        for (auto &region : copy.regions) {
            region.truncBits = bits;
            region.truncOverride.clear();
        }
        return copy;
    }
};

} // namespace axmemo

#endif // AXMEMO_COMPILER_MEMO_SPEC_HH
