/**
 * @file
 * Approximate Task Memoization (ATM) baseline [Brumar et al., IPDPS'17],
 * re-implemented from the description in Section 6.2 of the AxMemo paper:
 * the inputs are concatenated into a byte vector, an index vector is
 * shuffled, and the first n sampled bytes form the hash key for a software
 * lookup table. Being a task-runtime technique, every memoized invocation
 * additionally pays a task dispatch/bookkeeping cost, which is what drags
 * small-kernel benchmarks into slowdown in the paper's comparison.
 */

#ifndef AXMEMO_COMPILER_ATM_TRANSFORM_HH
#define AXMEMO_COMPILER_ATM_TRANSFORM_HH

#include "compiler/software_transform.hh"

namespace axmemo {

/** ATM-specific knobs. */
struct AtmConfig
{
    /** Bytes sampled from the shuffled input vector. */
    unsigned sampleBytes = 8;
    /** Task-runtime dispatch cost per memoized invocation (instructions).
     * Calibrated so the per-task overhead matches the tens-of-nanoseconds
     * task creation/bookkeeping a task-based runtime pays, which is what
     * drags ATM's small-kernel benchmarks into slowdown in the paper. */
    unsigned taskOverheadInsts = 80;
    /** log2 of software LUT entries. */
    unsigned log2Entries = 22;
    /** Index-shuffle seed. */
    std::uint64_t seed = 0x41544d;
};

/** The ATM rewriting pass (delegates to SoftwareMemoTransform). */
class AtmTransform
{
  public:
    static SwTransformResult
    apply(const Program &prog, const MemoSpec &spec, SimMemory &mem,
          const AtmConfig &config = {})
    {
        SwMemoConfig sw;
        sw.hash = SwHashKind::ByteSample;
        sw.sampleBytes = config.sampleBytes;
        sw.taskOverheadInsts = config.taskOverheadInsts;
        sw.log2Entries = config.log2Entries;
        sw.seed = config.seed;
        return SoftwareMemoTransform::apply(prog, spec, mem, sw);
    }
};

} // namespace axmemo

#endif // AXMEMO_COMPILER_ATM_TRANSFORM_HH
