/**
 * @file
 * Software memoization baselines (Section 6.2).
 *
 * SoftwareMemoTransform rewrites hinted regions into pure-software
 * memoization with no hardware support:
 *
 *  - Hash: either the 8-bit-parallel table-driven CRC the paper's software
 *    contender uses (a table load, XORs, shifts and masks per input byte),
 *    or ATM's shuffled byte-sampling hash (a fixed number of sampled input
 *    bytes folded multiplicatively).
 *  - LUT: a direct-indexed array in simulated memory, indexed by
 *    hash & (2^N - 1) with NO tag verification — exactly the paper's
 *    software design, whose discarded hash bits cause its nonzero
 *    collision rate and higher output error.
 *  - Invalidation: a generation byte per entry (the invalidate points of
 *    the spec bump the generation register — one instruction — instead of
 *    sweeping the array).
 *
 * The transform also plants lookup/hit counter registers so benches can
 * report the software hit rate; the two counter adds per invocation are
 * part of the software overhead, as real instrumentation would be.
 */

#ifndef AXMEMO_COMPILER_SOFTWARE_TRANSFORM_HH
#define AXMEMO_COMPILER_SOFTWARE_TRANSFORM_HH

#include <cstdint>
#include <vector>

#include "compiler/memo_spec.hh"
#include "compiler/transform.hh"
#include "isa/program.hh"
#include "memsys/sim_memory.hh"

namespace axmemo {

/** Hash function the software baseline computes. */
enum class SwHashKind
{
    TableCrc,  ///< byte-wise table-driven CRC32 (the paper's sw contender)
    ByteSample ///< ATM's shuffled byte sampling
};

/** Software-memoization parameters. */
struct SwMemoConfig
{
    SwHashKind hash = SwHashKind::TableCrc;
    /**
     * log2 of LUT array entries. The paper plateaus at 2^28 (1 GB of 4 B
     * entries); we default to 2^22, past the plateau for the scaled
     * datasets, and configurable up to 2^28.
     */
    unsigned log2Entries = 22;
    /** Bytes sampled by the ByteSample hash. */
    unsigned sampleBytes = 4;
    /**
     * Dependent bookkeeping instructions charged per invocation,
     * modelling ATM's task-runtime dispatch cost; 0 for the plain
     * software-LUT contender.
     */
    unsigned taskOverheadInsts = 0;
    /** Seed for ATM's index shuffle. */
    std::uint64_t seed = 0x41544d; // "ATM"
};

/** Software rewrite result: program + counter registers per region. */
struct SwTransformResult
{
    Program program;
    /** Integer registers holding per-region lookup / hit counters. */
    struct Counters
    {
        int regionId;
        IReg lookups;
        IReg hits;
    };
    std::vector<Counters> counters;
    std::vector<RegionTransformInfo> regions;
};

/** The software memoization pass; see file comment. */
class SoftwareMemoTransform
{
  public:
    /**
     * Rewrite @p prog per @p spec. Allocates the hash table and the LUT
     * arrays in @p mem (call again after clearing memory).
     */
    static SwTransformResult apply(const Program &prog,
                                   const MemoSpec &spec, SimMemory &mem,
                                   const SwMemoConfig &config = {});
};

} // namespace axmemo

#endif // AXMEMO_COMPILER_SOFTWARE_TRANSFORM_HH
