#include "compiler/trace.hh"

namespace axmemo {

TraceRecorder::TraceRecorder(std::size_t maxEntries) : buffer_(maxEntries)
{
}

std::function<void(InstIndex, const Inst &)>
TraceRecorder::hook()
{
    return [this](InstIndex staticId, const Inst &inst) {
        buffer_.append(staticId, inst.op);
    };
}

} // namespace axmemo
