#include "compiler/trace.hh"

namespace axmemo {

TraceRecorder::TraceRecorder(std::size_t maxEntries)
    : maxEntries_(maxEntries)
{
    entries_.reserve(std::min<std::size_t>(maxEntries, 1u << 16));
}

std::function<void(InstIndex, const Inst &)>
TraceRecorder::hook()
{
    return [this](InstIndex staticId, const Inst &inst) {
        ++observed_;
        if (entries_.size() >= maxEntries_) {
            truncated_ = true;
            return;
        }
        entries_.push_back({staticId, inst.op});
    };
}

} // namespace axmemo
