/**
 * @file
 * The AxMemo code-generation pass (Section 5, step 4; Fig. 1).
 *
 * Rewrites a program so every specified region becomes the branch structure
 * of Fig. 1:
 *
 *     <loads feeding the region become ld_crc>     ; fused, count as loads
 *     reg_crc each remaining input                 ; program order
 *     lookup d, LUT_ID
 *     br_miss MISS
 *     <unpack outputs from d>                      ; hit: skip computation
 *     br CONT
 *   MISS:
 *     <original region body>
 *     <pack outputs>
 *     update p, LUT_ID
 *   CONT:
 *     ...
 *
 * Inputs/outputs come from liveness analysis of the hinted range; inputs
 * stream to the CRC unit in first-read program order. Up to two 32-bit
 * outputs pack into one 8-byte LUT entry (Section 3.3). Early exits inside
 * the region that jump past its end are rerouted through the update block
 * so the allocated LUT entry is always filled.
 */

#ifndef AXMEMO_COMPILER_TRANSFORM_HH
#define AXMEMO_COMPILER_TRANSFORM_HH

#include <string>
#include <vector>

#include "compiler/memo_spec.hh"
#include "isa/program.hh"

namespace axmemo {

/** Per-region summary of what the transform produced (Table 2 data). */
struct RegionTransformInfo
{
    int regionId = 0;
    LutId lut = 0;
    unsigned numInputs = 0;
    /** Total memoization-input bytes streamed per invocation. */
    unsigned inputBytes = 0;
    unsigned numOutputs = 0;
    unsigned outputBytes = 0;
    /** Loads converted into ld_crc (no extra instruction cost). */
    unsigned fusedLoads = 0;
};

/** Result of MemoTransform::apply. */
struct TransformResult
{
    Program program;
    /** LUT data width the memoization unit must be configured with. */
    unsigned dataBytes = 4;
    std::vector<RegionTransformInfo> regions;
};

/** The AxMemo rewriting pass; see file comment. */
class MemoTransform
{
  public:
    /**
     * Rewrite @p prog according to @p spec.
     * Fails (axm_fatal) if a region has stores, escaping branches, more
     * than two outputs, or external branches into its middle.
     */
    static TransformResult apply(const Program &prog, const MemoSpec &spec);
};

} // namespace axmemo

#endif // AXMEMO_COMPILER_TRANSFORM_HH
